"""Extension experiment — §5.5's storage argument, quantified.

The paper motivates the hybrid huge-buffer path by noting that I/O rate
falls as buffer size grows (SSD: 850 K IOPS at 4 KB reads vs ~10 K "IOPS"
for 256 KB transfers), so the per-unmap protection cost stops mattering.
This bench sweeps block sizes and shows the transition:

* small blocks → NIC-like op rates → the protection scheme matters
  (copy beats strict zero-copy, as in the network benchmarks);
* huge blocks → device-bound → all schemes tie at negligible CPU, with
  copy riding the hybrid head/tail path (never copying the bulk).
"""

from benchmarks.common import run_once, save_report
from repro.workloads.storage import StorageConfig, run_storage

SCHEMES = ("no-iommu", "copy", "identity-strict", "identity-deferred")
BLOCK_SIZES = (4096, 16384, 65536, 262144, 1048576)


def _sweep():
    out = {}
    for scheme in SCHEMES:
        for bs in BLOCK_SIZES:
            out[(scheme, bs)] = run_storage(StorageConfig(
                scheme=scheme, block_size=bs, ops_per_core=300,
                warmup_ops=50))
    return out


def test_storage_block_size_sweep(benchmark):
    results = run_once(benchmark, _sweep)

    lines = ["Storage sweep (extension of §5.5): achieved kIOPS (cpu %)",
             f"{'scheme':<20}" + "".join(f"{bs // 1024:>9}KB"
                                         for bs in BLOCK_SIZES)]
    for scheme in SCHEMES:
        row = f"{scheme:<20}"
        for bs in BLOCK_SIZES:
            r = results[(scheme, bs)]
            row += (f"{r.transactions_per_sec / 1e3:>6.0f}"
                    f"({100 * r.cpu_utilization:>3.0f})")
        lines.append(row)
    hybrid = results[("copy", 1048576)].extras.get("hybrid_maps", 0)
    lines.append("")
    lines.append(f"copy used the §5.5 hybrid path for "
                 f"{hybrid} of the 1MB transfers (all of them)")
    save_report("storage", "\n".join(lines))

    small_copy = results[("copy", 4096)].transactions_per_sec
    small_strict = results[("identity-strict", 4096)].transactions_per_sec
    big = {s: results[(s, 1048576)] for s in SCHEMES}

    benchmark.extra_info["copy_vs_strict_4KB"] = round(
        small_copy / small_strict, 2)

    # Small blocks: NIC-like rates — copy beats strict zero-copy.
    assert small_copy > 1.15 * small_strict
    # Huge blocks: the device is the bottleneck; all schemes tie...
    base = big["no-iommu"].transactions_per_sec
    for scheme in SCHEMES:
        assert abs(big[scheme].transactions_per_sec - base) / base < 0.02
    # ...at low CPU, even for copy (hybrid: head/tail only, no bulk copy).
    assert big["copy"].cpu_utilization < 0.35
    assert big["copy"].extras["hybrid_maps"] >= 300
    # And the hybrid keeps copy's CPU within ~3x of the zero-copy strict
    # scheme (copying 1 MB outright would be ~10x).
    assert (big["copy"].cpu_utilization
            < 3.0 * big["identity-strict"].cpu_utilization)
