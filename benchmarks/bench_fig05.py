"""Figure 5 — average packet-processing time breakdown, single core,
64 KB messages (RX and TX).

The headline numbers the paper calls out:
* RX: copy spends ≈0.02 µs on pool management and ≈0.11 µs on the MTU
  memcpy — ≈5.5× cheaper than identity+'s IOTLB invalidation;
* TX: copy's 64 KB memcpy (≈4.65 µs) is of the same order as identity+'s
  whole IOMMU overhead, with cache pollution tipping the scale.
"""

from benchmarks.common import FIGURE_SCHEMES, run_once, save_report, stream_sweep
from repro.stats.reporting import render_breakdown_table


def _sweep():
    rx = stream_sweep("rx", cores=1, sizes=(65536,))
    tx = stream_sweep("tx", cores=1, sizes=(65536,))
    return ({s: rx[s][0] for s in FIGURE_SCHEMES},
            {s: tx[s][0] for s in FIGURE_SCHEMES})


def test_fig5_single_core_breakdown(benchmark):
    rx, tx = run_once(benchmark, _sweep)
    report = "\n\n".join([
        render_breakdown_table(
            rx, title="Figure 5a: RX per-packet breakdown [us], 64KB msgs"),
        render_breakdown_table(
            tx, title="Figure 5b: TX per-chunk breakdown [us], 64KB msgs"),
    ])
    save_report("fig05", report)

    rx_copy = rx["copy"].breakdown_us_per_unit()
    rx_strict = rx["identity-strict"].breakdown_us_per_unit()
    tx_copy = tx["copy"].breakdown_us_per_unit()
    tx_strict = tx["identity-strict"].breakdown_us_per_unit()

    benchmark.extra_info["rx_copy_memcpy_us"] = round(rx_copy["memcpy"], 3)
    benchmark.extra_info["rx_strict_invalidate_us"] = round(
        rx_strict["invalidate iotlb"], 3)
    benchmark.extra_info["tx_copy_memcpy_us"] = round(tx_copy["memcpy"], 3)

    # RX: copying an MTU packet is several × cheaper than invalidating.
    assert rx_copy["memcpy"] <= 0.17
    assert rx_copy["copy mgmt"] <= 0.05
    assert rx_strict["invalidate iotlb"] / rx_copy["memcpy"] >= 4.0
    # identity± both pay ≈0.17 µs of page-table management.
    assert 0.13 <= rx_strict["iommu page table mgmt"] <= 0.21
    # TX: the 64 KB memcpy ≈ identity+'s IOMMU overhead.
    tx_iommu = (tx_strict["invalidate iotlb"]
                + tx_strict["iommu page table mgmt"])
    assert 3.8 <= tx_copy["memcpy"] <= 5.5      # paper: 4.65 µs
    assert 0.5 <= tx_copy["memcpy"] / tx_iommu <= 2.0
    # Cache pollution shows up as extra "other" time for copy on TX.
    assert tx_copy["other"] > tx_strict["other"]
