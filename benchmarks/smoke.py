#!/usr/bin/env python3
"""One-shot smoke target: invariants + quick bench + regression gate.

Runs, in order, in well under a minute:

1. the resource-accounting invariant checks
   (:mod:`repro.bench.invariants`), then
2. the quick figure registry (``python -m repro bench --quick``) gated
   against the checked-in ``benchmarks/results/baseline.json``.

Exit status 0 means both passed.  Regenerate the baseline after an
*intended* performance change with::

    PYTHONPATH=src python -m repro bench --quick
    cp benchmarks/results/BENCH_<latest>.json benchmarks/results/baseline.json
"""

from __future__ import annotations

import os
import sys

try:
    from repro.bench import invariants
    from repro.bench.runner import run_bench
except ImportError:
    sys.exit("error: the 'repro' package is not importable; run with "
             "PYTHONPATH=src (from the repository root) or install it")

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "results", "baseline.json")


def main() -> int:
    print("== invariants ==")
    status = invariants.main()
    if status:
        return status
    print()
    print("== quick bench (gated against baseline.json) ==")
    baseline = BASELINE if os.path.exists(BASELINE) else None
    if baseline is None:
        print(f"note: no baseline at {BASELINE}; running ungated",
              file=sys.stderr)
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return run_bench(mode="quick", baseline=baseline, jobs=jobs)


if __name__ == "__main__":
    sys.exit(main())
