"""Figure 8 — 16-core packet-processing breakdown (64 KB messages).

The paper's key observations:
* identity+'s invalidation latency degrades (0.61 → ≈2.7 µs) under
  concurrent pressure, and the invalidation-queue *spinlock* becomes the
  dominant per-packet cost on RX (tens of µs of spinning);
* copy's costs are unchanged from the single-core case — nothing in its
  hot path is shared.
"""

from benchmarks.common import FIGURE_SCHEMES, run_once, save_report, stream_sweep
from repro.stats.reporting import render_breakdown_table


def _sweep():
    rx = stream_sweep("rx", cores=16, sizes=(65536,))
    tx = stream_sweep("tx", cores=16, sizes=(65536,))
    return ({s: rx[s][0] for s in FIGURE_SCHEMES},
            {s: tx[s][0] for s in FIGURE_SCHEMES})


def test_fig8_multicore_breakdown(benchmark):
    rx, tx = run_once(benchmark, _sweep)
    save_report("fig08", "\n\n".join([
        render_breakdown_table(
            rx, title="Figure 8a: 16-core RX per-packet breakdown [us]"),
        render_breakdown_table(
            tx, title="Figure 8b: 16-core TX per-chunk breakdown [us]"),
    ]))

    rx_strict = rx["identity-strict"].breakdown_us_per_unit()
    rx_copy = rx["copy"].breakdown_us_per_unit()

    benchmark.extra_info["rx_strict_spinlock_us"] = round(
        rx_strict["spinlock"], 1)
    benchmark.extra_info["rx_strict_invalidate_us"] = round(
        rx_strict["invalidate iotlb"], 2)

    # Invalidation latency degraded well past the idle 0.61 µs (≈2.7 µs
    # in the paper; our bucket includes submit+poll).
    assert rx_strict["invalidate iotlb"] >= 1.8
    # The spinlock dominates everything else combined (paper: ≈70 µs
    # of spinning per packet; tens of µs in our model).
    assert rx_strict["spinlock"] >= 20.0
    assert rx_strict["spinlock"] > 5 * rx_strict["invalidate iotlb"]
    # copy is unchanged from the single-core shape — no shared state.
    assert rx_copy["spinlock"] < 0.05
    assert rx_copy["memcpy"] <= 0.17
    # TX strict: spinning exists but is far milder (TSO cuts chunk rate).
    tx_strict = tx["identity-strict"].breakdown_us_per_unit()
    assert tx_strict["spinlock"] < rx_strict["spinlock"]
