"""§6 "Memory consumption" — shadow pool occupancy during the benchmarks.

The paper's worst-case bound is ≈2.1 GB (16 K buffers × two size classes
× two NUMA domains) but the measured footprint tracks *in-flight DMAs*:
they observed ≈160 MB (64 MB TX + 96 MB RX shadows), ≈13× below the
bound.  We reproduce the shape: measured ≪ worst case, and growth stops
once the in-flight population (ring occupancy) is covered.
"""

from benchmarks.common import UNITS_MULTI_CORE, WARMUP, run_once, save_report
from repro.sim.units import GIB, MIB
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx, run_tcp_stream_tx


def _sweep():
    rx = run_tcp_stream_rx(StreamConfig(
        scheme="copy", message_size=16384, cores=16,
        units_per_core=UNITS_MULTI_CORE, warmup_units=WARMUP))
    tx = run_tcp_stream_tx(StreamConfig(
        scheme="copy", direction="tx", message_size=65536, cores=16,
        units_per_core=UNITS_MULTI_CORE, warmup_units=WARMUP))
    return rx, tx


def _worst_case_bytes(max_buffers=16 * 1024, numa_domains=2,
                      classes=(4096, 65536)) -> int:
    return sum(max_buffers * c for c in classes) * numa_domains


def test_memory_consumption(benchmark):
    rx, tx = run_once(benchmark, _sweep)
    rx_bytes = rx.extras["pool"]["bytes_allocated"]
    tx_bytes = tx.extras["pool"]["bytes_allocated"]
    worst = _worst_case_bytes()

    lines = [
        "Shadow pool memory consumption (paper §6 'Memory consumption')",
        f"worst-case bound      : {worst / GIB:8.2f} GiB   (paper: ~2.1 GB)",
        f"RX benchmark shadows  : {rx_bytes / MIB:8.1f} MiB  (paper: 96 MB)",
        f"TX benchmark shadows  : {tx_bytes / MIB:8.1f} MiB  (paper: 64 MB)",
        f"peak in-flight (RX)   : {rx.extras['pool']['peak_in_flight']:8d} buffers",
        f"peak in-flight (TX)   : {tx.extras['pool']['peak_in_flight']:8d} buffers",
        f"measured/worst-case   : {(rx_bytes + tx_bytes) / worst:8.4f}",
    ]
    save_report("memory", "\n".join(lines))

    benchmark.extra_info["rx_mib"] = round(rx_bytes / MIB, 1)
    benchmark.extra_info["tx_mib"] = round(tx_bytes / MIB, 1)

    # Worst case matches the paper's arithmetic (±10%).
    assert abs(worst - 2.1 * GIB) / (2.1 * GIB) < 0.1
    # Measured usage is far below the bound (paper: ≈13×; here more,
    # since the simulated rings bound in-flight DMAs tightly).
    assert (rx_bytes + tx_bytes) * 5 < worst
    # RX occupancy is driven by posted ring buffers: 16 rings × 511.
    assert rx.extras["pool"]["in_flight"] == 16 * 511
