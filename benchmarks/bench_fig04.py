"""Figure 4 — single-core TCP transmit (TX) throughput and CPU vs message
size (netperf TCP_STREAM, TSO enabled).

Expected shapes (§6): comparable throughput below 512 B; at 64 KB copy is
the *worst* scheme (the 64 KB shadow memcpy + cache pollution) by a
bounded 10–25%, and the only one pegging the CPU.
"""

from benchmarks.common import save_csv, relative, run_once, save_report, stream_sweep
from repro.stats.reporting import render_throughput_table


def test_fig4_single_core_tx(benchmark):
    results = run_once(benchmark, lambda: stream_sweep("tx", cores=1))
    save_report("fig04", render_throughput_table(
        results, title="Figure 4: single-core TCP TX (netperf TCP_STREAM)"))
    save_csv("fig04", results)

    at64k = {s: r.throughput_gbps
             for s, rs in results.items() for r in rs
             if r.params["message_size"] == 65536}
    benchmark.extra_info["tx_64KB_gbps"] = {k: round(v, 2)
                                            for k, v in at64k.items()}

    # Small messages: all comparable (socket coalescing).
    assert abs(relative(results, "identity-strict", 64) - 1.0) < 0.12
    assert abs(relative(results, "copy", 64) - 1.0) < 0.05
    # 64 KB: copy worst, within 10–30% of the other protected schemes.
    others = [v for k, v in at64k.items() if k != "copy"]
    assert at64k["copy"] < min(others)
    assert at64k["copy"] / min(others) > 0.75
    # copy is the design that saturates the CPU (TSO copy cost).
    copy_cpu = [r.cpu_utilization for r in results["copy"]
                if r.params["message_size"] == 65536][0]
    base_cpu = [r.cpu_utilization for r in results["no-iommu"]
                if r.params["message_size"] == 65536][0]
    assert copy_cpu > 0.98 > base_cpu
