#!/usr/bin/env python3
"""CI throughput smoke: prove the simulator-speed metric is alive.

Builds one quick-scale figure through the same timed-run helper the
bench uses, asserts ``sim_cycles_per_wall_second`` is present and
nonzero, and writes the entry to ``benchmarks/results/throughput.json``
so it rides along with the bench artifacts.  Pick a different figure
with ``REPRO_THROUGHPUT_FIGURE``.
"""

from __future__ import annotations

import json
import os
import sys

try:
    from repro.bench.runner import (QUICK_SCALE, build_figures,
                                    select_figures)
except ImportError:
    sys.exit("error: the 'repro' package is not importable; run with "
             "PYTHONPATH=src (from the repository root) or install it")

FIGURE = os.environ.get("REPRO_THROUGHPUT_FIGURE", "fig05")
OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   "results", "throughput.json")


def main() -> int:
    specs = select_figures([FIGURE])
    _, throughput = build_figures(specs, QUICK_SCALE, label="throughput")
    entry = throughput.get(FIGURE, {})
    rate = entry.get("sim_cycles_per_wall_second")
    if not rate:
        print(f"error: sim_cycles_per_wall_second missing or zero for "
              f"{FIGURE}: {entry!r}", file=sys.stderr)
        return 1
    os.makedirs(os.path.dirname(OUT), exist_ok=True)
    with open(OUT, "w") as fh:
        json.dump({"figure": FIGURE, **entry}, fh, indent=2)
        fh.write("\n")
    print(f"[throughput] {FIGURE}: {entry['sim_cycles']:,} sim cycles "
          f"in {entry['wall_seconds']}s = {rate:,} sim cycles/s")
    print(f"[throughput] written to {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
