#!/usr/bin/env python3
"""Resource-accounting smoke check (shim).

The checks live in :mod:`repro.bench.invariants`; this script remains so
``python benchmarks/check_invariants.py`` keeps working.  Run with the
``repro`` package importable (``PYTHONPATH=src`` from a checkout, or
installed); ``python -m repro.bench.invariants`` is equivalent.
"""

from __future__ import annotations

import sys

try:
    from repro.bench.invariants import main
except ImportError:
    sys.exit("error: the 'repro' package is not importable; run with "
             "PYTHONPATH=src (from the repository root) or install it")

if __name__ == "__main__":
    sys.exit(main())
