"""Figure 7 — 16-core TCP transmit (TX) throughput and CPU vs message size.

Expected shape: identity+ is several × worse for small messages but
*closes the gap as message size grows* (TSO slashes the chunk — hence
invalidation — rate), eventually reaching line rate at 64 KB; every
other scheme rides at line rate throughout the large sizes.
"""

from benchmarks.common import save_csv, run_once, save_report, stream_sweep
from repro.stats.reporting import render_throughput_table


def test_fig7_multicore_tx(benchmark):
    results = run_once(benchmark, lambda: stream_sweep("tx", cores=16))
    save_report("fig07", render_throughput_table(
        results, title="Figure 7: 16-core TCP TX (netperf TCP_STREAM)"))
    save_csv("fig07", results)

    strict = {r.params["message_size"]: r for r in results["identity-strict"]}
    copy = {r.params["message_size"]: r for r in results["copy"]}
    base = {r.params["message_size"]: r for r in results["no-iommu"]}

    small_gap = copy[64].throughput_gbps / strict[64].throughput_gbps
    large_gap = copy[65536].throughput_gbps / strict[65536].throughput_gbps
    benchmark.extra_info["strict_gap_64B"] = round(small_gap, 2)
    benchmark.extra_info["strict_gap_64KB"] = round(large_gap, 2)

    # Small messages: identity+ is far behind (invalidation per MSS chunk).
    assert small_gap >= 2.0
    # The gap closes with message size and vanishes at 64 KB.
    assert large_gap < small_gap
    assert abs(large_gap - 1.0) < 0.05
    # Everyone reaches line rate at 64 KB with 16 cores.
    assert copy[65536].throughput_gbps >= 0.97 * base[65536].throughput_gbps
