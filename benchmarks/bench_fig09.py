"""Figure 9 — TCP latency (single-core netperf TCP request/response).

Expected shapes: per-byte costs do not dominate (64 B → 64 KB grows the
message 1024× but the RTT only a few ×); all four designs obtain
comparable latency, and the protection overheads surface as CPU
utilization differences instead.
"""

from benchmarks.common import save_csv, rr_sweep, run_once, save_report
from repro.stats.reporting import render_latency_table


def test_fig9_tcp_rr_latency(benchmark):
    results = run_once(benchmark, lambda: rr_sweep())
    save_report("fig09", render_latency_table(
        results, title="Figure 9: TCP latency (netperf TCP_RR)"))
    save_csv("fig09", results)

    def at(scheme, size):
        for r in results[scheme]:
            if r.params["message_size"] == size:
                return r
        raise KeyError

    benchmark.extra_info["latency_64B_us"] = round(
        at("no-iommu", 64).latency_us, 1)
    benchmark.extra_info["latency_64KB_us"] = round(
        at("no-iommu", 65536).latency_us, 1)

    # 1024× the bytes, only a few × the latency (paper: ≈4×).
    growth = at("no-iommu", 65536).latency_us / at("no-iommu", 64).latency_us
    assert 2.5 <= growth <= 7.0
    # All designs comparable at every size (within ~25%).
    for size in (64, 1024, 16384, 65536):
        base = at("no-iommu", size).latency_us
        for scheme in ("copy", "identity-deferred", "identity-strict"):
            assert at(scheme, size).latency_us / base < 1.3
    # The overheads show in CPU: every protected design costs more than
    # no-iommu, and identity+ is the most expensive at small messages
    # (at 64 KB copy's per-byte copying and identity+'s per-page IOMMU
    # work converge — the Fig. 5b effect).
    for scheme in ("copy", "identity-deferred", "identity-strict"):
        assert (at(scheme, 65536).cpu_utilization
                > at("no-iommu", 65536).cpu_utilization)
    assert (at("identity-strict", 64).cpu_utilization
            >= at("copy", 64).cpu_utilization
            > at("no-iommu", 64).cpu_utilization)
