"""Figure 1 — the motivating chart: IOMMU-based protection cost.

TCP RX throughput with 1500 B wire packets (16 KB messages), one and
sixteen cores, for stock Linux (strict/deferred, rbtree IOVAs), the
identity± variants of [42], DMA shadowing (copy), and no IOMMU.

Expected shape: at 16 cores every strict scheme collapses against the
invalidation lock; Linux's strict mode is worst (IOVA lock on top);
copy and the deferred schemes ride at/near line rate.
"""

from benchmarks.common import UNITS_MULTI_CORE, UNITS_SINGLE_CORE, WARMUP, run_once, save_report
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx

SCHEMES = ("no-iommu", "copy", "identity-deferred", "identity-strict",
           "linux-deferred", "linux-strict")
MESSAGE_SIZE = 16384  # keeps the wire at back-to-back 1500 B frames


def _sweep():
    out = {}
    for cores in (1, 16):
        units = UNITS_SINGLE_CORE if cores == 1 else UNITS_MULTI_CORE
        for scheme in SCHEMES:
            out[(scheme, cores)] = run_tcp_stream_rx(StreamConfig(
                scheme=scheme, message_size=MESSAGE_SIZE, cores=cores,
                units_per_core=units, warmup_units=WARMUP))
    return out


def test_fig1_protection_cost(benchmark):
    results = run_once(benchmark, _sweep)
    lines = ["Figure 1: TCP RX throughput, 1500B wire packets [Gb/s]",
             f"{'scheme':<20}{'1 core':>10}{'16 cores':>10}"]
    for scheme in SCHEMES:
        lines.append(f"{scheme:<20}"
                     f"{results[(scheme, 1)].throughput_gbps:>10.2f}"
                     f"{results[(scheme, 16)].throughput_gbps:>10.2f}")
    save_report("fig01", "\n".join(lines))

    single = {s: results[(s, 1)].throughput_gbps for s in SCHEMES}
    multi = {s: results[(s, 16)].throughput_gbps for s in SCHEMES}
    benchmark.extra_info["single_core_gbps"] = single
    benchmark.extra_info["multi_core_gbps"] = multi

    # Paper shapes: strict schemes collapse at 16 cores...
    assert multi["copy"] / multi["identity-strict"] >= 4.0
    assert multi["copy"] / multi["linux-strict"] >= 4.0
    # ...while copy rides with the unprotected system,
    assert multi["copy"] >= 0.95 * multi["no-iommu"]
    # and stock Linux is slower than the identity variants single-core.
    assert single["linux-strict"] <= single["identity-strict"]
    assert single["linux-deferred"] <= single["identity-deferred"] * 1.02
