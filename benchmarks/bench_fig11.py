"""Figure 11 — memcached aggregated throughput (16 instances, memslap mix).

Expected shape: no-iommu, copy, and identity− obtain comparable
transactional throughput (copy within a few percent of no-iommu — "full
DMA attack protection at essentially the same throughput"); identity+
is several-fold slower (paper: 6.6×) because every transaction funnels
two invalidations through the global queue lock.
"""

from benchmarks.common import FIGURE_SCHEMES, run_once, save_report
from repro.stats.reporting import render_memcached_table
from repro.workloads.memcached import MemcachedConfig, run_memcached


def _sweep():
    return {scheme: run_memcached(MemcachedConfig(
                scheme=scheme, cores=16, transactions_per_core=450,
                warmup_transactions=80))
            for scheme in FIGURE_SCHEMES}


def test_fig11_memcached(benchmark):
    results = run_once(benchmark, _sweep)
    save_report("fig11", render_memcached_table(
        results, title="Figure 11: memcached, 16 instances, memslap "
                       "(64B keys, 1KB values, 90/10 GET/SET)"))

    tps = {s: r.transactions_per_sec for s, r in results.items()}
    benchmark.extra_info["mtps"] = {s: round(v / 1e6, 3)
                                    for s, v in tps.items()}
    benchmark.extra_info["strict_slowdown"] = round(
        tps["copy"] / tps["identity-strict"], 1)

    # copy ≈ no-iommu (paper: <2% overhead).
    assert tps["copy"] / tps["no-iommu"] > 0.95
    # identity− comparable too.
    assert tps["identity-deferred"] / tps["no-iommu"] > 0.9
    # identity+ collapses several-fold (paper: 6.6×).
    assert tps["copy"] / tps["identity-strict"] >= 5.0
    # identity+ pegs the CPU while achieving the least.
    assert results["identity-strict"].cpu_utilization > 0.95
