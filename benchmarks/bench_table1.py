"""Table 1 — protection properties of every scheme, verified empirically.

Runs the four attack scenarios against all ten schemes and renders the
✓/✗ matrix.  The security columns are *measured* (did the attack work?);
the performance columns carry the claims that the Figure 1/6/7 benches
verify quantitatively.
"""

from benchmarks.common import run_once, save_report
from repro.attacks.audit import audit_all, render_table1


def test_table1_protection_matrix(benchmark):
    rows = run_once(benchmark, lambda: audit_all(strict=True))
    save_report("table1", render_table1(rows))
    fully_secure = [r.scheme for r in rows
                    if all(r.observed[c] for c in
                           ("iommu protection", "sub-page protect",
                            "no vulnerability window"))]
    benchmark.extra_info["fully_secure_schemes"] = fully_secure
    assert fully_secure == ["copy"]
    assert all(row.matches_claims for row in rows)
