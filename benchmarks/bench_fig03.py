"""Figure 3 — single-core TCP receive (RX) throughput and CPU vs message
size (netperf TCP_STREAM).

Expected shapes (paper §6 "Single-core TCP throughput"):
* below 512 B all schemes tie (sender-syscall limited) and differ only
  in CPU;
* at large messages copy is the best protected scheme: ≈0.76× no-iommu,
  ≈1.1× identity−, ≈2× identity+.
"""

from benchmarks.common import save_csv, FIGURE_SCHEMES, relative, run_once, save_report, stream_sweep
from repro.stats.reporting import render_throughput_table


def test_fig3_single_core_rx(benchmark):
    results = run_once(benchmark, lambda: stream_sweep("rx", cores=1))
    save_report("fig03", render_throughput_table(
        results, title="Figure 3: single-core TCP RX (netperf TCP_STREAM)"))
    save_csv("fig03", results)

    benchmark.extra_info["copy_vs_no_iommu_64KB"] = round(
        relative(results, "copy", 65536), 3)
    benchmark.extra_info["copy_vs_identity_minus_64KB"] = round(
        relative(results, "copy", 65536, baseline="identity-deferred"), 3)
    benchmark.extra_info["copy_vs_identity_plus_64KB"] = round(
        relative(results, "copy", 65536, baseline="identity-strict"), 3)

    # Sender-limited region: identical throughput for every scheme.
    for scheme in FIGURE_SCHEMES:
        assert abs(relative(results, scheme, 64) - 1.0) < 0.02
    # Large-message crossovers.
    assert 0.70 <= relative(results, "copy", 65536) <= 0.82
    assert relative(results, "copy", 65536, baseline="identity-deferred") >= 1.03
    assert relative(results, "copy", 65536, baseline="identity-strict") >= 1.7
    # CPU overhead at small messages stays modest (paper: 1.1–1.2×).
    assert relative(results, "copy", 64, what="cpu") <= 1.35
