"""Shared helpers for the figure/table benchmarks (shim).

The sweep helpers moved into :mod:`repro.bench.runner` — the engine
behind ``python -m repro bench`` — and this module re-exports them so
every ``bench_*.py`` keeps its import surface.  Reports and CSVs still
land in ``benchmarks/results/`` next to this file.
"""

from __future__ import annotations

import os

from repro.bench.runner import (  # noqa: F401
    FIGURE_SCHEMES,
    UNITS_MULTI_CORE,
    UNITS_SINGLE_CORE,
    WARMUP,
    relative,
    rr_sweep,
    run_once,
    stream_sweep,
)
from repro.bench.runner import save_csv as _save_csv
from repro.bench.runner import save_report as _save_report

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_report(name: str, text: str) -> str:
    return _save_report(name, text, results_dir=RESULTS_DIR)


def save_csv(name: str, results) -> str:
    return _save_csv(name, results, results_dir=RESULTS_DIR)
