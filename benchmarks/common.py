"""Shared helpers for the figure/table benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper: it runs
the corresponding workload sweep inside the simulator, renders the same
rows/series the paper reports, prints them, and writes them to
``benchmarks/results/<name>.txt``.  Headline numbers are attached to
pytest-benchmark's ``extra_info`` so ``--benchmark-only`` output carries
them too.

The sweeps are deterministic; pytest-benchmark's timing of the sweep
itself is incidental (it measures simulator runtime, not the modeled
system), so benches run with ``rounds=1``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Sequence

from repro.stats.export import write_csv
from repro.stats.results import RunResult
from repro.workloads.netperf import (
    PAPER_MESSAGE_SIZES,
    RRConfig,
    StreamConfig,
    run_tcp_rr,
    run_tcp_stream_rx,
    run_tcp_stream_tx,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The four systems of the paper's figures, in the legend's order.
FIGURE_SCHEMES = ("no-iommu", "copy", "identity-deferred", "identity-strict")

#: Work per configuration.  Sized for steady state at tolerable runtime;
#: override through the REPRO_BENCH_UNITS environment variable.
UNITS_SINGLE_CORE = int(os.environ.get("REPRO_BENCH_UNITS", "1200"))
UNITS_MULTI_CORE = int(os.environ.get("REPRO_BENCH_UNITS_MC", "350"))
WARMUP = 120


def save_report(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return path


def save_csv(name: str, results) -> str:
    """Write the raw RunResults behind a figure as CSV (for plotting).

    Accepts a dict of scheme -> [RunResult] (figure sweeps), a dict of
    scheme -> RunResult (breakdowns/bars), or a flat list.
    """
    flat = []
    if isinstance(results, dict):
        for value in results.values():
            flat.extend(value if isinstance(value, list) else [value])
    else:
        flat = list(results)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.csv")
    write_csv(flat, path)
    return path


def stream_sweep(direction: str, cores: int,
                 schemes: Sequence[str] = FIGURE_SCHEMES,
                 sizes: Sequence[int] = PAPER_MESSAGE_SIZES,
                 **config_kwargs) -> Dict[str, List[RunResult]]:
    """Run a Figure 3/4/6/7-style sweep: schemes × message sizes."""
    units = UNITS_SINGLE_CORE if cores == 1 else UNITS_MULTI_CORE
    runner = run_tcp_stream_rx if direction == "rx" else run_tcp_stream_tx
    results: Dict[str, List[RunResult]] = {}
    for scheme in schemes:
        results[scheme] = [
            runner(StreamConfig(scheme=scheme, direction=direction,
                                message_size=size, cores=cores,
                                units_per_core=units, warmup_units=WARMUP,
                                **config_kwargs))
            for size in sizes
        ]
    return results


def rr_sweep(schemes: Sequence[str] = FIGURE_SCHEMES,
             sizes: Sequence[int] = PAPER_MESSAGE_SIZES,
             transactions: int = 300) -> Dict[str, List[RunResult]]:
    """Run the Figure 9/10 request/response sweep."""
    return {
        scheme: [run_tcp_rr(RRConfig(scheme=scheme, message_size=size,
                                     transactions=transactions,
                                     warmup_transactions=40))
                 for size in sizes]
        for scheme in schemes
    }


def relative(results: Dict[str, List[RunResult]], scheme: str, size: int,
             baseline: str = "no-iommu", what: str = "throughput") -> float:
    """Relative throughput/CPU of ``scheme`` at ``size`` vs ``baseline``."""
    def at(s):
        for r in results[s]:
            if r.params["message_size"] == size:
                return r
        raise KeyError(size)

    a, b = at(scheme), at(baseline)
    if what == "throughput":
        return a.throughput_gbps / b.throughput_gbps if b.throughput_gbps else 0
    return a.cpu_utilization / b.cpu_utilization if b.cpu_utilization else 0


def run_once(benchmark, fn: Callable[[], object]):
    """Execute a sweep exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
