"""Figure 6 — 16-core TCP receive (RX) throughput and CPU vs message size.

Expected shape: identity+ obtains several-fold worse throughput than
every other design *across all message sizes* (the invalidation-lock
collapse), pegging all 16 cores; the others reach line rate.
"""

from benchmarks.common import save_csv, run_once, save_report, stream_sweep
from repro.stats.reporting import render_throughput_table


def test_fig6_multicore_rx(benchmark):
    results = run_once(benchmark, lambda: stream_sweep("rx", cores=16))
    save_report("fig06", render_throughput_table(
        results, title="Figure 6: 16-core TCP RX (netperf TCP_STREAM)"))
    save_csv("fig06", results)

    strict = {r.params["message_size"]: r for r in results["identity-strict"]}
    copy = {r.params["message_size"]: r for r in results["copy"]}
    base = {r.params["message_size"]: r for r in results["no-iommu"]}

    benchmark.extra_info["collapse_factor_16KB"] = round(
        copy[16384].throughput_gbps / strict[16384].throughput_gbps, 2)

    for size in (1024, 4096, 16384, 65536):
        # The collapse holds at every CPU-bound size (paper: ≈5×; our
        # lock model lands between 4× and 12×).
        assert copy[size].throughput_gbps / strict[size].throughput_gbps >= 4
        # identity+ burns all 16 cores spinning.
        assert strict[size].cpu_utilization > 0.95
        # copy rides at line rate with the unprotected system.
        assert copy[size].throughput_gbps >= 0.97 * base[size].throughput_gbps
    # copy's CPU overhead versus no-iommu stays bounded (§6: ≤60%).
    assert (copy[16384].cpu_utilization
            <= 1.7 * base[16384].cpu_utilization)
