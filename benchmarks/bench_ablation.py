"""Ablation benches for the design choices DESIGN.md calls out.

* copying hints on/off (§5.4) — copy only the bytes the packet holds;
* sticky vs non-sticky shadow buffers (§5.3) — why a buffer returns to
  its owner's free list instead of migrating;
* hybrid head/tail copy vs full copy vs zero-copy strict for huge
  buffers (§5.5);
* deferred batch-size sweep (§2.2.1) — the security/performance dial:
  bigger batches amortize invalidations but widen the vulnerability
  window.
"""

from dataclasses import replace

from benchmarks.common import run_once, save_report
from repro.dma.api import DmaDirection
from repro.dma.registry import create_dma_api
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.net.packets import build_frame
from repro.net.driver import NicDriver
from repro.net.nic import Nic
from repro.sim.costmodel import CostModel
from repro.sim.units import CYCLES_PER_US
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx


def _fresh(scheme="copy", cores=2, cost=None, **kwargs):
    machine = Machine.build(cores=cores, numa_nodes=min(2, cores),
                            cost=cost)
    ka = KernelAllocators(machine)
    iommu = Iommu(machine)
    api = create_dma_api(scheme, machine, iommu, 1, ka, **kwargs)
    return machine, ka, iommu, api


# ----------------------------------------------------------------------
# §5.4 copying hints.
# ----------------------------------------------------------------------
def _hint_ablation():
    out = {}
    for hints in (True, False):
        machine, ka, _, api = _fresh()
        nic = Nic(1, api.port())
        driver = NicDriver(machine, ka, api, nic, rx_ring_size=64,
                           tx_ring_size=64, use_copy_hints=hints)
        core = machine.core(0)
        driver.setup_queue(core, 0)
        frame = build_frame(100)  # tiny packet in a 2 KB RX buffer
        start = core.busy_cycles
        n = 500
        for _ in range(n):
            driver.receive_one(core, 0, frame)
        out[hints] = (core.busy_cycles - start) / n / CYCLES_PER_US
        driver.teardown_queue(core, 0)
    return out


# ----------------------------------------------------------------------
# §5.3 sticky vs non-sticky shadow buffers.
# ----------------------------------------------------------------------
def _sticky_ablation():
    out = {}
    for sticky in (True, False):
        machine, ka, _, api = _fresh(cores=4, sticky=sticky)
        mapper = machine.core(0)       # node 0
        releaser = machine.core(3)     # node 1 — remote completions
        buf = ka.kmalloc(4096, node=0)
        n = 300
        start = mapper.busy_cycles + releaser.busy_cycles
        for _ in range(n):
            handle = api.dma_map(mapper, buf, DmaDirection.TO_DEVICE)
            meta = api.pool.find_shadow(releaser, handle.iova)
            # Unmap runs on the remote core (e.g. TX completion IRQ).
            api._live.pop(handle.iova)
            if handle.direction.device_writes:
                pass
            api.pool.release_shadow(releaser, meta)
        out[sticky] = ((mapper.busy_cycles + releaser.busy_cycles - start)
                       / n / CYCLES_PER_US)
    return out


# ----------------------------------------------------------------------
# §5.5 huge buffers: hybrid vs full copy vs zero-copy strict.
# ----------------------------------------------------------------------
def _huge_buffer_ablation(size=256 * 1024):
    results = {}

    # (a) hybrid: copy sub-page head/tail, map the middle, strict unmap.
    machine, ka, _, api = _fresh()
    core = machine.core(0)
    backing = ka.kmalloc(size + 4096, node=0)
    buf = KBuffer(pa=backing.pa + 100, size=size, node=0)
    n = 60
    start = core.busy_cycles
    for _ in range(n):
        handle = api.dma_map(core, buf, DmaDirection.BIDIRECTIONAL)
        api.dma_unmap(core, handle)
    results["hybrid (§5.5)"] = (core.busy_cycles - start) / n / CYCLES_PER_US

    # (b) full copy: shadow every byte through 64 KB-class buffers (what
    # refusing the hybrid path would cost).
    machine, ka, _, api = _fresh()
    core = machine.core(0)
    backing = ka.kmalloc(size, node=0)
    chunks = [KBuffer(pa=backing.pa + off, size=65536, node=0)
              for off in range(0, size, 65536)]
    start = core.busy_cycles
    for _ in range(n):
        handles = api.dma_map_sg(core, chunks, DmaDirection.BIDIRECTIONAL)
        api.dma_unmap_sg(core, handles)
    results["full copy"] = (core.busy_cycles - start) / n / CYCLES_PER_US

    # (c) zero-copy strict (page-granular protection only).
    machine, ka, _, api = _fresh(scheme="identity-strict")
    core = machine.core(0)
    backing = ka.kmalloc(size + 4096, node=0)
    buf = KBuffer(pa=backing.pa + 100, size=size, node=0)
    start = core.busy_cycles
    for _ in range(n):
        handle = api.dma_map(core, buf, DmaDirection.BIDIRECTIONAL)
        api.dma_unmap(core, handle)
    results["zero-copy strict"] = (core.busy_cycles - start) / n / CYCLES_PER_US
    return results


# ----------------------------------------------------------------------
# §2.2.1 deferred batch-size sweep.
# ----------------------------------------------------------------------
def _batch_sweep(sizes=(1, 10, 50, 250, 1000)):
    out = {}
    for batch in sizes:
        cost = CostModel(deferred_batch_size=batch)
        # Enough unmaps that even the largest batch flushes (and thus
        # reports measured windows) several times.
        r = run_tcp_stream_rx(StreamConfig(
            scheme="identity-deferred", message_size=16384, cores=1,
            units_per_core=2400, warmup_units=100, cost=cost))
        out[batch] = (r.throughput_gbps,
                      r.extras.get("window_mean_us", 0.0),
                      r.extras.get("window_max_us", 0.0))
    return out


def test_ablations(benchmark):
    hints, sticky, huge, batches = run_once(
        benchmark,
        lambda: (_hint_ablation(), _sticky_ablation(),
                 _huge_buffer_ablation(), _batch_sweep()))

    lines = ["Ablations (design choices from DESIGN.md)", ""]
    lines.append("[§5.4 copying hints] RX cost per 154B packet in a 2KB buffer")
    lines.append(f"  hints on : {hints[True]:.3f} us/pkt")
    lines.append(f"  hints off: {hints[False]:.3f} us/pkt "
                 f"({hints[False] / hints[True]:.2f}x)")
    lines.append("")
    lines.append("[§5.3 sticky buffers] map on node0 + release on node1")
    lines.append(f"  sticky    : {sticky[True]:.3f} us/op")
    lines.append(f"  non-sticky: {sticky[False]:.3f} us/op "
                 f"({sticky[False] / sticky[True]:.1f}x — remap+invalidate)")
    lines.append("")
    lines.append("[§5.5 huge buffers] 256KB map+unmap cost")
    for name, us in huge.items():
        lines.append(f"  {name:<18}: {us:7.2f} us/op")
    lines.append("")
    lines.append("[§2.2.1 deferred batching] batch size vs RX throughput "
                 "vs measured vulnerability window")
    for batch, (gbps, mean_us, max_us) in batches.items():
        lines.append(f"  batch {batch:>5}: {gbps:6.2f} Gb/s   "
                     f"window mean {mean_us:8.1f} us / max {max_us:8.1f} us")
    save_report("ablations", "\n".join(lines))

    benchmark.extra_info["hint_speedup"] = round(hints[False] / hints[True], 2)
    benchmark.extra_info["nonsticky_slowdown"] = round(
        sticky[False] / sticky[True], 1)

    # Hints pay off whenever buffers run partially full.
    assert hints[True] < hints[False]
    # Stickiness avoids a remap+invalidate per cross-core release.
    assert sticky[False] > 3 * sticky[True]
    # The hybrid path beats copying a huge buffer outright.
    assert huge["hybrid (§5.5)"] < huge["full copy"]
    # Tiny batches converge towards strict-protection cost: slower than
    # the default 250 batch.
    assert batches[250][0] > batches[1][0]
    # Diminishing returns: 250 already captures nearly all of it.
    assert batches[1000][0] / batches[250][0] < 1.05
    # The price: the measured vulnerability window grows with the batch.
    assert batches[1000][1] > batches[10][1]
    assert batches[250][2] > 50  # hundreds of packets wide at line rate
