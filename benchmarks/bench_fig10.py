"""Figure 10 — CPU-utilization breakdown for TCP_RR at 64 KB messages.

Expected shape: identity+ spends a large share of its busy time on
IOMMU-related work (page tables + invalidations + lock); copy's combined
copying costs are a modest share of its busy time and under 10% of the
whole round-trip.
"""

from benchmarks.common import FIGURE_SCHEMES, run_once, save_report
from repro.stats.reporting import render_breakdown_table
from repro.workloads.netperf import RRConfig, run_tcp_rr


def _sweep():
    return {scheme: run_tcp_rr(RRConfig(scheme=scheme, message_size=65536,
                                        transactions=300,
                                        warmup_transactions=40))
            for scheme in FIGURE_SCHEMES}


def test_fig10_rr_cpu_breakdown(benchmark):
    results = run_once(benchmark, _sweep)
    save_report("fig10", render_breakdown_table(
        results,
        title="Figure 10: TCP_RR CPU breakdown per transaction [us], 64KB"))

    strict = results["identity-strict"]
    copy = results["copy"]
    strict_bd = strict.breakdown_us_per_unit()
    copy_bd = copy.breakdown_us_per_unit()

    strict_iommu = (strict_bd["invalidate iotlb"]
                    + strict_bd["iommu page table mgmt"]
                    + strict_bd["spinlock"])
    copy_copying = copy_bd["memcpy"] + copy_bd["copy mgmt"]
    rtt_us = copy.latency_us

    benchmark.extra_info["strict_iommu_share_of_busy"] = round(
        strict_iommu / strict.us_per_unit, 2)
    benchmark.extra_info["copy_copying_share_of_busy"] = round(
        copy_copying / copy.us_per_unit, 2)
    benchmark.extra_info["copy_copying_share_of_rtt"] = round(
        copy_copying / rtt_us, 3)

    # identity+ spends a large fraction of its time on IOMMU work
    # (paper: "almost half").
    assert strict_iommu / strict.us_per_unit >= 0.25
    # copy's copying is a bounded share of busy time (paper: ≈20%)...
    assert copy_copying / copy.us_per_unit <= 0.45
    # ...and a small slice of the overall round-trip (paper: <10%; our
    # LRO model copies the full 2×64 KB per transaction, landing ≈11%).
    assert copy_copying / rtt_us < 0.15
    # No invalidations at all on copy's hot path.
    assert copy_bd["invalidate iotlb"] == 0.0
