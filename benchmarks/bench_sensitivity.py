"""Sensitivity analysis — how robust is the paper's conclusion?

The headline claim ("copy is faster than zero copy") rests on two
hardware quantities: the IOTLB-invalidation latency (~0.61 µs idle) and
the memcpy bandwidth (~5.8 B/cycle with ERMS).  This bench sweeps both
and reports where the conclusion would flip:

* If invalidation were ~5× faster, strict zero-copy would catch copy on
  the single-core RX path — quantifying how much better IOMMU hardware
  (e.g. the paper's §7 hardware proposals) must get.
* If memcpy were much slower (no ERMS), copy's advantage would shrink —
  quantifying the paper's §5.4 observation that the optimized copy
  engine matters.
"""

from dataclasses import replace

from benchmarks.common import run_once, save_report
from repro.sim.costmodel import CostModel
from repro.stats.analytical import copy_invalidate_breakeven_bytes
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx

INVALIDATION_SCALES = (0.1, 0.25, 0.5, 1.0, 2.0)
MEMCPY_SCALES = (0.25, 0.5, 1.0, 2.0)


def _rx(scheme: str, cost: CostModel) -> float:
    return run_tcp_stream_rx(StreamConfig(
        scheme=scheme, message_size=65536, cores=1,
        units_per_core=400, warmup_units=60, cost=cost)).throughput_gbps


def _sweep():
    base = CostModel()
    inval = {}
    for scale in INVALIDATION_SCALES:
        cost = replace(base, iotlb_invalidation_cycles=round(
            base.iotlb_invalidation_cycles * scale))
        inval[scale] = (_rx("copy", cost), _rx("identity-strict", cost),
                        copy_invalidate_breakeven_bytes(cost))
    memcpy = {}
    for scale in MEMCPY_SCALES:
        cost = replace(base,
                       memcpy_bytes_per_cycle=base.memcpy_bytes_per_cycle
                       * scale)
        memcpy[scale] = (_rx("copy", cost), _rx("identity-strict", cost))
    return inval, memcpy


def test_sensitivity(benchmark):
    inval, memcpy = run_once(benchmark, _sweep)

    lines = ["Sensitivity of 'copy beats strict zero copy' (1-core RX, 64KB)",
             "",
             "[IOTLB invalidation latency scale]",
             f"{'scale':>8}{'copy Gb/s':>12}{'strict Gb/s':>12}"
             f"{'copy/strict':>12}{'breakeven':>12}"]
    for scale, (c, s, be) in inval.items():
        lines.append(f"{scale:>8.2f}{c:>12.2f}{s:>12.2f}{c / s:>12.2f}"
                     f"{be:>11}B")
    lines.append("")
    lines.append("[memcpy bandwidth scale (1.0 = ERMS ~5.8 B/cycle)]")
    lines.append(f"{'scale':>8}{'copy Gb/s':>12}{'strict Gb/s':>12}"
                 f"{'copy/strict':>12}")
    for scale, (c, s) in memcpy.items():
        lines.append(f"{scale:>8.2f}{c:>12.2f}{s:>12.2f}{c / s:>12.2f}")
    save_report("sensitivity", "\n".join(lines))

    benchmark.extra_info["copy_vs_strict_at_fast_iommu"] = round(
        inval[0.1][0] / inval[0.1][1], 2)

    # At the paper's hardware, copy wins ~2x.
    assert inval[1.0][0] / inval[1.0][1] > 1.7
    # Copy's advantage shrinks monotonically as invalidation gets faster.
    ratios = [inval[s][0] / inval[s][1] for s in INVALIDATION_SCALES]
    assert ratios == sorted(ratios)
    # With a 10x faster IOMMU the gap narrows markedly but does not
    # vanish: page-table management and queue interaction remain even
    # when the invalidation itself is nearly free — the §8 point that
    # the cost is "interacting with the IOMMU", not just the latency.
    assert ratios[0] < 1.45
    # The break-even size scales with invalidation cost.
    assert inval[0.1][2] < inval[1.0][2] < inval[2.0][2]
    # Slower copies erode copy's edge; faster copies widen it.
    assert (memcpy[0.25][0] / memcpy[0.25][1]
            < memcpy[2.0][0] / memcpy[2.0][1])
