#!/usr/bin/env python3
"""Writing a device driver against the DMA API — transparency in action.

The paper's §5.1 "transparency" goal: DMA shadowing slots in under
*unmodified* drivers.  This example writes a tiny block-device driver
(one command ring, sector-sized transfers) purely against the abstract
DMA API, runs it unchanged over three protection schemes, and registers
the optional §5.4 copying hint where the scheme supports it.

Run:  python3 examples/custom_driver.py
"""

from repro import DmaDirection, Machine
from repro.core.shadow_dma import ShadowDmaApi
from repro.dma.registry import create_dma_api
from repro.iommu.iommu import Iommu
from repro.kalloc.slab import KernelAllocators

SECTOR = 4096


class ToyBlockDevice:
    """The 'hardware': stores sectors; DMAs through its port."""

    def __init__(self, port):
        self.port = port
        self.sectors = {}

    def write_sector(self, lba: int, iova: int) -> None:
        self.sectors[lba] = self.port.dma_read(iova, SECTOR)

    def read_sector(self, lba: int, iova: int) -> None:
        self.port.dma_write(iova, self.sectors.get(lba, bytes(SECTOR)))


class ToyBlockDriver:
    """The driver: only ever touches the abstract DMA API."""

    def __init__(self, machine, allocators, dma_api):
        self.machine = machine
        self.allocators = allocators
        self.dma_api = dma_api
        self.device = ToyBlockDevice(dma_api.port())
        if isinstance(dma_api, ShadowDmaApi):
            # Optional: sectors are often partially used; hint the pool
            # to copy only the payload length stored in the first 4 bytes.
            self.dma_api.register_copy_hint(
                DmaDirection.FROM_DEVICE,
                lambda view, size: int.from_bytes(view.read(0, 4), "little")
                or size)

    def write(self, core, lba: int, data: bytes) -> None:
        buf = self.allocators.kmalloc(SECTOR, node=core.numa_node, core=core)
        self.machine.memory.write(buf.pa, data.ljust(SECTOR, b"\0"))
        handle = self.dma_api.dma_map(core, buf, DmaDirection.TO_DEVICE)
        self.device.write_sector(lba, handle.iova)
        self.dma_api.dma_unmap(core, handle)
        self.allocators.kfree(buf, core)

    def read(self, core, lba: int) -> bytes:
        buf = self.allocators.kmalloc(SECTOR, node=core.numa_node, core=core)
        handle = self.dma_api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
        self.device.read_sector(lba, handle.iova)
        self.dma_api.dma_unmap(core, handle)
        data = self.machine.memory.read(buf.pa, SECTOR)
        self.allocators.kfree(buf, core)
        return data


def main() -> None:
    for scheme in ("no-iommu", "identity-strict", "copy"):
        machine = Machine.build(cores=2, numa_nodes=1)
        allocators = KernelAllocators(machine)
        iommu = None if scheme == "no-iommu" else Iommu(machine)
        api = create_dma_api(scheme, machine, iommu, device_id=0x20,
                             allocators=allocators)
        driver = ToyBlockDriver(machine, allocators, api)
        core = machine.core(0)

        payload = (len(b"hello, block device")).to_bytes(4, "little") \
            + b"hello, block device"
        driver.write(core, lba=7, data=payload)
        back = driver.read(core, lba=7)
        assert back[4:4 + 19] == b"hello, block device"
        us = machine.cost.us(core.busy_cycles)
        print(f"{scheme:<18} roundtrip ok   driver cpu: {us:7.3f} us   "
              f"(driver code identical — transparency, §5.1)")


if __name__ == "__main__":
    main()
