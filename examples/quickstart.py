#!/usr/bin/env python3
"""Quickstart: stand up a protected system and move data through it.

Builds a 4-core machine with DMA shadowing ("copy"), walks one RX and
one TX DMA through the public API, and shows the two properties that
make the scheme the paper's contribution:

1. the device only ever sees *shadow* buffers (byte-granularity
   protection — it cannot reach OS memory at all), and
2. ``dma_unmap`` needs no IOTLB invalidation (the performance win).

Run:  python3 examples/quickstart.py
"""

from repro import DmaDirection, System, SystemConfig


def main() -> None:
    system = System.build(SystemConfig(scheme="copy", cores=4))
    core = system.machine.core(0)
    api = system.dma_api
    port = api.port()          # the device's view of the bus

    print("== RX: device -> OS buffer, through a shadow ==")
    rx_buf = system.allocators.kmalloc(1500, node=0, core=core)
    handle = api.dma_map(core, rx_buf, DmaDirection.FROM_DEVICE)
    print(f"driver buffer at PA  {rx_buf.pa:#014x}")
    print(f"device was granted   {handle.iova:#014x}  "
          f"(MSB set => shadow-encoded IOVA)")

    port.dma_write(handle.iova, b"packet from the wire")
    visible = system.machine.memory.read(rx_buf.pa, 20)
    print(f"before unmap, OS buffer holds: {visible!r}")
    api.dma_unmap(core, handle)   # <- the shadow -> OS copy happens here
    visible = system.machine.memory.read(rx_buf.pa, 20)
    print(f"after  unmap, OS buffer holds: {visible!r}")

    print("\n== the device cannot touch OS memory directly ==")
    try:
        port.dma_read(rx_buf.pa, 16)
    except Exception as exc:  # IommuFault
        print(f"device DMA at the buffer's physical address -> {exc}")

    print("\n== TX: OS buffer -> device ==")
    tx_buf = system.allocators.kmalloc(1500, node=0, core=core)
    system.machine.memory.write(tx_buf.pa, b"response bytes")
    handle = api.dma_map(core, tx_buf, DmaDirection.TO_DEVICE)
    print(f"device reads: {port.dma_read(handle.iova, 14)!r}")
    api.dma_unmap(core, handle)

    print("\n== cost accounting ==")
    cost = system.cost
    print(f"cycles spent on this core: {core.busy_cycles}")
    for category, cycles in sorted(core.breakdown.items(),
                                   key=lambda kv: -kv[1]):
        print(f"  {category:<24} {cost.us(cycles):8.3f} us")
    invq = system.iommu.invalidation_queue
    print(f"IOTLB invalidations issued: {invq.sync_invalidations} "
          f"(the copy scheme's hot path never needs one)")


if __name__ == "__main__":
    main()
