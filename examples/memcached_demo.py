#!/usr/bin/env python3
"""memcached under DMA protection — the paper's Figure 11 workload.

Runs 8 memcached instances under each protection scheme with the
memslap mix (64 B keys, 1 KB values, 90/10 GET/SET) and prints the
aggregate transactional throughput.  Shows the paper's application-level
takeaway: full DMA-attack protection (copy) at essentially the same
throughput as no protection, while strict zero-copy protection collapses.

Run:  python3 examples/memcached_demo.py
"""

from repro import MemcachedConfig, run_memcached
from repro.stats.reporting import render_memcached_table

SCHEMES = ("no-iommu", "copy", "identity-deferred", "identity-strict")


def main() -> None:
    results = {}
    for scheme in SCHEMES:
        print(f"running memcached under {scheme}...")
        results[scheme] = run_memcached(MemcachedConfig(
            scheme=scheme, cores=8, transactions_per_core=300,
            warmup_transactions=50))
    print()
    print(render_memcached_table(
        results, title="memcached, 8 instances (compare paper Fig. 11)"))
    print()
    copy, base = results["copy"], results["no-iommu"]
    strict = results["identity-strict"]
    print(f"copy/no-iommu   : "
          f"{copy.transactions_per_sec / base.transactions_per_sec:.3f} "
          f"(paper: ~0.98 — 'essentially the same throughput')")
    print(f"copy/identity+  : "
          f"{copy.transactions_per_sec / strict.transactions_per_sec:.1f}x "
          f"(paper: 6.6x)")
    hits = copy.extras["store_hits"]
    misses = copy.extras["store_misses"]
    print(f"KV store served {hits} hits / {misses} misses of real data")


if __name__ == "__main__":
    main()
