#!/usr/bin/env python3
"""A miniature netperf campaign — Figures 3 and 6 at reduced scale.

Sweeps message sizes over the four systems the paper compares, single
core and 16 cores, and prints the throughput/CPU panels.  A compact
version of what ``pytest benchmarks/ --benchmark-only`` regenerates in
full.

Run:  python3 examples/netperf_campaign.py           (single core)
      REPRO_CORES=16 python3 examples/netperf_campaign.py
"""

import os

from repro import FIGURE_SCHEMES, StreamConfig
from repro.stats.reporting import render_throughput_table
from repro.workloads.netperf import run_tcp_stream_rx

SIZES = (64, 1024, 16384, 65536)


def main() -> None:
    cores = int(os.environ.get("REPRO_CORES", "1"))
    units = 600 if cores == 1 else 200
    results = {}
    for scheme in FIGURE_SCHEMES:
        print(f"running {scheme} ({cores} core(s))...")
        results[scheme] = [
            run_tcp_stream_rx(StreamConfig(
                scheme=scheme, message_size=size, cores=cores,
                units_per_core=units, warmup_units=80))
            for size in SIZES
        ]
    print()
    print(render_throughput_table(
        results,
        title=f"TCP RX throughput/CPU, {cores} core(s) "
              f"(compare paper Fig. {'3' if cores == 1 else '6'})"))

    copy = results["copy"][-1]
    strict = results["identity-strict"][-1]
    print(f"copy vs identity+ at 64KB: "
          f"{copy.throughput_gbps / strict.throughput_gbps:.2f}x "
          f"({'paper: ~2x' if cores == 1 else 'paper: ~5x collapse'})")
    if "pool" in copy.extras:
        mib = copy.extras["pool"]["bytes_allocated"] / (1 << 20)
        print(f"shadow pool footprint during the copy runs: {mib:.1f} MiB")


if __name__ == "__main__":
    main()
