#!/usr/bin/env python3
"""A tour of the shadow buffer pool's data structures (paper §5.3, Fig. 2).

Walks the machinery that makes ``find_shadow`` O(1) and the pool
lock-free on its owner-core fast path: the 48-bit IOVA encoding, the
per-(core, class, rights) segregated free lists, stickiness across
cross-core releases, and the fallback hash-table path when the encoded
index space runs out.

Run:  python3 examples/shadow_pool_tour.py
"""

from repro import DmaDirection, Machine, Perm
from repro.core.iova_encoding import ShadowIovaCodec
from repro.dma.registry import create_dma_api
from repro.iommu.iommu import Iommu
from repro.kalloc.slab import KernelAllocators


def show_bits(iova: int, codec: ShadowIovaCodec) -> None:
    decoded = codec.decode(iova)
    print(f"  IOVA {iova:#014x} = {iova:048b}")
    print(f"    shadow flag : bit 47 = 1")
    print(f"    core id     : {decoded.core_id}")
    print(f"    rights      : {decoded.rights.name}")
    print(f"    size class  : {decoded.class_index} "
          f"({codec.size_classes[decoded.class_index]} B)")
    print(f"    meta index  : {decoded.meta_index}")
    print(f"    offset      : {decoded.offset}")


def main() -> None:
    machine = Machine.build(cores=4, numa_nodes=2)
    allocators = KernelAllocators(machine)
    iommu = Iommu(machine)
    api = create_dma_api("copy", machine, iommu, 0x30, allocators)
    pool = api.pool
    codec = pool.codec

    print("== Figure 2: the IOVA is the index ==")
    core2 = machine.core(2)
    buf = allocators.kmalloc(1500, node=core2.numa_node, core=core2)
    handle = api.dma_map(core2, buf, DmaDirection.FROM_DEVICE)
    show_bits(handle.iova, codec)
    meta = pool.find_shadow(core2, handle.iova)
    print(f"  find_shadow -> metadata for shadow at PA {meta.pa:#x} "
          f"(owner core {meta.owner_core}, NUMA node {meta.domain_node})")
    api.dma_unmap(core2, handle)

    print("\n== segregated free lists: (core, class, rights) ==")
    core0 = machine.core(0)
    for rights, direction in ((Perm.READ, DmaDirection.TO_DEVICE),
                              (Perm.WRITE, DmaDirection.FROM_DEVICE)):
        b = allocators.kmalloc(1000, node=0, core=core0)
        h = api.dma_map(core0, b, direction)
        d = codec.decode(h.iova)
        print(f"  {direction.name:<12} -> rights {d.rights.name:<5} "
              f"list of core {d.core_id} (never shares a page with the "
              f"other rights)")
        api.dma_unmap(core0, h)
    print(f"  live free lists: {sorted((k[0], k[2].name) for k in pool._lists)}")

    print("\n== stickiness: remote release returns to the owner ==")
    b = allocators.kmalloc(1500, node=0, core=core0)
    h = api.dma_map(core0, b, DmaDirection.TO_DEVICE)
    meta = pool.find_shadow(core0, h.iova)
    iova_before = meta.iova
    # Simulate a TX completion handled on core 3 (other NUMA node).
    api._live.pop(h.iova)
    pool.release_shadow(machine.core(3), meta)
    again = pool.acquire_shadow(core0, b, 1500, Perm.READ)
    print(f"  released on core 3, re-acquired on core 0: same buffer? "
          f"{again.iova == iova_before} (mapping never changed)")
    print(f"  remote releases so far: {pool.stats.remote_releases}")
    pool.release_shadow(core0, again)

    print("\n== capacity: index space and worst case (§5.3, §6) ==")
    for idx, cls in enumerate(codec.size_classes):
        print(f"  class {cls:>6} B: up to 2^{codec.index_capacity(idx).bit_length() - 1}"
              f" encodable buffers per NUMA domain")
    print(f"  prototype bound used in the paper: 16K buffers/class "
          f"-> ~2.1 GB worst case; measured in our benches: ~65 MiB")

    print("\n== fallback path (§5.3): exhausted metadata array ==")
    tiny = create_dma_api("copy", machine, iommu, 0x31, allocators,
                          max_buffers_per_class=1)
    b1 = allocators.kmalloc(1500, node=0, core=core0)
    b2 = allocators.kmalloc(1500, node=0, core=core0)
    h1 = tiny.dma_map(core0, b1, DmaDirection.TO_DEVICE)
    h2 = tiny.dma_map(core0, b2, DmaDirection.TO_DEVICE)
    print(f"  encoded  IOVA: {h1.iova:#014x} (MSB set)")
    print(f"  fallback IOVA: {h2.iova:#014x} (MSB clear -> hash lookup)")
    assert tiny.pool.find_shadow(core0, h2.iova).fallback
    tiny.dma_unmap(core0, h1)
    tiny.dma_unmap(core0, h2)
    print("\npool statistics:", vars(pool.stats))


if __name__ == "__main__":
    main()
