#!/usr/bin/env python3
"""DMA attack demonstration — the paper's §1/§3/§4 threats, live.

Walks three attacks against three configurations and regenerates the
paper's Table 1 from the observed outcomes:

1. the *sub-page* attack: a secret co-located with a DMA buffer on one
   kmalloc page is stolen through a page-granular mapping;
2. the *deferred window* attack: a device keeps writing through a stale
   IOTLB entry after ``dma_unmap`` returned — the attack that crashed
   the authors' Linux;
3. the same attacks against DMA shadowing, which defeats both.

Run:  python3 examples/dma_attack_demo.py
"""

from repro import audit_all, render_table1
from repro.attacks.scenarios import (
    subpage_read_attack,
    window_read_attack,
    window_write_attack,
)


def show(outcome) -> None:
    verdict = "ATTACK SUCCEEDED" if outcome.attack_succeeded else "defended"
    print(f"  [{outcome.scheme:>18}] {outcome.name:<13} -> {verdict:<16} "
          f"({outcome.detail})")


def main() -> None:
    print("== 1. sub-page attack (§4: kmalloc co-location) ==")
    print("A 512B DMA buffer shares its 4KB page with unrelated secret")
    print("data; the device reads the whole page it was granted.\n")
    for scheme in ("identity-strict", "identity-deferred", "copy"):
        show(subpage_read_attack(scheme))

    print("\n== 2. deferred-window attack (§3: stale IOTLB entries) ==")
    print("After dma_unmap returns, the OS reuses the buffer; the device")
    print("writes (or reads) it through the not-yet-invalidated IOTLB")
    print("entry.  Strict protection closes this; deferred does not.\n")
    for scheme in ("identity-strict", "identity-deferred", "copy"):
        show(window_write_attack(scheme))
        show(window_read_attack(scheme))

    print("\n== 3. the window is bounded by the batch flush ==")
    outcome = window_write_attack("identity-deferred", flush_first=True)
    show(outcome)
    print("  (after the 250-unmap/10ms flush, the same attack fails)")

    print("\n== Table 1, regenerated from the attacks above ==\n")
    rows = audit_all(strict=True)
    print(render_table1(rows))
    print("\nOnly 'copy (shadow buffers)' earns every column — the paper's")
    print("claim, verified empirically.")


if __name__ == "__main__":
    main()
