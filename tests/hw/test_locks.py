"""Timestamp lock and shared-resource model tests."""

import pytest

from repro.errors import SimulationError
from repro.hw.cpu import CAT_SPINLOCK, Core
from repro.hw.locks import NullLock, SharedResource, SpinLock
from repro.sim.costmodel import CostModel


@pytest.fixture
def cost():
    return CostModel()


def _cores(n):
    return [Core(cid=i, numa_node=0) for i in range(n)]


def test_uncontended_acquire_is_cheap(cost):
    (a,) = _cores(1)
    lock = SpinLock("l", cost)
    lock.acquire(a)
    assert a.busy_cycles == cost.lock_uncontended_cycles
    lock.release(a)
    assert lock.stats.contended_acquisitions == 0


def test_contended_acquire_spins(cost):
    a, b = _cores(2)
    lock = SpinLock("l", cost)
    lock.acquire(a)
    a.charge(1000)           # critical section
    lock.release(a)
    # b arrives "earlier" in its local time and must spin to free_at.
    lock.acquire(b)
    assert b.now >= 1000 + cost.lock_uncontended_cycles
    assert b.breakdown[CAT_SPINLOCK] > 0
    assert lock.stats.contended_acquisitions == 1
    assert lock.stats.total_wait_cycles >= 1000
    lock.release(b)


def test_serialization_chain(cost):
    """N cores passing the lock serialize: total span ≥ N × hold."""
    cores = _cores(4)
    lock = SpinLock("l", cost)
    hold = 500
    for c in cores:
        lock.acquire(c)
        c.charge(hold)
        lock.release(c)
    assert cores[-1].now >= 4 * hold


def test_recursive_acquire_rejected(cost):
    (a,) = _cores(1)
    lock = SpinLock("l", cost)
    lock.acquire(a)
    with pytest.raises(SimulationError):
        lock.acquire(a)


def test_release_by_non_holder_rejected(cost):
    a, b = _cores(2)
    lock = SpinLock("l", cost)
    lock.acquire(a)
    with pytest.raises(SimulationError):
        lock.release(b)


def test_hold_time_recorded(cost):
    (a,) = _cores(1)
    lock = SpinLock("l", cost)
    lock.acquire(a)
    a.charge(777)
    lock.release(a)
    assert lock.stats.total_hold_cycles == 777
    assert not lock.held


def test_null_lock_is_free():
    (a,) = _cores(1)
    lock = NullLock()
    lock.acquire(a)
    lock.release(a)
    assert a.now == 0
    assert lock.stats.acquisitions == 1
    assert not lock.held


def test_mean_wait(cost):
    stats = SpinLock("l", cost).stats
    assert stats.mean_wait_cycles == 0.0


def test_shared_resource_serializes():
    hw = SharedResource("inv-hw")
    end1 = hw.occupy(start=0, service_cycles=100)
    assert end1 == 100
    # A request arriving at t=50 queues behind the first.
    end2 = hw.occupy(start=50, service_cycles=100)
    assert end2 == 200
    assert hw.queue_delay_cycles == 50
    # A request arriving after the resource idles starts immediately.
    end3 = hw.occupy(start=500, service_cycles=10)
    assert end3 == 510
    assert hw.completions == 3
    assert hw.total_service_cycles == 210
