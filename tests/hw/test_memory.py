"""Physical memory model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryAccessError
from repro.hw.memory import NODE_REGION_BYTES, PhysicalMemory
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def mem() -> PhysicalMemory:
    return PhysicalMemory(num_nodes=2)


def test_basic_roundtrip(mem):
    mem.write(0x1000, b"hello")
    assert mem.read(0x1000, 5) == b"hello"


def test_untouched_memory_reads_zero(mem):
    assert mem.read(0x5000, 16) == bytes(16)


def test_write_across_page_boundary(mem):
    data = bytes(range(200)) * 50  # 10 000 bytes, > 2 pages
    addr = PAGE_SIZE - 17
    mem.write(addr, data)
    assert mem.read(addr, len(data)) == data


def test_copy_across_pages(mem):
    src = 3 * PAGE_SIZE - 100
    dst = 7 * PAGE_SIZE - 50
    payload = bytes(range(256)) * 2
    mem.write(src, payload)
    mem.copy(dst, src, len(payload))
    assert mem.read(dst, len(payload)) == payload


def test_fill(mem):
    mem.fill(0x2000, 100, 0xAB)
    assert mem.read(0x2000, 100) == b"\xab" * 100


def test_node_geometry(mem):
    base1 = mem.node_base(1)
    assert base1 == 1 << 36
    assert mem.node_of(0) == 0
    assert mem.node_of(base1) == 1
    assert mem.node_of(base1 + 12345) == 1


def test_node_region(mem):
    base, size = mem.node_region(0)
    assert base == 0 and size == NODE_REGION_BYTES


def test_node_out_of_range(mem):
    with pytest.raises(MemoryAccessError):
        mem.node_base(5)
    with pytest.raises(MemoryAccessError):
        mem.node_of(10 << 36)


def test_write_outside_memory_rejected(mem):
    with pytest.raises(MemoryAccessError):
        mem.write((2 << 36) + 10, b"x")


def test_read_outside_memory_rejected(mem):
    with pytest.raises(MemoryAccessError):
        mem.read(5 << 36, 1)


def test_cross_node_range_check():
    # A range cannot straddle a node boundary with a smaller node size.
    mem = PhysicalMemory(num_nodes=2, node_bytes=1 << 20)
    assert not mem.contains((1 << 20) - 10, 100)
    with pytest.raises(MemoryAccessError):
        mem.read((1 << 20) - 10, 100)


def test_resident_pages_lazy(mem):
    assert mem.resident_pages == 0
    mem.write(0, b"x")
    assert mem.resident_pages == 1
    mem.write(PAGE_SIZE * 10, bytes(PAGE_SIZE + 1))
    assert mem.resident_pages == 3


def test_zero_size_ops(mem):
    mem.write(0, b"")
    assert mem.read(0, 0) == b""
    mem.copy(0, 100, 0)


def test_zero_nodes_rejected():
    with pytest.raises(MemoryAccessError):
        PhysicalMemory(num_nodes=0)


@settings(max_examples=50)
@given(addr=st.integers(min_value=0, max_value=1 << 24),
       data=st.binary(min_size=1, max_size=3 * PAGE_SIZE))
def test_roundtrip_property(addr, data):
    mem = PhysicalMemory(num_nodes=1)
    mem.write(addr, data)
    assert mem.read(addr, len(data)) == data


@settings(max_examples=30)
@given(a=st.integers(min_value=0, max_value=1 << 20),
       b=st.integers(min_value=2 << 20, max_value=3 << 20),
       data=st.binary(min_size=1, max_size=PAGE_SIZE))
def test_disjoint_writes_do_not_interfere(a, b, data):
    mem = PhysicalMemory(num_nodes=1)
    mem.write(a, data)
    mem.write(b, data[::-1])
    assert mem.read(a, len(data)) == data
