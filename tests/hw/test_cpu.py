"""Core clock / accounting tests."""

import pytest

from repro.hw.cpu import (
    ALL_CATEGORIES,
    CAT_MEMCPY,
    CAT_OTHER,
    CAT_SPINLOCK,
    Core,
    merge_breakdowns,
)


def test_charge_advances_clock_and_busy():
    core = Core(cid=0, numa_node=0)
    core.charge(100, CAT_MEMCPY)
    core.charge(50)
    assert core.now == 150
    assert core.busy_cycles == 150
    assert core.breakdown[CAT_MEMCPY] == 100
    assert core.breakdown[CAT_OTHER] == 50


def test_charge_zero_is_noop():
    core = Core(cid=0, numa_node=0)
    core.charge(0)
    assert core.now == 0
    assert not core.breakdown


def test_charge_negative_rejected():
    core = Core(cid=0, numa_node=0)
    with pytest.raises(ValueError):
        core.charge(-1)


def test_advance_to_is_idle():
    core = Core(cid=0, numa_node=0)
    idled = core.advance_to(500)
    assert idled == 500
    assert core.now == 500
    assert core.busy_cycles == 0


def test_advance_to_past_is_noop():
    core = Core(cid=0, numa_node=0)
    core.charge(100)
    assert core.advance_to(50) == 0
    assert core.now == 100


def test_spin_until_is_busy():
    core = Core(cid=0, numa_node=0)
    waited = core.spin_until(300)
    assert waited == 300
    assert core.busy_cycles == 300
    assert core.breakdown[CAT_SPINLOCK] == 300


def test_reset_accounting_keeps_clock():
    core = Core(cid=0, numa_node=0)
    core.charge(100)
    core.reset_accounting()
    assert core.now == 100
    assert core.busy_cycles == 0
    assert not core.breakdown


def test_utilization():
    core = Core(cid=0, numa_node=0)
    core.charge(250)
    core.advance_to(1000)
    assert core.utilization(1000) == pytest.approx(0.25)
    assert core.utilization(0) == 0.0
    assert core.utilization(100) == 1.0  # clamped


def test_merge_breakdowns():
    a = Core(cid=0, numa_node=0)
    b = Core(cid=1, numa_node=0)
    a.charge(10, CAT_MEMCPY)
    b.charge(20, CAT_MEMCPY)
    b.charge(5, CAT_OTHER)
    merged = merge_breakdowns([a, b])
    assert merged[CAT_MEMCPY] == 30
    assert merged[CAT_OTHER] == 5


def test_categories_match_paper_figures():
    assert set(ALL_CATEGORIES) == {
        "copy mgmt", "spinlock", "invalidate iotlb",
        "iommu page table mgmt", "memcpy", "rx parsing",
        "copy_user", "other",
    }
