"""Machine topology tests."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.machine import Machine
from repro.sim.costmodel import CostModel


def test_default_topology_matches_testbed():
    """§6: dual-socket, 8 cores per socket, 2 NUMA domains."""
    m = Machine.build()
    assert m.num_cores == 16
    assert m.num_nodes == 2
    assert [c.numa_node for c in m.cores] == [0] * 8 + [1] * 8


def test_block_distribution_odd():
    m = Machine.build(cores=6, numa_nodes=2)
    assert [c.numa_node for c in m.cores] == [0, 0, 0, 1, 1, 1]


def test_single_node():
    m = Machine.build(cores=3, numa_nodes=1)
    assert all(c.numa_node == 0 for c in m.cores)
    assert len(m.nodes[0].cores) == 3


def test_invalid_configs():
    with pytest.raises(ConfigurationError):
        Machine.build(cores=0)
    with pytest.raises(ConfigurationError):
        Machine.build(cores=2, numa_nodes=3)
    with pytest.raises(ConfigurationError):
        Machine.build(cores=2, numa_nodes=0)


def test_wall_clock_and_sync():
    m = Machine.build(cores=3, numa_nodes=1)
    m.core(0).charge(100)
    m.core(2).charge(400)
    assert m.wall_clock() == 400
    t = m.sync_clocks()
    assert t == 400
    assert all(c.now == 400 for c in m.cores)
    # Busy time was not affected by the idle sync.
    assert m.core(1).busy_cycles == 0


def test_sync_to_explicit_time():
    m = Machine.build(cores=2, numa_nodes=1)
    m.sync_clocks(1000)
    assert all(c.now == 1000 for c in m.cores)


def test_reset_accounting():
    m = Machine.build(cores=2, numa_nodes=1)
    m.core(0).charge(50)
    m.reset_accounting()
    assert m.core(0).busy_cycles == 0
    assert m.core(0).now == 50


def test_custom_cost_model():
    cost = CostModel(rx_parse_cycles=1)
    m = Machine.build(cores=1, numa_nodes=1, cost=cost)
    assert m.cost.rx_parse_cycles == 1


def test_node_of_core():
    m = Machine.build(cores=4, numa_nodes=2)
    assert m.node_of_core(0) == 0
    assert m.node_of_core(3) == 1


def test_memory_matches_nodes():
    m = Machine.build(cores=4, numa_nodes=2)
    assert m.memory.num_nodes == 2
