"""Every example in examples/ must run cleanly (quick smoke)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))

#: Heavier campaigns get longer (but still bounded) budgets.
TIMEOUTS = {"netperf_campaign.py": 240, "memcached_demo.py": 240}


def test_examples_are_present():
    assert len(EXAMPLES) >= 3, "the repository promises >= 3 examples"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, example)],
        capture_output=True, text=True,
        timeout=TIMEOUTS.get(example, 120),
        env={**os.environ, "REPRO_CORES": "2"},
    )
    assert result.returncode == 0, (
        f"{example} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example} produced no output"
