"""IOVA allocator tests: identity, Linux tree, EiovaR, magazines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, IovaExhaustedError
from repro.faults.injector import FaultInjector
from repro.faults.plan import SITE_IOVA_ALLOC, FaultPlan, SiteRule
from repro.hw.cpu import Core
from repro.hw.locks import SpinLock
from repro.iova.allocators import (
    _FIRST_PAGE,
    EiovaRAllocator,
    IdentityIovaAllocator,
    LinuxIovaAllocator,
    MagazineIovaAllocator,
)
from repro.sim.costmodel import CostModel
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE


@pytest.fixture
def cost():
    return CostModel()


@pytest.fixture
def core():
    return Core(cid=0, numa_node=0)


def test_identity_returns_physical_page(cost, core):
    alloc = IdentityIovaAllocator(cost)
    iova = alloc.alloc(2, core, pa=0x1234567000)
    assert iova == 0x1234567000
    alloc.free(iova, 2, core)
    assert core.busy_cycles > 0


def test_linux_ranges_do_not_overlap(cost, core):
    alloc = LinuxIovaAllocator(cost)
    spans = []
    for npages in (1, 3, 2, 5, 1):
        iova = alloc.alloc(npages, core, 0)
        size = npages << PAGE_SHIFT
        for s, e in spans:
            assert iova + size <= s or iova >= e
        spans.append((iova, iova + size))


def test_linux_iovas_in_lower_half(cost, core):
    alloc = LinuxIovaAllocator(cost)
    iova = alloc.alloc(1, core, 0)
    assert iova < (1 << 47)
    assert iova % PAGE_SIZE == 0


def test_linux_free_and_reuse(cost, core):
    alloc = LinuxIovaAllocator(cost)
    iova = alloc.alloc(4, core, 0)
    alloc.free(iova, 4, core)
    assert alloc.alloc(4, core, 0) == iova  # recycled exact-size range


def test_linux_double_free_rejected(cost, core):
    alloc = LinuxIovaAllocator(cost)
    iova = alloc.alloc(1, core, 0)
    alloc.free(iova, 1, core)
    with pytest.raises(IovaExhaustedError):
        alloc.free(iova, 1, core)


def test_linux_free_wrong_size_rejected(cost, core):
    alloc = LinuxIovaAllocator(cost)
    iova = alloc.alloc(2, core, 0)
    with pytest.raises(IovaExhaustedError):
        alloc.free(iova, 3, core)


def test_linux_zero_pages_rejected(cost, core):
    alloc = LinuxIovaAllocator(cost)
    with pytest.raises(ConfigurationError):
        alloc.alloc(0, core, 0)


def test_eiovar_caches_freed_ranges(cost, core):
    alloc = EiovaRAllocator(cost)
    iova = alloc.alloc(1, core, 0)
    alloc.free(iova, 1, core)
    again = alloc.alloc(1, core, 0)
    assert again == iova
    assert alloc.cache_hits == 1
    assert alloc.cache_misses == 1


def test_eiovar_distinct_sizes_distinct_buckets(cost, core):
    alloc = EiovaRAllocator(cost)
    a = alloc.alloc(1, core, 0)
    alloc.free(a, 1, core)
    b = alloc.alloc(2, core, 0)  # cache miss: different size class
    assert b != a
    assert alloc.cache_misses == 2


def test_magazine_no_duplicate_ranges(cost):
    """Regression: a magazine refill must hand out *distinct* ranges
    (an early bug returned the same range repeatedly)."""
    alloc = MagazineIovaAllocator(cost, num_cores=2)
    core = Core(cid=0, numa_node=0)
    iovas = [alloc.alloc(1, core, 0) for _ in range(200)]
    assert len(set(iovas)) == 200


def test_magazine_reuses_after_free(cost):
    alloc = MagazineIovaAllocator(cost, num_cores=2)
    core = Core(cid=0, numa_node=0)
    iova = alloc.alloc(1, core, 0)
    alloc.free(iova, 1, core)
    assert alloc.alloc(1, core, 0) == iova


def test_magazine_per_core_isolation(cost):
    alloc = MagazineIovaAllocator(cost, num_cores=2)
    a = Core(cid=0, numa_node=0)
    b = Core(cid=1, numa_node=0)
    ia = alloc.alloc(1, a, 0)
    ib = alloc.alloc(1, b, 0)
    assert ia != ib
    alloc.free(ia, 1, a)
    alloc.free(ib, 1, b)


def test_magazine_drain_on_overflow(cost):
    alloc = MagazineIovaAllocator(cost, num_cores=1, magazine_size=4)
    core = Core(cid=0, numa_node=0)
    iovas = [alloc.alloc(1, core, 0) for _ in range(12)]
    for iova in iovas:
        alloc.free(iova, 1, core)  # overflows the size-4 magazine
    # All ranges remain allocatable exactly once.
    again = [alloc.alloc(1, core, 0) for _ in range(12)]
    assert len(set(again)) == 12


def test_magazine_free_unknown_rejected(cost):
    alloc = MagazineIovaAllocator(cost, num_cores=1)
    core = Core(cid=0, numa_node=0)
    with pytest.raises(IovaExhaustedError):
        alloc.free(0x1000, 1, core)


def test_locked_allocators_serialize(cost):
    lock = SpinLock("iova", cost)
    alloc = LinuxIovaAllocator(cost, lock)
    a = Core(cid=0, numa_node=0)
    b = Core(cid=1, numa_node=0)
    alloc.alloc(1, a, 0)
    alloc.alloc(1, b, 0)
    assert lock.stats.acquisitions == 2
    assert b.now >= cost.iova_rbtree_cycles  # waited for a's hold


# ----------------------------------------------------------------------
# Long-run exhaustion regressions: recycled ranges must be reusable for
# *smaller* requests (split) and reassemblable for *larger* ones
# (coalesce), or mixed-size workloads exhaust the space even though most
# of it is free.
# ----------------------------------------------------------------------
def test_linux_splits_oversized_recycled_range(cost, core):
    alloc = LinuxIovaAllocator(cost)
    big = alloc.alloc(8, core, 0)
    alloc.free(big, 8, core)
    alloc._cursor = _FIRST_PAGE  # virgin space exhausted
    a = alloc.alloc(3, core, 0)
    b = alloc.alloc(5, core, 0)
    # Both carved from the recycled 8-page block, no overlap.
    assert {a, b} == {big, big + (3 << PAGE_SHIFT)}
    alloc.free(a, 3, core)
    alloc.free(b, 5, core)
    assert alloc.outstanding_ranges() == 0


def test_linux_coalesces_fragments_into_large_range(cost, core):
    alloc = LinuxIovaAllocator(cost)
    big = alloc.alloc(8, core, 0)
    alloc.free(big, 8, core)
    alloc._cursor = _FIRST_PAGE
    parts = [alloc.alloc(2, core, 0) for _ in range(4)]
    for i in (2, 0, 3, 1):  # free out of order: fragments are unsorted
        alloc.free(parts[i], 2, core)
    # Only coalescing the four 2-page fragments can satisfy this.
    assert alloc.alloc(8, core, 0) == big
    alloc.free(big, 8, core)
    assert alloc.outstanding_ranges() == 0


def test_linux_mixed_sizes_do_not_exhaust(cost, core):
    """Regression: with only exact-size recycling, a mixed-size workload
    in a bounded window exhausts even though most space is free."""
    alloc = LinuxIovaAllocator(cost)
    alloc._cursor = _FIRST_PAGE + 256  # bounded virgin window
    live = []
    for i in range(2000):
        if len(live) >= 8:
            iova, n = live.pop(i % len(live))
            alloc.free(iova, n, core)
        n = (i % 7) + 1
        live.append((alloc.alloc(n, core, 0), n))
    for iova, n in live:
        alloc.free(iova, n, core)
    assert alloc.outstanding_ranges() == 0


def test_eiovar_spills_cache_on_exhaustion(cost, core):
    """Regression: ranges parked in EiovaR's size buckets must be
    spillable back to the tree when a differently-sized request would
    otherwise exhaust."""
    alloc = EiovaRAllocator(cost)
    alloc._tree._cursor = _FIRST_PAGE + 8  # 8 virgin pages total
    a = alloc.alloc(4, core, 0)
    b = alloc.alloc(4, core, 0)
    alloc.free(a, 4, core)
    alloc.free(b, 4, core)
    # The whole space sits in the 4-page bucket; an 8-page request must
    # spill + coalesce it rather than raise.
    big = alloc.alloc(8, core, 0)
    alloc.free(big, 8, core)
    assert alloc.outstanding_ranges() == 0


def test_magazine_reclaims_parked_ranges_on_exhaustion(cost):
    """Regression: ranges parked in per-core magazines must be reclaimed
    when the depot runs dry, not stranded."""
    alloc = MagazineIovaAllocator(cost, num_cores=2, magazine_size=4)
    a = Core(cid=0, numa_node=0)
    b = Core(cid=1, numa_node=0)
    alloc._tree._cursor = _FIRST_PAGE + 8
    held = [alloc.alloc(1, a, 0) for _ in range(8)]  # space fully handed out
    for iova in held:
        alloc.free(iova, 1, a)  # parked in core 0's magazine
    # Core 1's magazine is empty and the depot is dry: only reclaiming
    # core 0's parked ranges can serve this.
    iova = alloc.alloc(1, b, 0)
    alloc.free(iova, 1, b)
    assert alloc.outstanding_ranges() == 0


@pytest.mark.parametrize("make", [
    lambda cost: LinuxIovaAllocator(cost),
    lambda cost: EiovaRAllocator(cost),
    lambda cost: MagazineIovaAllocator(cost, num_cores=1),
])
def test_injected_exhaustion_leaves_allocator_usable(cost, core, make):
    alloc = make(cost)
    inj = FaultInjector(FaultPlan(seed=1, rules={
        SITE_IOVA_ALLOC: SiteRule(at=(1,))}))
    inj.start()
    alloc.faults = inj
    with pytest.raises(IovaExhaustedError, match="injected"):
        alloc.alloc(1, core, 0)
    # No lock left held, no range leaked: the next cycle is clean.
    iova = alloc.alloc(1, core, 0)
    alloc.free(iova, 1, core)
    assert alloc.outstanding_ranges() == 0


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(1, 8)),
                    min_size=1, max_size=100))
def test_allocator_nonoverlap_property(ops):
    """Property: live ranges from any allocator never overlap, for any
    alloc/free interleaving."""
    cost = CostModel()
    core = Core(cid=0, numa_node=0)
    for alloc in (LinuxIovaAllocator(cost), EiovaRAllocator(cost),
                  MagazineIovaAllocator(cost, num_cores=1)):
        live = {}
        for do_alloc, npages in ops:
            if do_alloc:
                iova = alloc.alloc(npages, core, 0)
                size = npages << PAGE_SHIFT
                for o_iova, o_size in live.items():
                    assert iova + size <= o_iova or iova >= o_iova + o_size
                live[iova] = size
            elif live:
                iova, size = next(iter(live.items()))
                alloc.free(iova, size >> PAGE_SHIFT, core)
                del live[iova]
