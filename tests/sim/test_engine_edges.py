"""Scheduler edge cases: exceptions, mixed task kinds, tie-breaking."""

import pytest

from repro.hw.cpu import Core
from repro.sim.engine import UNIT_DONE, CoreTask, GeneratorTask, Scheduler


def _core(cid=0):
    return Core(cid=cid, numa_node=0)


def test_step_exception_propagates():
    def bad_step(core):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        Scheduler([CoreTask(core=_core(), step=bad_step)]).run()


def test_generator_exception_propagates():
    def gen(core):
        core.charge(10)
        yield
        raise ValueError("mid-stream failure")

    with pytest.raises(ValueError, match="mid-stream"):
        Scheduler([GeneratorTask(core=_core(), gen=gen(_core()))]).run()


def test_mixed_task_kinds_interleave():
    a, b = _core(0), _core(1)
    trace = []

    def step(core):
        trace.append(("step", core.cid))
        core.charge(100)
        return len([t for t in trace if t[0] == "step"]) < 3

    def gen(core):
        for i in range(3):
            trace.append(("gen", core.cid))
            core.charge(100)
            yield UNIT_DONE

    gen_task = GeneratorTask(core=b, gen=gen(b))
    Scheduler([CoreTask(core=a, step=step), gen_task]).run()
    assert gen_task.units_done == 3
    # Both task kinds made progress in alternation.
    kinds = [kind for kind, _ in trace[:4]]
    assert set(kinds) == {"step", "gen"}


def test_tie_break_is_fifo_stable():
    """Equal clocks resolve in insertion order (deterministic runs)."""
    cores = [_core(i) for i in range(3)]
    first_picks = []

    def make(core):
        def step(c):
            first_picks.append(c.cid)
            c.charge(10)
            return False
        return step

    Scheduler([CoreTask(core=c, step=make(c)) for c in cores]).run()
    assert first_picks == [0, 1, 2]


def test_empty_generator_is_fine():
    def gen(core):
        return
        yield  # pragma: no cover

    task = GeneratorTask(core=_core(), gen=gen(_core()))
    assert Scheduler([task]).run() == 1
    assert task.units_done == 0


def test_idle_only_generator():
    core = _core()

    def gen(c):
        c.advance_to(5000)
        yield UNIT_DONE

    Scheduler([GeneratorTask(core=core, gen=gen(core))]).run()
    assert core.now == 5000
    assert core.busy_cycles == 0
