"""Cost-model calibration tests.

These pin the constants the paper reports directly (§6, Figures 5/8):
a drifting cost model would silently invalidate every benchmark shape,
so the calibration points are asserted here.
"""

import pytest

from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.units import us_to_cycles


@pytest.fixture
def cost() -> CostModel:
    return CostModel()


def test_memcpy_1500B_matches_paper(cost):
    # Fig. 5a: copying a 1500 B ethernet packet costs ≈0.11 µs.
    us = cost.memcpy_cycles(1500) / 2400
    assert 0.09 <= us <= 0.14


def test_memcpy_64KB_matches_paper(cost):
    # Fig. 5b: the 64 KB TSO copy costs ≈4.65 µs.
    us = cost.memcpy_cycles(65536) / 2400
    assert 4.2 <= us <= 5.1


def test_memcpy_zero_and_negative(cost):
    assert cost.memcpy_cycles(0) == 0
    assert cost.memcpy_cycles(-5) == 0


def test_memcpy_monotonic(cost):
    values = [cost.memcpy_cycles(n) for n in (1, 64, 1500, 4096, 65536)]
    assert values == sorted(values)


def test_invalidation_idle_matches_paper(cost):
    # §6: a single-core IOTLB invalidation takes ≈0.61 µs.
    assert cost.iotlb_invalidation_latency(1) == us_to_cycles(0.61)


def test_invalidation_16core_matches_paper(cost):
    # Fig. 8a: ≈2.7 µs with 16 concurrent submitters.
    us = cost.iotlb_invalidation_latency(16) / 2400
    assert 2.3 <= us <= 3.1


def test_invalidation_concurrency_clamped(cost):
    assert (cost.iotlb_invalidation_latency(0)
            == cost.iotlb_invalidation_latency(1))


def test_invalidation_vs_copy_crossover(cost):
    """The paper's headline: copying 1500 B is ≈5.5× cheaper than an
    IOTLB invalidation (§6 'Single-core TCP throughput')."""
    ratio = cost.iotlb_invalidation_latency(1) / cost.memcpy_cycles(1500)
    assert 4.0 <= ratio <= 7.0


def test_pollution_small_copies_free(cost):
    assert cost.pollution_cycles(64) == 0
    assert cost.pollution_cycles(cost.pollution_free_bytes) == 0


def test_pollution_64KB_matches_paper(cost):
    # Fig. 5b discussion: ≈2 µs of extra "other" time from the 64 KB copy.
    us = cost.pollution_cycles(65536) / 2400
    assert 1.5 <= us <= 2.8


def test_page_table_costs_match_paper(cost):
    # Fig. 5a: identity± spend 0.17 µs/packet on page-table management.
    us = (cost.pt_map_cycles + cost.pt_unmap_cycles) / 2400
    assert 0.15 <= us <= 0.19


def test_pool_costs_match_paper(cost):
    # Fig. 5a: 0.02 µs of shadow-buffer management per packet.
    us = (cost.pool_acquire_cycles + cost.pool_release_cycles) / 2400
    assert 0.015 <= us <= 0.03


def test_deferred_parameters_match_linux(cost):
    # §2.2.1: flush after 250 invalidations or 10 ms.
    assert cost.deferred_batch_size == 250
    assert cost.deferred_timeout_cycles == us_to_cycles(10_000.0)


def test_cost_model_is_perturbable():
    custom = CostModel(memcpy_bytes_per_cycle=2.0)
    assert custom.memcpy_cycles(4096) > DEFAULT_COST_MODEL.memcpy_cycles(4096)
    # The default instance is untouched.
    assert DEFAULT_COST_MODEL.memcpy_bytes_per_cycle == 5.8


def test_us_helper(cost):
    assert cost.us(2400) == pytest.approx(1.0)
