"""Unit-conversion and page-arithmetic tests."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import units


def test_cycles_us_roundtrip():
    assert units.us_to_cycles(1.0) == 2400
    assert units.cycles_to_us(2400) == pytest.approx(1.0)


def test_seconds_conversions():
    assert units.seconds_to_cycles(1.0) == int(units.CPU_FREQ_HZ)
    assert units.cycles_to_seconds(units.CPU_FREQ_HZ) == pytest.approx(1.0)


def test_throughput_gbps():
    # 1 GB in 1 second of cycles = 8 Gb/s.
    cycles = units.seconds_to_cycles(1.0)
    assert units.throughput_gbps(10 ** 9, cycles) == pytest.approx(8.0)


def test_throughput_zero_window():
    assert units.throughput_gbps(1000, 0) == 0.0


def test_gbps_to_bytes_per_cycle():
    bpc = units.gbps_to_bytes_per_cycle(40.0)
    # 40 Gb/s = 5 GB/s over 2.4 GHz ≈ 2.083 B/cycle.
    assert bpc == pytest.approx(5e9 / 2.4e9)


def test_mss_derived_from_mtu():
    assert units.TCP_MSS == units.ETH_MTU - 40


def test_pages_spanned_basic():
    assert units.pages_spanned(0, 1) == 1
    assert units.pages_spanned(0, 4096) == 1
    assert units.pages_spanned(0, 4097) == 2
    assert units.pages_spanned(4095, 2) == 2
    assert units.pages_spanned(100, 0) == 0


def test_page_alignment():
    assert units.page_align_down(4097) == 4096
    assert units.page_align_up(4097) == 8192
    assert units.page_align_up(4096) == 4096
    assert units.page_align_down(0) == 0


@given(addr=st.integers(min_value=0, max_value=2 ** 40),
       size=st.integers(min_value=1, max_value=2 ** 20))
def test_pages_spanned_covers_range(addr, size):
    n = units.pages_spanned(addr, size)
    first = addr >> units.PAGE_SHIFT
    last = (addr + size - 1) >> units.PAGE_SHIFT
    assert n == last - first + 1
    assert 1 <= n <= size // units.PAGE_SIZE + 2


@given(addr=st.integers(min_value=0, max_value=2 ** 48))
def test_align_up_down_bracket(addr):
    down = units.page_align_down(addr)
    up = units.page_align_up(addr)
    assert down <= addr <= up
    assert down % units.PAGE_SIZE == 0
    assert up % units.PAGE_SIZE == 0
    assert up - down in (0, units.PAGE_SIZE)
