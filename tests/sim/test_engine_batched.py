"""Batched scheduling must be invisible: burst > 1 is an optimization,
never a behavior change.

``Scheduler.run(burst=1)`` is the classic pop-per-unit loop; any other
burst may only elide heap traffic.  These tests drive randomized
synthetic task sets (with deliberate clock ties) and real workloads
through both, asserting identical final core clocks, unit counts,
executed totals, exposure byte·cycles, and JSONL traces.
"""

import random

import pytest

import repro.sim.engine as engine
from repro.obs.context import Observability
from repro.obs.trace import EV_SCHED_STEP
from repro.sim.engine import CoreTask, GeneratorTask, Scheduler
from repro.hw.cpu import Core
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx

#: Coarse charge menu: small distinct values plus repeats so different
#: cores frequently land on *equal* clocks — the tie case where batching
#: must yield to the task with the older heap entry.
_CHARGES = (10, 10, 20, 30, 50, 50, 100)


def _random_tasks(seed: int, ncores: int):
    rng = random.Random(seed)
    tasks = []
    for cid in range(ncores):
        core = Core(cid=cid, numa_node=0)
        plan = [rng.choice(_CHARGES) for _ in range(rng.randint(5, 60))]

        def make_step(schedule):
            remaining = list(schedule)

            def step(c):
                c.charge(remaining.pop(0))
                return bool(remaining)
            return step

        tasks.append(CoreTask(core=core, step=make_step(plan),
                              name=f"core{cid}"))
    return tasks


def _run(seed: int, ncores: int, burst: int, max_units=None,
         capture: bool = False):
    obs = Observability.capture(trace_capacity=1 << 14) if capture else None
    tasks = _random_tasks(seed, ncores)
    sched = Scheduler(tasks, obs=obs)
    executed = sched.run(max_units=max_units, burst=burst)
    state = {
        "executed": executed,
        "clocks": [t.core.now for t in tasks],
        "busy": [t.core.busy_cycles for t in tasks],
        "units": [t.units_done for t in tasks],
    }
    if capture:
        state["trace"] = obs.tracer.to_jsonl()
    return state


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("ncores", [1, 2, 3, 8])
def test_batched_matches_stepwise(seed, ncores):
    reference = _run(seed, ncores, burst=1)
    for burst in (2, 7, engine.DEFAULT_BURST):
        assert _run(seed, ncores, burst=burst) == reference


@pytest.mark.parametrize("seed", range(4))
def test_batched_traces_are_identical(seed):
    reference = _run(seed, 4, burst=1, capture=True)
    batched = _run(seed, 4, burst=engine.DEFAULT_BURST, capture=True)
    assert batched == reference
    assert EV_SCHED_STEP in reference["trace"]


@pytest.mark.parametrize("max_units", [1, 5, 7, 12, 100])
def test_batched_max_units_never_overruns(max_units):
    reference = _run(3, 3, burst=1, max_units=max_units, capture=True)
    batched = _run(3, 3, burst=5, max_units=max_units, capture=True)
    assert batched == reference
    assert batched["executed"] == min(max_units, reference["executed"])


def test_sched_step_events_stay_per_unit_in_a_burst():
    """Inside one burst every unit still emits its own ``sched.step``
    with accurate ``ran_cycles``/``units`` — the fields must never be
    aggregated over the burst."""
    core = Core(cid=0, numa_node=0)
    charges = [10, 20, 30, 40]
    remaining = list(charges)

    def step(c):
        c.charge(remaining.pop(0))
        return bool(remaining)

    obs = Observability.capture(trace_capacity=64)
    Scheduler([CoreTask(core=core, step=step)], obs=obs).run(burst=16)
    steps = obs.tracer.events(EV_SCHED_STEP)
    assert [e.data["ran_cycles"] for e in steps] == charges
    assert [e.data["units"] for e in steps] == [1, 2, 3, 4]


def test_generator_interleaving_unchanged_by_batching():
    """Equal-clock generator tasks must still alternate segment-by-
    segment: a tie always hands the other (older-entry) task the next
    segment, so a burst never runs two same-clock segments back to back."""
    trace = []

    def gen(c):
        for i in range(4):
            c.charge(100)
            trace.append((c.cid, i))
            yield

    a, b = Core(cid=0, numa_node=0), Core(cid=1, numa_node=0)
    Scheduler([GeneratorTask(core=a, gen=gen(a)),
               GeneratorTask(core=b, gen=gen(b))]).run(
        burst=engine.DEFAULT_BURST)
    rounds = [sorted(trace[i:i + 2]) for i in range(0, len(trace), 2)]
    assert rounds == [[(0, i), (1, i)] for i in range(4)]


@pytest.mark.parametrize("cores", [1, 4])
def test_real_workload_identical_across_bursts(monkeypatch, cores):
    """The full RX path (strict scheme: locks, invalidation hardware,
    exposure accounting) is cycle-, exposure-, and trace-identical when
    the scheduler batches."""
    cfg = dict(scheme="identity-strict", direction="rx", cores=cores,
               message_size=16384, units_per_core=40, warmup_units=10)

    def capture_run():
        obs = Observability.capture(trace_capacity=1 << 12)
        result = run_tcp_stream_rx(StreamConfig(**cfg, obs=obs))
        return result, obs

    monkeypatch.setattr(engine, "DEFAULT_BURST", 1)
    stepwise, obs_stepwise = capture_run()
    monkeypatch.setattr(engine, "DEFAULT_BURST", 64)
    batched, obs_batched = capture_run()

    assert batched.wall_cycles == stepwise.wall_cycles
    assert batched.busy_cycles == stepwise.busy_cycles
    assert batched.breakdown_cycles == stepwise.breakdown_cycles
    assert batched.units == stepwise.units
    assert obs_batched.exposure.summary() == obs_stepwise.exposure.summary()
    assert obs_batched.tracer.to_jsonl() == obs_stepwise.tracer.to_jsonl()


def test_burst_must_be_positive():
    core = Core(cid=0, numa_node=0)
    sched = Scheduler([CoreTask(core=core, step=lambda c: False)])
    with pytest.raises(engine.SimulationError):
        sched.run(burst=0)
