"""Scheduler / task-interleaving tests."""

import pytest

from repro.errors import SimulationError
from repro.hw.cpu import Core
from repro.obs.context import Observability
from repro.obs.trace import EV_SCHED_STEP
from repro.sim.engine import (
    UNIT_DONE,
    CoreTask,
    GeneratorTask,
    Scheduler,
    run_per_core,
)


def _cores(n):
    return [Core(cid=i, numa_node=0) for i in range(n)]


def test_min_clock_ordering():
    """The core with the smallest clock always runs next."""
    a, b = _cores(2)
    order = []

    def make(core, cycles):
        def step(c):
            order.append(c.cid)
            c.charge(cycles)
            return len(order) < 6
        return step

    # Core 0 is 3× slower, so core 1 should run ~3 steps per core-0 step.
    Scheduler([CoreTask(core=a, step=make(a, 300)),
               CoreTask(core=b, step=make(b, 100))]).run()
    # First two picks are at clock 0 (tie) then clock order dominates.
    assert order.count(1) > order.count(0)


def test_tasks_exhaust():
    a, b = _cores(2)
    counts = {0: 0, 1: 0}

    def make(core, limit):
        def step(c):
            counts[c.cid] += 1
            c.charge(10)
            return counts[c.cid] < limit
        return step

    executed = Scheduler([CoreTask(core=a, step=make(a, 5)),
                          CoreTask(core=b, step=make(b, 3))]).run()
    assert executed == 8
    assert counts == {0: 5, 1: 3}


def test_max_units_cap():
    (a,) = _cores(1)
    sched = Scheduler([CoreTask(core=a, step=lambda c: True)])
    assert sched.run(max_units=7) == 7


def test_duplicate_core_rejected():
    (a,) = _cores(1)
    with pytest.raises(SimulationError):
        Scheduler([CoreTask(core=a, step=lambda c: True),
                   CoreTask(core=a, step=lambda c: True)])


def test_empty_scheduler_rejected():
    with pytest.raises(SimulationError):
        Scheduler([])


def test_generator_task_counts_units():
    (a,) = _cores(1)

    def gen(c):
        for _ in range(3):
            c.charge(5)
            yield            # segment boundary, not a unit
            c.charge(5)
            yield UNIT_DONE  # one unit done

    task = GeneratorTask(core=a, gen=gen(a))
    Scheduler([task]).run()
    assert task.units_done == 3
    assert a.now == 30


def test_generator_interleaves_between_yields():
    """Two generator tasks interleave segment-by-segment, keeping clocks
    close — the property the lock model depends on."""
    a, b = _cores(2)
    trace = []

    def gen(c):
        for i in range(4):
            c.charge(100)
            trace.append((c.cid, i))
            yield

    Scheduler([GeneratorTask(core=a, gen=gen(a)),
               GeneratorTask(core=b, gen=gen(b))]).run()
    # Strict alternation: after each yield the other core (equal clock)
    # gets to run its next segment.
    rounds = [sorted(trace[i:i + 2]) for i in range(0, len(trace), 2)]
    assert rounds == [[(0, i), (1, i)] for i in range(4)]


def test_run_per_core_helper():
    cores = _cores(3)
    done = {c.cid: 0 for c in cores}

    def make_step(core):
        def step(c):
            done[c.cid] += 1
            c.charge(1)
            return done[c.cid] < 2
        return step

    sched = run_per_core(cores, make_step)
    assert all(task.units_done == 2 for task in sched.tasks)


def test_run_per_core_forwards_observability():
    """Regression: ``run_per_core`` used to build its Scheduler without
    the caller's context, silently dropping spans and sched-step events."""
    cores = _cores(2)
    obs = Observability.capture(trace_capacity=64)

    def make_step(core):
        def step(c):
            c.charge(10)
            return False
        return step

    sched = run_per_core(cores, make_step, obs=obs)
    assert sched.obs is obs
    steps = obs.tracer.events(EV_SCHED_STEP)
    assert len(steps) == 2
    assert obs.spans.closed == 2
