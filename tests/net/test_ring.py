"""Descriptor-ring tests: driver side, device side, wraparound."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.ring import DESC_SIZE, FLAG_DONE, FLAG_READY, Descriptor, DescriptorRing


@pytest.fixture
def ring(machine, make_api):
    api = make_api("copy")
    core = machine.core(0)
    r = DescriptorRing(machine, api, core, entries=8, name="t")
    yield r, api, core


def test_ring_lives_in_coherent_memory(ring):
    r, api, core = ring
    assert r.coherent.size == 8 * DESC_SIZE
    assert api.stats.coherent_allocs >= 1


def test_post_and_reap(ring):
    r, api, core = ring
    idx = r.post(Descriptor(addr=0x1000, length=100, flags=FLAG_READY))
    assert r.outstanding == 1
    assert r.reap() is None  # not completed yet
    r.write_descriptor(idx, Descriptor(addr=0x1000, length=100,
                                       flags=FLAG_DONE))
    reaped = r.reap()
    assert reaped is not None
    assert reaped[0] == idx
    assert r.outstanding == 0


def test_reap_empty(ring):
    r, _, _ = ring
    assert r.reap() is None


def test_wraparound(ring):
    r, _, _ = ring
    for round_ in range(3):
        for i in range(8):
            idx = r.post(Descriptor(addr=i, length=1, flags=FLAG_READY))
            r.write_descriptor(idx, Descriptor(addr=i, length=1,
                                               flags=FLAG_DONE))
            got = r.reap()
            assert got[1].addr == i


def test_overflow_rejected(ring):
    r, _, _ = ring
    for i in range(8):
        r.post(Descriptor(addr=i, length=1, flags=FLAG_READY))
    with pytest.raises(SimulationError):
        r.post(Descriptor(addr=9, length=1, flags=FLAG_READY))


def test_device_reads_through_port(ring):
    r, api, core = ring
    idx = r.post(Descriptor(addr=0xabcd000, length=42, flags=FLAG_READY))
    desc = r.device_read(api.port(), idx)
    assert desc.addr == 0xabcd000
    assert desc.length == 42
    assert desc.ready


def test_device_writeback_visible_to_driver(ring):
    r, api, core = ring
    idx = r.post(Descriptor(addr=1, length=2, flags=FLAG_READY))
    r.device_write_back(api.port(), idx,
                        Descriptor(addr=1, length=2, flags=FLAG_DONE))
    reaped = r.reap()
    assert reaped is not None and reaped[1].done


def test_ring_size_validation(machine, make_api):
    api = make_api("copy")
    core = machine.core(0)
    with pytest.raises(ConfigurationError):
        DescriptorRing(machine, api, core, entries=3)
    with pytest.raises(ConfigurationError):
        DescriptorRing(machine, api, core, entries=1)


def test_ring_free(machine, make_api):
    api = make_api("copy")
    core = machine.core(0)
    r = DescriptorRing(machine, api, core, entries=4)
    r.free(core)


def test_descriptor_flags():
    d = Descriptor(addr=0, length=0, flags=FLAG_READY | FLAG_DONE)
    assert d.ready and d.done
    assert not Descriptor(addr=0, length=0, flags=0).ready
