"""Property-based fuzzing of the full driver datapath.

Hypothesis drives random interleavings of RX deliveries and TX sends over
randomly chosen protection schemes and checks the invariants that must
hold regardless: every delivered byte arrives intact, mappings never
leak, the shadow pool's rights invariant holds, and teardown leaves the
DMA API empty.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net.packets import build_frame, max_payload
from repro.system import System, SystemConfig

SCHEMES = ("copy", "identity-strict", "identity-deferred", "no-iommu",
           "magazine-deferred", "swiotlb")

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("rx"), st.integers(0, max_payload())),
        st.tuples(st.just("tx"), st.integers(1, 65536)),
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scheme=st.sampled_from(SCHEMES), ops=op_strategy,
       seed=st.integers(0, 2 ** 16))
def test_driver_datapath_invariants(scheme, ops, seed):
    system = System.build(SystemConfig(scheme=scheme, cores=2,
                                       rx_ring_size=32, tx_ring_size=32,
                                       keep_frames=True))
    system.setup_queues()
    core = system.machine.core(0)
    rx_count = tx_count = 0
    for kind, size in ops:
        if kind == "rx":
            payload = bytes((seed + i) % 256 for i in range(size))
            frame = build_frame(size, payload=payload)
            got = system.driver.receive_one(core, 0, frame)
            assert got == size
            rx_count += 1
        else:
            payload = bytes((seed + i) % 251 for i in range(min(size, 512)))
            system.driver.transmit_one(core, 0, size,
                                       payload=payload)
            # The wire saw exactly what we queued (prefix check).
            sent = system.nic.tx_log(0)[-1]
            assert len(sent) == size
            assert sent[:len(payload)] == payload
            tx_count += 1

    assert system.driver.stats.rx_packets == rx_count
    assert system.driver.stats.tx_chunks == tx_count
    # Only posted RX buffers remain mapped (two queues were set up).
    posted = 2 * (system.config.rx_ring_size - 1)
    assert system.dma_api.live_mappings == posted
    pool = getattr(system.dma_api, "pool", None)
    if pool is not None:
        assert pool.check_page_rights_invariant()
        assert pool.stats.in_flight == posted
    system.teardown_queues()
    assert system.dma_api.live_mappings == 0
    if system.iommu is not None:
        assert not system.iommu.faults, "no DMA may fault in normal operation"
