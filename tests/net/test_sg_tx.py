"""Scatter-gather transmit tests (multi-descriptor packets, EOP framing)."""

import pytest

from repro.dma.registry import FIGURE_SCHEMES
from repro.hw.cpu import CAT_INVALIDATE, CAT_MEMCPY
from repro.net.driver import NicDriver
from repro.net.nic import Nic
from repro.system import System, SystemConfig


def _system(scheme, **kw):
    system = System.build(SystemConfig(scheme=scheme, cores=1,
                                       rx_ring_size=32, tx_ring_size=64,
                                       keep_frames=True, **kw))
    system.setup_queues()
    return system


@pytest.mark.parametrize("scheme", FIGURE_SCHEMES)
def test_sg_payload_reassembled_on_wire(scheme):
    system = _system(scheme)
    core = system.machine.core(0)
    payload = bytes(range(256)) * 40  # 10 240 B — 3 pages
    buf = system.allocators.kmalloc(len(payload), node=0, core=core)
    system.machine.memory.write(buf.pa, payload)
    n = system.driver.send_chunk_sg(core, 0, buf)
    assert n == 3
    system.nic.transmit_pending(0)
    system.driver.reap_tx(core, 0)
    assert system.nic.tx_log(0)[-1] == payload
    assert system.nic.stats.tx_frames == 1  # one packet, three elements
    system.teardown_queues()
    assert system.dma_api.live_mappings == 0


def test_sg_unaligned_buffer_splits_at_page_boundaries():
    from repro.kalloc.slab import KBuffer

    system = _system("no-iommu")
    core = system.machine.core(0)
    backing = system.allocators.kmalloc(16384, node=0, core=core)
    buf = KBuffer(pa=backing.pa + 1000, size=6000, node=0)
    system.machine.memory.write(buf.pa, b"z" * 6000)
    n = system.driver.send_chunk_sg(core, 0, buf, free_buffer=False)
    # 1000-byte offset: elements of 3096 + 2904 bytes... (page splits).
    assert n == 2
    system.nic.transmit_pending(0)
    system.driver.reap_tx(core, 0)
    assert system.nic.tx_log(0)[-1] == b"z" * 6000
    system.allocators.kfree(backing, core)
    system.teardown_queues()


def test_sg_strict_pays_per_element_invalidations():
    system = _system("identity-strict")
    core = system.machine.core(0)
    inv = system.iommu.invalidation_queue
    buf = system.allocators.kmalloc(16384, node=0, core=core)  # 4 pages
    before = inv.sync_invalidations
    system.driver.send_chunk_sg(core, 0, buf)
    system.nic.transmit_pending(0)
    system.driver.reap_tx(core, 0)
    # One ranged invalidation per SG element unmap.
    assert inv.sync_invalidations - before == 4
    system.teardown_queues()


def test_sg_copy_copies_each_element():
    system = _system("copy")
    core = system.machine.core(0)
    buf = system.allocators.kmalloc(16384, node=0, core=core)
    memcpy_before = core.breakdown.get(CAT_MEMCPY, 0)
    system.driver.send_chunk_sg(core, 0, buf)
    copied = core.breakdown[CAT_MEMCPY] - memcpy_before
    # Total bytes copied ≈ the chunk, split over 4 element memcpys.
    expected = 4 * system.cost.memcpy_cycles(4096)
    assert copied == pytest.approx(expected, rel=0.05)
    assert core.breakdown.get(CAT_INVALIDATE, 0) == 0
    system.nic.transmit_pending(0)
    system.driver.reap_tx(core, 0)
    system.teardown_queues()


def test_interleaved_single_and_sg_sends():
    system = _system("copy")
    core = system.machine.core(0)
    a = system.allocators.kmalloc(2000, node=0, core=core)
    system.machine.memory.write(a.pa, b"A" * 2000)
    big = system.allocators.kmalloc(9000, node=0, core=core)
    system.machine.memory.write(big.pa, b"B" * 9000)
    system.driver.send_chunk(core, 0, a, free_buffer=False)
    system.driver.send_chunk_sg(core, 0, big, free_buffer=False)
    system.nic.transmit_pending(0)
    system.driver.reap_tx(core, 0)
    log = system.nic.tx_log(0)
    assert log[-2] == b"A" * 2000
    assert log[-1] == b"B" * 9000
    system.allocators.kfree(a, core)
    system.allocators.kfree(big, core)
    system.teardown_queues()


def test_sg_parent_buffer_freed_on_completion():
    system = _system("no-iommu")
    core = system.machine.core(0)
    slab = system.allocators.slabs[0]
    live_before = slab.live_allocations
    buf = system.allocators.kmalloc(8192, node=0, core=core)
    system.driver.send_chunk_sg(core, 0, buf, free_buffer=True)
    system.nic.transmit_pending(0)
    system.driver.reap_tx(core, 0)
    assert slab.live_allocations == live_before
    system.teardown_queues()
