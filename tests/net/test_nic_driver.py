"""NIC model + driver tests, over multiple protection schemes."""

import pytest

from repro.dma.registry import FIGURE_SCHEMES
from repro.errors import SimulationError
from repro.net.driver import NicDriver
from repro.net.nic import Nic
from repro.net.packets import build_frame


@pytest.fixture(params=FIGURE_SCHEMES)
def stack(request, machine, allocators, make_api):
    api = make_api(request.param)
    nic = Nic(device_id=1, port=api.port(), num_queues=2, keep_frames=True)
    driver = NicDriver(machine, allocators, api, nic,
                       rx_ring_size=32, tx_ring_size=32)
    core = machine.core(0)
    driver.setup_queue(core, 0)
    yield machine, api, nic, driver, core
    driver.teardown_queue(core, 0)
    assert api.live_mappings == 0


def test_rx_delivers_payload(stack):
    machine, api, nic, driver, core = stack
    frame = build_frame(777, seq=5)
    assert driver.receive_one(core, 0, frame) == 777
    assert nic.stats.rx_frames == 1
    assert driver.stats.rx_packets == 1
    assert driver.stats.rx_bytes == len(frame)


def test_rx_many_recycles_ring(stack):
    machine, api, nic, driver, core = stack
    frame = build_frame(1000)
    for _ in range(100):  # > ring size: exercises refill/wraparound
        assert driver.receive_one(core, 0, frame) == 1000
    assert nic.stats.rx_drops_no_descriptor == 0


def test_rx_oversized_frame_dropped(stack):
    machine, api, nic, driver, core = stack
    giant = build_frame(4000, mtu=8000)  # larger than the 2 KB RX buffer
    assert driver.receive_one(core, 0, giant) is None
    assert nic.stats.rx_drops_too_big == 1


def test_rx_unconfigured_queue_rejected(stack):
    machine, api, nic, driver, core = stack
    with pytest.raises(SimulationError):
        driver.receive_one(core, 1, build_frame(10))


def test_tx_transmits_with_tso(stack):
    machine, api, nic, driver, core = stack
    segments = driver.transmit_one(core, 0, 65536)
    assert segments == 44  # ceil(65536 / 1500)
    assert nic.stats.tx_bytes == 65536
    assert driver.stats.tx_chunks == 1


def test_tx_payload_reaches_wire(stack):
    machine, api, nic, driver, core = stack
    payload = bytes(range(256)) * 8
    driver.transmit_one(core, 0, len(payload), payload=payload)
    assert nic.tx_log(0)[-1] == payload


def test_tx_small_chunk_single_segment(stack):
    machine, api, nic, driver, core = stack
    assert driver.transmit_one(core, 0, 200) == 1


def test_tx_oversized_descriptor_rejected(stack):
    """A descriptor beyond the NIC's TSO limit is a driver bug the device
    model refuses (before issuing any DMA)."""
    from repro.net.ring import Descriptor, FLAG_READY

    machine, api, nic, driver, core = stack
    ring = driver._tx_rings[0]
    idx = ring.post(Descriptor(addr=0x1000, length=100_000,
                               flags=FLAG_READY))
    with pytest.raises(SimulationError):
        nic.transmit_pending(0)
    # Remove the poisoned descriptor so teardown stays clean.
    ring.write_descriptor(idx, Descriptor(addr=0x1000, length=0, flags=0))
    ring.tail -= 1
    nic._queues[0].tx_next = ring.tail


def test_nic_requires_rings():
    nic = Nic(device_id=1, port=None, num_queues=1)
    with pytest.raises(SimulationError):
        nic.receive_frame(0, b"x")
    with pytest.raises(SimulationError):
        nic.transmit_pending(0)


def test_nic_unknown_queue():
    nic = Nic(device_id=1, port=None, num_queues=1)
    with pytest.raises(SimulationError):
        nic.receive_frame(5, b"x")


def test_nic_needs_positive_queues():
    with pytest.raises(SimulationError):
        Nic(device_id=1, port=None, num_queues=0)


def test_rx_ring_exhaustion_drops(machine, allocators, make_api):
    api = make_api("no-iommu")
    nic = Nic(device_id=9, port=api.port(), num_queues=1)
    driver = NicDriver(machine, allocators, api, nic,
                       rx_ring_size=4, tx_ring_size=4)
    core = machine.core(0)
    driver.setup_queue(core, 0)
    # Deliver without driver-side processing: exhaust the 3 posted buffers.
    frame = build_frame(100)
    for _ in range(3):
        assert nic.receive_frame(0, frame)
    assert not nic.receive_frame(0, frame)
    assert nic.stats.rx_drops_no_descriptor == 1
    # Drain so teardown sees no surprises.
    for _ in range(3):
        ring = driver._rx_rings[0]
        item = ring.reap()
        idx, _ = item
        slot = driver._rx_slots[0].pop(idx)
        api.dma_unmap(core, slot.handle)
        allocators.buddies[0].free_pages(slot.buf.pa, core)
    driver.teardown_queue(core, 0)


def test_large_rx_buffers_for_lro(machine, allocators, make_api):
    api = make_api("copy")
    nic = Nic(device_id=9, port=api.port(), num_queues=1)
    driver = NicDriver(machine, allocators, api, nic,
                       rx_ring_size=8, tx_ring_size=8, rx_buf_size=16384)
    core = machine.core(0)
    driver.setup_queue(core, 0)
    aggregate = build_frame(11000, mtu=12000)
    assert driver.receive_one(core, 0, aggregate) == 11000
    driver.teardown_queue(core, 0)
