"""Frame construction/parsing tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.net.packets import (
    HEADERS_LEN,
    build_frame,
    max_payload,
    parse_frame,
    segment_payload,
)
from repro.sim.units import ETH_MTU, TCP_MSS


def test_build_parse_roundtrip():
    frame = build_frame(500, src_port=1111, dst_port=2222, seq=42)
    parsed = parse_frame(frame)
    assert parsed.payload_len == 500
    assert parsed.src_port == 1111
    assert parsed.dst_port == 2222
    assert parsed.seq == 42
    assert parsed.frame_len == len(frame)


def test_header_length():
    assert len(build_frame(0)) == HEADERS_LEN == 54


def test_max_payload_is_mss():
    assert max_payload() == TCP_MSS == ETH_MTU - 40


def test_payload_bytes_carried():
    payload = bytes(range(200))
    frame = build_frame(200, payload=payload)
    assert frame[-200:] == payload


def test_payload_length_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        build_frame(10, payload=b"longer than ten bytes")


def test_oversized_payload_rejected():
    with pytest.raises(ConfigurationError):
        build_frame(max_payload() + 1)


def test_custom_mtu_allows_lro_aggregates():
    big = build_frame(10_000, mtu=16384)
    assert parse_frame(big).payload_len == 10_000


def test_parse_runt_rejected():
    with pytest.raises(ConfigurationError):
        parse_frame(b"short")


def test_parse_wrong_ethertype_rejected():
    frame = bytearray(build_frame(10))
    frame[12:14] = b"\x86\xdd"  # IPv6
    with pytest.raises(ConfigurationError):
        parse_frame(bytes(frame))


def test_segment_payload():
    assert segment_payload(0) == []
    assert segment_payload(100) == [100]
    assert segment_payload(TCP_MSS) == [TCP_MSS]
    assert segment_payload(TCP_MSS + 1) == [TCP_MSS, 1]
    assert segment_payload(10 * TCP_MSS) == [TCP_MSS] * 10


def test_segment_negative_rejected():
    with pytest.raises(ConfigurationError):
        segment_payload(-1)


@given(total=st.integers(0, 10 ** 7))
def test_segment_conservation(total):
    sizes = segment_payload(total)
    assert sum(sizes) == total
    assert all(0 < s <= TCP_MSS for s in sizes)
    # Only the final segment may be partial.
    assert all(s == TCP_MSS for s in sizes[:-1])


@given(size=st.integers(0, max_payload()))
def test_build_parse_property(size):
    assert parse_frame(build_frame(size)).payload_len == size
