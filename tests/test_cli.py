"""CLI tests (python -m repro ...)."""

import json

import pytest

from repro.bench.record import SCHEMA_VERSION
from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


def test_schemes_lists_everything(capsys):
    code, out = run_cli(capsys, "schemes")
    assert code == 0
    for name in ("no-iommu", "copy", "identity-strict", "swiotlb",
                 "self-invalidating"):
        assert name in out


def test_audit_all(capsys):
    code, out = run_cli(capsys, "audit")
    assert code == 0
    assert "copy (shadow buffers)" in out
    assert "match the schemes' claims" in out


def test_audit_single_scheme(capsys):
    code, out = run_cli(capsys, "audit", "--scheme", "identity-")
    assert code == 0
    assert "identity-" in out


def test_audit_exposure_report(capsys):
    code, out = run_cli(capsys, "audit", "--exposure")
    assert code == 0
    assert "Exposure report" in out
    assert "stale B*cyc" in out
    # Schemes with no IOMMU domain render as unprotected.
    assert "device reach not bounded by translation" in out
    # The deferred scheme's stale window is a positive number; copy's
    # row is all zeros for stale and excess.
    report = out[out.index("Exposure report"):]
    deferred = copy_row = None
    for line in report.splitlines():
        if line.startswith("identity- (deferred"):
            deferred = line.split()
        if line.startswith("copy (shadow buffers)"):
            copy_row = line.split()
    assert deferred is not None and copy_row is not None
    assert int(deferred[-7]) > 0               # stale B*cyc column
    assert copy_row[-7] == "0" and copy_row[-4] == "0"


def test_stream_rx(capsys):
    code, out = run_cli(capsys, "stream", "--scheme", "copy",
                        "--size", "16384", "--units", "150")
    assert code == 0
    assert "Gb/s" in out
    assert "tcp_stream_rx" in out
    assert "shadow pool" in out


def test_stream_tx_with_alias(capsys):
    code, out = run_cli(capsys, "stream", "--scheme", "identity+",
                        "--direction", "tx", "--size", "65536",
                        "--units", "100")
    assert code == 0
    assert "tcp_stream_tx" in out
    assert "invalidations" in out


def test_rr(capsys):
    code, out = run_cli(capsys, "rr", "--scheme", "no-iommu",
                        "--size", "64", "--transactions", "50")
    assert code == 0
    assert "mean latency" in out


def test_memcached(capsys):
    code, out = run_cli(capsys, "memcached", "--scheme", "copy",
                        "--cores", "2", "--transactions", "80")
    assert code == 0
    assert "transactions/s" in out


def test_storage(capsys):
    code, out = run_cli(capsys, "storage", "--scheme", "copy",
                        "--block-size", "262144", "--ops", "60")
    assert code == 0
    assert "transactions/s" in out


def test_stream_json_to_file(capsys, tmp_path):
    out_path = tmp_path / "run.json"
    code, out = run_cli(capsys, "stream", "--scheme", "copy",
                        "--size", "16384", "--units", "120",
                        "--json", str(out_path))
    assert code == 0
    assert "Gb/s" in out                  # human output stays
    record = json.loads(out_path.read_text())
    assert record["schema_version"] == SCHEMA_VERSION
    (row,) = record["figures"]["single"]["series"]
    assert row["scheme"] == "copy"
    assert row["workload"] == "tcp_stream_rx"
    assert row["throughput_gbps"] > 0
    # Spans ride along under the scheme's name.
    spans = record["figures"]["single"]["spans"]["copy"]
    assert any(c["name"] == "step" for c in spans["children"])


def test_rr_json_to_stdout_is_pure_json(capsys):
    code, out = run_cli(capsys, "rr", "--scheme", "no-iommu",
                        "--size", "64", "--transactions", "40",
                        "--json", "-")
    assert code == 0
    record = json.loads(out)              # nothing but the record
    (row,) = record["figures"]["single"]["series"]
    assert row["workload"] == "tcp_rr"
    assert row["latency_us"] is not None


def test_json_identical_numbers_to_plain_run(capsys, tmp_path):
    """--json enables capture; the zero-overhead guarantee means the
    recorded numbers match an instrumentation-free run exactly."""
    code, plain = run_cli(capsys, "storage", "--scheme", "copy",
                          "--block-size", "4096", "--ops", "50")
    assert code == 0
    out_path = tmp_path / "st.json"
    code, _ = run_cli(capsys, "storage", "--scheme", "copy",
                      "--block-size", "4096", "--ops", "50",
                      "--json", str(out_path))
    assert code == 0
    (row,) = json.loads(out_path.read_text())["figures"]["single"]["series"]
    assert f"{row['throughput_gbps']:.2f} Gb/s" in plain


def test_json_fails_fast_on_unwritable_path(capsys):
    with pytest.raises(SystemExit) as err:
        main(["memcached", "--cores", "2", "--transactions", "40",
              "--json", "/nonexistent-dir/x.json"])
    assert "cannot write json" in str(err.value)


def test_bench_parser_accepts_gate_flags():
    args = build_parser().parse_args(
        ["bench", "--quick", "--only", "fig03", "--only", "fig08",
         "--baseline", "b.json", "--out", "/tmp/x"])
    assert args.quick and not args.full
    assert args.only == ["fig03", "fig08"]
    assert args.baseline == "b.json"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench", "--quick", "--full"])


def test_bench_unknown_figure_fails_fast_with_choices(capsys):
    """``bench --only <typo>`` must die before running anything, and
    the error must name every valid figure."""
    from repro.bench.runner import FIGURE_NAMES

    with pytest.raises(SystemExit) as err:
        main(["bench", "--quick", "--only", "fig99"])
    message = str(err.value)
    assert "unknown figure" in message
    assert "fig99" in message
    for name in FIGURE_NAMES:
        assert name in message


def test_trace_prints_request_story(capsys, tmp_path):
    perfetto_path = tmp_path / "trace.json"
    code, out = run_cli(capsys, "trace", "--workload", "stream",
                        "--scheme", "identity+", "--cores", "2",
                        "--units", "40", "--requests",
                        "--tail", "p99",
                        "--perfetto", str(perfetto_path))
    assert code == 0
    assert "== requests ==" in out
    assert "== tail latency ==" in out
    assert "dominant stage:" in out
    assert "request #" in out             # --requests timelines
    assert "lock_wait" in out
    trace = json.loads(perfetto_path.read_text())
    assert trace["traceEvents"]
    assert trace["otherData"]["requests_exported"] > 0


def test_trace_storage_workload(capsys):
    code, out = run_cli(capsys, "trace", "--workload", "storage",
                        "--scheme", "copy", "--size", "4096",
                        "--units", "50")
    assert code == 0
    assert "storage" in out
    assert "== tail latency ==" in out


def test_trace_rejects_bad_percentile():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "--tail", "p200"])


def test_report_parser_flags():
    args = build_parser().parse_args(
        ["report", "--only", "fig03", "--out", "/tmp/r.md",
         "--tail", "p99.9"])
    assert args.only == ["fig03"]
    assert args.out == "/tmp/r.md"
    assert args.tail == 99.9


def test_unknown_scheme_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["stream", "--scheme", "bogus"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ----------------------------------------------------------------------
# chaos subcommand + exit-code mapping.
# ----------------------------------------------------------------------
def test_chaos_single_mix(capsys):
    code, out = run_cli(capsys, "chaos", "--seed", "1", "--mix", "device",
                        "--schemes", "copy", "--units", "30")
    assert code == 0
    assert "copy" in out
    assert "0 invariant failure(s)" in out


def test_chaos_custom_plan(capsys):
    code, out = run_cli(capsys, "chaos", "--seed", "2",
                        "--schemes", "identity-strict", "--units", "20",
                        "--plan", "inv.stall:rate=0.2")
    assert code == 0
    assert "custom" in out


def test_chaos_json_output(capsys):
    code, out = run_cli(capsys, "chaos", "--seed", "1", "--mix", "none",
                        "--schemes", "copy", "--units", "10",
                        "--json", "-")
    assert code == 0
    rows = json.loads(out)
    assert len(rows) == 1
    assert rows[0]["scheme"] == "copy"
    assert rows[0]["violations"] == []
    assert rows[0]["rx_offered"] == 10


def test_chaos_report_file(capsys, tmp_path):
    path = tmp_path / "chaos.txt"
    code, out = run_cli(capsys, "chaos", "--seed", "1", "--mix", "none",
                        "--schemes", "copy", "--units", "10",
                        "--report", str(path))
    assert code == 0
    assert str(path) in out
    assert "invariant failure(s)" in path.read_text()


def test_chaos_bad_plan_exits_with_config_code(capsys):
    code = main(["chaos", "--plan", "bogus.site:rate=0.5",
                 "--schemes", "copy", "--units", "10"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
    assert "unknown fault site" in captured.err
    assert "Traceback" not in captured.err


def test_chaos_bad_scheme_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chaos", "--schemes"])


def test_chaos_empty_scheme_list_exits_with_config_code(capsys):
    code = main(["chaos", "--schemes", " , ", "--units", "10"])
    captured = capsys.readouterr()
    assert code == 2
    assert "empty scheme list" in captured.err


def test_exit_codes_distinguish_error_families():
    from repro.cli import exit_code_for
    from repro.errors import (
        AllocationError,
        ConfigurationError,
        DmaApiError,
        IommuFault,
        IovaExhaustedError,
        KallocError,
        MemoryAccessError,
        PoolExhaustedError,
        ReproError,
        SecurityViolation,
        SimulationError,
    )
    expected = {
        ConfigurationError: 2, IovaExhaustedError: 3,
        PoolExhaustedError: 4, KallocError: 5, AllocationError: 6,
        MemoryAccessError: 7, DmaApiError: 9,
        SecurityViolation: 10, SimulationError: 12, ReproError: 1,
    }
    for kind, code in expected.items():
        assert exit_code_for(kind("boom")) == code
    assert exit_code_for(IommuFault(1, 0x1000, is_write=False)) == 8
    # Subclass specificity: the allocation family stays distinguishable.
    assert exit_code_for(IovaExhaustedError("x")) != \
        exit_code_for(AllocationError("x"))
