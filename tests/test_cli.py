"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


def test_schemes_lists_everything(capsys):
    code, out = run_cli(capsys, "schemes")
    assert code == 0
    for name in ("no-iommu", "copy", "identity-strict", "swiotlb",
                 "self-invalidating"):
        assert name in out


def test_audit_all(capsys):
    code, out = run_cli(capsys, "audit")
    assert code == 0
    assert "copy (shadow buffers)" in out
    assert "match the schemes' claims" in out


def test_audit_single_scheme(capsys):
    code, out = run_cli(capsys, "audit", "--scheme", "identity-")
    assert code == 0
    assert "identity-" in out


def test_stream_rx(capsys):
    code, out = run_cli(capsys, "stream", "--scheme", "copy",
                        "--size", "16384", "--units", "150")
    assert code == 0
    assert "Gb/s" in out
    assert "tcp_stream_rx" in out
    assert "shadow pool" in out


def test_stream_tx_with_alias(capsys):
    code, out = run_cli(capsys, "stream", "--scheme", "identity+",
                        "--direction", "tx", "--size", "65536",
                        "--units", "100")
    assert code == 0
    assert "tcp_stream_tx" in out
    assert "invalidations" in out


def test_rr(capsys):
    code, out = run_cli(capsys, "rr", "--scheme", "no-iommu",
                        "--size", "64", "--transactions", "50")
    assert code == 0
    assert "mean latency" in out


def test_memcached(capsys):
    code, out = run_cli(capsys, "memcached", "--scheme", "copy",
                        "--cores", "2", "--transactions", "80")
    assert code == 0
    assert "transactions/s" in out


def test_storage(capsys):
    code, out = run_cli(capsys, "storage", "--scheme", "copy",
                        "--block-size", "262144", "--ops", "60")
    assert code == 0
    assert "transactions/s" in out


def test_unknown_scheme_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["stream", "--scheme", "bogus"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
