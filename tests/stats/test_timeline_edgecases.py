"""Renderers must degrade to "n/a"-style rows on empty runs — never
raise on zero totals, empty trees, or recorders that saw nothing."""

from repro.obs.context import Observability
from repro.obs.exposure import ExposureAccountant
from repro.obs.metrics import CycleHistogram, MetricsRegistry
from repro.obs.requests import RequestRecord, RequestRecorder, tail_report
from repro.obs.spans import SpanNode, SpanRecorder
from repro.stats.timeline import (
    render_exposure_summary,
    render_histogram,
    render_metrics_summary,
    render_observability_report,
    render_phase_table,
    render_request_summary,
    render_request_timeline,
    render_span_tree,
    render_tail_report,
    render_trace_summary,
)


def test_render_span_tree_empty_root_says_so():
    out = render_span_tree(SpanRecorder().tree())
    assert "(no spans recorded)" in out


def test_render_span_tree_zero_cycle_children_no_division_error():
    root = SpanNode("run")
    child = root.child("step")
    child.count = 3                       # opened, but zero cycles
    out = render_span_tree(root)
    assert "step" in out
    assert "0.0%" in out


def test_render_exposure_summary_without_domains():
    out = render_exposure_summary(ExposureAccountant())
    assert "(no IOMMU domain observed)" in out


def test_render_request_summary_empty_recorder():
    out = render_request_summary(RequestRecorder())
    assert "(no completed requests)" in out


def test_render_request_summary_open_but_unfinished_request():
    class FakeCore:
        cid, now = 0, 0

    rec = RequestRecorder()
    rec.begin(FakeCore(), "rx")
    out = render_request_summary(rec)
    assert "(no completed requests)" in out
    assert "open=1" in out


def test_render_request_summary_zero_stage_cycles_no_division_error():
    class FakeCore:
        cid, now = 0, 0

    rec = RequestRecorder()
    core = FakeCore()
    rec.begin(core, "rx")
    rec.end(core)                         # zero-latency, zero stages
    out = render_request_summary(rec)
    assert "rx" in out


def test_render_tail_report_handles_none():
    assert "n/a" in render_tail_report(None)
    assert "n/a" in render_tail_report(tail_report(RequestRecorder()))


def test_render_tail_report_without_instrumented_stages():
    class FakeCore:
        def __init__(self):
            self.cid, self.now = 0, 0

    rec = RequestRecorder()
    core = FakeCore()
    for _ in range(4):
        rec.begin(core, "rx")
        core.now += 10                    # latency, but no spans at all
        rec.end(core)
    out = render_tail_report(tail_report(rec))
    assert "dominant stage: n/a" in out


def test_render_request_timeline_bare_record():
    record = RequestRecord(rid=1, kind="rx", core=0, start=0, end=0,
                           stages={}, segments=(), marks=(), locks={},
                           meta={})
    out = render_request_timeline(record)
    assert "request #1" in out
    assert "0.000us" in out


def test_render_histogram_and_metrics_empty():
    assert "(no observations)" in render_histogram(CycleHistogram("h"))
    assert "(no metrics recorded)" in \
        render_metrics_summary(MetricsRegistry())


def test_render_trace_and_phases_empty():
    obs = Observability.capture(trace_capacity=4)
    assert "(no events)" in render_trace_summary(obs.tracer)
    assert "(no phases recorded)" in render_phase_table(obs.phases)


def test_render_observability_report_on_fresh_capture_context():
    out = render_observability_report(Observability.capture())
    for section in ("== trace ==", "== phases ==", "== metrics ==",
                    "== exposure =="):
        assert section in out
    # No requests completed: the request section stays out entirely.
    assert "== requests ==" not in out
