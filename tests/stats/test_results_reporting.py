"""RunResult accounting and table-rendering tests."""

import pytest

from repro.hw.cpu import ALL_CATEGORIES
from repro.stats.reporting import (
    render_breakdown_table,
    render_latency_table,
    render_memcached_table,
    render_property_matrix,
    render_throughput_table,
)
from repro.stats.results import RunResult, Series
from repro.sim.units import seconds_to_cycles


def make_result(scheme="copy", size=1024, gbps=10.0, busy_frac=0.5,
                cores=1, units=1000):
    wall = seconds_to_cycles(0.001)
    payload = int(gbps * 1e9 / 8 * 0.001)
    r = RunResult(scheme=scheme, workload="test",
                  params={"message_size": size},
                  units=units, payload_bytes=payload, wall_cycles=wall,
                  busy_cycles=int(wall * cores * busy_frac), cores=cores)
    r.breakdown_cycles = {"memcpy": r.busy_cycles // 2,
                          "other": r.busy_cycles - r.busy_cycles // 2}
    return r


def test_throughput_and_cpu():
    r = make_result(gbps=10.0, busy_frac=0.25, cores=4)
    assert r.throughput_gbps == pytest.approx(10.0, rel=0.01)
    assert r.cpu_utilization == pytest.approx(0.25, rel=0.01)


def test_cpu_clamped_to_one():
    r = make_result(busy_frac=1.5)
    assert r.cpu_utilization == 1.0


def test_us_per_unit_and_breakdown():
    r = make_result(units=100)
    per_unit = r.breakdown_us_per_unit()
    assert set(per_unit) == set(ALL_CATEGORIES)
    assert sum(per_unit.values()) == pytest.approx(r.us_per_unit, rel=0.01)


def test_empty_result_is_safe():
    r = RunResult(scheme="x", workload="w")
    assert r.throughput_gbps == 0.0
    assert r.cpu_utilization == 0.0
    assert r.us_per_unit == 0.0
    assert all(v == 0.0 for v in r.breakdown_us_per_unit().values())


def test_relative_to():
    base = make_result(scheme="no-iommu", gbps=20.0, busy_frac=0.5)
    r = make_result(scheme="copy", gbps=15.0, busy_frac=0.6)
    rel = r.relative_to(base)
    assert rel["throughput"] == pytest.approx(0.75, rel=0.01)
    assert rel["cpu"] == pytest.approx(1.2, rel=0.01)


def test_series_by_param():
    s = Series(scheme="copy",
               points=[make_result(size=64), make_result(size=1024)])
    assert set(s.by_param("message_size")) == {64, 1024}


def test_render_throughput_table():
    results = {
        "no-iommu": [make_result("no-iommu", 64, 5.0),
                     make_result("no-iommu", 65536, 17.0)],
        "copy": [make_result("copy", 64, 5.0),
                 make_result("copy", 65536, 13.0)],
    }
    text = render_throughput_table(results, title="Fig 3")
    assert "Fig 3" in text
    assert "64KB" in text and "64B" in text
    assert "relative throughput" in text
    assert "copy" in text
    # Relative value for copy at 64 KB is 13/17 ≈ 0.76.
    assert "0.76" in text


def test_render_breakdown_table():
    text = render_breakdown_table({"copy": make_result()},
                                  title="Fig 5a")
    assert "memcpy" in text
    assert "TOTAL" in text
    assert "Fig 5a" in text


def test_render_latency_table():
    r = make_result()
    r.latency_us = 17.5
    text = render_latency_table({"copy": [r]}, title="Fig 9")
    assert "17.5" in text
    assert "relative latency" in text


def test_render_property_matrix():
    text = render_property_matrix(
        [("copy", {"a": True, "b": False})], ["a", "b"], title="T1")
    assert "yes" in text and "T1" in text


def test_render_memcached_table():
    r = make_result("copy")
    r.transactions_per_sec = 1.3e6
    base = make_result("no-iommu")
    base.transactions_per_sec = 1.4e6
    text = render_memcached_table({"no-iommu": base, "copy": r})
    assert "1.300" in text
    assert "0.93" in text
