"""CSV/JSON export tests."""

import csv
import io
import json

from repro.stats.export import result_to_row, to_csv, to_json, write_csv, write_json
from repro.stats.results import RunResult
from repro.sim.units import seconds_to_cycles


def sample(scheme="copy", size=1024):
    wall = seconds_to_cycles(0.001)
    r = RunResult(scheme=scheme, workload="tcp_stream_rx",
                  params={"message_size": size, "cores": 1},
                  units=100, payload_bytes=10 ** 6, wall_cycles=wall,
                  busy_cycles=wall // 2, cores=1)
    r.breakdown_cycles = {"memcpy": wall // 4, "other": wall // 4}
    return r


def test_row_shape():
    row = result_to_row(sample())
    assert row["scheme"] == "copy"
    assert row["param_message_size"] == 1024
    assert row["us_memcpy"] > 0
    assert row["us_spinlock"] == 0
    assert row["latency_us"] is None


def test_csv_roundtrip():
    text = to_csv([sample("copy"), sample("no-iommu", 64)])
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 2
    assert rows[0]["scheme"] == "copy"
    assert rows[1]["param_message_size"] == "64"
    assert float(rows[0]["throughput_gbps"]) == 8.0


def test_json_roundtrip():
    parsed = json.loads(to_json([sample()]))
    assert parsed[0]["workload"] == "tcp_stream_rx"
    assert parsed[0]["cpu_utilization"] == 0.5


def test_heterogeneous_params_union_columns():
    a = sample()
    b = RunResult(scheme="copy", workload="memcached",
                  params={"value_size": 1024})
    b.transactions_per_sec = 1.0e6
    rows = list(csv.DictReader(io.StringIO(to_csv([a, b]))))
    assert "param_message_size" in rows[0]
    assert "param_value_size" in rows[0]
    assert rows[1]["param_message_size"] == ""


def test_file_writers(tmp_path):
    csv_path = tmp_path / "out.csv"
    json_path = tmp_path / "out.json"
    write_csv([sample()], str(csv_path))
    write_json([sample()], str(json_path))
    assert csv_path.read_text().startswith("scheme,")
    assert json.loads(json_path.read_text())


def test_live_result_exports():
    from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx

    r = run_tcp_stream_rx(StreamConfig(scheme="copy", message_size=4096,
                                       units_per_core=80, warmup_units=20))
    row = result_to_row(r)
    assert row["throughput_gbps"] > 0
    assert row["us_memcpy"] > 0
