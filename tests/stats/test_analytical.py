"""Analytical model tests — including simulation cross-validation."""

import pytest

from repro.sim.costmodel import CostModel
from repro.stats.analytical import (
    copy_invalidate_breakeven_bytes,
    predict_all_rx,
    predict_rx,
    strict_saturation_gbps,
)
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx


@pytest.fixture
def cost():
    return CostModel()


def test_predictions_order_matches_paper(cost):
    preds = predict_all_rx(cost)
    assert (preds["no-iommu"].total_cycles
            < preds["copy"].total_cycles
            < preds["identity-deferred"].total_cycles
            < preds["identity-strict"].total_cycles)


def test_prediction_ratios_match_paper(cost):
    preds = predict_all_rx(cost)
    copy_rel = (preds["no-iommu"].total_cycles
                / preds["copy"].total_cycles)
    strict_rel = (preds["copy"].throughput_gbps()
                  / preds["identity-strict"].throughput_gbps())
    assert 0.70 <= copy_rel <= 0.82          # paper: 0.76×
    assert 1.7 <= strict_rel <= 2.3          # paper: 2×


@pytest.mark.parametrize("scheme", ("no-iommu", "copy",
                                    "identity-deferred",
                                    "identity-strict"))
def test_simulation_matches_analysis(cost, scheme):
    """The DES and the closed-form per-packet sum must agree when nothing
    contends (single core, large messages)."""
    predicted = predict_rx(cost, scheme).throughput_gbps()
    measured = run_tcp_stream_rx(StreamConfig(
        scheme=scheme, message_size=65536, cores=1,
        units_per_core=500, warmup_units=80)).throughput_gbps
    assert measured == pytest.approx(predicted, rel=0.07)


def test_breakeven_size_single_core(cost):
    """Single-core break-even between copying and invalidating sits in
    the few-KB range — which is why MTU packets (1.5 KB) favour copy."""
    breakeven = copy_invalidate_breakeven_bytes(cost)
    assert 4096 <= breakeven <= 16384
    assert breakeven > 1500  # the paper's headline case


def test_breakeven_grows_with_contention(cost):
    """§1: under multicore contention 'even larger copies, such as
    64 KB, [become] profitable'."""
    single = copy_invalidate_breakeven_bytes(cost, concurrency=1)
    contended = copy_invalidate_breakeven_bytes(cost, concurrency=16)
    assert contended > 3 * single
    assert contended >= 30_000


def test_strict_saturation_matches_simulation(cost):
    """The lock-bound ceiling predicts the Fig. 6 collapse plateau."""
    predicted = strict_saturation_gbps(cost, cores=16)
    measured = run_tcp_stream_rx(StreamConfig(
        scheme="identity-strict", message_size=16384, cores=16,
        units_per_core=150, warmup_units=40)).throughput_gbps
    assert measured == pytest.approx(predicted, rel=0.25)
    assert predicted < 6.0  # the collapse is real


def test_unknown_scheme_rejected(cost):
    with pytest.raises(ValueError):
        predict_rx(cost, "swiotlb")
