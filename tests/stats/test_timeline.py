"""Timeline/summary renderer tests for the observability report."""

from repro.obs.context import Observability, PhaseRecord
from repro.obs.metrics import CycleHistogram, MetricsRegistry
from repro.obs.trace import EV_DMA_MAP, NullTracer, RingTracer
from repro.stats.timeline import (
    render_histogram,
    render_metrics_summary,
    render_observability_report,
    render_phase_table,
    render_trace_summary,
)


def test_render_histogram_bars_and_summary():
    hist = CycleHistogram("lat")
    for _ in range(10):
        hist.observe(100)
    hist.observe(1000)
    text = render_histogram(hist)
    assert text.startswith("lat")
    assert "<=" in text and "#" in text
    assert "count=11" in text


def test_render_empty_histogram():
    assert "(no observations)" in render_histogram(CycleHistogram("lat"))


def test_render_metrics_summary_sections():
    metrics = MetricsRegistry()
    metrics.counter("net.rx_packets").inc(7)
    metrics.histogram("invalidation.latency_cycles").observe(1500)
    metrics.series("pool.in_flight").sample(0, 3)
    text = render_metrics_summary(metrics)
    assert "counters:" in text
    assert "net.rx_packets" in text and "7" in text
    assert "histograms (cycles):" in text
    assert "invalidation.latency_cycles" in text
    assert "series:" in text and "pool.in_flight" in text


def test_render_empty_metrics():
    assert "(no metrics recorded)" in render_metrics_summary(MetricsRegistry())


def test_render_phase_table():
    phases = [PhaseRecord("warmup", 0, 3000, busy_cycles=2000,
                          breakdown={"copy": 1200, "other": 800}),
              PhaseRecord("measure", 3000, 9000, busy_cycles=5000)]
    text = render_phase_table(phases)
    assert "warmup" in text and "measure" in text
    assert "copy=" in text
    assert "(no phases recorded)" in render_phase_table([])


def test_render_trace_summary():
    tracer = RingTracer(capacity=2)
    for i in range(5):
        tracer.emit(EV_DMA_MAP, i, 0)
    text = render_trace_summary(tracer)
    assert EV_DMA_MAP in text
    assert "retained=2 dropped=3" in text
    assert "(tracing disabled)" in render_trace_summary(NullTracer())


def test_render_full_report():
    obs = Observability.capture()
    obs.phase_begin("measure", 0)
    obs.tracer.emit(EV_DMA_MAP, 5, 0, size=1500)
    obs.metrics.counter("dma.maps:copy").inc()
    obs.phase_end(100, busy_cycles=80)
    text = render_observability_report(obs)
    assert "== trace ==" in text
    assert "== phases ==" in text
    assert "== metrics ==" in text
