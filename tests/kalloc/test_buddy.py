"""Buddy allocator tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KallocError
from repro.kalloc.buddy import BuddyAllocator
from repro.sim.costmodel import CostModel
from repro.sim.units import PAGE_SIZE


def make_buddy(pages=256, base=0):
    return BuddyAllocator(base, pages * PAGE_SIZE, CostModel())


def test_basic_alloc_free():
    b = make_buddy()
    pa = b.alloc_pages(0)
    assert pa % PAGE_SIZE == 0
    assert b.allocated_pages == 1
    b.free_pages(pa)
    assert b.allocated_pages == 0


def test_alignment_by_order():
    b = make_buddy()
    for order in range(5):
        pa = b.alloc_pages(order)
        assert pa % ((1 << order) * PAGE_SIZE) == 0


def test_blocks_do_not_overlap():
    b = make_buddy(64)
    spans = []
    for order in (0, 1, 2, 3, 0, 2, 1):
        pa = b.alloc_pages(order)
        size = (1 << order) * PAGE_SIZE
        for s, e in spans:
            assert pa + size <= s or pa >= e
        spans.append((pa, pa + size))


def test_coalescing_restores_large_blocks():
    b = make_buddy(16)
    # Exhaust with order-0, free all, then a max-size block must fit.
    pas = [b.alloc_pages(0) for _ in range(16)]
    with pytest.raises(KallocError):
        b.alloc_pages(0)
    for pa in pas:
        b.free_pages(pa)
    big = b.alloc_pages(4)  # 16 pages — only possible after coalescing
    assert big == 0


def test_double_free_rejected():
    b = make_buddy()
    pa = b.alloc_pages(0)
    b.free_pages(pa)
    with pytest.raises(KallocError):
        b.free_pages(pa)


def test_free_of_unallocated_rejected():
    b = make_buddy()
    with pytest.raises(KallocError):
        b.free_pages(PAGE_SIZE * 3)


def test_free_unaligned_rejected():
    b = make_buddy()
    with pytest.raises(KallocError):
        b.free_pages(123)


def test_free_outside_region_rejected():
    b = make_buddy(16)
    with pytest.raises(KallocError):
        b.free_pages(1 << 40)


def test_exhaustion():
    b = make_buddy(4)
    b.alloc_pages(2)
    with pytest.raises(KallocError):
        b.alloc_pages(1)  # only 0 pages left... all 4 allocated
    # The failure did not corrupt state.
    assert b.allocated_pages == 4


def test_bad_order_rejected():
    b = make_buddy()
    with pytest.raises(KallocError):
        b.alloc_pages(-1)
    with pytest.raises(KallocError):
        b.alloc_pages(11)


def test_non_power_of_two_region():
    # 13 pages: seeded as 8 + 4 + 1 blocks.
    b = make_buddy(13)
    pas = [b.alloc_pages(0) for _ in range(13)]
    assert len(set(pas)) == 13
    with pytest.raises(KallocError):
        b.alloc_pages(0)


def test_base_offset_region():
    base = 1 << 36
    b = BuddyAllocator(base, 8 * PAGE_SIZE, CostModel())
    pa = b.alloc_pages(0)
    assert pa >= base
    assert b.owns(pa)
    assert not b.owns(base - PAGE_SIZE)


def test_unaligned_base_rejected():
    with pytest.raises(KallocError):
        BuddyAllocator(100, PAGE_SIZE, CostModel())


def test_tiny_region_rejected():
    with pytest.raises(KallocError):
        BuddyAllocator(0, 100, CostModel())


def test_peak_tracking():
    b = make_buddy()
    a1 = b.alloc_pages(2)
    a2 = b.alloc_pages(2)
    b.free_pages(a1)
    b.free_pages(a2)
    assert b.peak_allocated_pages == 8
    assert b.allocated_pages == 0


def test_block_order_lookup():
    b = make_buddy()
    pa = b.alloc_pages(3)
    assert b.block_order(pa) == 3
    assert b.block_order(pa + PAGE_SIZE) is None
    b.free_pages(pa)
    assert b.block_order(pa) is None


def test_charges_core():
    from repro.hw.cpu import Core
    core = Core(cid=0, numa_node=0)
    b = make_buddy()
    pa = b.alloc_pages(0, core)
    b.free_pages(pa, core)
    assert core.busy_cycles == (CostModel().page_alloc_cycles
                                + CostModel().page_free_cycles)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)),
                min_size=1, max_size=120))
def test_random_sequences_preserve_invariants(ops):
    """Property: any alloc/free interleaving keeps accounting consistent,
    never hands out overlapping blocks, and frees always coalesce back."""
    b = make_buddy(64)
    live = {}  # pa -> order
    for do_alloc, order in ops:
        if do_alloc:
            try:
                pa = b.alloc_pages(order)
            except KallocError:
                continue
            size = (1 << order) * PAGE_SIZE
            for opa, oorder in live.items():
                osize = (1 << oorder) * PAGE_SIZE
                assert pa + size <= opa or pa >= opa + osize
            live[pa] = order
        elif live:
            pa = next(iter(live))
            b.free_pages(pa)
            del live[pa]
        assert b.allocated_pages == sum(1 << o for o in live.values())
    for pa in list(live):
        b.free_pages(pa)
    assert b.allocated_pages == 0
    assert b.free_pages_count == 64
