"""Slab (kmalloc) allocator tests — including the co-location property
the paper's sub-page attack depends on (§4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KallocError
from repro.hw.machine import Machine
from repro.kalloc.buddy import BuddyAllocator
from repro.kalloc.slab import SLAB_SIZE_CLASSES, KBuffer, KernelAllocators, SlabAllocator
from repro.sim.costmodel import CostModel
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def slab():
    buddy = BuddyAllocator(0, 1024 * PAGE_SIZE, CostModel())
    return SlabAllocator(0, buddy, CostModel())


def test_small_allocations_co_located(slab):
    """Two small kmallocs land on the same 4 KB page — the property that
    makes page-granular IOMMU mappings leak neighbouring data."""
    a = slab.kmalloc(100)
    b = slab.kmalloc(100)
    assert a.first_page == b.first_page
    assert a.pa != b.pa


def test_neighbours_on_page(slab):
    a = slab.kmalloc(512)
    b = slab.kmalloc(512)
    assert b.pa in slab.neighbours_on_page(a)
    slab.kfree(b)
    assert slab.neighbours_on_page(a) == []


def test_size_class_rounding(slab):
    a = slab.kmalloc(33)       # rounds to the 64-byte class
    b = slab.kmalloc(64)
    assert abs(a.pa - b.pa) % 64 == 0


def test_distinct_classes_distinct_slabs(slab):
    a = slab.kmalloc(64)
    b = slab.kmalloc(1024)
    assert a.first_page != b.first_page


def test_objects_dont_overlap(slab):
    bufs = [slab.kmalloc(256) for _ in range(40)]
    spans = sorted((b.pa, b.pa + 256) for b in bufs)
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_reuse_after_free(slab):
    a = slab.kmalloc(128)
    slab.kfree(a)
    b = slab.kmalloc(128)
    assert b.pa == a.pa  # LIFO reuse from the cache


def test_large_allocation_uses_pages(slab):
    big = slab.kmalloc(3 * PAGE_SIZE)
    assert big.pa % PAGE_SIZE == 0
    assert slab.buddy.block_order(big.pa) == 2  # 4 pages for 3-page request
    slab.kfree(big)
    assert slab.buddy.block_order(big.pa) is None


def test_large_allocation_exact_pages(slab):
    big = slab.kmalloc(PAGE_SIZE)
    assert slab.buddy.block_order(big.pa) == 0


def test_kmalloc_64kb(slab):
    big = slab.kmalloc(65536)
    assert slab.buddy.block_order(big.pa) == 4  # 16 pages


def test_kfree_unknown_rejected(slab):
    with pytest.raises(KallocError):
        slab.kfree(KBuffer(pa=0x123000, size=64, node=0))


def test_kmalloc_zero_rejected(slab):
    with pytest.raises(KallocError):
        slab.kmalloc(0)


def test_live_accounting(slab):
    a = slab.kmalloc(64)
    b = slab.kmalloc(PAGE_SIZE * 2)
    assert slab.live_allocations == 2
    slab.kfree(a)
    slab.kfree(b)
    assert slab.live_allocations == 0


def test_kbuffer_helpers():
    buf = KBuffer(pa=PAGE_SIZE + 100, size=200, node=1)
    assert buf.end == PAGE_SIZE + 300
    assert buf.first_page == 1
    assert buf.last_page == 1
    assert buf.page_offset() == 100


def test_kernel_allocators_facade():
    machine = Machine.build(cores=4, numa_nodes=2)
    ka = KernelAllocators(machine)
    a = ka.kmalloc(100, node=0)
    b = ka.kmalloc(100, node=1)
    assert machine.memory.node_of(a.pa) == 0
    assert machine.memory.node_of(b.pa) == 1
    ka.kfree(a)
    ka.kfree(b)
    pa = ka.alloc_pages(0, node=1)
    assert machine.memory.node_of(pa) == 1
    ka.free_pages(pa, node=1)


@settings(max_examples=50, deadline=None)
@given(sizes=st.lists(st.integers(1, 4 * PAGE_SIZE), min_size=1,
                      max_size=60))
def test_no_overlap_property(sizes):
    buddy = BuddyAllocator(0, 4096 * PAGE_SIZE, CostModel())
    slab = SlabAllocator(0, buddy, CostModel())
    live = [slab.kmalloc(s) for s in sizes]
    spans = sorted((b.pa, b.pa + b.size) for b in live)
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert e1 <= s2, "allocations overlap"
    for b in live:
        slab.kfree(b)
    assert slab.live_allocations == 0


def test_size_classes_are_sorted():
    assert list(SLAB_SIZE_CLASSES) == sorted(SLAB_SIZE_CLASSES)
    assert all(c <= PAGE_SIZE // 2 for c in SLAB_SIZE_CLASSES)
