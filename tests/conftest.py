"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.dma.registry import create_dma_api
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.kalloc.slab import KernelAllocators


@pytest.fixture
def machine() -> Machine:
    """A small default machine: 4 cores over 2 NUMA nodes."""
    return Machine.build(cores=4, numa_nodes=2)


@pytest.fixture
def single_core_machine() -> Machine:
    return Machine.build(cores=1, numa_nodes=1)


@pytest.fixture
def allocators(machine) -> KernelAllocators:
    return KernelAllocators(machine)


@pytest.fixture
def iommu(machine) -> Iommu:
    return Iommu(machine)


@pytest.fixture
def make_api(machine, allocators, iommu):
    """Factory: build any protection scheme against the shared machine."""

    counter = {"device": 0x100}

    def _make(scheme: str, **kwargs):
        counter["device"] += 1
        return create_dma_api(
            scheme, machine,
            None if scheme == "no-iommu" else iommu,
            device_id=counter["device"], allocators=allocators, **kwargs)

    return _make
