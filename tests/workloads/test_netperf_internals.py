"""Unit tests for the netperf harness helpers."""

import pytest

from repro.sim.costmodel import CostModel
from repro.sim.units import TCP_MSS, TSO_MAX_BYTES
from repro.workloads.netperf import (
    _RR_GRO_FRAMES,
    _client_cpu_cycles,
    _gro_aggregates,
    _tx_chunks,
)


def test_tx_chunks_small():
    assert _tx_chunks(100) == [100]
    assert _tx_chunks(TSO_MAX_BYTES) == [TSO_MAX_BYTES]


def test_tx_chunks_splits_at_tso_limit():
    assert _tx_chunks(TSO_MAX_BYTES + 1) == [TSO_MAX_BYTES, 1]
    assert _tx_chunks(3 * TSO_MAX_BYTES) == [TSO_MAX_BYTES] * 3


def test_tx_chunks_conserve_bytes():
    for size in (1, 1000, 65536, 200_000):
        assert sum(_tx_chunks(size)) == size


def test_gro_aggregates_small_message():
    assert _gro_aggregates(64) == [64]


def test_gro_aggregates_split():
    per = _RR_GRO_FRAMES * TCP_MSS
    aggrs = _gro_aggregates(65536)
    assert sum(aggrs) == 65536
    assert all(a <= per for a in aggrs)
    assert len(aggrs) == -(-65536 // per)


def test_gro_aggregates_zero():
    assert _gro_aggregates(0) == [0]


def test_client_cpu_scales_with_size():
    cost = CostModel()
    small = _client_cpu_cycles(cost, 64)
    big = _client_cpu_cycles(cost, 65536)
    assert big > 3 * small
    # Dominated by the two size-proportional copies at 64 KB.
    assert big > 2 * cost.memcpy_cycles(65536)
