"""netperf workload harness tests (small configurations)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.cpu import ALL_CATEGORIES
from repro.workloads.netperf import (
    PAPER_MESSAGE_SIZES,
    RRConfig,
    StreamConfig,
    run_tcp_rr,
    run_tcp_stream,
    run_tcp_stream_rx,
    run_tcp_stream_tx,
)


def small_stream(**kw):
    defaults = dict(units_per_core=150, warmup_units=30)
    defaults.update(kw)
    return StreamConfig(**defaults)


def test_rx_result_accounting():
    r = run_tcp_stream_rx(small_stream(scheme="copy", message_size=16384))
    assert r.units == 150
    assert r.payload_bytes > 0
    assert 0 < r.throughput_gbps < 40
    assert 0 < r.cpu_utilization <= 1.0
    assert r.workload == "tcp_stream_rx"
    assert r.params["message_size"] == 16384
    # Breakdown accounts for all busy cycles.
    assert sum(r.breakdown_cycles.values()) == r.busy_cycles
    assert set(r.breakdown_cycles) <= set(ALL_CATEGORIES)


def test_rx_small_messages_sender_limited():
    """Below the MSS the sender's syscall rate bounds throughput, so all
    schemes see identical throughput (§6 footnote 6)."""
    r_no = run_tcp_stream_rx(small_stream(scheme="no-iommu",
                                          message_size=64))
    r_strict = run_tcp_stream_rx(small_stream(scheme="identity-strict",
                                              message_size=64))
    assert r_no.throughput_gbps == pytest.approx(r_strict.throughput_gbps,
                                                 rel=0.02)
    assert r_strict.cpu_utilization > r_no.cpu_utilization
    assert r_no.cpu_utilization < 0.9  # not the bottleneck


def test_tx_result_accounting():
    r = run_tcp_stream_tx(small_stream(scheme="copy", message_size=65536,
                                       direction="tx"))
    assert r.units == 150
    assert r.payload_bytes == 150 * 65536
    assert r.throughput_gbps > 0
    assert r.workload == "tcp_stream_tx"


def test_tx_line_rate_cap():
    r = run_tcp_stream_tx(small_stream(scheme="no-iommu",
                                       message_size=65536, direction="tx",
                                       cores=2))
    assert r.throughput_gbps <= r.extras.get("line_cap", 36.5)


def test_dispatch_by_direction():
    rx = run_tcp_stream(small_stream(direction="rx", message_size=4096))
    tx = run_tcp_stream(small_stream(direction="tx", message_size=4096))
    assert rx.workload == "tcp_stream_rx"
    assert tx.workload == "tcp_stream_tx"


def test_invalid_direction_rejected():
    with pytest.raises(ConfigurationError):
        StreamConfig(direction="sideways")


def test_invalid_message_size_rejected():
    with pytest.raises(ConfigurationError):
        StreamConfig(message_size=0)


def test_multicore_rx_uses_all_cores():
    r = run_tcp_stream_rx(small_stream(scheme="copy", cores=4,
                                       message_size=16384,
                                       units_per_core=100,
                                       warmup_units=20))
    assert r.cores == 4
    assert r.units == 400


def test_copy_pool_stats_exposed():
    r = run_tcp_stream_rx(small_stream(scheme="copy", message_size=1024))
    pool = r.extras["pool"]
    assert pool["bytes_allocated"] > 0
    assert pool["acquires"] > 0


def test_strict_invalidation_stats_exposed():
    r = run_tcp_stream_rx(small_stream(scheme="identity-strict",
                                       message_size=16384))
    assert r.extras["sync_invalidations"] > 100


def test_rr_latency_result():
    r = run_tcp_rr(RRConfig(scheme="copy", message_size=64,
                            transactions=60, warmup_transactions=10))
    assert r.latency_us is not None
    assert 5 < r.latency_us < 100
    assert r.units == 60
    assert 0 < r.cpu_utilization < 1.0


def test_rr_latency_grows_sublinearly_with_size():
    """Fig. 9: 1024× the message size costs only a few × the latency."""
    small = run_tcp_rr(RRConfig(scheme="no-iommu", message_size=64,
                                transactions=40, warmup_transactions=5))
    big = run_tcp_rr(RRConfig(scheme="no-iommu", message_size=65536,
                              transactions=40, warmup_transactions=5))
    ratio = big.latency_us / small.latency_us
    assert 2.0 <= ratio <= 8.0


def test_rr_schemes_have_comparable_latency():
    """Fig. 9b: protection schemes do not noticeably change latency."""
    base = run_tcp_rr(RRConfig(scheme="no-iommu", message_size=1024,
                               transactions=40, warmup_transactions=5))
    worst = run_tcp_rr(RRConfig(scheme="identity-strict",
                                message_size=1024,
                                transactions=40, warmup_transactions=5))
    assert worst.latency_us / base.latency_us < 1.35


def test_paper_message_sizes_constant():
    assert PAPER_MESSAGE_SIZES == (64, 256, 1024, 4096, 16384, 65536)


def test_deterministic_given_same_config():
    a = run_tcp_stream_rx(small_stream(scheme="copy", message_size=4096))
    b = run_tcp_stream_rx(small_stream(scheme="copy", message_size=4096))
    assert a.throughput_gbps == b.throughput_gbps
    assert a.busy_cycles == b.busy_cycles
