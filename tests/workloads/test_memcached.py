"""memcached workload tests."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.memcached import KeyValueStore, MemcachedConfig, run_memcached


def small(**kw):
    defaults = dict(cores=4, transactions_per_core=100,
                    warmup_transactions=20)
    defaults.update(kw)
    return MemcachedConfig(**defaults)


def test_kv_store_set_get():
    store = KeyValueStore()
    store.set(b"k", b"v")
    assert store.get(b"k") == b"v"
    assert store.get(b"missing") is None
    assert store.hits == 1
    assert store.misses == 1
    assert len(store) == 1


def test_kv_store_eviction_bounds_size():
    store = KeyValueStore(max_items=3)
    for i in range(10):
        store.set(f"k{i}".encode(), b"v")
    assert len(store) == 3


def test_kv_store_overwrite():
    store = KeyValueStore()
    store.set(b"k", b"v1")
    store.set(b"k", b"v2")
    assert store.get(b"k") == b"v2"
    assert len(store) == 1


def test_run_reports_transactions_per_sec():
    r = run_memcached(small(scheme="copy"))
    assert r.transactions_per_sec is not None
    assert r.transactions_per_sec > 0
    assert r.units == 400
    assert r.workload == "memcached"


def test_gets_actually_hit_the_store():
    r = run_memcached(small(scheme="no-iommu"))
    assert r.extras["store_hits"] > 0


def test_get_fraction_validated():
    with pytest.raises(ConfigurationError):
        run_memcached(small(get_fraction=1.5))


def test_pure_set_workload():
    r = run_memcached(small(scheme="no-iommu", get_fraction=0.0))
    assert r.extras["store_hits"] == 0
    assert r.units == 400


def test_identity_strict_is_much_slower():
    """Fig. 11: identity+ collapses on the invalidation lock.  The
    collapse is a many-core phenomenon, so this test uses 8 cores (the
    full 16-core ratio is asserted by the Figure 11 benchmark)."""
    fast = run_memcached(small(scheme="no-iommu", cores=8))
    slow = run_memcached(small(scheme="identity-strict", cores=8))
    assert (fast.transactions_per_sec / slow.transactions_per_sec) > 2.0


def test_copy_close_to_no_iommu():
    """§6: copy serves memcached within a few percent of no-iommu."""
    base = run_memcached(small(scheme="no-iommu"))
    copy = run_memcached(small(scheme="copy"))
    assert copy.transactions_per_sec / base.transactions_per_sec > 0.9


def test_deterministic():
    a = run_memcached(small(scheme="copy"))
    b = run_memcached(small(scheme="copy"))
    assert a.transactions_per_sec == b.transactions_per_sec
