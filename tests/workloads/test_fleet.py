"""Fleet workload tests: the open-loop diurnal load generator."""

import pytest

from repro.errors import ConfigurationError
from repro.stats.export import to_json
from repro.workloads.fleet import (
    _CURVE_SLOTS,
    FleetConfig,
    build_load_curve,
    run_fleet,
)


def small(**kw):
    defaults = dict(scheme="copy", cores=2, users=1_000_000,
                    duration_us=400.0, warmup_us=100.0)
    defaults.update(kw)
    return FleetConfig(**defaults)


def test_config_validates():
    with pytest.raises(ConfigurationError):
        small(users=0)
    with pytest.raises(ConfigurationError):
        small(per_user_tps=0)
    with pytest.raises(ConfigurationError):
        small(mix=(("kv", 0.0),))
    with pytest.raises(ConfigurationError):
        small(mix=(("no-such-conn", 1.0),))


def test_load_curve_shape():
    curve = build_load_curve(small())
    assert len(curve) == _CURVE_SLOTS
    assert all(m >= 0.05 for m in curve)
    # The diurnal sinusoid actually modulates the rate.
    assert max(curve) > 1.0 > min(curve)
    # Same seed -> same curve; different seed -> different bursts.
    assert curve == build_load_curve(small())
    assert curve != build_load_curve(small(seed=1))


def test_fleet_run_is_deterministic():
    a = run_fleet(small())
    b = run_fleet(small())
    assert to_json([a]) == to_json([b])
    assert a.units > 0
    assert a.transactions_per_sec is not None
    assert a.extras["offered_tps"] == pytest.approx(50_000.0)


def test_fleet_mix_drives_all_connection_kinds():
    result = run_fleet(small(duration_us=800.0))
    served = result.extras["served"]
    assert set(served) == {"kv", "burst", "bulk", "io"}
    assert all(count > 0 for count in served.values())


def test_fleet_scales_offered_load_with_users():
    light = run_fleet(small())
    heavy = run_fleet(small(users=4_000_000))
    assert heavy.units > 2 * light.units
