"""Storage workload tests (§5.5 extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.storage import (
    SSD_READ_IOPS_4K,
    SSD_WRITE_IOPS_4K,
    StorageConfig,
    run_storage,
)


def small(**kw):
    defaults = dict(ops_per_core=120, warmup_ops=20)
    defaults.update(kw)
    return StorageConfig(**defaults)


def test_basic_run_accounting():
    r = run_storage(small(scheme="copy", block_size=4096))
    assert r.units == 120
    assert r.payload_bytes == 120 * 4096
    assert r.transactions_per_sec > 0
    assert r.workload == "storage"


def test_default_iops_ceiling_scales_with_block_size():
    cfg4k = StorageConfig(block_size=4096, read_fraction=1.0)
    cfg64k = StorageConfig(block_size=65536, read_fraction=1.0)
    assert cfg4k.resolved_iops() == SSD_READ_IOPS_4K
    assert cfg64k.resolved_iops() == pytest.approx(SSD_READ_IOPS_4K / 16)


def test_write_only_ceiling():
    cfg = StorageConfig(block_size=4096, read_fraction=0.0)
    assert cfg.resolved_iops() == SSD_WRITE_IOPS_4K


def test_explicit_ceiling_binds():
    r = run_storage(small(scheme="no-iommu", device_iops=50_000.0))
    assert r.transactions_per_sec == pytest.approx(50_000.0, rel=0.05)
    assert r.cpu_utilization < 0.5


def test_huge_blocks_take_hybrid_path():
    r = run_storage(small(scheme="copy", block_size=262_144))
    assert r.extras["hybrid_maps"] == 140  # warmup + measured ops


def test_huge_blocks_protection_is_cheap():
    """§5.5: at device-bound huge-block rates the protection scheme no
    longer matters for throughput."""
    base = run_storage(small(scheme="no-iommu", block_size=262_144))
    strict = run_storage(small(scheme="identity-strict", block_size=262_144))
    copy = run_storage(small(scheme="copy", block_size=262_144))
    assert strict.transactions_per_sec == pytest.approx(
        base.transactions_per_sec, rel=0.02)
    assert copy.transactions_per_sec == pytest.approx(
        base.transactions_per_sec, rel=0.02)


def test_small_blocks_copy_beats_strict():
    copy = run_storage(small(scheme="copy", block_size=4096))
    strict = run_storage(small(scheme="identity-strict", block_size=4096))
    assert copy.transactions_per_sec > strict.transactions_per_sec


def test_swiotlb_works_for_storage():
    r = run_storage(small(scheme="swiotlb", block_size=4096))
    assert r.transactions_per_sec > 0


def test_invalid_configs():
    with pytest.raises(ConfigurationError):
        run_storage(small(block_size=100))
    with pytest.raises(ConfigurationError):
        run_storage(small(read_fraction=2.0))


def test_multicore_storage():
    r = run_storage(small(scheme="copy", cores=4, block_size=4096))
    assert r.units == 480
    assert r.cores == 4


def test_deterministic():
    a = run_storage(small(scheme="copy"))
    b = run_storage(small(scheme="copy"))
    assert a.transactions_per_sec == b.transactions_per_sec
