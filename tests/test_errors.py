"""Exception-hierarchy tests: everything the library raises is catchable
as ReproError, with informative payloads."""

import pytest

from repro import errors


def test_hierarchy():
    assert issubclass(errors.ConfigurationError, errors.ReproError)
    assert issubclass(errors.KallocError, errors.AllocationError)
    assert issubclass(errors.IovaExhaustedError, errors.AllocationError)
    assert issubclass(errors.PoolExhaustedError, errors.AllocationError)
    assert issubclass(errors.AllocationError, errors.ReproError)
    assert issubclass(errors.IommuFault, errors.ReproError)
    assert issubclass(errors.DmaApiError, errors.ReproError)
    assert issubclass(errors.DmaApiUsageError, errors.DmaApiError)
    assert issubclass(errors.SecurityViolation, errors.ReproError)
    assert issubclass(errors.SimulationError, errors.ReproError)
    assert issubclass(errors.MemoryAccessError, errors.ReproError)


def test_iommu_fault_payload():
    fault = errors.IommuFault(7, 0xdead000, is_write=True, reason="test")
    assert fault.device_id == 7
    assert fault.iova == 0xdead000
    assert fault.is_write
    assert "write" in str(fault)
    assert "0xdead000" in str(fault)


def test_iommu_fault_read_default_reason():
    fault = errors.IommuFault(1, 0x1000, is_write=False)
    assert "read" in str(fault)
    assert fault.reason == "no mapping"


def test_library_raises_only_repro_errors():
    """A representative misuse sweep: every failure is a ReproError."""
    from repro.hw.machine import Machine
    from repro.kalloc.slab import KernelAllocators, KBuffer

    machine = Machine.build(cores=1, numa_nodes=1)
    ka = KernelAllocators(machine)
    with pytest.raises(errors.ReproError):
        ka.kmalloc(-1)
    with pytest.raises(errors.ReproError):
        ka.kfree(KBuffer(pa=0xbad000, size=8, node=0))
    with pytest.raises(errors.ReproError):
        machine.memory.read(1 << 60, 1)
    with pytest.raises(errors.ReproError):
        Machine.build(cores=0)
