"""Vulnerability-window duration measurement (deferred protection).

The paper (§3) observes that under deferred protection "buffers can
remain mapped for up to 10 milliseconds".  The deferred schemes here
measure the actual unmap→flush delay of every batched invalidation, so
the window's size becomes a quantity, not an anecdote.
"""

import pytest

from repro.dma.api import DmaDirection
from repro.sim.costmodel import CostModel
from repro.sim.units import us_to_cycles
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx
from repro.dma.registry import create_dma_api
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.kalloc.slab import KernelAllocators


def _bench(scheme="identity-deferred", cost=None):
    machine = Machine.build(cores=2, numa_nodes=1, cost=cost)
    ka = KernelAllocators(machine)
    iommu = Iommu(machine)
    api = create_dma_api(scheme, machine, iommu, 1, ka)
    return machine, ka, api


def test_window_samples_recorded_on_batch_flush():
    machine, ka, api = _bench()
    core = machine.core(0)
    batch = machine.cost.deferred_batch_size
    for _ in range(batch):
        buf = ka.kmalloc(4096, node=0)
        handle = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
        api.dma_unmap(core, handle)
        ka.kfree(buf)
        core.charge(1000)  # spacing between unmaps
    assert len(api.window_samples) == batch
    # FIFO: the first unmap waited the longest.
    assert max(api.window_samples) == api.window_samples[0]
    assert min(api.window_samples) >= 0


def test_window_bounded_by_timeout():
    """An idle deferred queue flushes by the 10 ms timer: the window of
    a lone unmap is bounded by (roughly) the timeout."""
    machine, ka, api = _bench()
    core = machine.core(0)
    buf = ka.kmalloc(4096, node=0)
    handle = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    api.dma_unmap(core, buf and handle)
    core.charge(us_to_cycles(10_500.0))
    # The next unmap trips the timeout flush.
    buf2 = ka.kmalloc(4096, node=0)
    h2 = api.dma_map(core, buf2, DmaDirection.TO_DEVICE)
    api.dma_unmap(core, h2)
    assert api.window_samples, "timeout flush did not record windows"
    assert max(api.window_samples) >= us_to_cycles(10_000.0)
    assert max(api.window_samples) <= us_to_cycles(11_500.0)


def test_window_under_live_traffic_is_batch_bound():
    """At line-rate RX the window is set by how long 250 unmaps take —
    far below 10 ms, but hundreds of packets wide."""
    machine_cost = CostModel()
    r = run_tcp_stream_rx(StreamConfig(
        scheme="identity-deferred", message_size=16384, cores=1,
        units_per_core=1000, warmup_units=100, cost=machine_cost))
    # Recover the api's samples through extras?  The harness tears the
    # system down; instead verify via a handmade run below.
    machine, ka, api = _bench(cost=machine_cost)
    core = machine.core(0)
    per_packet = us_to_cycles(1.0)
    for _ in range(600):
        buf = ka.kmalloc(4096, node=0)
        handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
        core.charge(per_packet)
        api.dma_unmap(core, handle)
        ka.kfree(buf)
    assert len(api.window_samples) >= 500
    mean_window = sum(api.window_samples) / len(api.window_samples)
    batch_time = machine_cost.deferred_batch_size * per_packet
    # Mean window ≈ half the batch duration (uniform position in batch).
    assert 0.3 * batch_time <= mean_window <= 0.8 * batch_time


def test_smaller_batches_shrink_the_window():
    small_cost = CostModel(deferred_batch_size=10)
    machine, ka, api = _bench(cost=small_cost)
    core = machine.core(0)
    for _ in range(200):
        buf = ka.kmalloc(4096, node=0)
        handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
        core.charge(2400)
        api.dma_unmap(core, handle)
        ka.kfree(buf)
    small_mean = sum(api.window_samples) / len(api.window_samples)

    big_cost = CostModel(deferred_batch_size=250)
    machine, ka, api = _bench(cost=big_cost)
    core = machine.core(0)
    for _ in range(600):
        buf = ka.kmalloc(4096, node=0)
        handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
        core.charge(2400)
        api.dma_unmap(core, handle)
        ka.kfree(buf)
    big_mean = sum(api.window_samples) / len(api.window_samples)
    assert big_mean > 10 * small_mean


def test_strict_scheme_has_no_window_samples():
    machine, ka, api = _bench(scheme="identity-strict")
    assert not hasattr(api, "window_samples")
