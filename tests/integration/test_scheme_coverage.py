"""Every scheme must survive the real workloads, with sane orderings."""

import pytest

from repro.dma.registry import ALL_SCHEMES
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx

#: Schemes that can run line-rate networking in this suite.  The
#: self-invalidating scheme needs a generous budget configured for ring
#: traffic, handled in its dedicated test below.
STREAM_SCHEMES = [s for s in ALL_SCHEMES if s != "self-invalidating"]


@pytest.mark.parametrize("scheme", STREAM_SCHEMES)
def test_rx_stream_runs_for_every_scheme(scheme):
    r = run_tcp_stream_rx(StreamConfig(
        scheme=scheme, message_size=16384, cores=1,
        units_per_core=200, warmup_units=40))
    assert r.units == 200
    assert 0 < r.throughput_gbps <= 40
    assert 0 < r.cpu_utilization <= 1.0


def test_rx_stream_self_invalidating():
    r = run_tcp_stream_rx(StreamConfig(
        scheme="self-invalidating", message_size=16384, cores=1,
        units_per_core=200, warmup_units=40,
        scheme_kwargs={"dma_budget": 1 << 20, "lifetime_us": 1e9}))
    assert r.units == 200
    assert r.throughput_gbps > 0


def test_single_core_ordering_across_all_schemes():
    """The full single-core RX throughput ordering at 64 KB messages:
    nothing protected beats no-iommu; copy beats every zero-copy IOMMU
    scheme; strict schemes trail their deferred variants; Linux trails
    the scalable allocators."""
    results = {}
    for scheme in STREAM_SCHEMES:
        results[scheme] = run_tcp_stream_rx(StreamConfig(
            scheme=scheme, message_size=65536, cores=1,
            units_per_core=300, warmup_units=60)).throughput_gbps

    assert max(results.values()) == results["no-iommu"]
    for scheme, gbps in results.items():
        if scheme in ("no-iommu", "swiotlb", "copy"):
            continue
        assert results["copy"] > gbps, f"copy should beat {scheme}"
    for kind in ("linux", "eiovar", "magazine", "identity"):
        assert results[f"{kind}-deferred"] > results[f"{kind}-strict"]
    assert results["identity-strict"] > results["linux-strict"]
    assert results["identity-deferred"] > results["linux-deferred"]


def test_swiotlb_costs_track_copy():
    """SWIOTLB pays copy-like costs (it bounces the same data) but lands
    somewhat below DMA shadowing: it has no copy-hint machinery (it
    bounces the full mapped size, as the Linux original does) and takes
    a global pool lock per map/unmap."""
    copy = run_tcp_stream_rx(StreamConfig(
        scheme="copy", message_size=65536, cores=1,
        units_per_core=300, warmup_units=60)).throughput_gbps
    swiotlb = run_tcp_stream_rx(StreamConfig(
        scheme="swiotlb", message_size=65536, cores=1,
        units_per_core=300, warmup_units=60)).throughput_gbps
    assert 0.70 * copy <= swiotlb < copy


def test_swiotlb_global_lock_hurts_multicore():
    """SWIOTLB's single pool lock shows at 8 cores where copy does not."""
    kw = dict(message_size=16384, cores=8, units_per_core=150,
              warmup_units=30)
    copy = run_tcp_stream_rx(StreamConfig(scheme="copy", **kw))
    swiotlb = run_tcp_stream_rx(StreamConfig(scheme="swiotlb", **kw))
    # Both may reach line rate, but SWIOTLB burns more CPU doing it.
    assert swiotlb.busy_cycles > copy.busy_cycles
