"""Failure injection: resource exhaustion and cache-pressure corner cases."""

import pytest

from repro.dma.api import DmaDirection
from repro.dma.registry import create_dma_api
from repro.errors import IommuFault, KallocError, PoolExhaustedError
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.kalloc.slab import KernelAllocators
from repro.net.packets import build_frame
from repro.sim.units import PAGE_SIZE
from repro.system import System, SystemConfig


def test_shadow_pool_cap_fails_loudly_under_traffic():
    """A too-small pool limit surfaces as PoolExhaustedError at map time,
    not as silent corruption."""
    system = System.build(SystemConfig(
        scheme="copy", cores=1, rx_ring_size=64,
        scheme_kwargs={"max_pool_bytes": 32 * PAGE_SIZE}))
    with pytest.raises(PoolExhaustedError):
        system.setup_queues()   # needs 63 RX shadows + TX


def test_shadow_pool_recovers_after_shrink():
    machine = Machine.build(cores=1, numa_nodes=1)
    ka = KernelAllocators(machine)
    iommu = Iommu(machine)
    api = create_dma_api("copy", machine, iommu, 1, ka,
                         max_pool_bytes=8 * PAGE_SIZE)
    core = machine.core(0)
    bufs = [ka.kmalloc(PAGE_SIZE, node=0) for _ in range(8)]
    handles = [api.dma_map(core, b, DmaDirection.TO_DEVICE) for b in bufs]
    with pytest.raises(PoolExhaustedError):
        api.dma_map(core, ka.kmalloc(PAGE_SIZE, node=0),
                    DmaDirection.TO_DEVICE)
    for h in handles:
        api.dma_unmap(core, h)
    # Memory pressure: release the free shadows back to the system.
    freed = api.pool.shrink(core)
    assert freed == 8 * PAGE_SIZE
    # The pool can grow again afterwards.
    h = api.dma_map(core, bufs[0], DmaDirection.TO_DEVICE)
    api.dma_unmap(core, h)


def test_buddy_exhaustion_propagates():
    machine = Machine.build(cores=1, numa_nodes=1)
    ka = KernelAllocators(machine)
    # Drain node 0 almost completely.
    total = ka.buddies[0].total_pages
    keep = ka.buddies[0].free_pages_count - 2
    blocks = []
    for _ in range(keep):
        blocks.append(ka.buddies[0].alloc_pages(0))
    with pytest.raises(KallocError):
        ka.buddies[0].alloc_pages(2)
    assert total == ka.buddies[0].total_pages


def test_iotlb_capacity_pressure_shrinks_the_window():
    """Security nuance: a small IOTLB can close the deferred window *by
    accident* — capacity evictions drop the stale entry before the flush.
    The window is therefore probabilistic on real hardware, which is why
    the paper treats deferred protection as insecure-by-design rather
    than reliably exploitable."""
    machine = Machine.build(cores=1, numa_nodes=1)
    ka = KernelAllocators(machine)
    iommu = Iommu(machine, iotlb_capacity=4)   # absurdly small IOTLB
    api = create_dma_api("identity-deferred", machine, iommu, 1, ka)
    core = machine.core(0)

    victim = ka.kmalloc(PAGE_SIZE, node=0)
    handle = api.dma_map(core, victim, DmaDirection.FROM_DEVICE)
    api.port().dma_write(handle.iova, b"legit")
    api.dma_unmap(core, handle)

    # Pressure: touch many other mappings, evicting the stale entry.
    for _ in range(8):
        other = ka.kmalloc(PAGE_SIZE, node=0)
        h = api.dma_map(core, other, DmaDirection.FROM_DEVICE)
        api.port().dma_write(h.iova, b"x")
        api.dma_unmap(core, h)

    with pytest.raises(IommuFault):
        api.port().dma_write(handle.iova, b"window closed by eviction")
    assert iommu.iotlb.stats.evictions > 0


def test_nic_survives_burst_beyond_ring():
    """A burst larger than the posted ring is dropped, counted, and the
    system keeps working afterwards."""
    system = System.build(SystemConfig(scheme="copy", cores=1,
                                       rx_ring_size=8))
    system.setup_queues()
    core = system.machine.core(0)
    frame = build_frame(500)
    # Raw burst at the NIC without driver processing.
    delivered = sum(system.nic.receive_frame(0, frame) for _ in range(10))
    assert delivered == 7
    assert system.nic.stats.rx_drops_no_descriptor == 3
    # Drain and keep going through the normal path.
    for _ in range(7):
        reaped = system.driver._rx_rings[0].reap()
        idx, _ = reaped
        slot = system.driver._rx_slots[0].pop(idx)
        system.dma_api.dma_unmap(core, slot.handle)
        system.allocators.buddies[0].free_pages(slot.buf.pa, core)
        system.driver._post_rx_buffer(core, 0)
    assert system.driver.receive_one(core, 0, frame) == 500
    system.teardown_queues()


def test_fallback_iova_space_never_collides_with_shadow_space():
    """Hybrid mappings (fallback IOVAs) and shadow IOVAs live in disjoint
    halves of the 48-bit space, even under interleaved allocation."""
    machine = Machine.build(cores=1, numa_nodes=1)
    ka = KernelAllocators(machine)
    iommu = Iommu(machine)
    api = create_dma_api("copy", machine, iommu, 1, ka)
    core = machine.core(0)
    iovas = []
    for i in range(20):
        size = 1500 if i % 2 else 128 * 1024
        buf = ka.kmalloc(size, node=0)
        h = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
        iovas.append((size, h.iova))
        api.dma_unmap(core, h)
    for size, iova in iovas:
        if size == 1500:
            assert iova >> 47 == 1
        else:
            assert iova >> 47 == 0
