"""Paper-shape integration tests.

Small-scale versions of the benchmark sweeps, asserting the qualitative
results the paper reports.  The full-size sweeps live in benchmarks/;
these runs are sized to keep the test suite fast while still exhibiting
every crossover.
"""

import pytest

from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx, run_tcp_stream_tx


def rx(scheme, size, cores=1, units=400):
    return run_tcp_stream_rx(StreamConfig(
        scheme=scheme, message_size=size, cores=cores,
        units_per_core=units, warmup_units=80))


def tx(scheme, size, cores=1, units=300):
    return run_tcp_stream_tx(StreamConfig(
        scheme=scheme, direction="tx", message_size=size, cores=cores,
        units_per_core=units, warmup_units=60))


# ----------------------------------------------------------------------
# Figure 3 shapes — single-core RX.
# ----------------------------------------------------------------------
def test_fig3_copy_is_076x_of_no_iommu():
    base = rx("no-iommu", 65536)
    copy = rx("copy", 65536)
    assert copy.throughput_gbps / base.throughput_gbps == pytest.approx(
        0.76, abs=0.05)


def test_fig3_copy_beats_deferred_despite_stronger_security():
    copy = rx("copy", 16384)
    deferred = rx("identity-deferred", 16384)
    ratio = copy.throughput_gbps / deferred.throughput_gbps
    assert 1.03 <= ratio <= 1.20  # paper: ≈10%


def test_fig3_copy_doubles_strict():
    copy = rx("copy", 65536)
    strict = rx("identity-strict", 65536)
    assert copy.throughput_gbps / strict.throughput_gbps == pytest.approx(
        2.0, abs=0.35)


def test_fig3_no_iommu_absolute_rate():
    base = rx("no-iommu", 65536)
    assert 15.5 <= base.throughput_gbps <= 19.5  # paper: ≈17.5 Gb/s


# ----------------------------------------------------------------------
# Figure 4 shapes — single-core TX.
# ----------------------------------------------------------------------
def test_fig4_copy_worst_at_64KB_but_within_25pct():
    results = {s: tx(s, 65536) for s in
               ("no-iommu", "copy", "identity-deferred", "identity-strict")}
    copy = results["copy"].throughput_gbps
    others = [r.throughput_gbps for s, r in results.items() if s != "copy"]
    assert copy < min(others)                 # copy is the worst...
    assert copy / max(others) > 0.70          # ...by a bounded margin


def test_fig4_small_messages_comparable():
    """Below 512 B all schemes transmit comparably (socket coalescing)."""
    base = tx("no-iommu", 64)
    strict = tx("identity-strict", 64)
    assert strict.throughput_gbps / base.throughput_gbps > 0.9


def test_fig4_copy_only_scheme_pegged_at_64KB():
    copy = tx("copy", 65536)
    base = tx("no-iommu", 65536)
    assert copy.cpu_utilization > 0.98
    assert base.cpu_utilization < 0.95


# ----------------------------------------------------------------------
# Figures 6/7 shapes — 16-core collapse of identity+.
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_fig6_strict_collapses_at_16_cores():
    strict = rx("identity-strict", 16384, cores=16, units=200)
    copy = rx("copy", 16384, cores=16, units=200)
    assert copy.throughput_gbps / strict.throughput_gbps >= 4.0
    assert strict.cpu_utilization > 0.95   # all cores spin on the lock
    # Spinlock dominates the strict breakdown (Fig. 8a).
    spin = strict.breakdown_cycles.get("spinlock", 0)
    assert spin > 0.5 * strict.busy_cycles


@pytest.mark.slow
def test_fig6_copy_reaches_line_rate_at_16_cores():
    copy = rx("copy", 16384, cores=16, units=200)
    base = rx("no-iommu", 16384, cores=16, units=200)
    assert copy.throughput_gbps == pytest.approx(base.throughput_gbps,
                                                 rel=0.02)
    # §6: bounded CPU overhead versus no-iommu.
    assert copy.cpu_utilization / base.cpu_utilization < 1.7


@pytest.mark.slow
def test_fig7_strict_converges_at_large_tx():
    strict = tx("identity-strict", 65536, cores=16, units=150)
    base = tx("no-iommu", 65536, cores=16, units=150)
    assert strict.throughput_gbps == pytest.approx(base.throughput_gbps,
                                                   rel=0.05)


# ----------------------------------------------------------------------
# Figure 5 shapes — the per-packet breakdown story.
# ----------------------------------------------------------------------
def test_fig5a_invalidation_dominates_strict_rx():
    strict = rx("identity-strict", 65536)
    bd = strict.breakdown_us_per_unit()
    assert bd["invalidate iotlb"] > bd["iommu page table mgmt"]
    # Paper: 0.61 µs of hardware latency; our bucket also carries the
    # descriptor submission and completion-poll overhead (≈0.27 µs).
    assert 0.6 <= bd["invalidate iotlb"] <= 1.1


def test_fig5a_copy_overhead_small_rx():
    copy = rx("copy", 65536)
    bd = copy.breakdown_us_per_unit()
    assert bd["memcpy"] == pytest.approx(0.11, abs=0.06)
    assert bd["copy mgmt"] < 0.05
    assert bd["invalidate iotlb"] == 0.0
    assert bd["iommu page table mgmt"] == 0.0


def test_fig5b_tx_memcpy_matches_strict_iommu_cost():
    """Fig. 5b: copy's 64 KB memcpy ≈ identity+'s total IOMMU overhead."""
    copy_bd = tx("copy", 65536).breakdown_us_per_unit()
    strict_bd = tx("identity-strict", 65536).breakdown_us_per_unit()
    iommu_cost = (strict_bd["invalidate iotlb"]
                  + strict_bd["iommu page table mgmt"])
    assert copy_bd["memcpy"] == pytest.approx(iommu_cost, rel=0.7)
    assert copy_bd["memcpy"] > 3.5  # ≈4.65 µs per 64 KB chunk
