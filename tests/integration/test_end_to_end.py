"""End-to-end integration: full systems moving real data under every
protection scheme."""

import pytest

from repro.dma.registry import ALL_SCHEMES
from repro.net.packets import build_frame, parse_frame
from repro.system import System, SystemConfig


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_full_stack_data_integrity(scheme):
    """Frames survive the full RX and TX datapaths bit-exactly."""
    system = System.build(SystemConfig(scheme=scheme, cores=2,
                                       rx_ring_size=16, tx_ring_size=16,
                                       keep_frames=True))
    system.setup_queues()
    core = system.machine.core(0)

    payload = bytes(range(256)) * 4
    frame = build_frame(len(payload), payload=payload, seq=99)
    assert system.driver.receive_one(core, 0, frame) == len(payload)

    out = bytes(reversed(payload))
    system.driver.transmit_one(core, 0, len(out), payload=out)
    assert system.nic.tx_log(0)[-1] == out

    system.teardown_queues()
    assert system.dma_api.live_mappings == 0


@pytest.mark.parametrize("scheme", ("copy", "identity-strict",
                                    "identity-deferred"))
def test_sustained_traffic_leaves_no_leaks(scheme):
    system = System.build(SystemConfig(scheme=scheme, cores=2,
                                       rx_ring_size=32, tx_ring_size=32))
    system.setup_queues()
    core0, core1 = system.machine.core(0), system.machine.core(1)
    frame = build_frame(1000)
    for i in range(300):
        system.driver.receive_one(core0, 0, frame)
        system.driver.receive_one(core1, 1, frame)
        if i % 3 == 0:
            system.driver.transmit_one(core0, 0, 32768)
    live_before_teardown = system.dma_api.live_mappings
    # Only the posted RX buffers remain mapped (31 per ring × 2 queues).
    assert live_before_teardown == 2 * 31
    system.teardown_queues()
    assert system.dma_api.live_mappings == 0
    assert system.nic.stats.rx_drops_no_descriptor == 0


def test_copy_pool_invariants_after_traffic():
    system = System.build(SystemConfig(scheme="copy", cores=4))
    system.setup_queues()
    frame = build_frame(1460)
    for qid in range(4):
        core = system.machine.core(qid)
        for _ in range(200):
            system.driver.receive_one(core, qid, frame)
    pool = system.dma_api.pool
    assert pool.check_page_rights_invariant()
    # In-flight shadows == posted RX buffers (plus nothing leaked).
    assert pool.stats.in_flight == 4 * (system.config.rx_ring_size - 1)
    system.teardown_queues()
    assert pool.stats.in_flight == 0


def test_shadow_pool_memory_stays_bounded():
    """§6 'Memory consumption': shadow memory tracks in-flight DMAs, not
    traffic volume."""
    system = System.build(SystemConfig(scheme="copy", cores=1,
                                       rx_ring_size=64))
    system.setup_queues()
    core = system.machine.core(0)
    frame = build_frame(1460)
    for _ in range(50):
        system.driver.receive_one(core, 0, frame)
    after_warm = system.dma_api.pool.stats.bytes_allocated
    for _ in range(1000):
        system.driver.receive_one(core, 0, frame)
    assert system.dma_api.pool.stats.bytes_allocated == after_warm
    system.teardown_queues()


def test_queue_setup_is_idempotent():
    system = System.build(SystemConfig(scheme="copy", cores=1))
    system.setup_queues()
    system.setup_queues()  # no double allocation
    system.teardown_queues()
    system.teardown_queues()  # no double free


def test_mixed_devices_share_the_iommu():
    """Two systems can coexist on one machine model (distinct domains)."""
    from repro.dma.registry import create_dma_api
    from repro.hw.machine import Machine
    from repro.iommu.iommu import Iommu
    from repro.kalloc.slab import KernelAllocators
    from repro.dma.api import DmaDirection

    machine = Machine.build(cores=2, numa_nodes=1)
    ka = KernelAllocators(machine)
    iommu = Iommu(machine)
    copy_api = create_dma_api("copy", machine, iommu, 1, ka)
    strict_api = create_dma_api("identity-strict", machine, iommu, 2, ka)
    core = machine.core(0)
    buf = ka.kmalloc(1500, node=0)
    h1 = copy_api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    h2 = strict_api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    # Device 2 cannot use device 1's IOVA and vice versa.
    copy_api.port().dma_write(h1.iova, b"one")
    with pytest.raises(Exception):
        strict_api.port().dma_write(h1.iova, b"cross")
    strict_api.port().dma_write(h2.iova, b"two")
    copy_api.dma_unmap(core, h1)
    strict_api.dma_unmap(core, h2)
