"""NUMA-placement effects on the datapath (§5.3's locality design)."""

import pytest

from repro.net.packets import build_frame
from repro.system import System, SystemConfig


def test_queues_allocate_on_their_cores_node():
    system = System.build(SystemConfig(scheme="copy", cores=4,
                                       numa_nodes=2, rx_ring_size=16))
    system.setup_queues()
    pool = system.dma_api.pool
    # Queue 3 runs on core 3 (node 1): its shadows must live on node 1.
    node1_lists = [key for key in pool._lists if key[0] == 3]
    assert node1_lists
    for key in node1_lists:
        flist = pool._lists[key]
        for meta in pool._iter_list_buffers(flist):
            assert system.machine.memory.node_of(meta.pa) == 1
    system.teardown_queues()


def test_cross_node_traffic_works_and_costs_more():
    """RX processed on node 1 while the shadow is node-local stays cheap;
    a deliberately remote OS buffer pays the NUMA copy factor."""
    from repro.dma.api import DmaDirection
    from repro.dma.registry import create_dma_api
    from repro.hw.cpu import CAT_MEMCPY
    from repro.hw.machine import Machine
    from repro.iommu.iommu import Iommu
    from repro.kalloc.slab import KernelAllocators

    machine = Machine.build(cores=4, numa_nodes=2)
    ka = KernelAllocators(machine)
    iommu = Iommu(machine)
    api = create_dma_api("copy", machine, iommu, 1, ka)
    core3 = machine.core(3)  # node 1

    local = ka.kmalloc(4096, node=1)
    remote = ka.kmalloc(4096, node=0)
    h = api.dma_map(core3, local, DmaDirection.TO_DEVICE)
    local_memcpy = core3.breakdown.get(CAT_MEMCPY, 0)
    api.dma_unmap(core3, h)
    h = api.dma_map(core3, remote, DmaDirection.TO_DEVICE)
    total_memcpy = core3.breakdown.get(CAT_MEMCPY, 0)
    api.dma_unmap(core3, h)
    remote_memcpy = total_memcpy - local_memcpy
    factor = machine.cost.numa_remote_copy_factor
    assert remote_memcpy == pytest.approx(local_memcpy * factor, rel=0.02)


def test_multiqueue_rx_across_nodes_intact():
    system = System.build(SystemConfig(scheme="copy", cores=4,
                                       numa_nodes=2, rx_ring_size=16,
                                       keep_frames=True))
    system.setup_queues()
    payload = bytes(range(200))
    for qid in range(4):
        core = system.machine.core(qid)
        frame = build_frame(len(payload), payload=payload, seq=qid)
        assert system.driver.receive_one(core, qid, frame) == len(payload)
    assert system.driver.stats.rx_packets == 4
    system.teardown_queues()
