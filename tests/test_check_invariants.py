"""The benchmarks/check_invariants.py smoke script must pass (CI hook)."""

import os
import subprocess
import sys

SCRIPT = os.path.join(os.path.dirname(__file__), os.pardir,
                      "benchmarks", "check_invariants.py")


def test_check_invariants_passes():
    result = subprocess.run(
        [sys.executable, SCRIPT], capture_output=True, text=True,
        timeout=180, env={**os.environ},
    )
    assert result.returncode == 0, (
        f"check_invariants failed:\n{result.stdout[-2000:]}\n"
        f"{result.stderr[-2000:]}"
    )
    assert "all invariants hold" in result.stdout
