"""Attack scenarios against the extension schemes (SWIOTLB, Basu et al.)."""

from repro.attacks.scenarios import (
    arbitrary_dma_attack,
    subpage_read_attack,
    window_read_attack,
    window_write_attack,
)


def test_swiotlb_fails_everything():
    """§7: copying without an IOMMU provides no protection at all."""
    assert arbitrary_dma_attack("swiotlb").attack_succeeded
    assert subpage_read_attack("swiotlb").attack_succeeded
    assert window_write_attack("swiotlb").attack_succeeded
    assert window_read_attack("swiotlb").attack_succeeded


def test_selfinval_blocks_arbitrary_dma():
    assert not arbitrary_dma_attack("self-invalidating").attack_succeeded


def test_selfinval_still_page_granular():
    assert subpage_read_attack("self-invalidating").attack_succeeded


def test_selfinval_window_exists_but_hardware_bounds_it():
    """Immediately after unmap the attack works (like deferred); once the
    DMA budget drains the hardware closes it with zero software work."""
    outcome = window_write_attack("self-invalidating", dma_budget=2)
    # Budget 2: one legit DMA + this attack DMA — the write lands.
    assert outcome.attack_succeeded
    tight = window_write_attack("self-invalidating", dma_budget=1)
    # Budget 1: the legitimate DMA exhausted it; the attack faults.
    assert not tight.attack_succeeded
    assert tight.extras["dma_blocked"]


def test_selfinval_read_window_budget_bound():
    outcome = window_read_attack("self-invalidating", dma_budget=1)
    assert not outcome.attack_succeeded
