"""Attack-scenario tests — the empirical security matrix (Table 1)."""

import pytest

from repro.attacks.scenarios import (
    arbitrary_dma_attack,
    subpage_read_attack,
    window_read_attack,
    window_write_attack,
)

ZERO_COPY_SCHEMES = ("linux-strict", "linux-deferred", "eiovar-strict",
                     "magazine-strict", "magazine-deferred",
                     "identity-strict", "identity-deferred")
DEFERRED = ("linux-deferred", "eiovar-deferred", "magazine-deferred",
            "identity-deferred")
STRICT = ("linux-strict", "eiovar-strict", "magazine-strict",
          "identity-strict")


def test_no_iommu_is_defenseless():
    assert arbitrary_dma_attack("no-iommu").attack_succeeded
    assert subpage_read_attack("no-iommu").attack_succeeded
    assert window_write_attack("no-iommu").attack_succeeded
    assert window_read_attack("no-iommu").attack_succeeded


@pytest.mark.parametrize("scheme", ZERO_COPY_SCHEMES + ("copy",))
def test_iommu_blocks_arbitrary_dma(scheme):
    assert not arbitrary_dma_attack(scheme).attack_succeeded


@pytest.mark.parametrize("scheme", ZERO_COPY_SCHEMES)
def test_page_granular_schemes_leak_colocated_data(scheme):
    """§4: every zero-copy scheme exposes the co-located secret."""
    outcome = subpage_read_attack(scheme)
    assert outcome.attack_succeeded


def test_copy_provides_subpage_protection():
    """§5.2: the device sees only the shadow — the co-located secret is
    unreachable even though the page read itself succeeds."""
    outcome = subpage_read_attack("copy")
    assert not outcome.attack_succeeded
    assert outcome.extras["page_readable"]  # no fault, just no secret


@pytest.mark.parametrize("scheme", DEFERRED)
def test_deferred_window_allows_corruption(scheme):
    """§3: the attack that crashed the authors' Linux."""
    assert window_write_attack(scheme).attack_succeeded


@pytest.mark.parametrize("scheme", DEFERRED)
def test_deferred_window_allows_data_theft(scheme):
    assert window_read_attack(scheme).attack_succeeded


@pytest.mark.parametrize("scheme", DEFERRED)
def test_deferred_window_closes_after_flush(scheme):
    """The window is bounded: after the batched flush the stale entries
    are gone and the same attack fails."""
    assert not window_write_attack(scheme, flush_first=True).attack_succeeded
    assert not window_read_attack(scheme, flush_first=True).attack_succeeded


@pytest.mark.parametrize("scheme", STRICT)
def test_strict_has_no_window(scheme):
    write = window_write_attack(scheme)
    read = window_read_attack(scheme)
    assert not write.attack_succeeded
    assert not read.attack_succeeded
    assert write.extras["dma_blocked"]


def test_copy_has_no_window_without_blocking():
    """Under DMA shadowing the post-unmap write may *complete* (the
    shadow stays mapped) yet corrupts nothing; the read sees stale shadow
    bytes, never the reused secret."""
    write = window_write_attack("copy")
    read = window_read_attack("copy")
    assert not write.attack_succeeded
    assert not read.attack_succeeded
    assert not write.extras["dma_blocked"]  # landed in the shadow
    assert not read.extras["dma_blocked"]


def test_scenario_outcome_details_are_informative():
    outcome = window_write_attack("identity-deferred")
    assert "stale" in outcome.detail.lower() or "corrupt" in outcome.detail.lower()
