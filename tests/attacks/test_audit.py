"""Security-audit (Table 1) tests."""

import pytest

from repro.attacks.attacker import AttackerDevice
from repro.attacks.audit import TABLE1_COLUMNS, audit_all, audit_scheme, render_table1
from repro.dma.registry import ALL_SCHEMES
from repro.errors import SecurityViolation


def test_audit_all_schemes_match_claims():
    """Every scheme's observed security equals its Table 1 claims — this
    is the repository's executable version of the paper's Table 1."""
    rows = audit_all(strict=True)
    assert len(rows) == len(ALL_SCHEMES)
    assert all(row.matches_claims for row in rows)


def test_copy_is_the_only_fully_secure_scheme():
    rows = audit_all(strict=False)
    fully = [r.scheme for r in rows
             if all(r.observed[c] for c in TABLE1_COLUMNS)]
    assert fully == ["copy"]


def test_audit_single_scheme_detail():
    row = audit_scheme("identity-deferred")
    assert row.observed["iommu protection"]
    assert not row.observed["sub-page protect"]
    assert not row.observed["no vulnerability window"]
    assert len(row.outcomes) == 4


def test_render_table1_contains_all_rows():
    rows = audit_all(strict=False)
    text = render_table1(rows)
    assert "copy (shadow buffers)" in text
    assert "identity+" in text
    assert "no-iommu" in text
    for column in TABLE1_COLUMNS:
        assert column in text


def test_strict_mode_raises_on_mismatch(monkeypatch):
    import repro.attacks.audit as audit_mod

    real = audit_mod.audit_scheme

    def lying_audit(scheme, **kw):
        row = real(scheme, **kw)
        if scheme == "copy":
            row.observed["sub-page protect"] = False
        return row

    monkeypatch.setattr(audit_mod, "audit_scheme", lying_audit)
    with pytest.raises(SecurityViolation):
        audit_mod.audit_all(schemes=("copy",), strict=True)


def test_attacker_probe_accounting(machine, make_api, allocators):
    api = make_api("identity-strict")
    attacker = AttackerDevice(api.port())
    attacker.try_read(0xdead000, 16)
    assert attacker.blocked_probes == 1
    assert attacker.successful_probes == 0
    assert attacker.probes[0].fault_reason


def test_attacker_scan_finds_secret_without_iommu(machine, make_api,
                                                  allocators):
    api = make_api("no-iommu")
    attacker = AttackerDevice(api.port())
    buf = allocators.kmalloc(64, node=0)
    machine.memory.write(buf.pa, b"NEEDLE-12345")
    base = (buf.pa >> 12) << 12
    found = attacker.scan_for(b"NEEDLE-12345", base - 8192, 5 * 4096)
    assert found is not None
    assert found == buf.pa


def test_attacker_scan_blocked_by_iommu(machine, make_api, allocators):
    api = make_api("copy")
    attacker = AttackerDevice(api.port())
    buf = allocators.kmalloc(64, node=0)
    machine.memory.write(buf.pa, b"NEEDLE-12345")
    assert attacker.scan_for(b"NEEDLE-12345", 0, 16 * 4096) is None
    assert attacker.blocked_probes == 16
