"""I/O page table tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DmaApiError
from repro.iommu.page_table import IOVA_BITS, IoPageTable, Perm
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE

MAX_PAGE = (1 << (IOVA_BITS - PAGE_SHIFT)) - 1


def test_map_lookup_unmap():
    pt = IoPageTable()
    pt.map_page(0x1234, 0x5678, Perm.RW)
    entry = pt.lookup(0x1234)
    assert entry is not None
    assert entry.pfn == 0x5678
    assert entry.pa == 0x5678 << PAGE_SHIFT
    assert pt.mapped_pages == 1
    removed = pt.unmap_page(0x1234)
    assert removed.pfn == 0x5678
    assert pt.lookup(0x1234) is None
    assert pt.mapped_pages == 0


def test_overwrite_rejected():
    pt = IoPageTable()
    pt.map_page(1, 2, Perm.READ)
    with pytest.raises(DmaApiError):
        pt.map_page(1, 3, Perm.READ)


def test_unmap_unmapped_rejected():
    pt = IoPageTable()
    with pytest.raises(DmaApiError):
        pt.unmap_page(42)
    pt.map_page(1 << 27, 1, Perm.READ)  # populate an interior path
    with pytest.raises(DmaApiError):
        pt.unmap_page((1 << 27) + 1)


def test_map_no_perm_rejected():
    pt = IoPageTable()
    with pytest.raises(DmaApiError):
        pt.map_page(1, 2, Perm.NONE)


def test_out_of_range_rejected():
    pt = IoPageTable()
    with pytest.raises(DmaApiError):
        pt.map_page(MAX_PAGE + 1, 0, Perm.READ)
    with pytest.raises(DmaApiError):
        pt.map_page(-1, 0, Perm.READ)


def test_extreme_pages_ok():
    pt = IoPageTable()
    pt.map_page(0, 7, Perm.READ)
    pt.map_page(MAX_PAGE, 8, Perm.WRITE)
    assert pt.lookup(0).pfn == 7
    assert pt.lookup(MAX_PAGE).pfn == 8


def test_entries_iteration():
    pt = IoPageTable()
    pages = {3, 513, 1 << 20, (1 << 30) + 17}
    for i, page in enumerate(sorted(pages)):
        pt.map_page(page, i, Perm.RW)
    seen = {page for page, _ in pt.entries()}
    assert seen == pages


def test_table_nodes_grow_and_bytes():
    pt = IoPageTable()
    assert pt.table_nodes == 1
    pt.map_page(0, 0, Perm.READ)
    assert pt.table_nodes == 4  # root + 3 interior levels
    assert pt.table_bytes == 4 * PAGE_SIZE
    pt.map_page(1, 1, Perm.READ)  # same leaf: no new nodes
    assert pt.table_nodes == 4
    pt.map_page(1 << 27, 2, Perm.READ)  # new top-level subtree
    assert pt.table_nodes == 7


def test_perm_allows():
    assert Perm.READ.allows(is_write=False)
    assert not Perm.READ.allows(is_write=True)
    assert Perm.WRITE.allows(is_write=True)
    assert not Perm.WRITE.allows(is_write=False)
    assert Perm.RW.allows(is_write=True)
    assert Perm.RW.allows(is_write=False)


@settings(max_examples=40, deadline=None)
@given(pages=st.lists(st.integers(0, MAX_PAGE), min_size=1, max_size=80,
                      unique=True))
def test_map_unmap_roundtrip_property(pages):
    pt = IoPageTable()
    for i, page in enumerate(pages):
        pt.map_page(page, i, Perm.RW)
    assert pt.mapped_pages == len(pages)
    for i, page in enumerate(pages):
        assert pt.lookup(page).pfn == i
    for page in pages:
        pt.unmap_page(page)
    assert pt.mapped_pages == 0
    assert all(pt.lookup(p) is None for p in pages)
