"""IOMMU device-model tests: domains, mapping, translation, DMA ports."""

import pytest

from repro.errors import ConfigurationError, IommuFault
from repro.hw.cpu import CAT_PT_MGMT
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu, PassthroughDmaPort, TranslatingDmaPort
from repro.iommu.page_table import Perm
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def machine():
    return Machine.build(cores=2, numa_nodes=1)


@pytest.fixture
def iommu(machine):
    return Iommu(machine)


def test_attach_device_idempotent(iommu):
    d1 = iommu.attach_device(42)
    d2 = iommu.attach_device(42)
    assert d1 is d2
    d3 = iommu.attach_device(43)
    assert d3.domain_id != d1.domain_id


def test_map_range_multi_page(iommu, machine):
    domain = iommu.attach_device(1)
    core = machine.core(0)
    iommu.map_range(domain, 0x10000, 0x40000, 3 * PAGE_SIZE, Perm.RW, core)
    assert domain.page_table.mapped_pages == 3
    assert core.breakdown[CAT_PT_MGMT] == 3 * machine.cost.pt_map_cycles


def test_map_range_subpage_offsets(iommu):
    domain = iommu.attach_device(1)
    # A 100-byte buffer at offset 0xF00 spans two pages.
    iommu.map_range(domain, 0x10F00, 0x40F00, 0x200, Perm.READ)
    assert domain.page_table.mapped_pages == 2


def test_map_offset_mismatch_rejected(iommu):
    domain = iommu.attach_device(1)
    with pytest.raises(ConfigurationError):
        iommu.map_range(domain, 0x10001, 0x40002, 100, Perm.READ)


def test_map_zero_size_rejected(iommu):
    domain = iommu.attach_device(1)
    with pytest.raises(ConfigurationError):
        iommu.map_range(domain, 0x1000, 0x4000, 0, Perm.READ)


def test_unmap_range(iommu, machine):
    domain = iommu.attach_device(1)
    core = machine.core(0)
    iommu.map_range(domain, 0x10000, 0x40000, 2 * PAGE_SIZE, Perm.RW, core)
    assert iommu.unmap_range(domain, 0x10000, 2 * PAGE_SIZE, core) == 2
    assert domain.page_table.mapped_pages == 0


def test_translate_walks_and_caches(iommu):
    domain = iommu.attach_device(1)
    iommu.map_range(domain, 0x10000, 0x40000, PAGE_SIZE, Perm.RW)
    entry = iommu.translate(domain, 0x10008, is_write=False)
    assert entry.pa == 0x40000
    assert iommu.iotlb.stats.misses == 1
    iommu.translate(domain, 0x10100, is_write=True)
    assert iommu.iotlb.stats.hits == 1


def test_translate_unmapped_faults_and_records(iommu):
    domain = iommu.attach_device(7)
    with pytest.raises(IommuFault) as exc:
        iommu.translate(domain, 0xdead000, is_write=True)
    assert exc.value.device_id == 7
    assert len(iommu.faults) == 1
    assert iommu.faults[0].reason == "no mapping"


def test_translate_permission_fault(iommu):
    domain = iommu.attach_device(1)
    iommu.map_range(domain, 0x10000, 0x40000, PAGE_SIZE, Perm.READ)
    iommu.translate(domain, 0x10000, is_write=False)
    with pytest.raises(IommuFault):
        iommu.translate(domain, 0x10000, is_write=True)
    assert "permission" in iommu.faults[-1].reason


def test_fault_record_carries_timestamp_and_domain(iommu):
    domain = iommu.attach_device(7)
    with pytest.raises(IommuFault):
        iommu.translate(domain, 0xdead000, is_write=True)
    rec = iommu.faults[0]
    assert rec.t >= 0
    assert rec.domain_id == domain.domain_id
    assert rec.device_id == 7


def test_fault_ring_is_bounded(machine):
    from repro.iommu.iommu import FaultRing

    iommu = Iommu(machine, fault_capacity=3)
    domain = iommu.attach_device(1)
    for i in range(8):
        with pytest.raises(IommuFault):
            iommu.translate(domain, 0x1000 * (i + 1), is_write=True)
    assert isinstance(iommu.faults, FaultRing)
    assert len(iommu.faults) == 3
    assert iommu.faults.recorded == 8
    assert iommu.faults.dropped == 5
    # Oldest evicted first: the survivors are the newest three.
    assert [f.iova for f in iommu.faults] == [0x6000, 0x7000, 0x8000]
    assert iommu.faults[0].iova == 0x6000
    assert bool(iommu.faults)
    iommu.faults.clear()
    assert not iommu.faults
    assert iommu.faults.recorded == 0


def test_fault_ring_rejects_bad_capacity(machine):
    from repro.iommu.iommu import FaultRing

    with pytest.raises(ConfigurationError):
        FaultRing(capacity=0)
    with pytest.raises(ConfigurationError):
        Iommu(machine, fault_capacity=-1)


def test_fault_emits_trace_event_and_counter(machine):
    from repro.obs.context import Observability
    from repro.obs.trace import EV_IOMMU_FAULT

    obs = Observability.capture()
    machine.obs = obs
    iommu = Iommu(machine)
    domain = iommu.attach_device(9)
    with pytest.raises(IommuFault):
        iommu.translate(domain, 0xbad000, is_write=False)
    kinds = obs.tracer.counts_by_kind()
    assert kinds[EV_IOMMU_FAULT] == 1
    assert obs.metrics.counters["iommu.faults"].value == 1
    # The exposure accountant got the forensic record too.
    assert len(obs.exposure.faults) == 1
    assert obs.exposure.faults[0].domain_id == domain.domain_id


def test_stale_iotlb_entry_survives_pt_unmap(iommu):
    """The crux of the deferred window: unmap without invalidation leaves
    the translation usable."""
    domain = iommu.attach_device(1)
    iommu.map_range(domain, 0x10000, 0x40000, PAGE_SIZE, Perm.RW)
    iommu.translate(domain, 0x10000, is_write=True)  # cache it
    iommu.unmap_range(domain, 0x10000, PAGE_SIZE)
    # Still translates via the stale IOTLB entry.
    assert iommu.translate(domain, 0x10000, is_write=True).pa == 0x40000
    # After invalidation, it faults.
    iommu.iotlb.invalidate_pages(domain.domain_id, 0x10)
    with pytest.raises(IommuFault):
        iommu.translate(domain, 0x10000, is_write=True)


def test_translating_port_moves_real_bytes(iommu, machine):
    domain = iommu.attach_device(1)
    port = TranslatingDmaPort(iommu, domain)
    # Map two *discontiguous* physical pages at contiguous IOVAs.
    iommu.map_range(domain, 0x10000, 0x40000, PAGE_SIZE, Perm.RW)
    iommu.map_range(domain, 0x11000, 0x99000, PAGE_SIZE, Perm.RW)
    data = bytes(range(256)) * 20  # 5120 B > one page
    port.dma_write(0x10000 + 3000, data[:2000])
    # Crosses from PA 0x40000+3000 into PA 0x99000.
    assert machine.memory.read(0x40000 + 3000, 1096) == data[:1096]
    assert machine.memory.read(0x99000, 904) == data[1096:2000]
    assert port.dma_read(0x10000 + 3000, 2000) == data[:2000]


def test_translating_port_write_needs_write_perm(iommu):
    domain = iommu.attach_device(1)
    port = TranslatingDmaPort(iommu, domain)
    iommu.map_range(domain, 0x10000, 0x40000, PAGE_SIZE, Perm.READ)
    with pytest.raises(IommuFault):
        port.dma_write(0x10000, b"nope")
    port.dma_read(0x10000, 4)  # read is fine


def test_passthrough_port(machine):
    port = PassthroughDmaPort(machine)
    port.dma_write(0x1234, b"raw")
    assert machine.memory.read(0x1234, 3) == b"raw"
    assert port.dma_read(0x1234, 3) == b"raw"
