"""Invalidation queue tests: functional removal + the contention model."""

import pytest

from repro.hw.cpu import CAT_INVALIDATE, Core
from repro.hw.locks import SpinLock
from repro.iommu.invalidation import InvalidationQueue, PendingInvalidation
from repro.iommu.iotlb import Iotlb
from repro.iommu.page_table import Perm, PteEntry
from repro.sim.costmodel import CostModel


@pytest.fixture
def cost():
    return CostModel()


def make_queue(cost, with_lock=True):
    tlb = Iotlb()
    lock = SpinLock("qi", cost) if with_lock else None
    return tlb, InvalidationQueue(tlb, cost, lock)


def test_sync_invalidation_removes_entries(cost):
    tlb, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    tlb.insert(1, 10, PteEntry(1, Perm.RW))
    q.invalidate_sync(core, 1, 10)
    assert not tlb.contains(1, 10)
    assert q.sync_invalidations == 1


def test_sync_invalidation_charges_invalidate_category(cost):
    _, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    q.invalidate_sync(core, 1, 10)
    # Submit + hardware latency + completion poll.
    expected_min = (cost.invq_submit_cycles
                    + cost.iotlb_invalidation_cycles
                    + cost.invq_wait_poll_cycles)
    assert core.breakdown[CAT_INVALIDATE] >= expected_min


def test_single_core_latency_is_idle_latency(cost):
    _, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    for _ in range(20):
        core.charge(10_000)  # spread out: no concurrency
        q.invalidate_sync(core, 1, 1)
    # The per-invalidation charge should stay near the idle latency.
    per = core.breakdown[CAT_INVALIDATE] / 20
    assert per <= cost.iotlb_invalidation_latency(1) * 1.6


def test_concurrent_submitters_degrade_latency(cost):
    """Fig. 8a: invalidation latency grows under multicore pressure."""
    _, q = make_queue(cost)
    cores = [Core(cid=i, numa_node=0) for i in range(16)]
    # Interleave submissions from 16 cores in a tight window.
    for _ in range(4):
        for core in cores:
            q.invalidate_sync(core, 1, 1)
    assert q.current_concurrency(cores[0]) >= 12
    latency = cost.iotlb_invalidation_latency(
        q.current_concurrency(cores[0]))
    assert latency >= 3 * cost.iotlb_invalidation_cycles


def test_concurrency_window_expires(cost):
    _, q = make_queue(cost)
    cores = [Core(cid=i, numa_node=0) for i in range(8)]
    for core in cores:
        q.invalidate_sync(core, 1, 1)
    lone = cores[0]
    lone.charge(10_000_000)  # far in the future
    assert q.current_concurrency(lone) == 1


def test_lock_serializes_submissions(cost):
    _, q = make_queue(cost)
    a = Core(cid=0, numa_node=0)
    b = Core(cid=1, numa_node=0)
    q.invalidate_sync(a, 1, 1)
    q.invalidate_sync(b, 1, 2)
    # b could not start before a's completion.
    assert b.now >= a.now - cost.invq_wait_poll_cycles
    assert q.lock.stats.acquisitions == 2


def test_flush_batch_invalidates_globally(cost):
    tlb, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    for page in range(5):
        tlb.insert(1, page, PteEntry(page, Perm.RW))
    pending = [PendingInvalidation(1, p, 1, 0) for p in range(3)]
    q.flush_batch(core, pending)
    # Linux's deferred flush is one *global* invalidation.
    assert len(tlb) == 0
    assert q.batch_flushes == 1
    assert tlb.stats.global_invalidations == 1


def test_flush_empty_batch_is_noop(cost):
    _, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    q.flush_batch(core, [])
    assert q.batch_flushes == 0
    assert core.busy_cycles == 0


def test_domain_invalidation(cost):
    tlb, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    tlb.insert(1, 1, PteEntry(1, Perm.RW))
    tlb.insert(2, 1, PteEntry(2, Perm.RW))
    q.invalidate_domain_sync(core, 1)
    assert not tlb.contains(1, 1)
    assert tlb.contains(2, 1)


def test_window_boundary_counts_consistently(cost):
    """Regression: a submission landing exactly on the concurrency-window
    boundary must be either counted *and* retained, or evicted *and*
    uncounted — eviction and counting share one predicate."""
    from repro.iommu.invalidation import _CONCURRENCY_WINDOW_CYCLES

    _, q = make_queue(cost, with_lock=False)
    a = Core(cid=0, numa_node=0)
    a.advance_to(1000)
    q._note_submission(a)
    boundary = 1000 + _CONCURRENCY_WINDOW_CYCLES
    # Exactly on the boundary: still counted ...
    assert q._window_concurrency(boundary) == 1
    # ... and therefore not evicted.
    assert len(q._recent) == 1
    # One cycle later: evicted, and the count agrees.
    assert q._window_concurrency(boundary + 1) == 0
    assert len(q._recent) == 0


def test_hardware_is_serialized_resource(cost):
    _, q = make_queue(cost, with_lock=False)
    a = Core(cid=0, numa_node=0)
    b = Core(cid=1, numa_node=0)
    q.invalidate_sync(a, 1, 1)
    q.invalidate_sync(b, 1, 2)  # no lock, but hardware still serializes
    assert q.hardware.completions == 2
    assert b.now > cost.iotlb_invalidation_cycles
