"""Invalidation queue tests: functional removal + the contention model."""

import pytest

from repro.hw.cpu import CAT_INVALIDATE, Core
from repro.hw.locks import SpinLock
from repro.iommu.invalidation import InvalidationQueue, PendingInvalidation
from repro.iommu.iotlb import Iotlb
from repro.iommu.page_table import Perm, PteEntry
from repro.sim.costmodel import CostModel


@pytest.fixture
def cost():
    return CostModel()


def make_queue(cost, with_lock=True):
    tlb = Iotlb()
    lock = SpinLock("qi", cost) if with_lock else None
    return tlb, InvalidationQueue(tlb, cost, lock)


def test_sync_invalidation_removes_entries(cost):
    tlb, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    tlb.insert(1, 10, PteEntry(1, Perm.RW))
    q.invalidate_sync(core, 1, 10)
    assert not tlb.contains(1, 10)
    assert q.sync_invalidations == 1


def test_sync_invalidation_charges_invalidate_category(cost):
    _, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    q.invalidate_sync(core, 1, 10)
    # Submit + hardware latency + completion poll.
    expected_min = (cost.invq_submit_cycles
                    + cost.iotlb_invalidation_cycles
                    + cost.invq_wait_poll_cycles)
    assert core.breakdown[CAT_INVALIDATE] >= expected_min


def test_single_core_latency_is_idle_latency(cost):
    _, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    for _ in range(20):
        core.charge(10_000)  # spread out: no concurrency
        q.invalidate_sync(core, 1, 1)
    # The per-invalidation charge should stay near the idle latency.
    per = core.breakdown[CAT_INVALIDATE] / 20
    assert per <= cost.iotlb_invalidation_latency(1) * 1.6


def test_concurrent_submitters_degrade_latency(cost):
    """Fig. 8a: invalidation latency grows under multicore pressure."""
    _, q = make_queue(cost)
    cores = [Core(cid=i, numa_node=0) for i in range(16)]
    # Interleave submissions from 16 cores in a tight window.
    for _ in range(4):
        for core in cores:
            q.invalidate_sync(core, 1, 1)
    assert q.current_concurrency(cores[0]) >= 12
    latency = cost.iotlb_invalidation_latency(
        q.current_concurrency(cores[0]))
    assert latency >= 3 * cost.iotlb_invalidation_cycles


def test_concurrency_window_expires(cost):
    _, q = make_queue(cost)
    cores = [Core(cid=i, numa_node=0) for i in range(8)]
    for core in cores:
        q.invalidate_sync(core, 1, 1)
    lone = cores[0]
    lone.charge(10_000_000)  # far in the future
    # Raw window count: a queue idle for a full window reports 0 — the
    # same definition _note_submission uses (which is >= 1 only because
    # a submission counts itself).
    assert q.current_concurrency(lone) == 0


def test_lock_serializes_submissions(cost):
    _, q = make_queue(cost)
    a = Core(cid=0, numa_node=0)
    b = Core(cid=1, numa_node=0)
    q.invalidate_sync(a, 1, 1)
    q.invalidate_sync(b, 1, 2)
    # b could not start before a's completion.
    assert b.now >= a.now - cost.invq_wait_poll_cycles
    assert q.lock.stats.acquisitions == 2


def test_flush_batch_invalidates_globally(cost):
    tlb, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    for page in range(5):
        tlb.insert(1, page, PteEntry(page, Perm.RW))
    pending = [PendingInvalidation(1, p, 1, 0) for p in range(3)]
    q.flush_batch(core, pending)
    # Linux's deferred flush is one *global* invalidation.
    assert len(tlb) == 0
    assert q.batch_flushes == 1
    assert tlb.stats.global_invalidations == 1


def test_flush_empty_batch_is_noop(cost):
    _, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    q.flush_batch(core, [])
    assert q.batch_flushes == 0
    assert core.busy_cycles == 0


def test_domain_invalidation(cost):
    tlb, q = make_queue(cost)
    core = Core(cid=0, numa_node=0)
    tlb.insert(1, 1, PteEntry(1, Perm.RW))
    tlb.insert(2, 1, PteEntry(2, Perm.RW))
    q.invalidate_domain_sync(core, 1)
    assert not tlb.contains(1, 1)
    assert tlb.contains(2, 1)


def test_window_boundary_counts_consistently(cost):
    """Regression: a submission landing exactly on the concurrency-window
    boundary must be either counted *and* retained, or evicted *and*
    uncounted — eviction and counting share one predicate."""
    from repro.iommu.invalidation import _CONCURRENCY_WINDOW_CYCLES

    _, q = make_queue(cost, with_lock=False)
    a = Core(cid=0, numa_node=0)
    a.advance_to(1000)
    q._note_submission(a)
    boundary = 1000 + _CONCURRENCY_WINDOW_CYCLES
    # Exactly on the boundary: still counted ...
    assert q._window_concurrency(boundary) == 1
    # ... and therefore not evicted.
    assert len(q._recent) == 1
    # One cycle later: evicted, and the count agrees.
    assert q._window_concurrency(boundary + 1) == 0
    assert len(q._recent) == 0


def test_hardware_is_serialized_resource(cost):
    _, q = make_queue(cost, with_lock=False)
    a = Core(cid=0, numa_node=0)
    b = Core(cid=1, numa_node=0)
    q.invalidate_sync(a, 1, 1)
    q.invalidate_sync(b, 1, 2)  # no lock, but hardware still serializes
    assert q.hardware.completions == 2
    assert b.now > cost.iotlb_invalidation_cycles


# ----------------------------------------------------------------------
# Scalable invalidation: ranged descriptors, pipelined shards, and the
# stall-recovery / flush accounting regressions (PR 10).
# ----------------------------------------------------------------------
def make_obs_queue(cost, faults=None, pipelined=False):
    from repro.obs.context import Observability

    obs = Observability.capture(trace_capacity=64)
    tlb = Iotlb()
    q = InvalidationQueue(tlb, cost, SpinLock("qi", cost, obs=obs),
                          obs=obs, faults=faults, pipelined=pipelined)
    return tlb, q, obs


def test_coalesce_pages_maximal_runs():
    from repro.iommu.invalidation import coalesce_pages

    assert coalesce_pages([]) == []
    assert coalesce_pages([4]) == [(4, 1)]
    assert coalesce_pages([5, 1, 2, 3, 9, 8]) == [(1, 3), (5, 1), (8, 2)]
    # Duplicates collapse; unordered input is fine.
    assert coalesce_pages([7, 7, 6, 8]) == [(6, 3)]


def test_invalidate_ranges_sync_posts_one_descriptor_per_run(cost):
    tlb, q, obs = make_obs_queue(cost)
    core = Core(cid=0, numa_node=0)
    for page in (1, 2, 3, 7):
        tlb.insert(1, page, PteEntry(page, Perm.RW))
    tlb.insert(1, 5, PteEntry(5, Perm.RW))  # untouched hole survivor
    q.invalidate_ranges_sync(core, 1, [1, 2, 3, 7])
    for page in (1, 2, 3, 7):
        assert not tlb.contains(1, page)
    assert tlb.contains(1, 5)
    assert q.sync_invalidations == 1
    # Two runs -> two page-scope descriptors in one submission.
    assert obs.metrics.counter("invalidation.submissions:page").value == 2
    assert q.lock.stats.acquisitions == 1


def test_ranged_submission_costs_grow_with_descriptors(cost):
    _, q1 = make_queue(cost, with_lock=False)
    _, q2 = make_queue(cost, with_lock=False)
    a = Core(cid=0, numa_node=0)
    b = Core(cid=0, numa_node=0)
    q1.invalidate_ranges_sync(a, 1, [1, 2, 3, 4])          # one run
    q2.invalidate_ranges_sync(b, 1, [1, 3, 5, 7])          # four runs
    # Same page count, more descriptors: strictly more cycles.
    assert b.now > a.now
    extra_one = cost.ranged_invalidation_extra_cycles(1, 4)
    extra_four = cost.ranged_invalidation_extra_cycles(4, 4)
    assert extra_four - extra_one == \
        3 * cost.invq_ranged_desc_service_cycles


def test_flush_batch_global_scope_names_no_pages(cost):
    """S3 pin: the legacy deferred flush is one global descriptor — it
    must not be accounted as covering the batch's summed pages."""
    tlb, q, obs = make_obs_queue(cost)
    core = Core(cid=0, numa_node=0)
    pending = [PendingInvalidation(1, 10, 4, 0),
               PendingInvalidation(2, 40, 2, 0)]
    q.flush_batch(core, pending)
    metrics = obs.metrics
    assert metrics.counter("invalidation.submissions:global").value == 1
    assert metrics.counter("invalidation.submissions:page").value == 0
    submit, = obs.tracer.events("inv.submit")
    assert submit.data["scope"] == "global"
    assert submit.data["pages"] == 0
    flush, = obs.tracer.events("inv.flush")
    assert flush.data["pages"] == 6
    assert flush.data["ranged"] is False


def test_ranged_flush_accounts_per_domain_descriptors(cost):
    """The ranged flush path posts page-scope descriptors per domain and
    closes only the named pages."""
    tlb, q, obs = make_obs_queue(cost)
    core = Core(cid=0, numa_node=0)
    for page in (10, 11, 12, 13):
        tlb.insert(1, page, PteEntry(page, Perm.RW))
    tlb.insert(2, 40, PteEntry(40, Perm.RW))
    tlb.insert(3, 99, PteEntry(99, Perm.RW))  # not in the batch
    pending = [PendingInvalidation(1, 10, 2, 0),
               PendingInvalidation(1, 12, 2, 0),   # coalesces with above
               PendingInvalidation(2, 40, 1, 0)]
    q.flush_batch(core, pending, ranged=True)
    for page in (10, 11, 12, 13):
        assert not tlb.contains(1, page)
    assert not tlb.contains(2, 40)
    assert tlb.contains(3, 99)  # a ranged flush is not global
    metrics = obs.metrics
    # Domain 1: one coalesced run; domain 2: one run.
    assert metrics.counter("invalidation.submissions:page").value == 2
    assert metrics.counter("invalidation.submissions:global").value == 0
    assert tlb.stats.global_invalidations == 0
    flush, = obs.tracer.events("inv.flush")
    assert flush.data["ranged"] is True
    assert flush.data["descriptors"] == 2
    assert flush.data["pages"] == 5


def _stall_injector(at):
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import SITE_INV_STALL, FaultPlan, SiteRule

    injector = FaultInjector(FaultPlan(rules={
        SITE_INV_STALL: SiteRule(at=at)}))
    injector.start()
    return injector


def test_stall_retry_is_a_visible_submission(cost):
    """S1 pin: a stall-recovery re-submit must land in the concurrency
    window and sample the concurrency/queue-depth series, like any other
    submission."""
    faults = _stall_injector(at=(1,))  # first submit stalls, retry lands
    tlb, q, obs = make_obs_queue(cost, faults=faults)
    core = Core(cid=0, numa_node=0)
    q.invalidate_sync(core, 1, 10)
    assert q.timeouts == 1
    assert q.recovered_stalls == 1
    assert q.queue_resets == 0
    # Original submission + the retry are both in the window deque.
    assert len(q._recent) == 2
    # Both instants were sampled by the series.
    assert len(obs.metrics.series("invalidation.concurrency").samples) == 2
    assert len(obs.metrics.series("invalidation.queue_depth").samples) == 2


def test_queue_reset_counts_as_submission(cost):
    """S1 pin, reset path: the queue-reset's global flush is a
    submission too."""
    faults = _stall_injector(at=(1, 2, 3, 4))  # every attempt stalls
    tlb, q, obs = make_obs_queue(cost, faults=faults)
    core = Core(cid=0, numa_node=0)
    q.invalidate_sync(core, 1, 10)
    assert q.queue_resets == 1
    assert q.timeouts == 4
    # 1 original + 3 retries + 1 reset flush.
    assert len(q._recent) == 5


def test_pipelined_queue_overlaps_hardware_service(cost):
    """Pipelined shards: concurrent submitters from different shards
    overlap in the engine; a shared ring serializes them end-to-end."""
    def makespan(pipelined):
        tlb = Iotlb()
        q = InvalidationQueue(tlb, cost, pipelined=pipelined)
        cores = [Core(cid=i, numa_node=0) for i in range(8)]
        for core in cores:
            q.invalidate_sync(core, 1, core.cid)
        return max(core.now for core in cores)

    assert makespan(True) < makespan(False) / 2
    # A lone pipelined submission still observes the full idle latency.
    tlb = Iotlb()
    q = InvalidationQueue(tlb, cost, pipelined=True)
    lone = Core(cid=0, numa_node=0)
    q.invalidate_sync(lone, 1, 1)
    assert lone.now >= cost.iotlb_invalidation_latency(1)
