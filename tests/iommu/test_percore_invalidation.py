"""Per-core invalidation queues: sharding, shard-count invariance, the
scalable schemes' security invariants, and the bounded deferred window.

Patterned after ``tests/sim/test_engine_batched.py``: structural knobs
(shard count here, burst size there) must not change what the simulation
*computes* — only contention, which these tests pin from both sides.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dma.api import DmaDirection
from repro.dma.registry import SCALABLE_SCHEMES, create_dma_api
from repro.hw.cpu import Core
from repro.hw.machine import Machine
from repro.iommu.invalidation import (
    InvalidationQueue,
    PerCoreInvalidationQueue,
)
from repro.iommu.iommu import Iommu
from repro.iommu.iotlb import Iotlb
from repro.iommu.page_table import Perm, PteEntry
from repro.kalloc.slab import KernelAllocators
from repro.obs.context import Observability
from repro.sim.costmodel import CostModel
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx


@pytest.fixture
def cost():
    return CostModel()


def make_percore(cost, nqueues):
    tlb = Iotlb()
    return tlb, PerCoreInvalidationQueue(tlb, cost, nqueues=nqueues)


# ----------------------------------------------------------------------
# Facade behaviour.
# ----------------------------------------------------------------------
def test_shards_have_private_locks(cost):
    tlb, q = make_percore(cost, nqueues=4)
    cores = [Core(cid=i, numa_node=0) for i in range(4)]
    for core in cores:
        q.invalidate_sync(core, 1, core.cid)
    for shard in q.shards:
        assert shard.lock.stats.acquisitions == 1
        assert shard.lock.stats.contended_acquisitions == 0
    # The aggregated lock view sums the shards for invq.lock consumers.
    assert q.lock.stats.acquisitions == 4
    assert q.lock.stats.total_wait_cycles == 0
    assert q.sync_invalidations == 4


def test_shard_routing_wraps_by_cid(cost):
    _, q = make_percore(cost, nqueues=2)
    assert q._shard(Core(cid=0, numa_node=0)) is q.shards[0]
    assert q._shard(Core(cid=3, numa_node=0)) is q.shards[1]


def test_shards_share_one_hardware_engine(cost):
    _, q = make_percore(cost, nqueues=4)
    cores = [Core(cid=i, numa_node=0) for i in range(4)]
    for core in cores:
        q.invalidate_sync(core, 1, core.cid)
    assert q.hardware.completions == 4
    for shard in q.shards:
        assert shard.hardware is q.hardware


def test_shards_share_the_concurrency_window(cost):
    _, q = make_percore(cost, nqueues=4)
    cores = [Core(cid=i, numa_node=0) for i in range(4)]
    for core in cores:
        q.invalidate_sync(core, 1, core.cid)
    # All four submissions are visible through any shard's window.
    assert q.current_concurrency(cores[0]) == 4


def test_enable_percore_invalidation_is_idempotent():
    machine = Machine.build(cores=4, numa_nodes=1)
    iommu = Iommu(machine)
    first = iommu.enable_percore_invalidation()
    assert isinstance(first, PerCoreInvalidationQueue)
    assert first.nqueues == 4
    assert iommu.enable_percore_invalidation() is first
    assert iommu.invalidation_queue is first


# ----------------------------------------------------------------------
# Shard-count invariance: with temporally disjoint submitters (zero
# contention everywhere), the shard count is invisible — identical
# clocks, identical IOTLB effects.
# ----------------------------------------------------------------------
def _disjoint_run(cost, nqueues):
    tlb, q = make_percore(cost, nqueues=nqueues)
    for page in range(32):
        tlb.insert(1, page, PteEntry(page, Perm.RW))
    cores = [Core(cid=i, numa_node=0) for i in range(4)]
    for step in range(4):
        for core in cores:
            core.advance_to((step * 4 + core.cid) * 1_000_000)
            q.invalidate_ranges_sync(core, 1,
                                     [step * 8 + core.cid, step * 8 + 7])
    return ([core.now for core in cores],
            [core.busy_cycles for core in cores],
            sorted(tlb._entries), vars(tlb.stats).copy(),
            q.sync_invalidations)


@pytest.mark.parametrize("nqueues", (1, 2, 4))
def test_shard_count_is_invisible_without_contention(cost, nqueues):
    assert _disjoint_run(cost, nqueues) == _disjoint_run(cost, 4)


def test_percore_beats_shared_ring_under_contention(cost):
    """The point of the subsystem: concurrent strict invalidations finish
    far sooner on sharded pipelined queues than on the shared ring."""
    def makespan(make_queue):
        tlb = Iotlb()
        q = make_queue(tlb)
        cores = [Core(cid=i, numa_node=0) for i in range(8)]
        for _ in range(4):
            for core in cores:
                q.invalidate_sync(core, 1, core.cid)
        return max(core.now for core in cores)

    from repro.hw.locks import SpinLock

    shared = makespan(lambda tlb: InvalidationQueue(
        tlb, cost, SpinLock("qi-lock", cost)))
    sharded = makespan(lambda tlb: PerCoreInvalidationQueue(
        tlb, cost, nqueues=8))
    assert sharded < shared / 3


# ----------------------------------------------------------------------
# Security invariants of the scalable schemes.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ("identity-strict-percore",
                                    "identity-strict-prefetch"))
def test_strict_percore_zero_stale_window(scheme):
    """Both strict variants invalidate before dma_unmap returns, so the
    exposure accountant must see no stale-window byte·cycles at all."""
    obs = Observability.capture(trace_capacity=256)
    result = run_tcp_stream_rx(StreamConfig(
        scheme=scheme, message_size=16384, cores=4,
        units_per_core=30, warmup_units=8, obs=obs))
    exposure = result.extras["exposure"]
    assert exposure["stale_byte_cycles"] == 0
    assert exposure["stale_accesses"] == 0


def test_prefetch_hits_are_counted_separately():
    obs = Observability.capture(trace_capacity=256)
    result = run_tcp_stream_rx(StreamConfig(
        scheme="identity-strict-prefetch", message_size=16384, cores=2,
        units_per_core=30, warmup_units=8, obs=obs))
    iotlb = result.extras["iotlb"]
    assert iotlb["prefetches"] > 0
    assert 0 <= iotlb["prefetch_hits"] <= iotlb["prefetches"]
    # The classic schemes never prefetch (column stays absent/zero).
    obs2 = Observability.capture(trace_capacity=256)
    baseline = run_tcp_stream_rx(StreamConfig(
        scheme="identity-strict", message_size=16384, cores=2,
        units_per_core=30, warmup_units=8, obs=obs2))
    assert baseline.extras["iotlb"]["prefetches"] == 0


def test_scalable_schemes_share_one_iommu(machine, allocators, iommu):
    """The registry's enable_percore_invalidation must be idempotent
    across schemes built against one shared IOMMU (fixture pattern)."""
    apis = [create_dma_api(scheme, machine, iommu, device_id=0x200 + i,
                           allocators=allocators)
            for i, scheme in enumerate(SCALABLE_SCHEMES)]
    assert isinstance(iommu.invalidation_queue, PerCoreInvalidationQueue)
    for api in apis:
        assert api.iommu.invalidation_queue is iommu.invalidation_queue


# ----------------------------------------------------------------------
# Bounded deferred window (identity-deferred-bounded).
# ----------------------------------------------------------------------
def _bounded_api(cores=4):
    machine = Machine.build(cores=cores, numa_nodes=1)
    allocators = KernelAllocators(machine)
    iommu = Iommu(machine)
    api = create_dma_api("identity-deferred-bounded", machine, iommu,
                         device_id=1, allocators=allocators)
    return machine, allocators, api


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=400_000)),
    min_size=1, max_size=50))
def test_bounded_window_never_exceeds_budget(steps):
    """After every dma_unmap returns, no pending entry in the unmapping
    core's slot is older than the window budget — the budget-expiry
    check runs on the unmap path itself, under hypothesis-driven
    interleavings of cores and idle gaps."""
    machine, allocators, api = _bounded_api()
    budget = api.window_budget_cycles
    assert budget == machine.cost.deferred_window_budget_cycles
    for cid, gap in steps:
        core = machine.cores[cid]
        core.advance_to(core.now + gap)
        buf = allocators.kmalloc(2048, node=0)
        handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
        api.dma_unmap(core, handle)
        allocators.kfree(buf, core)
        for entry in api._pending[core.cid]:
            assert core.now - entry.queued_at < budget


def test_bounded_budget_forces_flush_before_batch_full():
    """A trickle workload (far below the 250-entry batch) still flushes
    once the oldest entry ages past the budget."""
    machine, allocators, api = _bounded_api(cores=1)
    core = machine.cores[0]
    budget = api.window_budget_cycles
    buf = allocators.kmalloc(2048, node=0)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    api.dma_unmap(core, handle)
    assert api.pending_invalidations == 1
    # Age the entry past the budget; the next unmap must trigger a flush.
    core.advance_to(core.now + budget + 1)
    buf2 = allocators.kmalloc(2048, node=0)
    handle2 = api.dma_map(core, buf2, DmaDirection.FROM_DEVICE)
    api.dma_unmap(core, handle2)
    assert api.iommu.invalidation_queue.batch_flushes >= 1
    assert all(core.now - p.queued_at < budget
               for p in api._pending[core.cid])
