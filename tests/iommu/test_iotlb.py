"""IOTLB cache tests."""

import pytest

from repro.iommu.iotlb import Iotlb
from repro.iommu.page_table import Perm, PteEntry


def entry(pfn):
    return PteEntry(pfn=pfn, perm=Perm.RW)


def test_miss_then_hit():
    tlb = Iotlb()
    assert tlb.lookup(1, 100) is None
    tlb.insert(1, 100, entry(7))
    assert tlb.lookup(1, 100).pfn == 7
    assert tlb.stats.misses == 1
    assert tlb.stats.hits == 1
    assert tlb.stats.hit_rate == pytest.approx(0.5)


def test_domains_are_isolated():
    tlb = Iotlb()
    tlb.insert(1, 100, entry(7))
    assert tlb.lookup(2, 100) is None


def test_lru_eviction():
    tlb = Iotlb(capacity=2)
    tlb.insert(1, 1, entry(1))
    tlb.insert(1, 2, entry(2))
    tlb.lookup(1, 1)              # touch 1 → 2 becomes LRU
    tlb.insert(1, 3, entry(3))    # evicts 2
    assert tlb.contains(1, 1)
    assert not tlb.contains(1, 2)
    assert tlb.contains(1, 3)
    assert tlb.stats.evictions == 1


def test_invalidate_pages_range():
    tlb = Iotlb()
    for page in range(10):
        tlb.insert(1, page, entry(page))
    removed = tlb.invalidate_pages(1, 2, npages=3)
    assert removed == 3
    assert not tlb.contains(1, 3)
    assert tlb.contains(1, 5)
    assert tlb.stats.invalidations == 1


def test_invalidate_missing_pages_counts_zero():
    tlb = Iotlb()
    assert tlb.invalidate_pages(1, 99, 4) == 0


def test_invalidate_domain():
    tlb = Iotlb()
    tlb.insert(1, 1, entry(1))
    tlb.insert(2, 1, entry(2))
    assert tlb.invalidate_domain(1) == 1
    assert not tlb.contains(1, 1)
    assert tlb.contains(2, 1)


def test_invalidate_all():
    tlb = Iotlb()
    for page in range(5):
        tlb.insert(3, page, entry(page))
    assert tlb.invalidate_all() == 5
    assert len(tlb) == 0
    assert tlb.stats.global_invalidations == 1


def test_contains_does_not_perturb():
    tlb = Iotlb()
    tlb.insert(1, 1, entry(1))
    tlb.contains(1, 2)
    assert tlb.stats.misses == 0


def test_contains_does_not_reorder_lru():
    tlb = Iotlb(capacity=2)
    tlb.insert(1, 1, entry(1))
    tlb.insert(1, 2, entry(2))
    tlb.contains(1, 1)            # must NOT freshen entry 1
    tlb.insert(1, 3, entry(3))    # so entry 1 is still the LRU victim
    assert not tlb.contains(1, 1)
    assert tlb.contains(1, 2)
    assert tlb.contains(1, 3)


def test_peek_does_not_reorder_lru_or_touch_stats():
    tlb = Iotlb(capacity=2)
    tlb.insert(1, 1, entry(7))
    tlb.insert(1, 2, entry(8))
    assert tlb.peek(1, 1).pfn == 7
    assert tlb.peek(1, 99) is None
    assert tlb.stats.hits == 0
    assert tlb.stats.misses == 0
    tlb.insert(1, 3, entry(9))    # peek didn't freshen 1: it's evicted
    assert not tlb.contains(1, 1)


def test_invalidation_op_and_entry_counts_are_distinct():
    tlb = Iotlb()
    for page in range(4):
        tlb.insert(1, page, entry(page))
    # One op covering 8 pages, only 4 of them cached.
    assert tlb.invalidate_pages(1, 0, npages=8) == 4
    assert tlb.stats.invalidations == 1
    assert tlb.stats.invalidated_entries == 4
    # An op over nothing still counts as an op, removes no entries.
    assert tlb.invalidate_pages(1, 50, npages=2) == 0
    assert tlb.stats.invalidations == 2
    assert tlb.stats.invalidated_entries == 4


def test_invalidate_domain_and_all_count_removed_entries():
    tlb = Iotlb()
    tlb.insert(1, 1, entry(1))
    tlb.insert(1, 2, entry(2))
    tlb.insert(2, 1, entry(3))
    tlb.invalidate_domain(1)
    assert tlb.stats.invalidated_entries == 2
    tlb.invalidate_all()
    assert tlb.stats.invalidated_entries == 3
    assert tlb.stats.global_invalidations == 1


def test_evictions_are_not_invalidations():
    tlb = Iotlb(capacity=1)
    tlb.insert(1, 1, entry(1))
    tlb.insert(1, 2, entry(2))    # capacity eviction of page 1
    assert tlb.stats.evictions == 1
    assert tlb.stats.invalidations == 0
    assert tlb.stats.invalidated_entries == 0


def test_insert_updates_existing():
    tlb = Iotlb(capacity=4)
    tlb.insert(1, 1, entry(1))
    tlb.insert(1, 1, entry(9))
    assert tlb.lookup(1, 1).pfn == 9
    assert len(tlb) == 1


def test_bad_capacity_rejected():
    with pytest.raises(ValueError):
        Iotlb(capacity=0)
