"""Cross-domain isolation properties of the IOMMU model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IommuFault
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu, TranslatingDmaPort
from repro.iommu.page_table import Perm
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def iommu():
    return Iommu(Machine.build(cores=2, numa_nodes=1))


def test_domains_cannot_use_each_others_mappings(iommu):
    d1 = iommu.attach_device(1)
    d2 = iommu.attach_device(2)
    iommu.map_range(d1, 0x10000, 0x40000, PAGE_SIZE, Perm.RW)
    iommu.translate(d1, 0x10000, is_write=True)
    with pytest.raises(IommuFault):
        iommu.translate(d2, 0x10000, is_write=True)


def test_iotlb_entries_are_domain_tagged(iommu):
    """A cached translation for one domain must not serve another — even
    for the *same* IOVA page."""
    d1 = iommu.attach_device(1)
    d2 = iommu.attach_device(2)
    iommu.map_range(d1, 0x10000, 0x40000, PAGE_SIZE, Perm.RW)
    iommu.map_range(d2, 0x10000, 0x90000, PAGE_SIZE, Perm.RW)
    assert iommu.translate(d1, 0x10000, is_write=False).pa == 0x40000
    assert iommu.translate(d2, 0x10000, is_write=False).pa == 0x90000


def test_domain_invalidation_leaves_other_domains(iommu):
    d1 = iommu.attach_device(1)
    d2 = iommu.attach_device(2)
    iommu.map_range(d1, 0x10000, 0x40000, PAGE_SIZE, Perm.RW)
    iommu.map_range(d2, 0x10000, 0x90000, PAGE_SIZE, Perm.RW)
    iommu.translate(d1, 0x10000, is_write=False)
    iommu.translate(d2, 0x10000, is_write=False)
    core = iommu.machine.core(0)
    iommu.invalidation_queue.invalidate_domain_sync(core, d1.domain_id)
    assert not iommu.iotlb.contains(d1.domain_id, 0x10)
    assert iommu.iotlb.contains(d2.domain_id, 0x10)


def test_ports_are_domain_bound(iommu):
    d1 = iommu.attach_device(1)
    d2 = iommu.attach_device(2)
    iommu.map_range(d1, 0x10000, 0x40000, PAGE_SIZE, Perm.RW)
    p1 = TranslatingDmaPort(iommu, d1)
    p2 = TranslatingDmaPort(iommu, d2)
    p1.dma_write(0x10000, b"mine")
    with pytest.raises(IommuFault):
        p2.dma_write(0x10000, b"not mine")
    assert iommu.machine.memory.read(0x40000, 4) == b"mine"


@settings(max_examples=25, deadline=None)
@given(pages=st.lists(st.tuples(st.integers(1, 2), st.integers(1, 200)),
                      min_size=1, max_size=40, unique=True))
def test_random_mappings_never_leak_across_domains(pages):
    iommu = Iommu(Machine.build(cores=1, numa_nodes=1))
    d = {1: iommu.attach_device(1), 2: iommu.attach_device(2)}
    mapped = set()
    for dev, page in pages:
        iommu.map_range(d[dev], page << 12, (0x1000 + page) << 12,
                        PAGE_SIZE, Perm.RW)
        mapped.add((dev, page))
    for dev, page in mapped:
        other = 2 if dev == 1 else 1
        assert iommu.translate(d[dev], page << 12, is_write=True)
        if (other, page) not in mapped:
            with pytest.raises(IommuFault):
                iommu.translate(d[other], page << 12, is_write=True)
