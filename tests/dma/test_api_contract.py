"""DMA API contract tests — run against every scheme via the factory."""

import pytest

from repro.dma.api import DmaDirection, DmaHandle
from repro.dma.registry import ALL_SCHEMES
from repro.errors import DmaApiError


@pytest.fixture(params=ALL_SCHEMES)
def api(request, make_api):
    return make_api(request.param)


def _buf(allocators, size=1500):
    return allocators.kmalloc(size, node=0)


def test_map_returns_handle(api, machine, allocators):
    core = machine.core(0)
    buf = _buf(allocators)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    assert handle.size == buf.size
    assert handle.direction is DmaDirection.FROM_DEVICE
    assert api.live_mappings == 1
    api.dma_unmap(core, handle)
    assert api.live_mappings == 0


def test_double_unmap_rejected(api, machine, allocators):
    core = machine.core(0)
    handle = api.dma_map(core, _buf(allocators), DmaDirection.TO_DEVICE)
    api.dma_unmap(core, handle)
    with pytest.raises(DmaApiError):
        api.dma_unmap(core, handle)


def test_unmap_unknown_handle_rejected(api, machine):
    core = machine.core(0)
    fake = DmaHandle(iova=0xdeadbeef000, size=100,
                     direction=DmaDirection.TO_DEVICE)
    with pytest.raises(DmaApiError):
        api.dma_unmap(core, fake)


def test_unmap_mismatched_handle_rejected(api, machine, allocators):
    core = machine.core(0)
    handle = api.dma_map(core, _buf(allocators), DmaDirection.TO_DEVICE)
    tampered = DmaHandle(iova=handle.iova, size=handle.size + 1,
                         direction=handle.direction)
    with pytest.raises(DmaApiError):
        api.dma_unmap(core, tampered)
    api.dma_unmap(core, handle)  # original still valid


def test_empty_buffer_rejected(api, machine, allocators):
    from repro.kalloc.slab import KBuffer

    core = machine.core(0)
    with pytest.raises(DmaApiError):
        api.dma_map(core, KBuffer(pa=0x1000, size=0, node=0),
                    DmaDirection.TO_DEVICE)


def test_sg_maps_each_element(api, machine, allocators):
    core = machine.core(0)
    bufs = [_buf(allocators, 512) for _ in range(4)]
    handles = api.dma_map_sg(core, bufs, DmaDirection.TO_DEVICE)
    assert len(handles) == 4
    assert len({h.iova for h in handles}) == 4
    assert api.stats.sg_maps == 1
    api.dma_unmap_sg(core, handles)
    assert api.live_mappings == 0


def test_sg_empty_rejected(api, machine):
    core = machine.core(0)
    with pytest.raises(DmaApiError):
        api.dma_map_sg(core, [], DmaDirection.TO_DEVICE)


def test_stats_counters(api, machine, allocators):
    core = machine.core(0)
    h1 = api.dma_map(core, _buf(allocators, 100), DmaDirection.TO_DEVICE)
    h2 = api.dma_map(core, _buf(allocators, 200), DmaDirection.FROM_DEVICE)
    api.dma_unmap(core, h1)
    assert api.stats.maps == 2
    assert api.stats.unmaps == 1
    assert api.stats.bytes_mapped == 300
    api.dma_unmap(core, h2)


def test_coherent_alloc_free(api, machine):
    core = machine.core(0)
    buf = api.dma_alloc_coherent(core, 8192)
    assert buf.size == 8192
    assert buf.kbuf.pa % 4096 == 0
    # The CPU can write it directly; the device can read it at its IOVA.
    machine.memory.write(buf.kbuf.pa, b"ring descriptor")
    assert api.port().dma_read(buf.iova, 15) == b"ring descriptor"
    api.dma_free_coherent(core, buf)


def test_coherent_double_free_rejected(api, machine):
    core = machine.core(0)
    buf = api.dma_alloc_coherent(core, 4096)
    api.dma_free_coherent(core, buf)
    with pytest.raises((DmaApiError, KeyError)):
        api.dma_free_coherent(core, buf)


def test_direction_perms():
    assert DmaDirection.TO_DEVICE.device_reads
    assert not DmaDirection.TO_DEVICE.device_writes
    assert DmaDirection.FROM_DEVICE.device_writes
    assert not DmaDirection.FROM_DEVICE.device_reads
    assert DmaDirection.BIDIRECTIONAL.device_reads
    assert DmaDirection.BIDIRECTIONAL.device_writes
