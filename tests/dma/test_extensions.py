"""Tests for the §7 related-work extension schemes: SWIOTLB bounce
buffers and the Basu-et-al self-invalidating IOMMU."""

import pytest

from repro.dma.api import DmaDirection
from repro.dma.selfinval import SelfInvalidatingDmaApi
from repro.dma.swiotlb import SWIOTLB_SLOT_BYTES, SwiotlbDmaApi
from repro.errors import IommuFault, PoolExhaustedError


# ----------------------------------------------------------------------
# SWIOTLB.
# ----------------------------------------------------------------------
@pytest.fixture
def swiotlb(make_api):
    return make_api("swiotlb")


def test_swiotlb_bounces_through_pool(swiotlb, machine, allocators):
    core = machine.core(0)
    buf = allocators.kmalloc(1500, node=0)
    machine.memory.write(buf.pa, b"outbound")
    handle = swiotlb.dma_map(core, buf, DmaDirection.TO_DEVICE)
    # The device address is inside the bounce pool, not the buffer.
    assert (swiotlb.pool_base <= handle.iova
            < swiotlb.pool_base + swiotlb.pool_slots * SWIOTLB_SLOT_BYTES)
    assert handle.iova != buf.pa
    assert swiotlb.port().dma_read(handle.iova, 8) == b"outbound"
    swiotlb.dma_unmap(core, handle)


def test_swiotlb_copies_back(swiotlb, machine, allocators):
    core = machine.core(0)
    buf = allocators.kmalloc(1500, node=0)
    handle = swiotlb.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    swiotlb.port().dma_write(handle.iova, b"inbound")
    swiotlb.dma_unmap(core, handle)
    assert machine.memory.read(buf.pa, 7) == b"inbound"


def test_swiotlb_provides_no_protection(swiotlb, machine, allocators):
    """§7: SWIOTLB copies but 'provides no protection from DMA attacks'."""
    core = machine.core(0)
    secret = allocators.kmalloc(64, node=0)
    machine.memory.write(secret.pa, b"SECRET")
    # The device reads arbitrary physical memory, mapping or not.
    assert swiotlb.port().dma_read(secret.pa, 6) == b"SECRET"


def test_swiotlb_slot_reuse(swiotlb, machine, allocators):
    core = machine.core(0)
    buf = allocators.kmalloc(1024, node=0)
    h1 = swiotlb.dma_map(core, buf, DmaDirection.TO_DEVICE)
    swiotlb.dma_unmap(core, h1)
    h2 = swiotlb.dma_map(core, buf, DmaDirection.TO_DEVICE)
    assert h2.iova == h1.iova  # freed slots recycle
    swiotlb.dma_unmap(core, h2)


def test_swiotlb_pool_exhaustion(machine, allocators):
    api = SwiotlbDmaApi(machine, allocators, pool_slots=4)
    core = machine.core(0)
    buf = allocators.kmalloc(SWIOTLB_SLOT_BYTES, node=0)
    handles = [api.dma_map(core, buf_, DmaDirection.TO_DEVICE)
               for buf_ in (allocators.kmalloc(2048, node=0)
                            for _ in range(4))]
    with pytest.raises(PoolExhaustedError):
        api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    for h in handles:
        api.dma_unmap(core, h)


def test_swiotlb_multislot_allocations(swiotlb, machine, allocators):
    core = machine.core(0)
    big = allocators.kmalloc(10_000, node=0)  # needs 5 slots
    data = (bytes(range(256)) * 40)[:10_000]
    machine.memory.write(big.pa, data)
    handle = swiotlb.dma_map(core, big, DmaDirection.TO_DEVICE)
    assert swiotlb.port().dma_read(handle.iova, len(data)) == data
    swiotlb.dma_unmap(core, handle)


# ----------------------------------------------------------------------
# Self-invalidating IOMMU.
# ----------------------------------------------------------------------
@pytest.fixture
def selfinval(make_api):
    return make_api("self-invalidating", dma_budget=4, lifetime_us=50.0)


def test_selfinval_unmap_is_nearly_free(selfinval, machine, allocators,
                                        iommu):
    core = machine.core(0)
    buf = allocators.kmalloc(4096, node=0)
    before_inv = iommu.invalidation_queue.sync_invalidations
    handle = selfinval.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    map_cycles = core.busy_cycles
    selfinval.dma_unmap(core, handle)
    unmap_cycles = core.busy_cycles - map_cycles
    # No software invalidation, no page-table teardown.
    assert iommu.invalidation_queue.sync_invalidations == before_inv
    assert unmap_cycles < 100


def test_selfinval_budget_expiry_blocks_device(selfinval, machine,
                                               allocators):
    """The hardware revokes the mapping after ``dma_budget`` DMAs."""
    core = machine.core(0)
    buf = allocators.kmalloc(4096, node=0)
    handle = selfinval.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    for _ in range(4):  # exactly the budget
        selfinval.port().dma_write(handle.iova, b"ok")
    with pytest.raises(IommuFault) as exc:
        selfinval.port().dma_write(handle.iova, b"over budget")
    assert "self-invalidated" in str(exc.value)
    assert selfinval.self_invalidations == 1
    selfinval.dma_unmap(core, handle)


def test_selfinval_lifetime_expiry(selfinval, machine, allocators):
    core = machine.core(0)
    buf = allocators.kmalloc(4096, node=0)
    handle = selfinval.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    selfinval.port().dma_write(handle.iova, b"fresh")
    core.charge(1_000_000)  # >> 50 µs lifetime
    with pytest.raises(IommuFault):
        selfinval.port().dma_write(handle.iova, b"stale")
    selfinval.dma_unmap(core, handle)


def test_selfinval_window_is_bounded(selfinval, machine, allocators):
    """A window exists after unmap (like deferred) but the hardware
    closes it without any software action."""
    core = machine.core(0)
    buf = allocators.kmalloc(4096, node=0)
    handle = selfinval.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    selfinval.port().dma_write(handle.iova, b"legit")
    selfinval.dma_unmap(core, handle)
    # Window: still writable right after unmap...
    selfinval.port().dma_write(handle.iova, b"window")
    # ...until the budget drains.
    for _ in range(2):
        selfinval.port().dma_write(handle.iova, b"drain")
    with pytest.raises(IommuFault):
        selfinval.port().dma_write(handle.iova, b"closed")


def test_selfinval_expire_all_hook(selfinval, machine, allocators):
    core = machine.core(0)
    bufs = [allocators.kmalloc(4096, node=0) for _ in range(3)]
    handles = [selfinval.dma_map(core, b, DmaDirection.FROM_DEVICE)
               for b in bufs]
    assert selfinval.expire_all() == 3
    for h in handles:
        with pytest.raises(IommuFault):
            selfinval.port().dma_write(h.iova, b"x")
        selfinval.dma_unmap(core, h)


def test_selfinval_coherent_mappings_never_expire(selfinval, machine):
    core = machine.core(0)
    ring = selfinval.dma_alloc_coherent(core, 4096)
    for _ in range(20):  # far past any budget
        selfinval.port().dma_write(ring.iova, b"descriptor")
    core.charge(10_000_000)
    selfinval.port().dma_write(ring.iova, b"still alive")
    selfinval.dma_free_coherent(core, ring)


def test_selfinval_overlapping_subpage_maps(selfinval, machine, allocators):
    slab = allocators.slabs[0]
    core = machine.core(0)
    a, b = slab.kmalloc(512), slab.kmalloc(512)
    ha = selfinval.dma_map(core, a, DmaDirection.TO_DEVICE)
    hb = selfinval.dma_map(core, b, DmaDirection.TO_DEVICE)
    assert ha.iova != hb.iova
    selfinval.port().dma_read(hb.iova, 16)
    selfinval.dma_unmap(core, ha)
    selfinval.dma_unmap(core, hb)
