"""Zero-copy scheme tests: strict invalidation, deferred batching, page
refcounting, permission widening."""

import pytest

from repro.dma.api import DmaDirection
from repro.errors import IommuFault
from repro.iommu.page_table import Perm
from repro.sim.units import PAGE_SIZE, us_to_cycles


def test_strict_invalidates_every_unmap(make_api, machine, allocators, iommu):
    api = make_api("identity-strict")
    core = machine.core(0)
    before = iommu.invalidation_queue.sync_invalidations
    for _ in range(5):
        buf = allocators.kmalloc(PAGE_SIZE, node=0)
        handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
        api.dma_unmap(core, handle)
        allocators.kfree(buf)
    assert iommu.invalidation_queue.sync_invalidations == before + 5


def test_strict_blocks_immediately_after_unmap(make_api, machine, allocators):
    api = make_api("identity-strict")
    core = machine.core(0)
    buf = allocators.kmalloc(PAGE_SIZE, node=0)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    api.port().dma_write(handle.iova, b"in-flight")
    api.dma_unmap(core, handle)
    with pytest.raises(IommuFault):
        api.port().dma_write(handle.iova, b"too late")


def test_deferred_window_stays_open_until_batch(make_api, machine,
                                                allocators, iommu):
    api = make_api("identity-deferred")
    core = machine.core(0)
    buf = allocators.kmalloc(PAGE_SIZE, node=0)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    api.port().dma_write(handle.iova, b"legit")  # cache translation
    api.dma_unmap(core, handle)
    assert api.window_open()
    api.port().dma_write(handle.iova, b"window")  # still works!
    api.flush_deferred(core)
    assert not api.window_open()
    with pytest.raises(IommuFault):
        api.port().dma_write(handle.iova, b"closed")


def test_deferred_flushes_at_batch_size(make_api, machine, allocators, iommu):
    api = make_api("identity-deferred")
    core = machine.core(0)
    batch = machine.cost.deferred_batch_size
    flushes_before = iommu.invalidation_queue.batch_flushes
    for _ in range(batch):
        buf = allocators.kmalloc(PAGE_SIZE, node=0)
        handle = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
        api.dma_unmap(core, handle)
        allocators.kfree(buf)
    assert iommu.invalidation_queue.batch_flushes == flushes_before + 1
    assert api.pending_invalidations == 0


def test_deferred_flushes_on_timeout(make_api, machine, allocators, iommu):
    api = make_api("identity-deferred")
    core = machine.core(0)
    buf = allocators.kmalloc(PAGE_SIZE, node=0)
    h = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    api.dma_unmap(core, h)
    assert api.window_open()
    # 10 ms pass; the next unmap triggers the timeout flush.
    core.charge(us_to_cycles(10_001.0))
    buf2 = allocators.kmalloc(PAGE_SIZE, node=0)
    h2 = api.dma_map(core, buf2, DmaDirection.TO_DEVICE)
    api.dma_unmap(core, h2)
    assert api.pending_invalidations == 0


def test_deferred_iova_not_reused_while_pending(make_api, machine,
                                                allocators):
    """§2.2.1: deferred unmap must also defer IOVA deallocation."""
    api = make_api("magazine-deferred")
    core = machine.core(0)
    buf = allocators.kmalloc(PAGE_SIZE, node=0)
    h1 = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    api.dma_unmap(core, h1)
    buf2 = allocators.kmalloc(PAGE_SIZE, node=0)
    h2 = api.dma_map(core, buf2, DmaDirection.TO_DEVICE)
    assert h2.iova != h1.iova  # pending IOVA must not be recycled yet
    api.dma_unmap(core, h2)


def test_page_refcount_overlapping_subpage_buffers(make_api, machine,
                                                   allocators):
    """Two slab buffers on one page map/unmap independently under
    identity mapping (shared IOVA page, reference counted)."""
    api = make_api("identity-strict")
    core = machine.core(0)
    slab = allocators.slabs[0]
    a = slab.kmalloc(512)
    b = slab.kmalloc(512)
    assert a.first_page == b.first_page
    ha = api.dma_map(core, a, DmaDirection.TO_DEVICE)
    hb = api.dma_map(core, b, DmaDirection.TO_DEVICE)
    api.dma_unmap(core, ha)
    # The page stays mapped for b.
    api.port().dma_read(hb.iova, 512)
    api.dma_unmap(core, hb)
    with pytest.raises(IommuFault):
        api.port().dma_read(hb.iova, 4)


def test_permission_widening_on_overlap(make_api, machine, allocators):
    """Page-granular schemes must widen rights when buffers with
    different directions share a page — itself a §4 security problem."""
    api = make_api("identity-strict")
    core = machine.core(0)
    slab = allocators.slabs[0]
    a = slab.kmalloc(512)
    b = slab.kmalloc(512)
    ha = api.dma_map(core, a, DmaDirection.TO_DEVICE)    # read-only
    with pytest.raises(IommuFault):
        api.port().dma_write(ha.iova, b"x")
    hb = api.dma_map(core, b, DmaDirection.FROM_DEVICE)  # widens to RW
    # Now the device can write even through a's page — the page-level
    # protection hole the paper points out.
    api.port().dma_write(ha.iova, b"x")
    api.dma_unmap(core, ha)
    api.dma_unmap(core, hb)


def test_linux_deferred_uses_global_list(make_api):
    api = make_api("linux-deferred")
    assert api.per_core_batching is False
    assert len(api._pending) == 1


def test_scalable_deferred_uses_per_core_lists(make_api, machine):
    api = make_api("identity-deferred")
    assert api.per_core_batching is True
    assert len(api._pending) == machine.num_cores


def test_strict_frees_iova_immediately(make_api, machine, allocators):
    api = make_api("linux-strict")
    core = machine.core(0)
    buf = allocators.kmalloc(PAGE_SIZE, node=0)
    h1 = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    api.dma_unmap(core, h1)
    h2 = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    assert h2.iova == h1.iova  # strict recycles straight away
    api.dma_unmap(core, h2)


def test_quiesce_flushes(make_api, machine, allocators):
    api = make_api("identity-deferred")
    core = machine.core(0)
    buf = allocators.kmalloc(PAGE_SIZE, node=0)
    h = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    api.dma_unmap(core, h)
    api.quiesce(core)
    assert not api.window_open()
