"""Scheme registry tests."""

import pytest

from repro.dma.registry import (
    ALL_SCHEMES,
    FIGURE_SCHEMES,
    PAPER_ALIASES,
    create_dma_api,
    scheme_properties,
)
from repro.errors import ConfigurationError


def test_all_schemes_construct(make_api):
    for scheme in ALL_SCHEMES:
        api = make_api(scheme)
        assert api.properties.label


def test_paper_aliases_resolve(make_api):
    plus = make_api("identity+")
    minus = make_api("identity-")
    assert plus.name == "identity-strict"
    assert minus.name == "identity-deferred"
    assert scheme_properties("identity+").no_window
    assert not scheme_properties("identity-").no_window


def test_figure_schemes_subset():
    assert set(FIGURE_SCHEMES) <= set(ALL_SCHEMES)
    assert "copy" in FIGURE_SCHEMES and "no-iommu" in FIGURE_SCHEMES


def test_unknown_scheme_rejected(machine, allocators, iommu):
    with pytest.raises(ConfigurationError):
        create_dma_api("bogus", machine, iommu, 1, allocators)
    with pytest.raises(ConfigurationError):
        scheme_properties("bogus")


def test_iommu_required_for_protected_schemes(machine, allocators):
    with pytest.raises(ConfigurationError):
        create_dma_api("copy", machine, None, 1, allocators)


def test_only_copy_claims_full_security():
    full = [s for s in ALL_SCHEMES
            if scheme_properties(s).iommu_protection
            and scheme_properties(s).sub_page
            and scheme_properties(s).no_window]
    assert full == ["copy"]


def test_scheme_kwargs_pass_through(make_api):
    api = make_api("copy", sticky=False, size_classes=(4096,))
    assert api.pool.sticky is False
    assert api.pool.size_classes == (4096,)


def test_aliases_cover_paper_names():
    assert set(PAPER_ALIASES) \
        == {"identity+", "identity-", "strict", "deferred",
            "strict-percore", "deferred-bounded", "strict-prefetch"}
    # The prose shorthands mean the identity-mapped modes (§2.2).
    assert PAPER_ALIASES["strict"] == "identity-strict"
    assert PAPER_ALIASES["deferred"] == "identity-deferred"
    # Scalable-invalidation shorthands route to the identity variants.
    assert PAPER_ALIASES["strict-percore"] == "identity-strict-percore"
    assert PAPER_ALIASES["deferred-bounded"] == "identity-deferred-bounded"
    assert PAPER_ALIASES["strict-prefetch"] == "identity-strict-prefetch"
