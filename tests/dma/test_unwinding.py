"""Error-path unwinding: an induced mid-map failure must leave nothing
behind — no live mappings, no leaked IOVA ranges, no in-flight shadow
buffers — and the API must keep working afterwards.

Each case builds a full system, arms a scripted fault at one injection
site, proves the failing call raises cleanly, audits the bookkeeping,
then completes a fault-free map/unmap cycle on the same API instance.
"""

import pytest

from repro.dma.api import DmaDirection
from repro.errors import PoolExhaustedError, ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    SITE_IOVA_ALLOC,
    SITE_POOL_GROW,
    SITE_PT_MAP,
    FaultPlan,
    SiteRule,
)
from repro.kalloc.slab import KBuffer
from repro.system import System, SystemConfig


def build(scheme, rules, **scheme_kwargs):
    injector = FaultInjector(FaultPlan(seed=1, rules=rules))
    system = System.build(SystemConfig(
        scheme=scheme, cores=1, faults=injector,
        scheme_kwargs=dict(scheme_kwargs)))
    return system, injector


def assert_clean(api):
    assert api.live_mappings == 0
    for attr in ("iova_allocator", "fallback_iova"):
        allocator = getattr(api, attr, None)
        if allocator is not None:
            assert allocator.outstanding_ranges() == 0, attr
    pool = getattr(api, "pool", None)
    if pool is not None:
        assert pool.stats.in_flight == 0
        assert pool.stats.acquires == pool.stats.releases


def roundtrip(api, core, size=1500):
    buf = KBuffer(pa=0x400000, size=size, node=0)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    api.dma_unmap(core, handle)
    api.quiesce(core)  # deferred schemes recycle IOVAs at the flush
    assert_clean(api)


CASES = [
    ("linux-strict", SITE_IOVA_ALLOC),
    ("linux-strict", SITE_PT_MAP),
    ("linux-deferred", SITE_IOVA_ALLOC),
    ("eiovar-strict", SITE_IOVA_ALLOC),
    ("magazine-deferred", SITE_IOVA_ALLOC),
    ("identity-strict", SITE_PT_MAP),
    ("identity-deferred", SITE_PT_MAP),
    ("copy", SITE_POOL_GROW),
    ("swiotlb", SITE_POOL_GROW),
    ("self-invalidating", SITE_PT_MAP),
]


@pytest.mark.parametrize("scheme,site", CASES)
def test_induced_map_failure_unwinds(scheme, site):
    system, injector = build(scheme, {site: SiteRule(at=(1,))})
    api = system.dma_api
    core = system.machine.core(0)
    buf = KBuffer(pa=0x200000, size=1500, node=0)
    injector.start()
    with pytest.raises(ReproError):
        api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    injector.stop()
    assert injector.fire_count(site) == 1
    assert_clean(api)
    roundtrip(api, core)


@pytest.mark.parametrize("at", [1, 2, 3])
def test_copy_hybrid_map_unwinds_partial_state(at):
    """The hybrid path (§5.5) maps head/tail shadows plus page-granular
    middle ranges; a page-table failure at any consult must unwind the
    ranges already installed."""
    system, injector = build("copy", {SITE_PT_MAP: SiteRule(at=(at,))})
    api = system.dma_api
    core = system.machine.core(0)
    huge = KBuffer(pa=0x200000 + 100, size=256 * 1024, node=0)
    injector.start()
    with pytest.raises(ReproError):
        api.dma_map(core, huge, DmaDirection.FROM_DEVICE)
    injector.stop()
    assert_clean(api)
    handle = api.dma_map(core, huge, DmaDirection.FROM_DEVICE)
    api.dma_unmap(core, handle)
    assert_clean(api)


def test_copy_bounce_fallback_degrades_gracefully():
    """With the bounce fallback armed, pool exhaustion degrades to a
    swiotlb-style bounce map instead of failing the driver."""
    system, injector = build("copy", {SITE_POOL_GROW: SiteRule(rate=1.0)},
                             bounce_fallback=True)
    api = system.dma_api
    core = system.machine.core(0)
    buf = KBuffer(pa=0x200000, size=1500, node=0)
    injector.start()
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    assert api.bounce_maps == 1
    assert api.live_mappings == 1
    api.dma_unmap(core, handle)
    injector.stop()
    assert_clean(api)


def test_copy_without_fallback_raises():
    system, injector = build("copy", {SITE_POOL_GROW: SiteRule(rate=1.0)})
    api = system.dma_api
    core = system.machine.core(0)
    injector.start()
    with pytest.raises(PoolExhaustedError):
        api.dma_map(core, KBuffer(pa=0x200000, size=1500, node=0),
                    DmaDirection.FROM_DEVICE)
    injector.stop()
    assert_clean(api)


def test_sg_map_is_all_or_nothing():
    """A failure on the third element must unmap the first two."""
    system, injector = build("linux-strict",
                             {SITE_IOVA_ALLOC: SiteRule(at=(3,))})
    api = system.dma_api
    core = system.machine.core(0)
    bufs = [KBuffer(pa=0x200000 + i * 0x10000, size=4096, node=0)
            for i in range(4)]
    injector.start()
    with pytest.raises(ReproError):
        api.dma_map_sg(core, bufs, DmaDirection.TO_DEVICE)
    injector.stop()
    assert_clean(api)
    handles = api.dma_map_sg(core, bufs, DmaDirection.TO_DEVICE)
    assert len(handles) == 4
    api.dma_unmap_sg(core, handles)
    assert_clean(api)


@pytest.mark.parametrize("scheme,site", [
    ("linux-strict", SITE_PT_MAP),
    ("copy", SITE_PT_MAP),
    ("self-invalidating", SITE_PT_MAP),
])
def test_coherent_alloc_failure_unwinds(scheme, site):
    system, injector = build(scheme, {site: SiteRule(at=(1,))})
    api = system.dma_api
    core = system.machine.core(0)
    injector.start()
    with pytest.raises(ReproError):
        api.dma_alloc_coherent(core, 8192)
    injector.stop()
    assert_clean(api)
    coherent = api.dma_alloc_coherent(core, 8192)
    api.dma_free_coherent(core, coherent)
    assert_clean(api)
