"""The shared seed-derivation helper (repro.seeding).

Every consumer that needs per-site/per-core randomness derives it from
one run seed through :func:`repro.seeding.derive_seed`, so streams are
independent (no correlated per-core RNGs) yet fully determined by the
run seed — and the fault planner's historical ``site_seed`` values are
unchanged (baselines survive the unification).
"""

from repro.faults.plan import site_seed
from repro.seeding import derive_seed


def test_derive_seed_is_deterministic_and_64_bit():
    a = derive_seed(2016, "fleet", 0)
    assert a == derive_seed(2016, "fleet", 0)
    assert 0 <= a < 1 << 64


def test_derive_seed_streams_are_independent():
    seeds = {derive_seed(2016, label, core)
             for label in ("fleet", "memcached", "storage")
             for core in range(8)}
    assert len(seeds) == 24
    # Different run seed -> different streams everywhere.
    assert derive_seed(1, "fleet", 0) != derive_seed(2, "fleet", 0)


def test_parts_are_position_sensitive():
    assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")
    assert derive_seed(7, "a") != derive_seed(8, "a")


def test_fault_site_seed_is_unchanged():
    """site_seed delegates to derive_seed with the identical digest
    recipe, so existing fault plans replay byte-for-byte."""
    for seed, site in ((0, "nic.rx"), (2016, "qi"), (123, "pool")):
        assert site_seed(seed, site) == derive_seed(seed, site)
