"""FaultInjector semantics: scripted triggers, rates, caps, activation."""

from repro.faults.injector import NULL_FAULTS, FaultInjector
from repro.faults.plan import (
    SITE_INV_STALL,
    SITE_POOL_GROW,
    FaultPlan,
    SiteRule,
)


def _injector(**rules):
    plan = FaultPlan(seed=5, rules={site: rule
                                    for site, rule in rules.items()})
    inj = FaultInjector(plan)
    inj.start()
    return inj


def test_null_injector_never_fires():
    assert not NULL_FAULTS.enabled
    assert NULL_FAULTS.fires(SITE_POOL_GROW) is False
    assert NULL_FAULTS.summary() == {}


def test_scripted_at_fires_exact_consults():
    inj = _injector(**{SITE_POOL_GROW: SiteRule(at=(2, 4))})
    fired = [inj.fires(SITE_POOL_GROW) for _ in range(5)]
    assert fired == [False, True, False, True, False]
    assert inj.fire_count(SITE_POOL_GROW) == 2
    assert inj.consult_count(SITE_POOL_GROW) == 5


def test_unplanned_site_not_counted():
    inj = _injector(**{SITE_POOL_GROW: SiteRule(at=(1,))})
    assert inj.fires(SITE_INV_STALL) is False
    assert inj.consult_count(SITE_INV_STALL) == 0


def test_inactive_consults_uncounted():
    inj = _injector(**{SITE_POOL_GROW: SiteRule(at=(1,))})
    inj.stop()
    assert inj.fires(SITE_POOL_GROW) is False
    assert inj.consult_count(SITE_POOL_GROW) == 0
    inj.start()
    # The schedule resumes exactly where it paused: this is consult 1.
    assert inj.fires(SITE_POOL_GROW) is True


def test_rate_draws_are_deterministic():
    rule = SiteRule(rate=0.3)
    a = _injector(**{SITE_POOL_GROW: rule})
    b = _injector(**{SITE_POOL_GROW: rule})
    seq_a = [a.fires(SITE_POOL_GROW) for _ in range(200)]
    seq_b = [b.fires(SITE_POOL_GROW) for _ in range(200)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)


def test_different_seeds_differ():
    rule = SiteRule(rate=0.3)
    a = FaultInjector(FaultPlan(seed=1, rules={SITE_POOL_GROW: rule}))
    b = FaultInjector(FaultPlan(seed=2, rules={SITE_POOL_GROW: rule}))
    a.start(), b.start()
    seq_a = [a.fires(SITE_POOL_GROW) for _ in range(200)]
    seq_b = [b.fires(SITE_POOL_GROW) for _ in range(200)]
    assert seq_a != seq_b


def test_max_fires_caps_but_keeps_consuming_draws():
    inj = _injector(**{SITE_POOL_GROW: SiteRule(rate=1.0, max_fires=2)})
    fired = [inj.fires(SITE_POOL_GROW) for _ in range(5)]
    assert fired == [True, True, False, False, False]
    assert inj.fire_count(SITE_POOL_GROW) == 2
    assert inj.consult_count(SITE_POOL_GROW) == 5


def test_mixed_scripted_and_rate_is_reproducible():
    rule = SiteRule(rate=0.3, at=(2, 5))
    a = _injector(**{SITE_POOL_GROW: rule})
    b = _injector(**{SITE_POOL_GROW: rule})
    seq_a = [a.fires(SITE_POOL_GROW) for _ in range(100)]
    seq_b = [b.fires(SITE_POOL_GROW) for _ in range(100)]
    assert seq_a == seq_b
    assert seq_a[1] and seq_a[4]   # the scripted indices always fire


def test_summary_shape():
    inj = _injector(**{SITE_POOL_GROW: SiteRule(at=(1,))})
    inj.fires(SITE_POOL_GROW)
    assert inj.summary() == {
        SITE_POOL_GROW: {"consults": 1, "fires": 1}}
