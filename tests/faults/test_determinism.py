"""Same seed + same plan => byte-identical JSONL event traces.

The soak harness's reproducibility contract: a chaos run is a pure
function of (scheme, plan, cores, units).  Verified on a strict
zero-copy scheme and the copy scheme, single-core and multi-core, with
a mixed plan exercising stochastic rates, recovery paths, and attack
bursts.
"""

import pytest

from repro.faults.plan import (
    SITE_ATTACK_BURST,
    SITE_INV_STALL,
    SITE_IOVA_ALLOC,
    SITE_NIC_RX_DROP,
    SITE_POOL_GROW,
    SITE_RING_OVERFLOW,
    FaultPlan,
    SiteRule,
)
from repro.faults.soak import run_chaos

_PLAN_RULES = {
    SITE_POOL_GROW: SiteRule(rate=0.05),
    SITE_IOVA_ALLOC: SiteRule(rate=0.05),
    SITE_INV_STALL: SiteRule(rate=0.1),
    SITE_NIC_RX_DROP: SiteRule(rate=0.05),
    SITE_RING_OVERFLOW: SiteRule(rate=0.05),
    SITE_ATTACK_BURST: SiteRule(rate=0.05),
}


def _trace(scheme: str, seed: int, cores: int) -> str:
    plan = FaultPlan(seed=seed, rules=dict(_PLAN_RULES))
    result = run_chaos(scheme, plan, cores=cores, units=20 * cores,
                       keep_trace=True)
    assert result.ok, result.violations
    assert result.trace_jsonl
    return result.trace_jsonl


@pytest.mark.parametrize("scheme", ["identity-strict", "copy"])
@pytest.mark.parametrize("cores", [1, 16])
def test_same_seed_identical_trace(scheme, cores):
    first = _trace(scheme, seed=11, cores=cores)
    second = _trace(scheme, seed=11, cores=cores)
    assert first == second


def test_different_seed_different_trace():
    assert _trace("identity-strict", seed=1, cores=1) != \
        _trace("identity-strict", seed=2, cores=1)


def test_linux_strict_deterministic_too():
    assert _trace("linux-strict", seed=4, cores=2) == \
        _trace("linux-strict", seed=4, cores=2)
