"""Chaos soak invariants: no leaks, no deadlock, exposure bounds hold."""

import pytest

from repro.faults.plan import (
    SITE_INV_STALL,
    SITE_IOVA_ALLOC,
    SITE_POOL_GROW,
    SITE_RING_OVERFLOW,
    FaultPlan,
    SiteRule,
)
from repro.faults.soak import (
    MIXES,
    mix_plan,
    render_soak_report,
    run_chaos,
    soak_matrix,
)

STRICT_SCHEMES = ("identity-strict", "linux-strict", "copy")


def test_mix_plan_names():
    assert mix_plan("none", 1).empty
    for name in MIXES:
        assert not mix_plan(name, 1).empty


@pytest.mark.parametrize("scheme", STRICT_SCHEMES)
def test_strict_schemes_zero_exposure_under_inv_stalls(scheme):
    plan = FaultPlan(seed=3, rules={SITE_INV_STALL: SiteRule(rate=0.3)})
    result = run_chaos(scheme, plan, cores=1, units=60)
    assert result.ok, result.violations
    assert result.exposure["stale_byte_cycles"] == 0
    assert result.exposure["stale_accesses"] == 0


def test_deferred_scheme_quiesces_clean():
    result = run_chaos("identity-deferred", mix_plan("mixed", 2),
                       cores=2, units=60)
    assert result.ok, result.violations
    assert result.exposure["stale_open_pages"] == 0


def test_resource_faults_leak_nothing():
    plan = FaultPlan(seed=5, rules={
        SITE_POOL_GROW: SiteRule(rate=0.2),
        SITE_IOVA_ALLOC: SiteRule(rate=0.2),
    })
    result = run_chaos("copy", plan, cores=1, units=80)
    assert result.ok, result.violations


def test_ring_overflow_recovers_and_accounts():
    plan = FaultPlan(seed=1, rules={
        SITE_RING_OVERFLOW: SiteRule(rate=0.5)})
    result = run_chaos("identity-deferred", plan, cores=1, units=40)
    assert result.ok, result.violations
    assert result.recovery["tx_ring_recoveries"] > 0
    # Reaping always makes room in this workload: nothing dropped.
    assert result.tx_segments > 0


def test_inv_stall_recovery_counters():
    plan = FaultPlan(seed=2, rules={SITE_INV_STALL: SiteRule(rate=0.5)})
    result = run_chaos("identity-strict", plan, cores=1, units=40)
    assert result.ok, result.violations
    assert result.recovery["inv_timeouts"] > 0
    assert (result.recovery["inv_recovered_stalls"]
            + result.recovery["inv_queue_resets"]) > 0


def test_throughput_degrades_gracefully():
    """Faulted run still delivers most traffic — no deadlock, no cliff."""
    base = run_chaos("copy", FaultPlan(seed=1), cores=1, units=60)
    hurt = run_chaos("copy", mix_plan("mixed", 1), cores=1, units=60)
    assert hurt.ok, hurt.violations
    assert hurt.rx_delivered >= int(0.5 * base.rx_delivered)
    assert hurt.goodput > 0


def test_soak_matrix_and_report():
    rows = soak_matrix(schemes=("identity-strict",),
                       mixes=("invalidation",), seeds=(1,), units=30)
    assert len(rows) == 2   # baseline + one mix
    assert all(row.result.ok for row in rows)
    report = render_soak_report(rows)
    assert "identity-strict" in report
    assert "0 invariant failure(s)" in report
    baseline = next(row for row in rows if row.mix == "none")
    assert baseline.degradation_pct == 0.0
