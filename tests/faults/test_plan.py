"""FaultPlan construction, validation, and CLI-spec parsing."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import (
    ALL_SITES,
    SITE_INV_STALL,
    SITE_IOVA_ALLOC,
    SITE_POOL_GROW,
    FaultPlan,
    SiteRule,
    site_seed,
)


def test_empty_plan():
    plan = FaultPlan(seed=3)
    assert plan.empty
    assert plan.rule(SITE_POOL_GROW) is None
    assert plan.describe() == "no faults"


def test_unknown_site_rejected():
    with pytest.raises(ConfigurationError, match="unknown fault site"):
        FaultPlan(rules={"bogus.site": SiteRule(rate=0.1)})


@pytest.mark.parametrize("kwargs", [
    {"rate": -0.1}, {"rate": 1.5}, {"at": (0,)}, {"at": (-3,)},
    {"max_fires": -1},
])
def test_bad_rule_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        SiteRule(**kwargs)


def test_site_seed_stable_and_distinct():
    assert site_seed(1, SITE_POOL_GROW) == site_seed(1, SITE_POOL_GROW)
    assert site_seed(1, SITE_POOL_GROW) != site_seed(2, SITE_POOL_GROW)
    assert site_seed(1, SITE_POOL_GROW) != site_seed(1, SITE_IOVA_ALLOC)


def test_parse_full_grammar():
    plan = FaultPlan.parse(
        "pool.grow:rate=0.05,inv.stall:at=3|7,iova.alloc:rate=0.1:max=2",
        seed=9)
    assert plan.seed == 9
    assert plan.rule(SITE_POOL_GROW) == SiteRule(rate=0.05)
    assert plan.rule(SITE_INV_STALL) == SiteRule(at=(3, 7))
    assert plan.rule(SITE_IOVA_ALLOC) == SiteRule(rate=0.1, max_fires=2)


def test_parse_describe_round_trips():
    spec = "pool.grow:rate=0.05,inv.stall:at=3|7"
    plan = FaultPlan.parse(spec, seed=1)
    again = FaultPlan.parse(plan.describe().replace(", ", ","), seed=1)
    assert again == plan


@pytest.mark.parametrize("spec,match", [
    ("bogus.site:rate=0.5", "unknown fault site"),
    ("pool.grow:rate=0.5,pool.grow:rate=0.1", "duplicate fault site"),
    ("pool.grow:frequency=2", "unknown option"),
    ("pool.grow:rate", "malformed option"),
    ("pool.grow:rate=abc", "bad value"),
    ("pool.grow", "needs rate= or at="),
    ("", "empty fault plan"),
    (" , ", "empty fault plan"),
])
def test_parse_rejects_bad_specs(spec, match):
    with pytest.raises(ConfigurationError, match=match):
        FaultPlan.parse(spec)


def test_all_sites_parse():
    spec = ",".join(f"{site}:rate=0.1" for site in ALL_SITES)
    plan = FaultPlan.parse(spec)
    assert set(plan.rules) == set(ALL_SITES)
