"""Hybrid huge-buffer path edge cases (§5.5)."""

import pytest

from repro.dma.api import DmaDirection
from repro.errors import IommuFault
from repro.kalloc.slab import KBuffer
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def api(make_api):
    return make_api("copy")


def _aligned_huge(allocators, size):
    buf = allocators.kmalloc(size, node=0)
    assert buf.pa % PAGE_SIZE == 0
    return buf


def test_aligned_huge_buffer_has_no_head_or_tail(api, machine, allocators):
    """A page-aligned, page-multiple buffer maps fully zero-copy — no
    shadow acquisition at all, just the strict transient mapping."""
    buf = _aligned_huge(allocators, 128 * 1024)
    core = machine.core(0)
    in_flight_before = api.pool.stats.in_flight
    handle = api.dma_map(core, buf, DmaDirection.BIDIRECTIONAL)
    assert api.pool.stats.in_flight == in_flight_before  # no shadows
    data = bytes(range(256)) * 512
    api.port().dma_write(handle.iova, data)
    api.dma_unmap(core, handle)
    assert machine.memory.read(buf.pa, len(data)) == data


def test_head_only_hybrid(api, machine, allocators):
    """Unaligned start + aligned end: a head shadow but no tail."""
    backing = _aligned_huge(allocators, 192 * 1024)
    size = 128 * 1024 - 100
    buf = KBuffer(pa=backing.pa + 100, size=size, node=0)
    core = machine.core(0)
    before = api.pool.stats.in_flight
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    assert api.pool.stats.in_flight == before + 1  # head shadow only
    api.port().dma_write(handle.iova, b"H" * size)
    api.dma_unmap(core, handle)
    assert machine.memory.read(buf.pa, size) == b"H" * size
    assert api.pool.stats.in_flight == before


def test_tail_only_hybrid(api, machine, allocators):
    backing = _aligned_huge(allocators, 192 * 1024)
    size = 128 * 1024 + 100  # aligned start, ragged end
    buf = KBuffer(pa=backing.pa, size=size, node=0)
    core = machine.core(0)
    before = api.pool.stats.in_flight
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    assert api.pool.stats.in_flight == before + 1  # tail shadow only
    api.port().dma_write(handle.iova, b"T" * size)
    api.dma_unmap(core, handle)
    assert machine.memory.read(buf.pa, size) == b"T" * size


def test_hybrid_boundary_exactly_above_class_limit(api, machine, allocators):
    """65 537 bytes is the smallest buffer that takes the hybrid path."""
    at_limit = allocators.kmalloc(65536, node=0)
    above = allocators.kmalloc(65537, node=0)
    core = machine.core(0)
    h1 = api.dma_map(core, at_limit, DmaDirection.TO_DEVICE)
    assert api.hybrid_maps == 0
    h2 = api.dma_map(core, above, DmaDirection.TO_DEVICE)
    assert api.hybrid_maps == 1
    api.dma_unmap(core, h1)
    api.dma_unmap(core, h2)


def test_hybrid_middle_is_genuinely_zero_copy(api, machine, allocators):
    """Device writes to the middle land in the OS buffer immediately
    (zero-copy), while head writes land in the shadow until unmap."""
    backing = _aligned_huge(allocators, 192 * 1024)
    buf = KBuffer(pa=backing.pa + 64, size=128 * 1024, node=0)
    core = machine.core(0)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    # Middle of the buffer: page-aligned region mapped directly.
    mid_off = 8 * PAGE_SIZE
    api.port().dma_write(handle.iova + mid_off, b"middle")
    assert machine.memory.read(buf.pa + mid_off, 6) == b"middle"
    # Head: shadowed — invisible until unmap.
    api.port().dma_write(handle.iova, b"head")
    assert machine.memory.read(buf.pa, 4) != b"head"
    api.dma_unmap(core, handle)
    assert machine.memory.read(buf.pa, 4) == b"head"


def test_hybrid_subpage_neighbours_protected(api, machine, allocators):
    """Byte granularity at huge sizes: data next to the ragged head on
    the same page never becomes device-visible."""
    backing = _aligned_huge(allocators, 192 * 1024)
    secret_off = 10
    machine.memory.write(backing.pa + secret_off, b"SECRET-NEXT-DOOR")
    buf = KBuffer(pa=backing.pa + 100, size=128 * 1024, node=0)
    core = machine.core(0)
    handle = api.dma_map(core, buf, DmaDirection.BIDIRECTIONAL)
    # The device reads the first page of its range (head shadow page).
    page = api.port().dma_read(handle.iova - 100, PAGE_SIZE)
    assert b"SECRET-NEXT-DOOR" not in page
    api.dma_unmap(core, handle)
    # And the secret survived untouched.
    assert machine.memory.read(backing.pa + secret_off, 16) \
        == b"SECRET-NEXT-DOOR"
