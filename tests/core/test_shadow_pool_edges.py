"""Shadow pool edge cases: fallback lookups, bounded shrink, metadata
lock accounting, private-cache interaction with releases."""

import pytest

from repro.core.shadow_pool import ShadowBufferPool
from repro.errors import PoolExhaustedError
from repro.hw.locks import SpinLock
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.iommu.page_table import Perm
from repro.iova.allocators import MagazineIovaAllocator
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.sim.units import PAGE_SIZE


def make_pool(**kwargs):
    machine = Machine.build(cores=2, numa_nodes=1)
    allocators = KernelAllocators(machine)
    iommu = Iommu(machine)
    domain = iommu.attach_device(1)
    fallback = MagazineIovaAllocator(machine.cost, 2,
                                     SpinLock("depot", machine.cost))
    return machine, iommu, ShadowBufferPool(
        machine, iommu, domain, allocators, fallback, **kwargs)


def buf(size=1000):
    return KBuffer(pa=0x200000, size=size, node=0)


def test_fallback_buffers_recycle_through_free_list():
    machine, _, pool = make_pool(max_buffers_per_class=1)
    core = machine.core(0)
    first = pool.acquire_shadow(core, buf(), 4096, Perm.READ)
    second = pool.acquire_shadow(core, buf(), 4096, Perm.READ)
    assert not first.fallback and second.fallback
    pool.release_shadow(core, second)
    third = pool.acquire_shadow(core, buf(), 4096, Perm.READ)
    assert third is second  # fallback buffers recycle like any other
    assert pool.find_shadow(core, third.iova) is second


def test_fallback_device_mapping_works():
    machine, iommu, pool = make_pool(max_buffers_per_class=0)
    core = machine.core(0)
    meta = pool.acquire_shadow(core, buf(), 4096, Perm.RW)
    assert meta.fallback
    # The mapping is live: translate and access as the device.
    entry = iommu.translate(pool.domain, meta.iova, is_write=True)
    assert entry.pa == meta.pa


def test_shrink_respects_byte_limit():
    machine, _, pool = make_pool()
    core = machine.core(0)
    metas = [pool.acquire_shadow(core, buf(), 4096, Perm.READ)
             for _ in range(6)]
    for meta in metas:
        pool.release_shadow(core, meta)
    freed = pool.shrink(core, max_release_bytes=2 * PAGE_SIZE)
    assert freed == 2 * PAGE_SIZE
    assert pool.free_buffer_count() == 4


def test_shrink_skips_subpage_classes():
    machine, _, pool = make_pool(size_classes=(512, 4096))
    core = machine.core(0)
    meta = pool.acquire_shadow(core, buf(100), 100, Perm.READ)
    pool.release_shadow(core, meta)
    # Only the sub-page class has free buffers: nothing shrinkable.
    assert pool.shrink(core) == 0
    assert pool.free_buffer_count() > 0


def test_private_cache_not_double_counted():
    machine, _, pool = make_pool(size_classes=(512, 4096))
    core = machine.core(0)
    first = pool.acquire_shadow(core, buf(100), 100, Perm.READ)
    # 8 carved, 1 out: 7 in the private cache.
    assert pool.free_buffer_count() == 7
    pool.release_shadow(core, first)
    assert pool.free_buffer_count() == 8
    # Draining goes through cache first, then the list — all distinct.
    seen = set()
    for _ in range(8):
        meta = pool.acquire_shadow(core, buf(100), 100, Perm.READ)
        assert meta.iova not in seen
        seen.add(meta.iova)
    assert pool.free_buffer_count() == 0


def test_metadata_lock_contention_is_rare():
    """§5.3 footnote 5: the next-unused index lock is taken only on
    growth, so steady state takes it never."""
    machine, _, pool = make_pool()
    core = machine.core(0)
    metas = [pool.acquire_shadow(core, buf(), 1500, Perm.WRITE)
             for _ in range(20)]
    for meta in metas:
        pool.release_shadow(core, meta)
    array = pool._arrays[(0, 0)]
    grows = array.lock.stats.acquisitions
    # Steady-state churn: no further metadata-lock acquisitions.
    for _ in range(100):
        meta = pool.acquire_shadow(core, buf(), 1500, Perm.WRITE)
        pool.release_shadow(core, meta)
    assert array.lock.stats.acquisitions == grows


def test_acquire_on_any_core_uses_own_list():
    machine, _, pool = make_pool()
    a = pool.acquire_shadow(machine.core(0), buf(), 100, Perm.READ)
    b = pool.acquire_shadow(machine.core(1), buf(), 100, Perm.READ)
    pool.release_shadow(machine.core(0), a)
    # Core 1 cannot steal core 0's freed buffer.
    c = pool.acquire_shadow(machine.core(1), buf(), 100, Perm.READ)
    assert c.owner_core == 1
    assert c is not a


def test_zero_byte_pool_limit():
    machine, _, pool = make_pool(max_pool_bytes=0)
    with pytest.raises(PoolExhaustedError):
        pool.acquire_shadow(machine.core(0), buf(), 100, Perm.READ)


# ----------------------------------------------------------------------
# Regression tests: pool resource-accounting bugs.
# ----------------------------------------------------------------------
def test_shrink_balances_grow_accounting():
    """grow → acquire → release → shrink must end with both counters at
    zero: shrink subtracts exactly what note_grow recorded (page-quantity
    bytes *and* the buffer count)."""
    machine, _, pool = make_pool()
    core = machine.core(0)
    metas = [pool.acquire_shadow(core, buf(size), size, rights)
             for size in (1500, 4096, 65536)
             for rights in (Perm.READ, Perm.WRITE)]
    assert pool.stats.buffers_allocated == len(metas)
    for meta in metas:
        pool.release_shadow(core, meta)
    pool.shrink(core)
    assert pool.stats.bytes_allocated == 0
    assert pool.stats.buffers_allocated == 0
    assert pool.stats.grows == pool.stats.shrinks


def test_retired_fallback_iova_returns_to_allocator():
    """Retiring a fallback buffer must free its external IOVA range —
    the allocator's outstanding count returns to zero and the exact
    range is re-allocatable."""
    machine, _, pool = make_pool(max_buffers_per_class=0)
    core = machine.core(0)
    metas = [pool.acquire_shadow(core, buf(), 4096, Perm.READ)
             for _ in range(3)]
    assert all(m.fallback for m in metas)
    assert pool.fallback_iova.outstanding_ranges() == 3
    bases = {m.iova & ~(PAGE_SIZE - 1) for m in metas}
    for meta in metas:
        pool.release_shadow(core, meta)
    pool.shrink(core)
    assert pool.fallback_iova.outstanding_ranges() == 0
    # The magazine allocator recycles freed ranges: the next allocation
    # reuses one of the retired bases.
    assert pool.fallback_iova.alloc(1, core, 0x300000) in bases


def test_migration_retires_old_metadata_and_count():
    """Non-sticky migration must retire the old metadata slot and keep
    the old list's buffer count balanced."""
    machine, _, pool = make_pool(sticky=False)
    owner, remote = machine.core(0), machine.core(1)
    meta = pool.acquire_shadow(owner, buf(), 4096, Perm.READ)
    old_iova = meta.iova
    old_list = pool._lists[meta.list_key]
    pool.release_shadow(remote, meta)
    assert old_list.total_buffers == 0
    with pytest.raises(PoolExhaustedError):
        pool.find_shadow(owner, old_iova)
