"""Shadow buffer pool tests (§5.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.shadow_pool import ShadowBufferPool
from repro.errors import ConfigurationError, PoolExhaustedError
from repro.hw.locks import SpinLock
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.iommu.page_table import Perm
from repro.iova.allocators import MagazineIovaAllocator
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.sim.units import PAGE_SIZE


def make_pool(cores=4, nodes=2, **kwargs):
    machine = Machine.build(cores=cores, numa_nodes=nodes)
    allocators = KernelAllocators(machine)
    iommu = Iommu(machine)
    domain = iommu.attach_device(1)
    fallback = MagazineIovaAllocator(machine.cost, cores,
                                     SpinLock("depot", machine.cost))
    pool = ShadowBufferPool(machine, iommu, domain, allocators, fallback,
                            **kwargs)
    return machine, iommu, pool


def os_buf(pa=0x100000, size=1500):
    return KBuffer(pa=pa, size=size, node=0)


def test_acquire_release_reuse():
    machine, _, pool = make_pool()
    core = machine.core(0)
    meta = pool.acquire_shadow(core, os_buf(), 1500, Perm.WRITE)
    assert meta.size == 4096
    assert meta.os_buf is not None
    pool.release_shadow(core, meta)
    assert meta.os_buf is None
    again = pool.acquire_shadow(core, os_buf(), 1500, Perm.WRITE)
    assert again is meta  # recycled from the free list
    pool.release_shadow(core, again)


def test_shadow_is_permanently_mapped():
    machine, iommu, pool = make_pool()
    core = machine.core(0)
    meta = pool.acquire_shadow(core, os_buf(), 1000, Perm.RW)
    domain = pool.domain
    entry = domain.page_table.lookup(meta.iova >> 12)
    assert entry is not None
    assert entry.pa == meta.pa
    pool.release_shadow(core, meta)
    # Still mapped after release — that is the whole point.
    assert domain.page_table.lookup(meta.iova >> 12) is not None


def test_find_shadow_o1(pool=None):
    machine, _, pool = make_pool()
    core = machine.core(2)
    metas = [pool.acquire_shadow(core, os_buf(size=s), s, Perm.READ)
             for s in (100, 5000, 60000)]
    for meta in metas:
        assert pool.find_shadow(core, meta.iova) is meta
        # Offsets inside the buffer resolve to the same metadata.
        assert pool.find_shadow(core, meta.iova + meta.size - 1) is meta


def test_size_class_selection():
    machine, _, pool = make_pool()
    core = machine.core(0)
    small = pool.acquire_shadow(core, os_buf(), 4096, Perm.READ)
    big = pool.acquire_shadow(core, os_buf(), 4097, Perm.READ)
    assert small.size == 4096
    assert big.size == 65536


def test_oversize_request_rejected():
    machine, _, pool = make_pool()
    with pytest.raises(PoolExhaustedError):
        pool.acquire_shadow(machine.core(0), os_buf(), 65537, Perm.READ)


def test_invalid_rights_rejected():
    machine, _, pool = make_pool()
    with pytest.raises(ConfigurationError):
        pool.acquire_shadow(machine.core(0), os_buf(), 100, Perm.NONE)


def test_per_core_lists_are_distinct():
    machine, _, pool = make_pool()
    a = pool.acquire_shadow(machine.core(0), os_buf(), 100, Perm.READ)
    b = pool.acquire_shadow(machine.core(1), os_buf(), 100, Perm.READ)
    assert a.owner_core == 0
    assert b.owner_core == 1
    assert a.iova != b.iova


def test_rights_get_separate_lists():
    machine, _, pool = make_pool()
    core = machine.core(0)
    r = pool.acquire_shadow(core, os_buf(), 100, Perm.READ)
    w = pool.acquire_shadow(core, os_buf(), 100, Perm.WRITE)
    assert r.rights is Perm.READ
    assert w.rights is Perm.WRITE
    assert (r.pa >> 12) != (w.pa >> 12)  # never share a page


def test_numa_local_allocation():
    machine, _, pool = make_pool(cores=4, nodes=2)
    far_core = machine.core(3)  # node 1
    meta = pool.acquire_shadow(far_core, os_buf(), 100, Perm.READ)
    assert machine.memory.node_of(meta.pa) == 1
    assert meta.domain_node == 1


def test_sticky_release_returns_to_owner():
    """§5.3: a remote release returns the buffer to its *owner's* list."""
    machine, _, pool = make_pool()
    owner, remote = machine.core(0), machine.core(3)
    meta = pool.acquire_shadow(owner, os_buf(), 100, Perm.READ)
    iova = meta.iova
    pool.release_shadow(remote, meta)
    assert pool.stats.remote_releases == 1
    again = pool.acquire_shadow(owner, os_buf(), 100, Perm.READ)
    assert again.iova == iova  # same buffer, same mapping
    assert again.owner_core == 0


def test_nonsticky_migration_changes_owner_and_mapping():
    machine, iommu, pool = make_pool(sticky=False)
    owner, remote = machine.core(0), machine.core(3)
    meta = pool.acquire_shadow(owner, os_buf(), 100, Perm.READ)
    old_iova = meta.iova
    inv_before = iommu.invalidation_queue.sync_invalidations
    pool.release_shadow(remote, meta)
    # Migration had to invalidate the old mapping (the §5.3 cost).
    assert iommu.invalidation_queue.sync_invalidations == inv_before + 1
    migrated = pool.acquire_shadow(remote, os_buf(), 100, Perm.READ)
    assert migrated.owner_core == 3
    assert migrated.iova != old_iova
    assert migrated.pa == meta.pa  # same memory, re-encoded


def test_subpage_class_carves_page_into_private_cache():
    machine, _, pool = make_pool(size_classes=(512, 4096, 65536))
    core = machine.core(0)
    first = pool.acquire_shadow(core, os_buf(), 200, Perm.READ)
    assert first.size == 512
    # One page was carved into 8 buffers: 1 returned + 7 cached.
    assert pool.stats.buffers_allocated == 8
    others = [pool.acquire_shadow(core, os_buf(), 200, Perm.READ)
              for _ in range(7)]
    # All from the same page, no new page allocation.
    assert pool.stats.grows == 1
    pages = {m.pa >> 12 for m in [first] + others}
    assert len(pages) == 1


def test_page_rights_invariant_holds():
    machine, _, pool = make_pool(size_classes=(512, 4096))
    core = machine.core(0)
    metas = []
    for rights in (Perm.READ, Perm.WRITE, Perm.RW):
        for _ in range(5):
            metas.append(pool.acquire_shadow(core, os_buf(), 300, rights))
    for meta in metas:
        pool.release_shadow(core, meta)
    assert pool.check_page_rights_invariant()


def test_memory_limit_enforced():
    machine, _, pool = make_pool(max_pool_bytes=3 * PAGE_SIZE)
    core = machine.core(0)
    for _ in range(3):
        pool.acquire_shadow(core, os_buf(), 4096, Perm.READ)
    with pytest.raises(PoolExhaustedError):
        pool.acquire_shadow(core, os_buf(), 4096, Perm.READ)


def test_fallback_when_metadata_array_full():
    """§5.3: when the encoded index space is exhausted, fall back to
    kmalloc'd metadata + external IOVAs (MSB clear) + hash lookup."""
    machine, _, pool = make_pool(cores=1, nodes=1,
                                 max_buffers_per_class=2)
    core = machine.core(0)
    metas = [pool.acquire_shadow(core, os_buf(), 4096, Perm.READ)
             for _ in range(4)]
    fallback = [m for m in metas if m.fallback]
    encoded = [m for m in metas if not m.fallback]
    assert len(encoded) == 2
    assert len(fallback) == 2
    for m in fallback:
        assert not pool.codec.is_shadow(m.iova)
        assert pool.find_shadow(core, m.iova) is m
    assert pool.stats.fallback_allocations == 2


def test_shrink_frees_and_unmaps():
    machine, iommu, pool = make_pool()
    core = machine.core(0)
    metas = [pool.acquire_shadow(core, os_buf(), 4096, Perm.READ)
             for _ in range(4)]
    for meta in metas:
        pool.release_shadow(core, meta)
    inv_before = iommu.invalidation_queue.sync_invalidations
    freed = pool.shrink(core)
    assert freed == 4 * PAGE_SIZE
    assert iommu.invalidation_queue.sync_invalidations == inv_before + 4
    assert pool.free_buffer_count() == 0
    # The unmapped IOVAs no longer resolve.
    assert pool.domain.page_table.lookup(metas[0].iova >> 12) is None


def test_occupancy_stats_track_in_flight():
    machine, _, pool = make_pool()
    core = machine.core(0)
    metas = [pool.acquire_shadow(core, os_buf(), 1500, Perm.WRITE)
             for _ in range(10)]
    assert pool.stats.in_flight == 10
    assert pool.stats.peak_in_flight == 10
    for meta in metas[:6]:
        pool.release_shadow(core, meta)
    assert pool.stats.in_flight == 4
    assert pool.stats.peak_in_flight == 10
    assert pool.stats.bytes_allocated == 10 * PAGE_SIZE


def test_find_unknown_iova_rejected():
    machine, _, pool = make_pool()
    with pytest.raises(PoolExhaustedError):
        pool.find_shadow(machine.core(0), 0x7f0000000)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(
    st.tuples(st.integers(0, 3),
              st.sampled_from([Perm.READ, Perm.WRITE, Perm.RW]),
              st.integers(1, 65536), st.booleans()),
    min_size=1, max_size=60))
def test_pool_invariants_property(ops):
    """Property: arbitrary acquire/release interleavings keep the
    same-rights-per-page invariant and exact in-flight accounting."""
    machine, _, pool = make_pool()
    live = []
    for core_id, rights, size, release_remote in ops:
        core = machine.core(core_id)
        if len(live) < 30:
            live.append(pool.acquire_shadow(core, os_buf(size=size),
                                            size, rights))
        elif live:
            releaser = machine.core(3 if release_remote else 0)
            pool.release_shadow(releaser, live.pop())
        assert pool.stats.in_flight == len(live)
    assert pool.check_page_rights_invariant()
    iovas = [m.iova for m in live]
    assert len(set(iovas)) == len(iovas)
