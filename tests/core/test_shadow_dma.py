"""ShadowDmaApi (the `copy` scheme) behaviour tests (§5.2, §5.4, §5.5)."""

import pytest

from repro.core.hints import ip_length_hint
from repro.dma.api import DmaDirection
from repro.errors import DmaApiError
from repro.hw.cpu import CAT_COPY_MGMT, CAT_INVALIDATE, CAT_MEMCPY, CAT_PT_MGMT
from repro.kalloc.slab import KBuffer
from repro.net.packets import build_frame
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def api(make_api):
    return make_api("copy")


def test_map_copies_to_shadow(api, machine, allocators):
    """TO_DEVICE: the device sees the data without reaching the OS buffer."""
    core = machine.core(0)
    buf = allocators.kmalloc(1500, node=0)
    machine.memory.write(buf.pa, b"outbound-data")
    handle = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    assert api.port().dma_read(handle.iova, 13) == b"outbound-data"
    # It came from the shadow: mutating the OS buffer afterwards does not
    # change what the device reads (the OS may not touch it anyway §2.2,
    # but a *compromised* OS-side race must not be device-visible).
    machine.memory.write(buf.pa, b"mutated-after")
    assert api.port().dma_read(handle.iova, 13) == b"outbound-data"
    api.dma_unmap(core, handle)


def test_unmap_copies_back_from_shadow(api, machine, allocators):
    core = machine.core(0)
    buf = allocators.kmalloc(1500, node=0)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    api.port().dma_write(handle.iova, b"inbound")
    # Not visible in the OS buffer until unmap (the copy-back).
    assert machine.memory.read(buf.pa, 7) != b"inbound"
    api.dma_unmap(core, handle)
    assert machine.memory.read(buf.pa, 7) == b"inbound"


def test_os_buffer_never_device_reachable(api, machine, allocators):
    """The defining property: the device has *no* mapping to OS memory."""
    from repro.errors import IommuFault

    core = machine.core(0)
    buf = allocators.kmalloc(1500, node=0)
    handle = api.dma_map(core, buf, DmaDirection.BIDIRECTIONAL)
    with pytest.raises(IommuFault):
        api.port().dma_read(buf.pa, 8)  # physical address as bus address
    api.dma_unmap(core, handle)


def test_no_invalidations_on_hot_path(api, machine, allocators, iommu):
    core = machine.core(0)
    before = iommu.invalidation_queue.sync_invalidations
    for _ in range(20):
        buf = allocators.kmalloc(1500, node=0)
        handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
        api.dma_unmap(core, handle)
        allocators.kfree(buf)
    assert iommu.invalidation_queue.sync_invalidations == before
    assert core.breakdown.get(CAT_INVALIDATE, 0) == 0


def test_breakdown_categories(api, machine, allocators):
    core = machine.core(0)
    buf = allocators.kmalloc(1500, node=0)
    handle = api.dma_map(core, buf, DmaDirection.BIDIRECTIONAL)
    api.dma_unmap(core, handle)
    assert core.breakdown[CAT_COPY_MGMT] > 0
    assert core.breakdown[CAT_MEMCPY] >= 2 * machine.cost.memcpy_cycles(1400)


def test_rx_hint_limits_copy_back(api, machine, allocators):
    """§5.4: an MTU-sized RX buffer holding a small packet copies only
    the packet, as reported by the IP-length hint."""
    core = machine.core(0)
    api.register_copy_hint(DmaDirection.FROM_DEVICE, ip_length_hint)
    buf = allocators.kmalloc(2048, node=0)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    frame = build_frame(100)  # 154-byte frame in a 2 KB buffer
    api.port().dma_write(handle.iova, frame)
    memcpy_before = core.breakdown.get(CAT_MEMCPY, 0)
    api.dma_unmap(core, handle)
    copied_cycles = core.breakdown[CAT_MEMCPY] - memcpy_before
    assert copied_cycles <= machine.cost.memcpy_cycles(len(frame)) + 5
    assert machine.memory.read(buf.pa, len(frame)) == frame


def test_malicious_hint_is_clamped(api, machine, allocators):
    """A hint driven by hostile device data cannot enlarge the copy."""
    core = machine.core(0)
    api.register_copy_hint(DmaDirection.FROM_DEVICE,
                           lambda view, size: 10 ** 9)
    buf = allocators.kmalloc(1024, node=0)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    api.port().dma_write(handle.iova, b"x" * 1024)
    api.dma_unmap(core, handle)  # must not copy beyond the buffer
    assert machine.memory.read(buf.pa, 1024) == b"x" * 1024


def test_negative_hint_clamped_to_zero(api, machine, allocators):
    core = machine.core(0)
    api.register_copy_hint(DmaDirection.FROM_DEVICE,
                           lambda view, size: -5)
    buf = allocators.kmalloc(512, node=0)
    handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    memcpy_before = core.breakdown.get(CAT_MEMCPY, 0)
    api.dma_unmap(core, handle)
    assert core.breakdown.get(CAT_MEMCPY, 0) == memcpy_before


def test_hint_registration_validation(api):
    with pytest.raises(DmaApiError):
        api.register_copy_hint(DmaDirection.BIDIRECTIONAL, ip_length_hint)


def test_hybrid_path_used_for_huge_buffers(api, machine, allocators):
    core = machine.core(0)
    big = allocators.kmalloc(200 * 1024, node=0)
    handle = api.dma_map(core, big, DmaDirection.TO_DEVICE)
    assert api.hybrid_maps == 1
    assert not api.pool.codec.is_shadow(handle.iova)  # fallback space
    api.dma_unmap(core, handle)


def test_hybrid_unaligned_roundtrip(api, machine, allocators):
    core = machine.core(0)
    backing = allocators.kmalloc(300 * 1024, node=0)
    buf = KBuffer(pa=backing.pa + 1234, size=150 * 1024, node=0)
    data = bytes(range(256)) * 600
    machine.memory.write(buf.pa, data)
    handle = api.dma_map(core, buf, DmaDirection.BIDIRECTIONAL)
    assert api.port().dma_read(handle.iova, len(data)) == data
    api.port().dma_write(handle.iova, data[::-1])
    api.dma_unmap(core, handle)
    assert machine.memory.read(buf.pa, len(data)) == data[::-1]


def test_hybrid_unmap_is_strict(api, machine, allocators, iommu):
    """§5.5: the transient middle mapping is destroyed with a synchronous
    IOTLB invalidation — no window."""
    from repro.errors import IommuFault

    core = machine.core(0)
    big = allocators.kmalloc(128 * 1024, node=0)
    handle = api.dma_map(core, big, DmaDirection.FROM_DEVICE)
    api.port().dma_write(handle.iova, b"fill")  # cache the translation
    before = iommu.invalidation_queue.sync_invalidations
    api.dma_unmap(core, handle)
    assert iommu.invalidation_queue.sync_invalidations == before + 1
    with pytest.raises(IommuFault):
        api.port().dma_write(handle.iova, b"late")


def test_hybrid_charges_pt_mgmt(api, machine, allocators):
    core = machine.core(0)
    big = allocators.kmalloc(128 * 1024, node=0)
    pt_before = core.breakdown.get(CAT_PT_MGMT, 0)
    handle = api.dma_map(core, big, DmaDirection.TO_DEVICE)
    api.dma_unmap(core, handle)
    assert core.breakdown[CAT_PT_MGMT] - pt_before >= \
        32 * machine.cost.pt_map_cycles


def test_hybrid_disabled_rejects_huge(make_api, machine, allocators):
    api = make_api("copy", hybrid_huge_buffers=False)
    core = machine.core(0)
    big = allocators.kmalloc(128 * 1024, node=0)
    with pytest.raises(DmaApiError):
        api.dma_map(core, big, DmaDirection.TO_DEVICE)


def test_hybrid_copies_only_head_and_tail(api, machine, allocators):
    """§5.5: copy cost is bounded by two sub-page fragments, not the
    whole buffer."""
    core = machine.core(0)
    backing = allocators.kmalloc(300 * 1024, node=0)
    buf = KBuffer(pa=backing.pa + 100, size=200 * 1024, node=0)
    handle = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    memcpy = core.breakdown.get(CAT_MEMCPY, 0)
    assert memcpy <= machine.cost.memcpy_cycles(2 * PAGE_SIZE)
    api.dma_unmap(core, handle)


def test_remote_numa_copy_costs_more(make_api, machine, allocators):
    api = make_api("copy")
    core0 = machine.core(0)          # node 0
    buf_remote = allocators.kmalloc(4096, node=1)
    buf_local = allocators.kmalloc(4096, node=0)
    h = api.dma_map(core0, buf_local, DmaDirection.TO_DEVICE)
    local_cost = core0.breakdown.get(CAT_MEMCPY, 0)
    api.dma_unmap(core0, h)
    core1 = machine.core(1)          # also node 0
    h = api.dma_map(core1, buf_remote, DmaDirection.TO_DEVICE)
    remote_cost = core1.breakdown.get(CAT_MEMCPY, 0)
    api.dma_unmap(core1, h)
    assert remote_cost > local_cost


def test_find_shadow_cross_check(api, machine, allocators):
    core = machine.core(0)
    buf = allocators.kmalloc(1000, node=0)
    handle = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
    meta = api.pool.find_shadow(core, handle.iova)
    assert meta.os_buf is buf
    api.dma_unmap(core, handle)
