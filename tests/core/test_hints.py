"""Copy-hint tests (§5.4)."""

from repro.core.hints import clamp_hint, full_copy_hint, ip_length_hint
from repro.net.packets import build_frame


class _BytesView:
    def __init__(self, data: bytes):
        self._data = data

    def read(self, offset: int, size: int) -> bytes:
        if offset < 0 or offset + size > len(self._data):
            raise ValueError("out of range")
        return self._data[offset:offset + size]


def test_ip_length_hint_reads_total_length():
    frame = build_frame(300)
    view = _BytesView(frame.ljust(2048, b"\0"))
    # eth header (14) + IP total length (340) = 354 = full frame length.
    assert ip_length_hint(view, 2048) == len(frame)


def test_ip_length_hint_small_buffer_falls_back():
    view = _BytesView(b"tiny")
    assert ip_length_hint(view, 4) == 4


def test_ip_length_hint_clamps_hostile_length():
    # A malicious device writes an absurd IP total length.
    frame = bytearray(build_frame(64))
    frame[16:18] = b"\xff\xff"
    view = _BytesView(bytes(frame).ljust(1024, b"\0"))
    assert ip_length_hint(view, 1024) == 1024  # clamped to buffer size


def test_ip_length_hint_exception_falls_back():
    class _Broken:
        def read(self, offset, size):
            raise RuntimeError("device yanked")

    assert ip_length_hint(_Broken(), 777) == 777


def test_clamp_hint():
    assert clamp_hint(-1, 100) == 0
    assert clamp_hint(50, 100) == 50
    assert clamp_hint(1000, 100) == 100


def test_full_copy_hint():
    assert full_copy_hint(_BytesView(b""), 12345) == 12345
