"""Shadow-pool error-path regressions (§5.3).

Covers the double-release guard, the canonical fallback lookup key, and
grow-failure unwinding under injected faults.
"""

import pytest

from repro.core.shadow_pool import ShadowBufferPool
from repro.errors import DmaApiUsageError, PoolExhaustedError
from repro.faults.injector import FaultInjector
from repro.faults.plan import SITE_POOL_GROW, FaultPlan, SiteRule
from repro.hw.locks import SpinLock
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.iommu.page_table import Perm
from repro.iova.allocators import MagazineIovaAllocator
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.sim.units import PAGE_SIZE


def make_pool(cores=4, nodes=2, **kwargs):
    machine = Machine.build(cores=cores, numa_nodes=nodes)
    allocators = KernelAllocators(machine)
    iommu = Iommu(machine)
    domain = iommu.attach_device(1)
    fallback = MagazineIovaAllocator(machine.cost, cores,
                                     SpinLock("depot", machine.cost))
    pool = ShadowBufferPool(machine, iommu, domain, allocators, fallback,
                            **kwargs)
    return machine, iommu, pool


def os_buf(pa=0x100000, size=1500):
    return KBuffer(pa=pa, size=size, node=0)


def test_double_release_raises():
    """Regression: releasing the same shadow buffer twice must fail loudly
    instead of corrupting the free list (the buffer would appear twice and
    be handed to two owners)."""
    machine, _, pool = make_pool()
    core = machine.core(0)
    meta = pool.acquire_shadow(core, os_buf(), 1500, Perm.WRITE)
    pool.release_shadow(core, meta)
    with pytest.raises(DmaApiUsageError, match="double release"):
        pool.release_shadow(core, meta)
    # The failed release must not have touched the accounting.
    assert pool.stats.releases == 1
    assert pool.stats.in_flight == 0


def test_release_guard_does_not_break_recycling():
    machine, _, pool = make_pool()
    core = machine.core(0)
    meta = pool.acquire_shadow(core, os_buf(), 1500, Perm.WRITE)
    pool.release_shadow(core, meta)
    again = pool.acquire_shadow(core, os_buf(), 1500, Perm.WRITE)
    assert again is meta
    pool.release_shadow(core, again)  # fine: it was re-acquired
    assert pool.stats.acquires == pool.stats.releases == 2


def test_fallback_lookup_uses_one_canonical_key():
    """Regression: fallback metadata is stored under exactly ``meta.iova``
    (external IOVA + sub-page offset).  A page-base lookup must NOT
    resolve — resolving it could return a different buffer sharing the
    page."""
    # Capacity 0 forces every allocation down the fallback path; the
    # sub-page 1024 B class gives buffers with nonzero page offsets.
    machine, _, pool = make_pool(size_classes=(1024, 4096),
                                 max_buffers_per_class=0)
    core = machine.core(0)
    first = pool.acquire_shadow(core, os_buf(size=1000), 1000, Perm.WRITE)
    second = pool.acquire_shadow(core, os_buf(size=1000), 1000, Perm.WRITE)
    assert first.fallback and second.fallback
    # The carve handed out a page-aligned head and an offset sibling.
    offset_meta = second if second.iova % PAGE_SIZE else first
    assert offset_meta.iova % PAGE_SIZE != 0
    assert pool.find_shadow(core, offset_meta.iova) is offset_meta
    page_base = offset_meta.iova & ~(PAGE_SIZE - 1)
    with pytest.raises(PoolExhaustedError, match="unknown fallback IOVA"):
        pool.find_shadow(core, page_base)
    pool.release_shadow(core, first)
    pool.release_shadow(core, second)


def test_unknown_fallback_iova_raises():
    machine, _, pool = make_pool()
    core = machine.core(0)
    with pytest.raises(PoolExhaustedError, match="unknown fallback IOVA"):
        pool.find_shadow(core, 0x7777000)


def test_injected_grow_failure_unwinds_cleanly():
    """An injected grow failure must leave the pool balanced and usable:
    no buddy pages leaked, no stats drift, and the next acquire works."""
    machine, _, pool = make_pool()
    inj = FaultInjector(FaultPlan(seed=1, rules={
        SITE_POOL_GROW: SiteRule(at=(1,))}))
    inj.start()
    pool.faults = inj
    core = machine.core(0)
    with pytest.raises(PoolExhaustedError, match="injected"):
        pool.acquire_shadow(core, os_buf(), 1500, Perm.WRITE)
    assert pool.stats.grows == 0
    assert pool.stats.bytes_allocated == 0
    assert pool.stats.in_flight == 0
    assert pool.fallback_iova.outstanding_ranges() == 0
    meta = pool.acquire_shadow(core, os_buf(), 1500, Perm.WRITE)
    pool.release_shadow(core, meta)
    assert pool.stats.acquires == pool.stats.releases == 1
