"""Shadow IOVA codec tests (Figure 2 layout)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.iova_encoding import ShadowIovaCodec
from repro.errors import ConfigurationError
from repro.iommu.page_table import Perm


@pytest.fixture
def codec():
    return ShadowIovaCodec()


def test_prototype_layout(codec):
    """The paper's prototype: 7-bit core, 2-bit rights, 1-bit class,
    37-bit index‖offset, MSB = shadow flag."""
    iova = codec.encode(core_id=5, rights=Perm.RW, class_index=1,
                        meta_index=3)
    assert iova >> 47 == 1
    assert (iova >> 40) & 0x7F == 5
    assert (iova >> 38) & 0x3 == 0b11
    assert (iova >> 37) & 0x1 == 1
    # 64 KB class: index shifted by 16.
    assert iova & ((1 << 37) - 1) == 3 << 16


def test_roundtrip(codec):
    iova = codec.encode(12, Perm.READ, 0, 77)
    decoded = codec.decode(iova + 123)  # offset inside the 4 KB buffer
    assert decoded.core_id == 12
    assert decoded.rights is Perm.READ
    assert decoded.class_index == 0
    assert decoded.meta_index == 77
    assert decoded.offset == 123


def test_is_shadow(codec):
    assert codec.is_shadow(codec.encode(0, Perm.WRITE, 0, 0))
    assert not codec.is_shadow(0x7fffffff000)


def test_decode_non_shadow_rejected(codec):
    with pytest.raises(ConfigurationError):
        codec.decode(0x1000)


def test_decode_invalid_rights_rejected(codec):
    iova = (1 << 47)  # rights bits 00
    with pytest.raises(ConfigurationError):
        codec.decode(iova)


def test_index_capacity_matches_paper(codec):
    # §5.3: a class of C bytes can index 2^(37 - log2 C) buffers.
    assert codec.index_capacity(0) == 1 << 25   # 4 KB
    assert codec.index_capacity(1) == 1 << 21   # 64 KB


def test_class_for_size(codec):
    assert codec.class_for_size(1) == 0
    assert codec.class_for_size(4096) == 0
    assert codec.class_for_size(4097) == 1
    assert codec.class_for_size(65536) == 1
    assert codec.class_for_size(65537) is None


def test_encode_bounds(codec):
    with pytest.raises(ConfigurationError):
        codec.encode(128, Perm.READ, 0, 0)       # core id too wide
    with pytest.raises(ConfigurationError):
        codec.encode(0, Perm.NONE, 0, 0)         # unencodable rights
    with pytest.raises(ConfigurationError):
        codec.encode(0, Perm.READ, 2, 0)         # no such class
    with pytest.raises(ConfigurationError):
        codec.encode(0, Perm.READ, 1, 1 << 21)   # index overflow


def test_custom_class_tables():
    codec = ShadowIovaCodec((512, 4096, 65536, 1 << 20))
    assert codec.class_bits == 2
    iova = codec.encode(1, Perm.RW, 3, 5)
    decoded = codec.decode(iova)
    assert decoded.class_index == 3
    assert decoded.meta_index == 5


def test_invalid_class_tables():
    with pytest.raises(ConfigurationError):
        ShadowIovaCodec(())
    with pytest.raises(ConfigurationError):
        ShadowIovaCodec((4096, 1000))      # not a power of two
    with pytest.raises(ConfigurationError):
        ShadowIovaCodec((65536, 4096))     # not ascending


def test_iovas_never_collide_across_lists(codec):
    seen = set()
    for core_id in range(4):
        for rights in (Perm.READ, Perm.WRITE, Perm.RW):
            for cls in (0, 1):
                for idx in range(4):
                    iova = codec.encode(core_id, rights, cls, idx)
                    assert iova not in seen
                    seen.add(iova)


@given(core_id=st.integers(0, 127),
       rights=st.sampled_from([Perm.READ, Perm.WRITE, Perm.RW]),
       cls=st.integers(0, 1),
       idx=st.integers(0, (1 << 21) - 1),
       offset=st.integers(0, 4095))
def test_roundtrip_property(core_id, rights, cls, idx, offset):
    codec = ShadowIovaCodec()
    if idx >= codec.index_capacity(cls):
        return
    iova = codec.encode(core_id, rights, cls, idx)
    decoded = codec.decode(iova + offset)
    assert (decoded.core_id, decoded.rights, decoded.class_index,
            decoded.meta_index, decoded.offset) == (core_id, rights, cls,
                                                    idx, offset)
