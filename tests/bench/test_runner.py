"""The unified bench runner: registry, records, reports.

A figure built at a tiny ad-hoc scale must produce a complete record:
fingerprinted, with one serialized row per run (the same
:func:`repro.stats.export.result_to_row` schema as the CSV exports) and
one span tree per scheme.
"""

import json
import os

import pytest

from repro.bench.record import (
    SCHEMA_VERSION,
    build_record,
    load_record,
    render_markdown,
    write_record,
)
from repro.bench.runner import (
    FIGURES,
    FIGURE_NAMES,
    FIGURE_SCHEMES,
    QUICK_SCALE,
    BenchScale,
    select_figures,
)
from repro.obs.spans import SpanNode
from repro.sim.costmodel import CostModel

#: Small enough for test runtime, big enough to reach steady state.
TINY = BenchScale(
    name="tiny",
    units_single=40, units_multi=20,
    warmup_single=10, warmup_multi=5,
    multi_cores=2,
    sizes_single=(16384,), sizes_multi=(16384,),
    breakdown_size=16384,
    rr_sizes=(1024,), rr_transactions=20, rr_warmup=5,
    memcached_cores=2, memcached_tpc=15, memcached_warmup=5,
    storage_block_sizes=(4096,), storage_ops=30, storage_warmup=5,
)


@pytest.fixture(scope="module")
def fig03_data():
    spec = next(s for s in FIGURES if s.name == "fig03")
    return spec.build(TINY)


def test_registry_names_are_unique_and_ordered():
    assert len(set(FIGURE_NAMES)) == len(FIGURE_NAMES)
    assert FIGURE_NAMES[0] == "fig01"
    assert "fig08" in FIGURE_NAMES and "storage" in FIGURE_NAMES


def test_select_figures_rejects_unknown_names():
    assert [s.name for s in select_figures(None)] == list(FIGURE_NAMES)
    assert [s.name for s in select_figures(["fig08", "fig03"])] \
        == ["fig08", "fig03"]
    with pytest.raises(SystemExit):
        select_figures(["fig99"])


def test_figure_build_produces_series_and_spans(fig03_data):
    rows = fig03_data["series"]
    assert len(rows) == len(FIGURE_SCHEMES)       # one size in TINY
    for row in rows:
        assert row["figure"] == "fig03"
        assert row["scheme"] in FIGURE_SCHEMES
        assert row["throughput_gbps"] > 0
        assert row["param_message_size"] == 16384
    assert set(fig03_data["spans"]) == set(FIGURE_SCHEMES)
    strict = SpanNode.from_dict(fig03_data["spans"]["identity-strict"])
    assert strict.child_cycles > 0
    assert "Figure 3" in fig03_data["report"]


def test_record_round_trip(tmp_path, fig03_data):
    record = build_record(mode="tiny", figures={"fig03": fig03_data},
                          schemes=FIGURE_SCHEMES, cost=CostModel())
    assert record["schema_version"] == SCHEMA_VERSION
    fp = record["fingerprint"]
    assert fp["mode"] == "tiny"
    assert "memcpy_fixed_cycles" in fp["cost_model"]
    assert "derived" not in fp["cost_model"]

    json_path, md_path = write_record(record, str(tmp_path))
    assert os.path.basename(json_path).startswith("BENCH_")
    loaded = load_record(json_path)
    assert loaded == json.loads(json.dumps(record))

    markdown = render_markdown(record)
    assert "## fig03" in markdown
    assert "spans — identity-strict" in markdown
    with open(md_path) as fh:
        assert fh.read() == markdown


def test_load_record_rejects_garbage(tmp_path):
    bad = tmp_path / "not_a_record.json"
    bad.write_text('{"something": "else"}')
    with pytest.raises(SystemExit):
        load_record(str(bad))
    worse = tmp_path / "not_json.json"
    worse.write_text("][")
    with pytest.raises(SystemExit):
        load_record(str(worse))
    stale = tmp_path / "old_schema.json"
    stale.write_text(json.dumps({"schema_version": 999, "figures": {}}))
    with pytest.raises(SystemExit):
        load_record(str(stale))


def test_quick_scale_covers_every_figure_knob():
    # A frozen reminder: adding a figure that reads a new scale knob
    # must extend both presets.
    assert QUICK_SCALE.units_single > QUICK_SCALE.warmup_single
    assert QUICK_SCALE.units_multi > QUICK_SCALE.warmup_multi
    assert QUICK_SCALE.rr_transactions > QUICK_SCALE.rr_warmup
    assert QUICK_SCALE.memcached_tpc > QUICK_SCALE.memcached_warmup
    assert QUICK_SCALE.storage_ops > QUICK_SCALE.storage_warmup


def test_fig_scalinv_build_tiny():
    """The scalable-invalidation figure: one row per (scheme, cores),
    with the strict variants' zero-stale invariant visible in the rows
    the record gates."""
    from repro.bench.runner import SCALINV_SCHEMES

    spec = next(s for s in FIGURES if s.name == "fig_scalinv")
    data = spec.build(TINY)
    rows = data["series"]
    assert len(rows) == len(SCALINV_SCHEMES) * len(TINY.scalinv_cores)
    by_scheme = {}
    for row in rows:
        assert row["figure"] == "fig_scalinv"
        assert row["throughput_gbps"] > 0
        by_scheme.setdefault(row["scheme"], []).append(row)
    assert set(by_scheme) == set(SCALINV_SCHEMES)
    for scheme in ("identity-strict", "identity-strict-percore",
                   "identity-strict-prefetch"):
        for row in by_scheme[scheme]:
            assert row["exposure_stale_byte_cycles"] == 0
    assert "stale byte-cycles" in data["report"]
