"""The ``repro fleet`` capacity search: determinism, verdict, gating.

The search shares the bench fan-out contract: ``--jobs N`` may only
change wall-clock, so ``fleet.json`` (and the report and the window
series) must be byte-identical at any job count once
:func:`repro.bench.record.stable_view` strips the host-dependent
fields.  The acceptance claim rides here too: at the p99 objective the
copy scheme sustains a larger user population than strict
invalidation, and the breach forensics past strict's knee name the
invalidation-queue lock.
"""

import json

import pytest

from repro.bench.record import build_record, stable_view
from repro.bench.regression import compare_records
from repro.cli import main as cli_main

_FLEET_ARGS = ["fleet", "--schemes", "strict,copy", "--quick"]


def _run_fleet(tmp_path, jobs: int) -> dict:
    out = tmp_path / f"jobs{jobs}"
    status = cli_main(_FLEET_ARGS + ["--jobs", str(jobs),
                                     "--out", str(out)])
    assert status == 0
    with open(out / "fleet.json") as fh:
        record = json.load(fh)
    record["_report"] = (out / "fleet.md").read_text()
    record["_windows"] = (out / "fleet_windows.jsonl").read_text()
    record["_trace"] = (out / "fleet_identity-strict.trace.json"
                        ).read_text()
    return record


@pytest.fixture(scope="module")
def searches(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("fleet")
    return {jobs: _run_fleet(tmp_path, jobs) for jobs in (1, 2)}


def test_fleet_jobs_records_byte_identical(searches):
    views = {}
    for jobs, record in searches.items():
        record = {k: v for k, v in record.items()
                  if not k.startswith("_")}
        views[jobs] = json.dumps(stable_view(record), sort_keys=True)
    assert views[1] == views[2]


def test_fleet_artifacts_byte_identical(searches):
    assert searches[1]["_report"] == searches[2]["_report"]
    assert searches[1]["_windows"] == searches[2]["_windows"]


def test_copy_capacity_exceeds_strict(searches):
    """The paper's verdict re-asked as capacity: under the same SLO the
    copy scheme carries more users than strict invalidation."""
    capacity = searches[1]["capacity"]
    assert capacity["copy"]["capacity_users"] > \
        capacity["identity-strict"]["capacity_users"]
    # Both searches actually bracketed a knee.
    for scheme in ("copy", "identity-strict"):
        assert capacity[scheme]["first_failing_users"] is not None
        assert not capacity[scheme]["saturated"]


def test_breach_forensics_name_span_and_lock(searches):
    """Past strict's knee the forensics name an invalidation span path
    and the qi lock — the 'why' next to the capacity verdict."""
    entries = searches[1]["forensics"]["identity-strict"]
    assert entries, "no breach forensics recorded past the knee"
    first = entries[0]
    assert first["dominant_span_path"]
    assert " > " in first["dominant_span_path"]
    assert first["dominant_span_cycles"] > 0
    assert first["top_lock"] == "qi-lock"
    assert first["top_lock_wait_cycles"] > 0
    # The report retells it.
    assert "qi-lock" in searches[1]["_report"]


def test_fleet_record_structure(searches):
    record = searches[1]
    assert record["objective"]["p99_us"] == 60.0
    for scheme in ("identity-strict", "copy"):
        curve = record["curves"][scheme]
        assert len(curve) >= 3
        users = [point["users"] for point in curve]
        assert len(set(users)) == len(users)           # eval cache held
        cap = record["capacity"][scheme]["capacity_users"]
        by_users = {point["users"]: point for point in curve}
        assert by_users[cap]["sustained"]
        assert by_users[cap]["breach_windows"] == 0
        hi = record["capacity"][scheme]["first_failing_users"]
        assert not by_users[hi]["sustained"]
    # Gated columns ride the record's figure rows.
    rows = record["figures"]["fleet"]["series"]
    assert [row["fleet_capacity_users"] for row in rows] == [
        record["capacity"]["identity-strict"]["capacity_users"],
        record["capacity"]["copy"]["capacity_users"]]
    assert all(row["slo_breach_windows"] == 0 for row in rows)
    assert all("param_users" not in row for row in rows)


def test_window_series_and_trace_exports(searches):
    lines = [json.loads(line) for line
             in searches[1]["_windows"].splitlines()]
    assert lines
    for line in lines:
        assert line["scheme"] in ("identity-strict", "copy")
        assert line["point"] in ("capacity", "breach")
        assert line["end_cycles"] > line["start_cycles"]
    assert {line["point"] for line in lines} == {"capacity", "breach"}
    # Breach points really breach; capacity points never do.
    assert any(line["breach"] for line in lines
               if line["point"] == "breach")
    assert not any(line["breach"] for line in lines
                   if line["point"] == "capacity")
    # The Perfetto export carries the SLO counter tracks.
    assert "slo.p99_window" in searches[1]["_trace"]
    assert "slo.burn_rate" in searches[1]["_trace"]


# ----------------------------------------------------------------------
# The regression gate on the new capacity columns.
# ----------------------------------------------------------------------
def _fleet_record(capacity: int, breaches: int) -> dict:
    row = {"scheme": "identity-strict", "workload": "fleet", "cores": 2,
           "param_duration_us": 1200.0, "throughput_gbps": 1.0,
           "fleet_capacity_users": capacity,
           "slo_breach_windows": breaches}
    figures = {"fleet": {"series": [row]}}
    return build_record(mode="quick", figures=figures,
                        schemes=("identity-strict",))


def test_gate_trips_on_capacity_collapse():
    baseline = _fleet_record(capacity=4_000_000, breaches=0)
    collapsed = _fleet_record(capacity=2_500_000, breaches=0)  # -37% > 25%
    regressions = compare_records(baseline, collapsed)
    assert [r.metric for r in regressions] == ["fleet_capacity_users"]


def test_gate_tolerates_bisection_jitter_and_growth():
    baseline = _fleet_record(capacity=4_000_000, breaches=0)
    nudged = _fleet_record(capacity=3_200_000, breaches=0)     # -20% ok
    assert compare_records(baseline, nudged) == []
    improved = _fleet_record(capacity=8_000_000, breaches=0)
    assert compare_records(baseline, improved) == []


def test_gate_zero_baseline_breach_trips():
    """Capacity points are breach-free by construction, so any breach
    appearing where the baseline had none is a regression."""
    baseline = _fleet_record(capacity=4_000_000, breaches=0)
    breaching = _fleet_record(capacity=4_000_000, breaches=2)
    metrics = [r.metric for r in compare_records(baseline, breaching)]
    assert metrics == ["slo_breach_windows"]
