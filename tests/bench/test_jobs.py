"""The parallel bench fan-out and the simulator-throughput metric.

``--jobs N`` may only change wall-clock, never results: records merged
from worker processes must be byte-identical to a serial run once the
host-dependent fields (timestamp, wall seconds, cycles/second) are
stripped.  The throughput section itself must always be present, sane,
and gated by the regression tolerances.
"""

import glob
import json

from repro.bench.record import build_record, stable_view
from repro.bench.regression import compare_records
from repro.bench.runner import (
    FIGURE_SCHEMES,
    BenchScale,
    build_figures,
    select_figures,
)
from repro.cli import main as cli_main

#: Small enough for test runtime, big enough to produce nonzero series.
TINY = BenchScale(
    name="tiny",
    units_single=40, units_multi=20,
    warmup_single=10, warmup_multi=5,
    multi_cores=2,
    sizes_single=(16384,), sizes_multi=(16384,),
    breakdown_size=16384,
    rr_sizes=(1024,), rr_transactions=20, rr_warmup=5,
    memcached_cores=2, memcached_tpc=15, memcached_warmup=5,
    storage_block_sizes=(4096,), storage_ops=30, storage_warmup=5,
)

_TWO_FIGURES = ["storage", "fig05"]


def _stable_json(record: dict) -> str:
    return json.dumps(stable_view(record), sort_keys=True)


def test_parallel_build_matches_serial():
    specs = select_figures(_TWO_FIGURES)
    serial_figures, serial_tp = build_figures(specs, TINY, jobs=1,
                                              label="test")
    parallel_figures, parallel_tp = build_figures(specs, TINY, jobs=2,
                                                  label="test")
    assert parallel_figures == serial_figures
    # Figures come back merged in spec order, not completion order.
    assert list(parallel_figures) == _TWO_FIGURES
    assert list(parallel_tp) == _TWO_FIGURES + ["overall"]
    # Simulated cycles are deterministic; only wall fields may differ.
    for name in parallel_tp:
        assert parallel_tp[name]["sim_cycles"] \
            == serial_tp[name]["sim_cycles"]
        assert parallel_tp[name]["sim_cycles_per_wall_second"] > 0


def test_bench_jobs_records_byte_identical(tmp_path):
    """End to end: ``repro bench --jobs 4`` and ``--jobs 1`` emit
    byte-identical merged records, modulo the timestamp and the
    wall-clock throughput fields."""
    records = {}
    for jobs in (1, 4):
        out = tmp_path / f"jobs{jobs}"
        status = cli_main(["bench", "--quick", "--only", "storage",
                           "--jobs", str(jobs), "--out", str(out)])
        assert status == 0
        (path,) = glob.glob(str(out / "BENCH_*.json"))
        with open(path) as fh:
            records[jobs] = json.load(fh)
    assert _stable_json(records[1]) == _stable_json(records[4])
    assert records[4]["throughput"]["storage"][
        "sim_cycles_per_wall_second"] > 0


def _record_with_rate(rate: int) -> dict:
    throughput = {"fig05": {"sim_cycles": 1_000_000, "wall_seconds": 1.0,
                            "sim_cycles_per_wall_second": rate},
                  "overall": {"sim_cycles": 1_000_000, "wall_seconds": 1.0,
                              "sim_cycles_per_wall_second": rate}}
    return build_record(mode="quick", figures={}, schemes=FIGURE_SCHEMES,
                        throughput=throughput)


def test_throughput_gate_trips_on_collapse():
    baseline = _record_with_rate(1_000_000)
    slowed = _record_with_rate(100_000)        # 10x slower: beyond band
    regressions = compare_records(baseline, slowed)
    assert [r.metric for r in regressions] \
        == ["sim_cycles_per_wall_second"] * 2
    assert {r.figure for r in regressions} == {"fig05", "overall"}


def test_throughput_gate_tolerates_host_variance():
    baseline = _record_with_rate(1_000_000)
    half = _record_with_rate(500_000)          # 2x slower: within band
    assert compare_records(baseline, half) == []
    faster = _record_with_rate(5_000_000)      # improvements never trip
    assert compare_records(baseline, faster) == []


def test_throughput_gate_skips_legacy_baselines():
    """A baseline recorded before the throughput section gates nothing."""
    legacy = build_record(mode="quick", figures={}, schemes=FIGURE_SCHEMES)
    current = _record_with_rate(1)
    assert compare_records(legacy, current) == []
