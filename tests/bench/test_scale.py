"""The ``repro scale`` sweep: determinism, the paper's verdict, gating.

The sweep shares the bench fan-out contract: ``--jobs N`` may only
change wall-clock, so ``scale.json`` must be byte-identical at any job
count once :func:`repro.bench.record.stable_view` strips the
host-dependent fields.  And the headline acceptance claim rides here:
on the stream workload, strict invalidation must show a much larger
fitted serial fraction than copy, attributed to the invalidation-queue
lock.
"""

import json

import pytest

from repro.bench.record import build_record, stable_view
from repro.bench.regression import compare_records
from repro.bench.scale import resolve_cores, resolve_schemes
from repro.cli import main as cli_main

_SWEEP_ARGS = ["scale", "--workload", "stream",
               "--schemes", "strict,copy",          # paper aliases resolve
               "--cores", "1,2,4", "--quick"]


def _run_sweep(tmp_path, jobs: int) -> dict:
    out = tmp_path / f"jobs{jobs}"
    status = cli_main(_SWEEP_ARGS + ["--jobs", str(jobs),
                                     "--out", str(out)])
    assert status == 0
    with open(out / "scale.json") as fh:
        record = json.load(fh)
    # The markdown report rides along under a fixed name.
    report = (out / "scale.md").read_text()
    record["_report"] = report
    return record


@pytest.fixture(scope="module")
def sweeps(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("scale")
    return {jobs: _run_sweep(tmp_path, jobs) for jobs in (1, 2)}


def test_scale_jobs_records_byte_identical(sweeps):
    views = {}
    for jobs, record in sweeps.items():
        record = dict(record)
        record.pop("_report")
        views[jobs] = json.dumps(stable_view(record), sort_keys=True)
    assert views[1] == views[2]


def test_scale_reports_byte_identical(sweeps):
    assert sweeps[1]["_report"] == sweeps[2]["_report"]


def test_strict_serial_fraction_dominates_copy(sweeps):
    """The paper's multicore collapse, quantified: strict's fitted
    serial fraction is several times copy's, and the contention matrix
    blames the invalidation-queue lock."""
    analysis = sweeps[1]["analysis"]
    strict = analysis["identity-strict"]
    copy = analysis["copy"]
    assert strict["fit"]["serial_fraction"] > 3 * (
        copy["fit"]["serial_fraction"] or 0.0)
    assert strict["fit"]["serial_fraction"] > 0.3
    assert strict["top_lock"] == "qi-lock"
    assert strict["lock_wait_share"] > copy["lock_wait_share"]
    # The report says so in prose-adjacent markdown.
    assert "qi-lock" in sweeps[1]["_report"]
    assert "invalidation-queue decomposition" in sweeps[1]["_report"]


def test_scale_record_structure(sweeps):
    record = sweeps[1]
    assert record["workload"] == "stream"
    assert record["cores"] == [1, 2, 4]
    # Aliases resolved to canonical names, order preserved.
    assert list(record["points"]) == ["identity-strict", "copy"]
    for scheme, points in record["points"].items():
        assert [p["cores"] for p in points] == [1, 2, 4]
        for point in points:
            assert point["busy_cycles"] > 0
            assert 0.0 <= point["scaling_serial_fraction"] <= 1.0
        assert scheme in record["contention"]
        assert [r["cores"] for r in record["queueing"][scheme]] == [1, 2, 4]
    # Strict's invalidation queueing rows carry real traffic.
    strict_rows = record["queueing"]["identity-strict"]
    assert all(row["submissions"] > 0 for row in strict_rows)
    assert record["throughput"]["overall"]["sim_cycles"] > 0


# ----------------------------------------------------------------------
# Argument resolution.
# ----------------------------------------------------------------------
def test_resolve_schemes_aliases_and_dedup():
    assert resolve_schemes(["strict", "identity-strict", "copy"]) \
        == ["identity-strict", "copy"]
    with pytest.raises(SystemExit):
        resolve_schemes(["no-such-scheme"])
    with pytest.raises(SystemExit):
        resolve_schemes([])


def test_resolve_cores_sorted_unique_positive():
    assert resolve_cores([4, 1, 2, 2]) == [1, 2, 4]
    with pytest.raises(SystemExit):
        resolve_cores([0, 2])
    with pytest.raises(SystemExit):
        resolve_cores([])


# ----------------------------------------------------------------------
# The regression gate on the new serialized-share columns.
# ----------------------------------------------------------------------
def _record_with_shares(serial: float, lock_wait: float) -> dict:
    row = {"scheme": "identity-strict", "workload": "stream", "cores": 16,
           "param_size": 16384, "throughput_gbps": 10.0,
           "lock_wait_share": lock_wait,
           "scaling_serial_fraction": serial}
    figures = {"fig06": {"series": [row]}}
    return build_record(mode="quick", figures=figures,
                        schemes=("identity-strict",))


def test_gate_trips_on_serial_fraction_growth():
    baseline = _record_with_shares(serial=0.40, lock_wait=0.30)
    grown = _record_with_shares(serial=0.55, lock_wait=0.30)  # +37% > 15%
    regressions = compare_records(baseline, grown)
    assert [r.metric for r in regressions] == ["scaling_serial_fraction"]


def test_gate_tolerates_small_share_shift_and_improvement():
    baseline = _record_with_shares(serial=0.40, lock_wait=0.30)
    nudged = _record_with_shares(serial=0.44, lock_wait=0.33)  # within bands
    assert compare_records(baseline, nudged) == []
    improved = _record_with_shares(serial=0.10, lock_wait=0.05)
    assert compare_records(baseline, improved) == []


def test_gate_zero_baseline_lock_wait_trips():
    """A scheme that provably never spun (share exactly 0) starting to
    spin is a regression regardless of relative bands."""
    baseline = _record_with_shares(serial=0.0, lock_wait=0.0)
    spinning = _record_with_shares(serial=0.01, lock_wait=0.01)
    metrics = sorted(r.metric for r in compare_records(baseline, spinning))
    assert metrics == ["lock_wait_share", "scaling_serial_fraction"]
