"""``python -m repro report``: the one-shot consolidated markdown."""

from repro.bench.report import run_report


def test_run_report_writes_consolidated_markdown(tmp_path, capsys):
    out = tmp_path / "REPORT.md"
    code = run_report(out=str(out), only=["fig03"], tail=99.0)
    assert code == 0
    text = out.read_text()
    # The standard bench-record sections...
    assert "# Benchmark record" in text
    assert "## fig03" in text
    # ...plus the request-latency table with all three tail columns...
    assert "## Request latency tails" in text
    assert "p99.9 [us]" in text
    assert "| fig03 | copy | tcp_stream_rx |" in text
    # ...plus the exposure totals...
    assert "## Exposure" in text
    assert "| identity-deferred |" in text
    # ...plus the strict-vs-copy attribution contrast.
    assert "## Tail attribution" in text
    assert "### identity-strict" in text
    assert "### copy" in text
    assert "dominant stage: lock_wait" in text
    stdout = capsys.readouterr().out
    assert str(out) in stdout


def test_run_report_rejects_unknown_figure(tmp_path):
    import pytest

    with pytest.raises(SystemExit):
        run_report(out=str(tmp_path / "r.md"), only=["nope"])
