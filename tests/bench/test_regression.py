"""The regression gate: tolerance bands and span attribution.

Built around synthetic records (no simulation runs) so the semantics
are exact: an injected slowdown beyond the band trips the gate and the
report names the span subtree that grew; within-band noise passes.
"""

import copy

from repro.bench.record import build_record
from repro.bench.regression import (
    DEFAULT_TOLERANCES,
    blame_span,
    compare_records,
    gate_against_baseline,
    render_gate_report,
)
from repro.obs.spans import SpanNode


def _span_tree(lock_wait_cycles: int) -> dict:
    """run -> dma_unmap -> {iotlb_invalidate, lock_wait} as dict data."""
    run = SpanNode("run")
    unmap = run.child("dma_unmap")
    unmap.count = 100
    unmap.total_cycles = 50_000 + lock_wait_cycles
    inv = unmap.child("iotlb_invalidate")
    inv.count = 100
    inv.total_cycles = 30_000
    lock = unmap.child("lock_wait")
    lock.count = 100
    lock.total_cycles = lock_wait_cycles
    return run.to_dict()


def _record(throughput: float, us_per_unit: float,
            lock_wait_cycles: int = 10_000,
            scheme: str = "identity-strict",
            stale_byte_cycles: int | None = None,
            excess_byte_cycles: int | None = None) -> dict:
    row = {
        "figure": "fig03", "scheme": scheme,
        "workload": "tcp_stream_rx", "cores": 1,
        "param_message_size": 65536,
        "throughput_gbps": throughput, "us_per_unit": us_per_unit,
        "latency_us": None, "transactions_per_sec": None,
    }
    if stale_byte_cycles is not None:
        row["exposure_stale_byte_cycles"] = stale_byte_cycles
    if excess_byte_cycles is not None:
        row["exposure_excess_byte_cycles"] = excess_byte_cycles
    figures = {"fig03": {
        "title": "Figure 3", "series": [row],
        "spans": {scheme: _span_tree(lock_wait_cycles)},
    }}
    return build_record(mode="quick", figures=figures,
                        schemes=(scheme,))


def test_identical_records_pass():
    base = _record(6.6, 1.17)
    assert compare_records(base, copy.deepcopy(base)) == []


def test_within_tolerance_noise_passes():
    base = _record(6.60, 1.170)
    cur = _record(6.60 * 0.97, 1.170 * 1.03)   # 3% drift, 5% band
    assert compare_records(base, cur) == []


def test_improvement_never_trips():
    base = _record(6.6, 1.17)
    cur = _record(6.6 * 1.5, 1.17 / 1.5)
    assert compare_records(base, cur) == []


def test_injected_slowdown_trips_both_metrics():
    base = _record(6.6, 1.17)
    cur = _record(6.6 * 0.8, 1.17 * 1.25, lock_wait_cycles=40_000)
    regs = compare_records(base, cur)
    metrics = {r.metric for r in regs}
    assert metrics == {"throughput_gbps", "us_per_unit"}
    for reg in regs:
        assert reg.figure == "fig03"
        assert reg.scheme == "identity-strict"
        assert "message_size=65536" in reg.key


def test_unmatched_points_are_skipped():
    base = _record(6.6, 1.17)
    cur = _record(1.0, 9.9)
    cur["figures"]["fig03"]["series"][0]["param_message_size"] = 1024
    assert compare_records(base, cur) == []
    cur2 = _record(1.0, 9.9)
    cur2["figures"]["other"] = cur2["figures"].pop("fig03")
    assert compare_records(base, cur2) == []


def test_custom_tolerances():
    base = _record(6.6, 1.17)
    cur = _record(6.6 * 0.97, 1.17)
    tight = {"throughput_gbps": (True, 0.01)}
    assert len(compare_records(base, cur, tight)) == 1
    assert compare_records(base, cur, DEFAULT_TOLERANCES) == []


def test_blame_names_the_grown_subtree():
    base = SpanNode.from_dict(_span_tree(10_000))
    cur = SpanNode.from_dict(_span_tree(60_000))
    blamed = blame_span(base, cur)
    assert blamed is not None
    path, base_share, cur_share = blamed
    assert path == ("dma_unmap", "lock_wait")
    assert cur_share > base_share


def test_gate_report_names_offending_span():
    base = _record(6.6, 1.17, lock_wait_cycles=10_000)
    cur = _record(6.6 * 0.7, 1.17 * 1.4, lock_wait_cycles=60_000)
    regs = compare_records(base, cur)
    report = render_gate_report(base, cur, regs)
    assert "FAIL" in report
    assert "dma_unmap -> lock_wait" in report
    assert "throughput_gbps" in report


def test_gate_exit_status(tmp_path):
    import json

    base = _record(6.6, 1.17)
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(base))
    assert gate_against_baseline(str(path), copy.deepcopy(base)) == 0
    slow = _record(6.6 * 0.5, 1.17 * 2, lock_wait_cycles=90_000)
    assert gate_against_baseline(str(path), slow) == 1


def test_exposure_growth_beyond_band_trips():
    """A deferred scheme whose stale window grows 2x is a security
    regression, caught by the same gate as the perf metrics."""
    base = _record(6.6, 1.17, scheme="identity-deferred",
                   stale_byte_cycles=1_000_000)
    cur = _record(6.6, 1.17, scheme="identity-deferred",
                  stale_byte_cycles=2_000_000)
    regs = compare_records(base, cur)
    assert {r.metric for r in regs} == {"exposure_stale_byte_cycles"}
    assert regs[0].change == 1.0


def test_exposure_within_band_passes():
    base = _record(6.6, 1.17, scheme="identity-deferred",
                   stale_byte_cycles=1_000_000)
    cur = _record(6.6, 1.17, scheme="identity-deferred",
                  stale_byte_cycles=1_400_000)   # +40%, 50% band
    assert compare_records(base, cur) == []


def test_exposure_from_zero_baseline_trips():
    """copy's baseline exposure is provably zero; any growth from zero
    must trip even though relative change is undefined."""
    import math

    base = _record(6.6, 1.17, scheme="copy",
                   stale_byte_cycles=0, excess_byte_cycles=0)
    cur = _record(6.6, 1.17, scheme="copy",
                  stale_byte_cycles=4096, excess_byte_cycles=8192)
    regs = compare_records(base, cur)
    assert {r.metric for r in regs} == {"exposure_stale_byte_cycles",
                                        "exposure_excess_byte_cycles"}
    for reg in regs:
        assert reg.baseline == 0.0
        assert reg.change == math.inf
    report = render_gate_report(base, cur, regs)
    assert "FAIL" in report


def test_exposure_reduction_never_trips():
    base = _record(6.6, 1.17, scheme="identity-deferred",
                   stale_byte_cycles=2_000_000)
    cur = _record(6.6, 1.17, scheme="identity-deferred",
                  stale_byte_cycles=0)
    assert compare_records(base, cur) == []


def test_records_without_exposure_columns_still_gate():
    """Old baselines (pre-exposure) skip the exposure metrics cleanly."""
    base = _record(6.6, 1.17)
    cur = _record(6.6, 1.17, stale_byte_cycles=5_000_000)
    assert compare_records(base, cur) == []


def test_mode_mismatch_warns_but_compares():
    base = _record(6.6, 1.17)
    cur = _record(6.6, 1.17)
    cur["fingerprint"]["mode"] = "full"
    report = render_gate_report(base, cur, compare_records(base, cur))
    assert "different modes" in report
    assert "PASS" in report
