"""System assembly tests."""

import pytest

from repro.errors import ConfigurationError
from repro.system import NIC_DEVICE_ID, System, SystemConfig


def test_default_build():
    system = System.build(SystemConfig())
    assert system.machine.num_cores == 1
    assert system.iommu is not None
    assert system.dma_api.name == "copy"
    assert system.nic.device_id == NIC_DEVICE_ID
    assert system.nic.num_queues == 1


def test_no_iommu_build_skips_iommu():
    system = System.build(SystemConfig(scheme="no-iommu"))
    assert system.iommu is None


def test_queues_default_one_per_core():
    system = System.build(SystemConfig(cores=4))
    assert system.config.resolved_queues() == 4
    system.setup_queues()
    for qid in range(4):
        assert qid in system.driver._rx_rings
    system.teardown_queues()


def test_explicit_queue_count():
    system = System.build(SystemConfig(cores=4, nic_queues=2))
    assert system.config.resolved_queues() == 2


def test_numa_nodes_clamped_to_cores():
    system = System.build(SystemConfig(cores=1, numa_nodes=2))
    assert system.machine.num_nodes == 1


def test_scheme_kwargs_flow_through():
    system = System.build(SystemConfig(
        scheme="copy", scheme_kwargs={"sticky": False}))
    assert system.dma_api.pool.sticky is False


def test_custom_cost_model():
    from repro.sim.costmodel import CostModel

    cost = CostModel(rx_parse_cycles=123)
    system = System.build(SystemConfig(cost=cost))
    assert system.cost.rx_parse_cycles == 123


def test_rx_buf_size_flows_to_driver():
    system = System.build(SystemConfig(rx_buf_size=16384))
    assert system.driver.rx_buf_size == 16384


def test_invalid_scheme_rejected():
    with pytest.raises(ConfigurationError):
        System.build(SystemConfig(scheme="not-a-scheme"))


def test_swiotlb_system_end_to_end():
    from repro.net.packets import build_frame

    system = System.build(SystemConfig(scheme="swiotlb", cores=2))
    system.setup_queues()
    core = system.machine.core(0)
    assert system.driver.receive_one(core, 0, build_frame(500)) == 500
    system.teardown_queues()


def test_self_invalidating_system_end_to_end():
    from repro.net.packets import build_frame

    # Generous budget: ring descriptors are read repeatedly.
    system = System.build(SystemConfig(
        scheme="self-invalidating", cores=1,
        scheme_kwargs={"dma_budget": 64, "lifetime_us": 1e6}))
    system.setup_queues()
    core = system.machine.core(0)
    for _ in range(10):
        assert system.driver.receive_one(core, 0, build_frame(700)) == 700
    system.teardown_queues()
