"""Perfetto export: valid Chrome ``trace_event`` JSON that round-trips.

The schema check is structural — every event must be a well-formed
trace_event object for its phase — plus the flow invariant the viewer
relies on: each request's ``s``/``t``/``f`` events share one flow id
(the rid), appear in causal order, and bracket exactly one begin and
one end.
"""

import json

from repro.obs.context import Observability
from repro.obs.perfetto import PHASE_TID, perfetto_trace, write_perfetto
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx

_VALID_PHASES = {"M", "X", "s", "t", "f", "C"}


def _traced_obs():
    obs = Observability.capture(trace_capacity=256)
    run_tcp_stream_rx(StreamConfig(
        scheme="identity-strict", direction="rx", message_size=16384,
        cores=2, units_per_core=40, warmup_units=10, obs=obs))
    return obs


def test_every_event_is_a_valid_trace_event_object():
    obs = _traced_obs()
    trace = perfetto_trace(obs)
    events = trace["traceEvents"]
    assert events, "a traced run must export events"
    for ev in events:
        assert ev["ph"] in _VALID_PHASES
        assert ev["pid"] == 0
        assert isinstance(ev["tid"], int)
        assert isinstance(ev["name"], str) and ev["name"]
        if ev["ph"] == "X":
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert ev["dur"] > 0
        elif ev["ph"] in ("s", "t", "f"):
            assert isinstance(ev["id"], int)
            assert ev["ts"] >= 0
        elif ev["ph"] == "C":
            assert "value" in ev["args"]
    # Thread-name metadata exists for every core that carried a slice.
    named = {ev["tid"] for ev in events
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    sliced = {ev["tid"] for ev in events
              if ev["ph"] == "X" and ev["tid"] != PHASE_TID}
    assert sliced <= named | {PHASE_TID}
    assert trace["otherData"]["requests_exported"] > 0


def test_flow_ids_are_consistent_per_request():
    obs = _traced_obs()
    events = perfetto_trace(obs)["traceEvents"]
    flows = {}
    for ev in events:
        if ev["ph"] in ("s", "t", "f"):
            flows.setdefault(ev["id"], []).append(ev)
    assert flows
    request_slices = {ev["args"]["rid"]: ev for ev in events
                      if ev["ph"] == "X" and ev.get("cat") == "request"}
    for rid, steps in flows.items():
        phases = [ev["ph"] for ev in steps]
        assert phases.count("s") == 1
        assert phases.count("f") == 1
        assert phases[0] == "s" and phases[-1] == "f"
        start, finish = steps[0], steps[-1]
        assert all(start["ts"] <= ev["ts"] <= finish["ts"]
                   for ev in steps)
        # The flow id IS the request id of a retained request slice.
        assert rid in request_slices
        slice_ev = request_slices[rid]
        assert slice_ev["tid"] == start["tid"]


def test_write_perfetto_round_trips_through_json(tmp_path):
    obs = _traced_obs()
    path = tmp_path / "trace.json"
    count = write_perfetto(obs, str(path))
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == count
    assert loaded["traceEvents"] == perfetto_trace(obs)["traceEvents"]
    assert loaded["otherData"]["source"] == "repro.obs.perfetto"


def test_max_requests_caps_the_export():
    obs = _traced_obs()
    capped = perfetto_trace(obs, max_requests=3)
    assert capped["otherData"]["requests_exported"] == 3
    rids = {ev["args"]["rid"] for ev in capped["traceEvents"]
            if ev["ph"] == "X" and ev.get("cat") == "request"}
    assert len(rids) == 3


def test_empty_run_exports_only_metadata():
    obs = Observability.capture(trace_capacity=16)
    trace = perfetto_trace(obs)
    assert trace["otherData"]["requests_exported"] == 0
    assert all(ev["ph"] in ("M", "C") for ev in trace["traceEvents"])
