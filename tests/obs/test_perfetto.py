"""Perfetto export: valid Chrome ``trace_event`` JSON that round-trips.

The schema check is structural — every event must be a well-formed
trace_event object for its phase — plus the flow invariant the viewer
relies on: each request's ``s``/``t``/``f`` events share one flow id
(the rid), appear in causal order, and bracket exactly one begin and
one end.
"""

import json

from repro.obs.context import Observability
from repro.obs.perfetto import PHASE_TID, perfetto_trace, write_perfetto
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx

_VALID_PHASES = {"M", "X", "s", "t", "f", "C"}


def _traced_obs():
    obs = Observability.capture(trace_capacity=256)
    run_tcp_stream_rx(StreamConfig(
        scheme="identity-strict", direction="rx", message_size=16384,
        cores=2, units_per_core=40, warmup_units=10, obs=obs))
    return obs


def test_every_event_is_a_valid_trace_event_object():
    obs = _traced_obs()
    trace = perfetto_trace(obs)
    events = trace["traceEvents"]
    assert events, "a traced run must export events"
    for ev in events:
        assert ev["ph"] in _VALID_PHASES
        assert ev["pid"] == 0
        assert isinstance(ev["tid"], int)
        assert isinstance(ev["name"], str) and ev["name"]
        if ev["ph"] == "X":
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert ev["dur"] > 0
        elif ev["ph"] in ("s", "t", "f"):
            assert isinstance(ev["id"], int)
            assert ev["ts"] >= 0
        elif ev["ph"] == "C":
            assert "value" in ev["args"]
    # Thread-name metadata exists for every core that carried a slice.
    named = {ev["tid"] for ev in events
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    sliced = {ev["tid"] for ev in events
              if ev["ph"] == "X" and ev["tid"] != PHASE_TID}
    assert sliced <= named | {PHASE_TID}
    assert trace["otherData"]["requests_exported"] > 0


def test_flow_ids_are_consistent_per_request():
    obs = _traced_obs()
    events = perfetto_trace(obs)["traceEvents"]
    flows = {}
    for ev in events:
        if ev["ph"] in ("s", "t", "f"):
            flows.setdefault(ev["id"], []).append(ev)
    assert flows
    request_slices = {ev["args"]["rid"]: ev for ev in events
                      if ev["ph"] == "X" and ev.get("cat") == "request"}
    for rid, steps in flows.items():
        phases = [ev["ph"] for ev in steps]
        assert phases.count("s") == 1
        assert phases.count("f") == 1
        assert phases[0] == "s" and phases[-1] == "f"
        start, finish = steps[0], steps[-1]
        assert all(start["ts"] <= ev["ts"] <= finish["ts"]
                   for ev in steps)
        # The flow id IS the request id of a retained request slice.
        assert rid in request_slices
        slice_ev = request_slices[rid]
        assert slice_ev["tid"] == start["tid"]


def test_write_perfetto_round_trips_through_json(tmp_path):
    obs = _traced_obs()
    path = tmp_path / "trace.json"
    count = write_perfetto(obs, str(path))
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == count
    assert loaded["traceEvents"] == perfetto_trace(obs)["traceEvents"]
    assert loaded["otherData"]["source"] == "repro.obs.perfetto"


def test_max_requests_caps_the_export():
    obs = _traced_obs()
    capped = perfetto_trace(obs, max_requests=3)
    assert capped["otherData"]["requests_exported"] == 3
    rids = {ev["args"]["rid"] for ev in capped["traceEvents"]
            if ev["ph"] == "X" and ev.get("cat") == "request"}
    assert len(rids) == 3


def test_empty_run_exports_only_metadata():
    obs = Observability.capture(trace_capacity=16)
    trace = perfetto_trace(obs)
    assert trace["otherData"]["requests_exported"] == 0
    assert all(ev["ph"] in ("M", "C") for ev in trace["traceEvents"])


def test_lock_waiter_counter_tracks():
    """``lock.contend`` events become per-lock waiter-count counter
    tracks: +1 at each wait's start, -1 at its acquisition, so the
    running value counts simultaneously spinning cores."""
    obs = Observability.capture(trace_capacity=64)
    # Two overlapping waits on "qi" (waits [50,100] and [80,120]) and
    # one on another lock; an uncontended acquire adds no counter.
    obs.tracer.emit("lock.contend", 100, 1, lock="qi", wait_cycles=50)
    obs.tracer.emit("lock.contend", 120, 2, lock="qi", wait_cycles=40)
    obs.tracer.emit("lock.contend", 10, 3, lock="iova", wait_cycles=5)
    obs.tracer.emit("lock.acquire", 130, 1, lock="qi")
    counters = [ev for ev in perfetto_trace(obs)["traceEvents"]
                if ev["ph"] == "C" and ev["name"].startswith("lock.waiters:")]
    assert {ev["name"] for ev in counters} \
        == {"lock.waiters:qi", "lock.waiters:iova"}
    qi = [(ev["ts"], ev["args"]["waiters"]) for ev in counters
          if ev["name"] == "lock.waiters:qi"]
    # Cycle endpoints 50, 80, 100, 120 -> waiter counts 1, 2, 1, 0.
    assert [w for _, w in qi] == [1, 2, 1, 0]
    assert qi == sorted(qi)
    iova = [ev["args"]["waiters"] for ev in counters
            if ev["name"] == "lock.waiters:iova"]
    assert iova == [1, 0]


def test_lock_waiter_counters_from_contended_run():
    """A real contended run exports a qi-lock waiter track whose
    running count returns to zero and never goes negative."""
    # A big enough ring that the contend events survive retention.
    obs = Observability.capture(trace_capacity=1 << 16)
    run_tcp_stream_rx(StreamConfig(
        scheme="identity-strict", direction="rx", message_size=16384,
        cores=2, units_per_core=40, warmup_units=10, obs=obs))
    counts = [ev["args"]["waiters"]
              for ev in perfetto_trace(obs)["traceEvents"]
              if ev["ph"] == "C" and ev["name"] == "lock.waiters:qi-lock"]
    assert counts, "the 2-core strict run must contend the qi lock"
    assert min(counts) >= 0
    assert counts[-1] == 0
