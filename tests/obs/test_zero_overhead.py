"""Tracing must never perturb the simulation.

The whole observability layer records in *host* memory and charges no
simulated cycles, so:

* a run with the default (null) context is byte-identical to one with an
  explicitly passed NullTracer context, and
* a fully *traced* run reproduces the exact cycle numbers of an untraced
  run — the trace is a pure observer.
"""

from repro.obs.context import Observability
from repro.obs.trace import (
    EV_DMA_MAP,
    EV_INV_SUBMIT,
    EV_LOCK_ACQUIRE,
    NullTracer,
)
from repro.stats.export import to_json
from repro.workloads.netperf import RRConfig, StreamConfig, run_tcp_rr, \
    run_tcp_stream_rx

_RR = dict(scheme="copy", message_size=64, transactions=40,
           warmup_transactions=10)


def test_null_tracer_run_is_byte_identical():
    bare = run_tcp_rr(RRConfig(**_RR))
    nulled = run_tcp_rr(RRConfig(**_RR,
                                 obs=Observability(tracer=NullTracer())))
    assert to_json([bare]) == to_json([nulled])
    assert bare.extras == nulled.extras


def test_traced_run_is_cycle_identical():
    bare = run_tcp_rr(RRConfig(**_RR))
    obs = Observability.capture()
    traced = run_tcp_rr(RRConfig(**_RR, obs=obs))
    assert traced.wall_cycles == bare.wall_cycles
    assert traced.busy_cycles == bare.busy_cycles
    assert traced.breakdown_cycles == bare.breakdown_cycles
    assert traced.latency_us == bare.latency_us
    assert traced.units == bare.units
    # The only divergence is the attached metrics snapshot.
    assert "metrics" in traced.extras and "metrics" not in bare.extras
    # And the observer actually observed: the strict copy scheme's RR run
    # must produce lock, invalidation, and DMA events.
    kinds = obs.tracer.counts_by_kind()
    assert kinds[EV_DMA_MAP] > 0
    assert kinds[EV_LOCK_ACQUIRE] > 0
    assert kinds[EV_INV_SUBMIT] > 0
    hist = obs.metrics.histograms["invalidation.latency_cycles"]
    assert hist.count > 0


def test_traced_stream_identical_under_contention():
    """identity-strict at 2 cores contends the qi lock; tracing the
    contention must not change it."""
    cfg = dict(scheme="identity-strict", direction="rx", cores=2,
               message_size=16384, units_per_core=60, warmup_units=15)
    bare = run_tcp_stream_rx(StreamConfig(**cfg))
    obs = Observability.capture()
    traced = run_tcp_stream_rx(StreamConfig(**cfg, obs=obs))
    assert traced.wall_cycles == bare.wall_cycles
    assert traced.busy_cycles == bare.busy_cycles
    assert traced.breakdown_cycles == bare.breakdown_cycles
    # The contention-matrix and queue-depth hooks (obs.locks, the
    # invalidation.queue_depth series) observed the same run for free.
    qi = obs.locks.get("qi-lock")
    assert qi is not None and qi.contended > 0
    assert qi.total_wait_cycles > 0
    assert sum(qi.handoff_edges.values()) == qi.contended
    depth = obs.metrics.time_series["invalidation.queue_depth"]
    assert depth.summary()["samples"] > 0


def test_lock_contention_null_run_records_nothing():
    """With the null context the contention-matrix note sites never
    fire — obs.locks stays empty."""
    null_obs = Observability(tracer=NullTracer())
    run_tcp_stream_rx(StreamConfig(
        scheme="identity-strict", direction="rx", cores=2,
        message_size=16384, units_per_core=40, warmup_units=10,
        obs=null_obs))
    assert null_obs.locks.locks == {}
    assert null_obs.locks.total_wait_cycles == 0


def test_exposure_accounting_is_cycle_identical():
    """The exposure accountant observes every map/unmap/invalidation
    and the deferred scheme keeps it busy (stale windows accumulate);
    none of that may shift a single simulated cycle."""
    cfg = dict(_RR, scheme="identity-deferred")
    bare = run_tcp_rr(RRConfig(**cfg))
    obs = Observability.capture()
    traced = run_tcp_rr(RRConfig(**cfg, obs=obs))
    assert traced.wall_cycles == bare.wall_cycles
    assert traced.busy_cycles == bare.busy_cycles
    assert traced.breakdown_cycles == bare.breakdown_cycles
    assert traced.latency_us == bare.latency_us
    # The accountant actually accounted: the deferred window is real.
    summary = obs.exposure.summary()
    assert summary["stale_byte_cycles"] > 0
    assert summary["stale_windows"] > 0
    # And an exposure snapshot rides along in extras for export (taken
    # at collect time, so teardown unmaps may still follow it).
    snap = traced.extras["exposure"]
    assert snap["stale_byte_cycles"] > 0
    assert "exposure" not in bare.extras


def test_exposure_null_run_records_nothing():
    """With the null context the exposure note sites never fire."""
    null_obs = Observability(tracer=NullTracer())
    run_tcp_rr(RRConfig(**dict(_RR, scheme="identity-deferred"),
                        obs=null_obs))
    summary = null_obs.exposure.summary()
    assert not summary["domains"]
    assert summary["faults"] == 0


def test_request_traced_run_is_cycle_identical():
    """Request ids, stage capture, marks, and lock-wait attribution all
    record in host memory only — a request-traced 16-core contended run
    reproduces the bare run's cycles exactly."""
    cfg = dict(scheme="identity-strict", direction="rx", cores=16,
               message_size=1448, units_per_core=40, warmup_units=10)
    bare = run_tcp_stream_rx(StreamConfig(**cfg))
    obs = Observability.capture()
    traced = run_tcp_stream_rx(StreamConfig(**cfg, obs=obs))
    assert traced.wall_cycles == bare.wall_cycles
    assert traced.busy_cycles == bare.busy_cycles
    assert traced.breakdown_cycles == bare.breakdown_cycles
    assert traced.units == bare.units
    # The recorder actually recorded: every measured frame is a request
    # with a fully attributed stage profile.
    assert obs.requests.completed > 0
    assert obs.requests.open_requests == 0
    record = obs.requests.retained()[-1]
    assert sum(record.stages.values()) == record.latency
    assert record.locks.get("qi-lock", 0) > 0
    # The latency columns ride in extras without touching the results.
    assert traced.extras["requests"]["overall"]["count"] > 0
    assert "requests" not in bare.extras


def test_request_null_run_records_nothing():
    """With the null context no request begins — the write sites are
    behind the same ``obs.enabled`` guard as everything else."""
    null_obs = Observability(tracer=NullTracer())
    run_tcp_rr(RRConfig(**_RR, obs=null_obs))
    assert null_obs.requests.started == 0
    assert null_obs.requests.completed == 0
    assert null_obs.requests.open_requests == 0


def test_slo_armed_fleet_run_is_cycle_identical():
    """The SLO recorder (windows, drop accounting, forensics snapshots)
    rides the request listener and reads clocks only — an armed fleet
    run reproduces the bare run's cycles exactly."""
    from repro.workloads.fleet import FleetConfig, run_fleet

    cfg = dict(scheme="identity-strict", cores=2, users=4_000_000,
               duration_us=800.0, warmup_us=150.0)
    bare = run_fleet(FleetConfig(**cfg))
    obs = Observability.capture(trace_capacity=256)
    traced = run_fleet(FleetConfig(**cfg, obs=obs))
    assert traced.wall_cycles == bare.wall_cycles
    assert traced.busy_cycles == bare.busy_cycles
    assert traced.breakdown_cycles == bare.breakdown_cycles
    assert traced.units == bare.units
    # The recorder actually recorded: the measured phase was windowed.
    summary = obs.slo.summary()
    assert summary["armed"]
    assert summary["windows"] > 0
    assert summary["completions"] > 0
    assert traced.extras["slo"]["windows"] == summary["windows"]
    assert "slo" not in bare.extras


def test_slo_null_run_records_nothing():
    """With the null context the SLO recorder is never configured —
    the workload's arm site is behind the same guard."""
    from repro.workloads.fleet import FleetConfig, run_fleet

    null_obs = Observability(tracer=NullTracer())
    result = run_fleet(FleetConfig(
        scheme="copy", cores=2, users=1_000_000,
        duration_us=400.0, warmup_us=100.0, obs=null_obs))
    assert not null_obs.slo.armed
    assert null_obs.slo.windows == []
    assert "slo" not in result.extras


def test_span_instrumented_run_is_byte_identical():
    """The span begin/end sites are behind the same ``obs.enabled``
    guard as the tracer; a NullTracer run records no spans and stays
    byte-identical, and a capturing run records spans without shifting
    a single cycle."""
    bare = run_tcp_rr(RRConfig(**_RR))
    null_obs = Observability(tracer=NullTracer())
    nulled = run_tcp_rr(RRConfig(**_RR, obs=null_obs))
    assert to_json([bare]) == to_json([nulled])
    assert null_obs.spans.opened == 0
    assert null_obs.spans.closed == 0
    assert not null_obs.spans.tree().children

    obs = Observability.capture()
    spanned = run_tcp_rr(RRConfig(**_RR, obs=obs))
    assert spanned.wall_cycles == bare.wall_cycles
    assert spanned.busy_cycles == bare.busy_cycles
    assert spanned.breakdown_cycles == bare.breakdown_cycles
    # ...and the spans were actually recorded.
    assert obs.spans.closed > 0
    assert obs.spans.opened == obs.spans.closed
    assert obs.spans.open_spans == 0
