"""Metrics registry tests: counters, cycle histograms, time series."""

import pytest

from repro.obs.metrics import (
    CycleHistogram,
    MetricCounter,
    MetricsRegistry,
    TimeSeries,
)


def test_counter_increments():
    counter = MetricCounter("x")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_histogram_exact_stats():
    hist = CycleHistogram("lat")
    for v in (100, 200, 400):
        hist.observe(v)
    assert hist.count == 3
    assert hist.min == 100
    assert hist.max == 400
    assert hist.mean == pytest.approx(700 / 3)


def test_histogram_buckets_are_log2_upper_bounds():
    hist = CycleHistogram("lat")
    hist.observe(0)
    hist.observe(1)
    hist.observe(2)
    hist.observe(100)   # 64 < 100 <= 128
    assert dict(hist.nonzero_buckets()) == {1: 2, 2: 1, 128: 1}


def test_histogram_percentiles_interpolate_within_buckets():
    hist = CycleHistogram("lat")
    for _ in range(99):
        hist.observe(100)          # bucket (64, 128]
    hist.observe(1000)             # bucket (512, 1024]
    # p50 interpolates to ~96 inside (64, 128], then clamps up to the
    # observed min — closer to the true 100 than the old bucket upper
    # bound (128) ever was.
    assert hist.percentile(50) == 100
    assert hist.percentile(99) == 128
    # The top percentile is clamped to the exact observed max.
    assert hist.percentile(100) == 1000
    with pytest.raises(ValueError):
        hist.percentile(0)


def test_histogram_percentiles_match_uniform_distribution():
    # Uniform 1..1024 fills every log2 bucket exactly: the cumulative
    # count through bucket i is 2**i, so interpolation lands on exact
    # ranks — a regression pin for the within-bucket math.
    hist = CycleHistogram("lat")
    for v in range(1, 1025):
        hist.observe(v)
    assert hist.percentile(50) == 512
    assert hist.percentile(25) == 256
    assert hist.percentile(100) == 1024


def test_histogram_rejects_negative_values():
    with pytest.raises(ValueError):
        CycleHistogram("lat").observe(-1)


def test_histogram_summary_shape():
    hist = CycleHistogram("lat")
    assert hist.percentile(50) == 0  # empty histogram answers zero
    hist.observe(8)
    summary = hist.summary()
    assert summary == {"count": 1, "mean": 8.0, "min": 8,
                       "p50": 8, "p90": 8, "p99": 8, "max": 8}


def test_time_series_decimates_by_halving():
    series = TimeSeries("occ", max_samples=8)
    for t in range(64):
        series.sample(t, t * 10)
    # Bounded, time-ordered, and still spanning the whole run.
    assert len(series.samples) < 8
    times = [t for t, _ in series.samples]
    assert times == sorted(times)
    assert series.last == series.samples[-1][1]
    summary = series.summary()
    assert summary["samples"] == len(series.samples)
    assert summary["min"] <= summary["mean"] <= summary["max"]


def test_time_series_empty_summary():
    assert TimeSeries("x").summary() == {"samples": 0}
    assert TimeSeries("x").last is None


def test_registry_creates_on_demand_and_reuses():
    registry = MetricsRegistry()
    counter = registry.counter("a")
    assert registry.counter("a") is counter
    hist = registry.histogram("h")
    assert registry.histogram("h") is hist
    series = registry.series("s")
    assert registry.series("s") is series


def test_registry_snapshot_is_json_friendly():
    import json

    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.histogram("h").observe(10)
    registry.series("s").sample(0, 1)
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 3}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["series"]["s"]["samples"] == 1
    json.dumps(snap)  # must serialize without custom encoders
