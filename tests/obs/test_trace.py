"""Tracer tests: ring semantics, JSONL export, and the null no-op."""

import json

import pytest

from repro.obs.trace import (
    ALL_EVENT_KINDS,
    EV_DMA_MAP,
    EV_LOCK_ACQUIRE,
    EV_POOL_GROW,
    NullTracer,
    RingTracer,
    TraceEvent,
)


def test_null_tracer_is_inert():
    tracer = NullTracer()
    assert tracer.enabled is False
    tracer.emit(EV_LOCK_ACQUIRE, 10, 0, name="x")  # must not raise
    assert len(tracer) == 0
    assert tracer.events() == []


def test_ring_tracer_records_events():
    tracer = RingTracer(capacity=16)
    assert tracer.enabled is True
    tracer.emit(EV_DMA_MAP, 100, 2, iova=0xdead, size=1500)
    assert len(tracer) == 1
    (ev,) = tracer.events()
    assert ev == TraceEvent(t=100, core=2, kind=EV_DMA_MAP,
                            data={"iova": 0xdead, "size": 1500})
    assert ev.to_dict() == {"t": 100, "core": 2, "kind": EV_DMA_MAP,
                            "iova": 0xdead, "size": 1500}


def test_ring_evicts_oldest_and_counts_dropped():
    tracer = RingTracer(capacity=4)
    for i in range(10):
        tracer.emit(EV_LOCK_ACQUIRE, i, 0, seq=i)
    assert len(tracer) == 4
    assert tracer.emitted == 10
    assert tracer.dropped == 6
    # The newest events survive, in order.
    assert [ev.data["seq"] for ev in tracer.events()] == [6, 7, 8, 9]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RingTracer(capacity=0)


def test_events_filter_and_counts_by_kind():
    tracer = RingTracer()
    for t in range(3):
        tracer.emit(EV_LOCK_ACQUIRE, t, 0)
    tracer.emit(EV_POOL_GROW, 5, 1, nbytes=4096)
    assert len(tracer.events(EV_LOCK_ACQUIRE)) == 3
    assert len(tracer.events(EV_POOL_GROW)) == 1
    assert tracer.counts_by_kind() == {EV_LOCK_ACQUIRE: 3, EV_POOL_GROW: 1}


def test_clear_resets_everything():
    tracer = RingTracer(capacity=2)
    for i in range(5):
        tracer.emit(EV_LOCK_ACQUIRE, i, 0)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.emitted == 0
    assert tracer.dropped == 0


def test_jsonl_round_trip(tmp_path):
    tracer = RingTracer()
    tracer.emit(EV_DMA_MAP, 7, 1, iova=4096, scheme="copy")
    tracer.emit(EV_POOL_GROW, 9, 0, nbytes=65536)
    rows = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
    assert rows == [
        {"t": 7, "core": 1, "kind": EV_DMA_MAP, "iova": 4096,
         "scheme": "copy"},
        {"t": 9, "core": 0, "kind": EV_POOL_GROW, "nbytes": 65536},
    ]
    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(str(path)) == 2
    assert [json.loads(line) for line in path.read_text().splitlines()] == rows


def test_write_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert RingTracer().write_jsonl(str(path)) == 0
    assert path.read_text() == ""


def test_event_kinds_are_unique_dotted_names():
    assert len(set(ALL_EVENT_KINDS)) == len(ALL_EVENT_KINDS)
    for kind in ALL_EVENT_KINDS:
        assert kind == "phase" or "." in kind
