"""The per-lock contention matrix: recorder, snapshots, rendering.

The recorder is the data source of the scale report's attribution
tables, so its invariants are load-bearing: holder attribution must
survive the release-before-wait host ordering (the ``_last_holder_cid``
one-slot memory), snapshots must round-trip through JSON, and the text
renderer must degrade on single-core (uncontended) and empty runs.
"""

from repro.obs.context import Observability
from repro.obs.locks import (
    LockContentionRecorder,
    LockContentionStats,
    load_snapshot,
    top_edges,
)
from repro.stats.timeline import render_lock_table
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx


def _contended_recorder() -> LockContentionRecorder:
    rec = LockContentionRecorder()
    # Core 0 takes the lock first (no previous holder), then 1 and 2
    # queue behind each other.
    rec.note_acquire("qi", waiter_cid=0, holder_cid=-1, waited=0, now=100)
    rec.note_release("qi", holder_cid=0, held=50)
    rec.note_acquire("qi", waiter_cid=1, holder_cid=0, waited=40, now=190)
    rec.note_release("qi", holder_cid=1, held=50)
    rec.note_acquire("qi", waiter_cid=2, holder_cid=1, waited=90, now=280)
    rec.note_release("qi", holder_cid=2, held=50)
    rec.note_acquire("quiet", waiter_cid=0, holder_cid=-1, waited=0, now=10)
    rec.note_release("quiet", holder_cid=0, held=5)
    return rec


def test_recorder_accumulates_waits_holds_and_edges():
    rec = _contended_recorder()
    qi = rec.get("qi")
    assert qi.acquisitions == 3
    assert qi.contended == 2
    assert qi.total_wait_cycles == 130
    assert qi.total_hold_cycles == 150
    assert qi.wait_by_core == {1: 40, 2: 90}
    assert qi.hold_by_core == {0: 50, 1: 50, 2: 50}
    assert qi.handoff_edges == {(1, 0): 1, (2, 1): 1}
    assert qi.max_wait_cycles == 90
    assert qi.max_wait_core == 2
    assert qi.max_wait_at == 280
    assert qi.contention_ratio == 2 / 3
    assert qi.mean_wait_cycles == 65.0
    assert rec.total_wait_cycles == 130


def test_by_wait_ranks_by_burden_then_name():
    rec = _contended_recorder()
    assert [s.name for s in rec.by_wait()] == ["qi", "quiet"]


def test_uncontended_acquisitions_leave_no_wait_state():
    rec = LockContentionRecorder()
    rec.note_acquire("fast", waiter_cid=0, holder_cid=-1, waited=0, now=1)
    stats = rec.get("fast")
    assert stats.contended == 0
    assert stats.contention_ratio == 0.0
    assert stats.mean_wait_cycles == 0.0
    assert not stats.handoff_edges


def test_snapshot_round_trips_through_json_types():
    rec = _contended_recorder()
    snap = rec.snapshot()
    # Deterministic ordering by lock name.
    assert list(snap) == ["qi", "quiet"]
    # Edge keys serialize as strings ("waiter->holder").
    assert snap["qi"]["handoff_edges"] == {"1->0": 1, "2->1": 1}
    loaded = load_snapshot(snap)
    for name, stats in loaded.items():
        assert isinstance(stats, LockContentionStats)
        assert stats.to_dict() == snap[name]


def test_top_edges_ranked_by_count():
    stats = LockContentionStats("l")
    stats.handoff_edges[(1, 0)] = 5
    stats.handoff_edges[(2, 0)] = 9
    stats.handoff_edges[(3, 2)] = 5
    stats.handoff_edges[(0, 3)] = 1
    assert top_edges(stats, limit=3) == [(2, 0, 9), (1, 0, 5), (3, 2, 5)]


def test_spinlock_attributes_holder_across_release():
    """End to end through a real contended run: every contended
    acquisition carries a real previous holder (never the unknown -1),
    because the lock remembers its last holder across release."""
    obs = Observability.capture()
    run_tcp_stream_rx(StreamConfig(
        scheme="identity-strict", direction="rx", cores=4,
        message_size=16384, units_per_core=40, warmup_units=10, obs=obs))
    qi = obs.locks.get("qi-lock")
    assert qi is not None and qi.contended > 0
    holders = {holder for (_, holder) in qi.handoff_edges}
    assert -1 not in holders
    assert all(0 <= h < 4 for h in holders)


# ----------------------------------------------------------------------
# The text renderer (satellite: empty-input edge cases).
# ----------------------------------------------------------------------
def test_render_lock_table_empty_recorder():
    out = render_lock_table(LockContentionRecorder())
    assert "(no lock activity recorded)" in out


def test_render_lock_table_single_core_uncontended():
    rec = LockContentionRecorder()
    for _ in range(3):
        rec.note_acquire("iova", waiter_cid=0, holder_cid=-1,
                         waited=0, now=0)
        rec.note_release("iova", holder_cid=0, held=10)
    out = render_lock_table(rec)
    assert "iova" in out
    assert "(no contention: every acquisition was uncontended)" in out


def test_render_lock_table_contended_shows_edges():
    out = render_lock_table(_contended_recorder())
    assert "qi" in out and "quiet" in out
    assert "waiters=2" in out
    assert "c1<-c0x1" in out
