"""Request-scoped tracing: recorder semantics + tail attribution.

The unit tests drive :class:`~repro.obs.requests.RequestRecorder`
directly with a fake core; the acceptance tests run real workloads and
assert the paper's causal story — the strict scheme's 16-core RX tail
is invalidation-lock dominated, while the copy scheme's tail pays for
the copy itself.
"""

import pytest

from repro.obs.context import Observability
from repro.obs.requests import (
    PROTECTION_STAGES,
    REQ_RX,
    STAGE_UNATTRIBUTED,
    RequestRecorder,
    _CYCLES_PER_US,
    parse_percentile,
    tail_report,
)
from repro.obs.trace import EV_REQ_BEGIN, EV_REQ_END, RingTracer
from repro.sim.units import CYCLES_PER_US
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx


class FakeCore:
    """The two attributes the recorder reads: ``cid`` and ``now``."""

    def __init__(self, cid=0, now=0):
        self.cid = cid
        self.now = now


def test_cycles_per_us_mirror_matches_sim_units():
    # requests.py mirrors the constant to avoid a circular import; the
    # mirror must never drift from the real clock.
    assert _CYCLES_PER_US == CYCLES_PER_US


def test_begin_end_assigns_monotonic_ids_and_latency():
    rec = RequestRecorder()
    core = FakeCore()
    rid1 = rec.begin(core, REQ_RX)
    core.now = 100
    record1 = rec.end(core)
    core.now = 150
    rid2 = rec.begin(core, REQ_RX)
    core.now = 250
    record2 = rec.end(core)
    assert rid2 == rid1 + 1
    assert record1.latency == 100
    assert record2.latency == 100
    assert rec.started == rec.completed == 2
    assert rec.open_requests == 0


def test_nested_begin_folds_into_enclosing_request():
    rec = RequestRecorder()
    core = FakeCore()
    outer = rec.begin(core, "memcached")
    core.now = 10
    inner = rec.begin(core, REQ_RX)   # the driver's rx inside the txn
    assert inner == outer
    core.now = 20
    assert rec.end(core) is None      # inner end only unwinds nesting
    core.now = 90
    record = rec.end(core)
    assert record is not None and record.rid == outer
    assert record.kind == "memcached"
    assert record.latency == 90
    assert rec.started == rec.completed == 1


def test_stage_self_time_excludes_nested_stages():
    rec = RequestRecorder()
    core = FakeCore()
    rec.begin(core, REQ_RX)
    rec.on_span_begin(0, "rx_packet", 0)
    rec.on_span_begin(0, "dma_unmap", 10)
    rec.on_span_begin(0, "lock_wait", 20)
    rec.on_span_end(0, "lock_wait", 20, 50)
    rec.on_span_end(0, "dma_unmap", 10, 70)
    rec.on_span_end(0, "rx_packet", 0, 80)
    core.now = 100
    record = rec.end(core)
    assert record.stages["lock_wait"] == 30
    assert record.stages["dma_unmap"] == 30       # 60 total - 30 nested
    assert record.stages["rx_packet"] == 20       # 80 total - 60 nested
    assert record.stages[STAGE_UNATTRIBUTED] == 20
    assert sum(record.stages.values()) == record.latency
    # Segments carry the causal timeline in close order with depth.
    assert record.segments == (("lock_wait", 20, 50, 2),
                               ("dma_unmap", 10, 70, 1),
                               ("rx_packet", 0, 80, 0))


def test_span_opened_before_request_is_not_attributed():
    rec = RequestRecorder()
    core = FakeCore(now=50)
    # The scheduler's step span opened at t=0, before the request.
    rec.begin(core, REQ_RX)
    rec.on_span_end(0, "step", 0, 80)     # closing the pre-existing span
    core.now = 100
    record = rec.end(core)
    assert "step" not in record.stages
    assert record.stages[STAGE_UNATTRIBUTED] == record.latency


def test_open_stage_virtually_closed_at_request_end():
    rec = RequestRecorder()
    core = FakeCore()
    rec.begin(core, REQ_RX)
    rec.on_span_begin(0, "rx_packet", 10)
    core.now = 100                         # request ends mid-span
    record = rec.end(core)
    assert record.stages["rx_packet"] == 90
    assert record.stages[STAGE_UNATTRIBUTED] == 10
    assert sum(record.stages.values()) == record.latency


def test_marks_and_lock_waits_attach_to_active_request():
    rec = RequestRecorder()
    core = FakeCore()
    rec.begin(core, REQ_RX)
    core.now = 30
    rec.mark(core, "mapped")
    rec.note_lock_wait(core, "qi-lock", 25)
    rec.note_lock_wait(core, "qi-lock", 5)
    core.now = 60
    record = rec.end(core)
    assert record.marks == (("mapped", 30),)
    assert record.locks == {"qi-lock": 30}
    # Without an active request both are no-ops, never errors.
    rec.mark(core, "mapped")
    rec.note_lock_wait(core, "qi-lock", 1)


def test_current_rid_and_active_rids_track_per_core():
    rec = RequestRecorder()
    core0, core1 = FakeCore(0), FakeCore(1)
    rid0 = rec.begin(core0, REQ_RX)
    rid1 = rec.begin(core1, REQ_RX)
    assert rec.current_rid(0) == rid0
    assert rec.current_rid(1) == rid1
    assert rec.current_rid(7) is None
    assert rec.active_rids() == {0: rid0, 1: rid1}
    rec.end(core0)
    assert rec.current_rid(0) is None


def test_begin_end_emit_trace_events_with_rid():
    tracer = RingTracer(capacity=16)
    rec = RequestRecorder()
    rec.tracer = tracer
    core = FakeCore()
    rid = rec.begin(core, REQ_RX)
    core.now = 40
    rec.end(core)
    kinds = [ev.kind for ev in tracer.events()]
    assert kinds == [EV_REQ_BEGIN, EV_REQ_END]
    begin, end = tracer.events()
    assert begin.data["rid"] == end.data["rid"] == rid
    assert begin.data["req_kind"] == REQ_RX
    assert end.data["latency_cycles"] == 40


def test_retention_is_bounded_but_keeps_the_slowest():
    rec = RequestRecorder()
    core = FakeCore()
    n = 40_000
    for i in range(n):
        core.now = i * 100
        rec.begin(core, REQ_RX)
        # One outlier in the middle of the stream.
        core.now += 1_000_000 if i == n // 2 else 10
        rec.end(core)
    assert rec.completed == n
    lats = rec.latencies(REQ_RX)
    assert len(lats) < n                     # reservoir decimated
    retained = rec.retained(REQ_RX)
    assert len(retained) < n                 # sample bounded too
    assert max(r.latency for r in retained) == 1_000_000
    assert rec.percentile(99.9, REQ_RX) >= rec.percentile(50.0, REQ_RX)


def test_summary_and_exemplars_shape():
    rec = RequestRecorder()
    core = FakeCore()
    for i in range(100):
        core.now = i * 1000
        rec.begin(core, REQ_RX)
        core.now += (i + 1) * 10
        rec.end(core)
    summary = rec.summary()
    assert summary["completed"] == 100
    kind = summary["kinds"][REQ_RX]
    assert kind["latency_us"]["p50"] <= kind["latency_us"]["p99"]
    assert summary["overall"]["count"] == 100
    exemplars = rec.exemplars(REQ_RX)
    assert set(exemplars) == {"p50", "p90", "p99", "p999"}
    for label, threshold_p in (("p50", 50.0), ("p99", 99.0)):
        ex = exemplars[label]
        assert ex is not None
        assert ex["latency_cycles"] <= rec.percentile(threshold_p, REQ_RX)


def test_tail_report_empty_recorder_returns_none():
    assert tail_report(RequestRecorder()) is None


def test_tail_report_blames_the_dominant_stage():
    rec = RequestRecorder()
    core = FakeCore()
    for i in range(50):
        core.now = i * 1000
        rec.begin(core, REQ_RX)
        slow = i >= 45
        rec.on_span_begin(0, "lock_wait" if slow else "copy", core.now)
        duration = 500 if slow else 50
        rec.on_span_end(0, "lock_wait" if slow else "copy",
                        core.now, core.now + duration)
        core.now += duration
        rec.end(core)
    report = tail_report(rec, kind=REQ_RX, percentile=95.0)
    assert report["dominant_stage"] == "lock_wait"
    assert report["dominant_protection_stage"] == "lock_wait"
    assert report["tail_profile"]["lock_wait"] > 0.9
    assert report["profile_diff"]["lock_wait"] > 0.5
    assert report["exemplars"][0]["latency_cycles"] == 500
    assert report["tail_locks"] == {}


@pytest.mark.parametrize("text,expected", [
    ("p99", 99.0), ("99", 99.0), ("p99.9", 99.9), ("P50", 50.0),
    ("0.5", 0.5),
])
def test_parse_percentile_accepts_usual_spellings(text, expected):
    assert parse_percentile(text) == expected


@pytest.mark.parametrize("text", ["", "pp99", "100", "0", "-5", "p1e9"])
def test_parse_percentile_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_percentile(text)


# ----------------------------------------------------------------------
# Acceptance: the paper's causal story at 16 cores.
# ----------------------------------------------------------------------
_MC = dict(direction="rx", message_size=1448, cores=16,
           units_per_core=60, warmup_units=15)


def _tail_for(scheme):
    obs = Observability.capture(trace_capacity=256)
    run_tcp_stream_rx(StreamConfig(scheme=scheme, obs=obs, **_MC))
    report = tail_report(obs.requests, kind=REQ_RX, percentile=99.0)
    assert report is not None
    return report


def test_strict_16core_rx_tail_is_invalidation_lock_dominated():
    report = _tail_for("identity-strict")
    assert report["dominant_stage"] == "lock_wait"
    assert report["dominant_protection_stage"] == "lock_wait"
    assert report["tail_profile"]["lock_wait"] > 0.5
    # The lock behind the wait is named: the invalidation queue's.
    assert "qi-lock" in report["tail_locks"]


def test_copy_16core_rx_tail_pays_for_the_copy_instead():
    report = _tail_for("copy")
    assert report["dominant_protection_stage"] == "copy"
    # No invalidation-lock misery on the copy path.
    assert report["tail_profile"].get("lock_wait", 0.0) < 0.2
    # And the tail itself is an order of magnitude shorter than strict's.
    strict = _tail_for("identity-strict")
    assert report["threshold_us"] * 10 < strict["threshold_us"]
