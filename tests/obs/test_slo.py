"""SLO window semantics: attribution, verdicts, forensics.

The tumbling-window contract the fleet observatory is built on:
requests land in the window their **end** time falls in (straddlers
count where they completed), empty windows close non-breaching, late
completions never rewrite closed windows, and breach forensics name a
*nested* span path plus the top contended lock of that window.
"""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.requests import _CYCLES_PER_US
from repro.obs.slo import SloObjective, SloRecorder

#: A 100 us window at the simulated clock rate.
_W = SloObjective(p99_us=10.0, window_us=100.0).window_cycles


def _req(end, latency, **meta):
    """A stand-in for a completed RequestRecord (duck-typed)."""
    return SimpleNamespace(end=end, latency=latency, meta=meta)


def _recorder(objective=None, **kwargs):
    rec = SloRecorder(**kwargs)
    rec.configure(objective or SloObjective(p99_us=10.0, window_us=100.0))
    return rec


# ----------------------------------------------------------------------
# Objective validation + unit conversion.
# ----------------------------------------------------------------------
def test_objective_validates():
    with pytest.raises(ConfigurationError):
        SloObjective(p99_us=0)
    with pytest.raises(ConfigurationError):
        SloObjective(p99_us=10, availability=1.0)
    with pytest.raises(ConfigurationError):
        SloObjective(p99_us=10, window_us=0)
    with pytest.raises(ConfigurationError):
        SloObjective(p99_us=10, timeout_us=-1)


def test_objective_cycle_conversion():
    obj = SloObjective(p99_us=10.0, window_us=100.0, timeout_us=50.0)
    assert obj.window_cycles == int(round(100.0 * _CYCLES_PER_US))
    assert obj.timeout_cycles == int(round(50.0 * _CYCLES_PER_US))
    assert SloObjective(p99_us=10.0).timeout_cycles is None


# ----------------------------------------------------------------------
# Window attribution.
# ----------------------------------------------------------------------
def test_unconfigured_recorder_is_inert():
    rec = SloRecorder()
    rec.on_request(_req(end=100, latency=50))
    rec.note_drop(100)
    rec.finalize(10 * _W)
    assert rec.windows == []
    assert rec.summary() == {"armed": False}


def test_straddling_request_counts_in_its_end_window():
    rec = _recorder()
    # Started in window 0, completed in window 1: the whole request is
    # window 1's problem.
    rec.on_request(_req(end=_W + 10, latency=_W))
    rec.finalize(2 * _W)
    assert [w["completions"] for w in rec.windows] == [0, 1, 0]


def test_empty_windows_close_non_breaching():
    rec = _recorder()
    rec.on_request(_req(end=3 * _W + 1, latency=5))
    rec.finalize(3 * _W + 1)
    assert len(rec.windows) == 4
    for window in rec.windows[:3]:
        assert window["completions"] == 0
        assert window["availability"] == 1.0
        assert not window["breach"]
    assert rec.windows[3]["completions"] == 1
    assert rec.breach_windows == 0


def test_late_completion_never_rewrites_closed_windows():
    rec = _recorder()
    rec.on_request(_req(end=2 * _W + 1, latency=5))   # closes 0 and 1
    before = [dict(w) for w in rec.windows]
    rec.on_request(_req(end=10, latency=5))           # window 0: closed
    assert rec.windows == before
    assert rec.late_completions == 1
    rec.finalize(2 * _W + 1)
    assert rec.summary()["late_completions"] == 1


def test_requests_before_origin_are_ignored():
    rec = SloRecorder()
    rec.configure(SloObjective(p99_us=10.0, window_us=100.0),
                  start=5 * _W)
    rec.on_request(_req(end=_W, latency=5))           # warmup traffic
    rec.note_drop(_W)
    rec.finalize(6 * _W)
    assert len(rec.windows) == 2                      # windows 0..1 only
    assert rec.windows[0]["completions"] == 0
    assert rec.summary()["completions"] == 0


# ----------------------------------------------------------------------
# Verdicts: latency, availability, timeouts, burn rate.
# ----------------------------------------------------------------------
def test_p99_breach_trips_window():
    rec = _recorder()                                  # p99 <= 10 us
    slow = int(20 * _CYCLES_PER_US)
    for _ in range(10):
        rec.on_request(_req(end=10, latency=slow))
    rec.finalize(0)
    (window,) = rec.windows
    assert window["breach"]
    assert window["p99_us"] > 10.0
    assert rec.breach_windows == 1


def test_queue_wait_counts_toward_the_objective():
    rec = _recorder()
    fast = int(1 * _CYCLES_PER_US)
    wait = int(30 * _CYCLES_PER_US)
    for _ in range(10):
        rec.on_request(_req(end=10, latency=fast, queue_wait=wait))
    rec.finalize(0)
    assert rec.windows[0]["breach"]                    # service was fast;
    assert rec.windows[0]["p99_us"] > 30.0             # queueing was not


def test_drops_and_burn_rate():
    objective = SloObjective(p99_us=1000.0, availability=0.9,
                             window_us=100.0)
    rec = _recorder(objective)
    rec.on_request(_req(end=10, latency=5))
    rec.note_drop(20)
    rec.finalize(0)
    (window,) = rec.windows
    # 1 good / 2 offered: availability 0.5 < 0.9 floor -> breach; bad
    # fraction 0.5 over the 0.1 budget -> burn rate 5.
    assert window["availability"] == 0.5
    assert window["breach"]
    assert window["burn_rate"] == pytest.approx(5.0)
    assert rec.summary()["drops"] == 1


def test_timeouts_count_against_availability():
    objective = SloObjective(p99_us=1000.0, availability=0.9,
                             window_us=100.0, timeout_us=50.0)
    rec = _recorder(objective)
    rec.on_request(_req(end=10, latency=int(60 * _CYCLES_PER_US)))
    rec.on_request(_req(end=11, latency=5))
    rec.finalize(0)
    (window,) = rec.windows
    assert window["timeouts"] == 1
    assert window["good"] == 1
    assert window["availability"] == 0.5
    assert window["breach"]


def test_metrics_series_sampled_at_window_close():
    metrics = MetricsRegistry()
    rec = _recorder(metrics=metrics)
    rec.on_request(_req(end=10, latency=5))
    rec.finalize(_W)
    assert metrics.time_series["slo.p99_window"].summary()["samples"] == 2
    assert metrics.time_series["slo.burn_rate"].summary()["samples"] == 2


# ----------------------------------------------------------------------
# Breach forensics.
# ----------------------------------------------------------------------
class _Spans:
    """SpanRecorder stand-in: path tuple -> self_cycles."""

    def __init__(self):
        self.paths = {}

    def tree(self):
        return self

    def walk(self):
        for path, cycles in self.paths.items():
            yield path, SimpleNamespace(self_cycles=cycles)


class _Locks:
    def __init__(self):
        self.locks = {}

    def wait(self, name, cycles):
        self.locks[name] = SimpleNamespace(total_wait_cycles=cycles)


def test_forensics_name_nested_span_and_top_lock():
    spans, locks = _Spans(), _Locks()
    spans.paths = {("run", "step"): 1000,
                   ("run", "step", "dma_unmap"): 100}
    locks.wait("qi-lock", 50)
    rec = _recorder(spans=spans, locks=locks)

    # Over the breaching window: the top-level span gains the most
    # (pacing idle), but forensics must name the nested path.
    spans.paths = {("run", "step"): 900_000,
                   ("run", "step", "dma_unmap"): 40_100,
                   ("run", "step", "rx_packet"): 10_000}
    locks.wait("qi-lock", 25_050)
    locks.wait("pool-lock", 900)
    for _ in range(10):
        rec.on_request(_req(end=10, latency=int(50 * _CYCLES_PER_US)))
    rec.finalize(0)

    (entry,) = rec.forensics
    assert entry["dominant_span_path"] == "step > dma_unmap"
    assert entry["dominant_span_cycles"] == 40_000
    assert entry["top_lock"] == "qi-lock"
    assert entry["top_lock_wait_cycles"] == 25_000
    assert entry["window"] == 0
    assert entry["p99_us"] > 10.0


def test_forensics_diff_per_window_not_cumulative():
    spans, locks = _Spans(), _Locks()
    rec = _recorder(spans=spans, locks=locks)
    slow = int(50 * _CYCLES_PER_US)

    locks.wait("qi-lock", 1_000_000)                   # window 0's story
    rec.on_request(_req(end=10, latency=slow))
    rec.on_request(_req(end=_W + 10, latency=slow))    # closes window 0
    locks.wait("pool-lock", 2_000)                     # window 1's story
    locks.wait("qi-lock", 1_000_500)
    rec.finalize(_W + 10)

    assert [e["top_lock"] for e in rec.forensics] == ["qi-lock",
                                                      "pool-lock"]
    assert rec.forensics[1]["top_lock_wait_cycles"] == 2_000
