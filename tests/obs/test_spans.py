"""Span recorder semantics: nesting, per-core stacks, attribution.

The structural invariants here are what the renderer and the bench
regression gate rely on:

* children's summed cycles never exceed their parent's total;
* spans nest per core — interleaved cores cannot tangle hierarchies;
* every ``begin`` is balanced by ``end`` in real workload runs, so the
  tree is complete when the run returns;
* trees serialize/deserialize losslessly and merge additively.
"""

import pytest

from repro.hw.machine import Machine
from repro.obs.context import Observability
from repro.obs.spans import (
    SPAN_COPY,
    SPAN_DMA_MAP,
    SPAN_DMA_UNMAP,
    SPAN_IOTLB_INVALIDATE,
    SPAN_LOCK_WAIT,
    SPAN_POOL_ACQUIRE,
    SPAN_RX_PACKET,
    SPAN_STEP,
    SpanNode,
    SpanRecorder,
    find_node,
    merge_span_trees,
)
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx


def _assert_nesting_invariant(root: SpanNode) -> None:
    """Children account for no more than their parent, everywhere."""
    for path, node in root.walk():
        if node is root:
            continue
        assert node.child_cycles <= node.total_cycles, path
        assert node.self_cycles >= 0, path


# ----------------------------------------------------------------------
# Recorder unit behaviour (synthetic cores).
# ----------------------------------------------------------------------
@pytest.fixture
def machine():
    return Machine.build(cores=2, numa_nodes=1)


def test_nested_spans_aggregate_by_path(machine):
    rec = SpanRecorder()
    core = machine.core(0)
    for _ in range(3):
        rec.begin("outer", core)
        core.charge(100, "other")
        rec.begin("inner", core)
        core.charge(40, "other")
        rec.end(core)
        core.charge(10, "other")
        rec.end(core)
    outer = find_node(rec.tree(), ("outer",))
    inner = find_node(rec.tree(), ("outer", "inner"))
    assert outer.count == 3 and inner.count == 3
    assert outer.total_cycles == 3 * 150
    assert inner.total_cycles == 3 * 40
    assert outer.self_cycles == 3 * 110
    _assert_nesting_invariant(rec.tree())


def test_same_name_different_context_is_different_node(machine):
    rec = SpanRecorder()
    core = machine.core(0)
    rec.begin("a", core)
    rec.begin("lock", core)
    rec.end(core)
    rec.end(core)
    rec.begin("b", core)
    rec.begin("lock", core)
    rec.end(core)
    rec.end(core)
    assert find_node(rec.tree(), ("a", "lock")).count == 1
    assert find_node(rec.tree(), ("b", "lock")).count == 1
    assert find_node(rec.tree(), ("lock",)) is None


def test_per_core_stacks_do_not_tangle(machine):
    """A span opened on core 0 must not become the parent of a span
    opened on core 1, regardless of interleaving."""
    rec = SpanRecorder()
    c0, c1 = machine.core(0), machine.core(1)
    rec.begin("c0-outer", c0)
    rec.begin("c1-outer", c1)
    c0.charge(50, "other")
    c1.charge(70, "other")
    rec.begin("c1-inner", c1)
    rec.end(c1)
    rec.end(c1)
    rec.end(c0)
    root = rec.tree()
    assert set(root.children) == {"c0-outer", "c1-outer"}
    assert find_node(root, ("c1-outer", "c1-inner")) is not None
    assert find_node(root, ("c0-outer", "c1-inner")) is None
    assert find_node(root, ("c0-outer",)).total_cycles == 50


def test_end_without_begin_is_tolerated(machine):
    rec = SpanRecorder()
    core = machine.core(0)
    rec.end(core)                     # no crash, nothing recorded
    assert rec.closed == 0
    rec.begin("x", core)
    rec.end(core)
    rec.end(core)                     # over-closing is absorbed too
    assert rec.closed == 1


def test_round_trip_and_merge(machine):
    rec = SpanRecorder()
    core = machine.core(0)
    rec.begin("outer", core)
    core.charge(30, "other")
    rec.begin("inner", core)
    core.charge(12, "other")
    rec.end(core)
    rec.end(core)
    rebuilt = SpanNode.from_dict(rec.to_dict())
    assert rebuilt.to_dict() == rec.to_dict()
    merged = merge_span_trees([rec.tree(), rebuilt])
    assert find_node(merged, ("outer",)).total_cycles == 2 * 42
    assert find_node(merged, ("outer", "inner")).count == 2
    _assert_nesting_invariant(merged)


def test_clear_resets_everything(machine):
    rec = SpanRecorder()
    core = machine.core(0)
    rec.begin("x", core)
    rec.clear()
    assert rec.opened == 0 and rec.closed == 0
    assert rec.open_spans == 0
    assert not rec.tree().children


# ----------------------------------------------------------------------
# Real-run attribution: the tree shape tells the paper's story.
# ----------------------------------------------------------------------
def _rx_tree(scheme: str, cores: int = 2) -> SpanNode:
    obs = Observability.capture(trace_capacity=64)
    run_tcp_stream_rx(StreamConfig(
        scheme=scheme, cores=cores, units_per_core=40, warmup_units=10,
        message_size=16384, obs=obs))
    assert obs.spans.open_spans == 0
    assert obs.spans.opened == obs.spans.closed
    return obs.spans.tree()


def test_copy_scheme_attribution_tree():
    root = _rx_tree("copy")
    _assert_nesting_invariant(root)
    # The steady-state RX path: step -> rx_packet -> dma_unmap -> copy.
    copy_node = find_node(root, (SPAN_STEP, SPAN_RX_PACKET,
                                 SPAN_DMA_UNMAP, SPAN_COPY))
    assert copy_node is not None and copy_node.total_cycles > 0
    # Refill maps acquire from the shadow pool.
    acquire = find_node(root, (SPAN_STEP, SPAN_RX_PACKET,
                               SPAN_DMA_MAP, SPAN_POOL_ACQUIRE))
    assert acquire is not None and acquire.count > 0
    # The copy scheme never touches the invalidation queue on RX.
    assert find_node(root, (SPAN_STEP, SPAN_RX_PACKET, SPAN_DMA_UNMAP,
                            SPAN_IOTLB_INVALIDATE)) is None


def test_strict_scheme_attribution_tree():
    root = _rx_tree("identity-strict")
    _assert_nesting_invariant(root)
    unmap = find_node(root, (SPAN_STEP, SPAN_RX_PACKET, SPAN_DMA_UNMAP))
    inv = find_node(root, (SPAN_STEP, SPAN_RX_PACKET, SPAN_DMA_UNMAP,
                           SPAN_IOTLB_INVALIDATE))
    lock = find_node(root, (SPAN_STEP, SPAN_RX_PACKET, SPAN_DMA_UNMAP,
                            SPAN_LOCK_WAIT))
    assert unmap is not None and inv is not None and lock is not None
    # Strict unmap is dominated by invalidation + lock wait (§2.2.1).
    assert inv.total_cycles + lock.total_cycles > unmap.total_cycles / 2
    # No shadow-pool or copy activity anywhere in an identity tree.
    for path, node in root.walk():
        assert node.name not in (SPAN_COPY, SPAN_POOL_ACQUIRE), path
