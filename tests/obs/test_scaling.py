"""Serial-fraction models and sweep analysis (repro.obs.scaling).

The fits have closed forms, so the tests can demand exact recovery:
points generated from Amdahl's law with a known ``s`` must fit back to
``s``, and a synthetic USL curve must return its own (σ, κ).  The
degenerate inputs (single-core-only sweeps, zero throughput, empty
snapshots) must yield Nones and placeholder rows, never exceptions.
"""

import pytest

from repro.hw.cpu import CAT_INVALIDATE, CAT_MEMCPY, CAT_SPINLOCK
from repro.obs.scaling import (
    SchemeScaling,
    amdahl_fit,
    amdahl_speedup,
    analyze_scheme,
    contention_matrix,
    fit_models,
    queueing_rows,
    render_contention_matrix,
    render_fit_table,
    render_queueing_table,
    render_speedup_table,
    serialized_shares,
    speedup_curve,
    usl_fit,
    usl_speedup,
)

CORES = (1, 2, 4, 8, 16, 32)


# ----------------------------------------------------------------------
# Model fits.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("s", [0.0, 0.05, 0.3, 0.8, 1.0])
def test_amdahl_fit_recovers_exact_curve(s):
    points = [(n, amdahl_speedup(s, n)) for n in CORES]
    assert amdahl_fit(points) == pytest.approx(s, abs=1e-9)


@pytest.mark.parametrize("sigma,kappa", [(0.0, 0.0), (0.1, 0.0),
                                         (0.05, 0.01), (0.3, 0.002)])
def test_usl_fit_recovers_exact_curve(sigma, kappa):
    points = [(n, usl_speedup(sigma, kappa, n)) for n in CORES]
    fitted_sigma, fitted_kappa = usl_fit(points)
    assert fitted_sigma == pytest.approx(sigma, abs=1e-6)
    assert fitted_kappa == pytest.approx(kappa, abs=1e-6)


def test_amdahl_fit_clamps_superlinear_to_zero():
    # Superlinear speedup implies a negative s; the clamp floors it.
    assert amdahl_fit([(2, 3.0), (4, 7.0)]) == 0.0


def test_fits_degenerate_inputs_return_none():
    assert amdahl_fit([]) is None
    assert amdahl_fit([(1, 1.0)]) is None                # no multicore point
    assert amdahl_fit([(4, 0.0)]) is None                # zero throughput
    assert usl_fit([(1, 1.0), (2, 1.8)]) is None         # one point: 2 dof
    assert usl_fit([(2, 1.8), (2, 1.8)]) is None         # not distinct
    fit = fit_models([(1, 1.0)])
    assert fit.serial_fraction is None
    assert fit.usl_sigma is None and fit.usl_kappa is None
    assert fit.usl_peak_cores is None


def test_usl_peak_cores_only_with_positive_kappa():
    fit = fit_models([(n, usl_speedup(0.1, 0.02, n)) for n in CORES])
    assert fit.usl_peak_cores == pytest.approx(
        ((1 - 0.1) / 0.02) ** 0.5, rel=1e-6)
    flat = fit_models([(n, usl_speedup(0.1, 0.0, n)) for n in CORES])
    assert flat.usl_peak_cores is None


# ----------------------------------------------------------------------
# Sweep analysis over point dicts.
# ----------------------------------------------------------------------
def _point(cores, gbps, spin=0, inval=0, busy=1000, locks=None, inv=None):
    return {
        "cores": cores,
        "throughput_gbps": gbps,
        "busy_cycles": busy,
        "breakdown_cycles": {CAT_MEMCPY: busy - spin - inval,
                             CAT_SPINLOCK: spin, CAT_INVALIDATE: inval},
        "locks": locks or {},
        "invalidation": inv or {},
    }


def test_speedup_curve_normalizes_to_smallest_count():
    curve = speedup_curve([_point(4, 30.0), _point(1, 10.0),
                           _point(2, 20.0)])
    assert curve == [(1, 1.0), (2, 2.0), (4, 3.0)]


def test_speedup_curve_rescales_multicore_baseline():
    # Baseline at 2 cores: assume perfect scaling below the measured
    # range, so S(2) = 2, keeping the N=1-anchored fits applicable.
    curve = speedup_curve([_point(2, 10.0), _point(4, 15.0)])
    assert curve == [(2, 2.0), (4, 3.0)]


def test_speedup_curve_zero_baseline_throughput():
    assert speedup_curve([_point(1, 0.0), _point(2, 5.0)]) \
        == [(1, 0.0), (2, 0.0)]
    assert speedup_curve([]) == []


def test_serialized_shares():
    shares = serialized_shares({CAT_SPINLOCK: 200, CAT_INVALIDATE: 100,
                                CAT_MEMCPY: 700}, 1000)
    assert shares == (0.2, 0.3)
    assert serialized_shares({}, 0) == (0.0, 0.0)


def _lock_snap(name, wait, by_core):
    return {name: {"name": name, "acquisitions": 10, "contended": 5,
                   "total_wait_cycles": wait, "total_hold_cycles": 100,
                   "wait_by_core": by_core, "hold_by_core": {},
                   "acquisitions_by_core": {}, "handoff_edges": {"1->0": 5},
                   "max_wait_cycles": wait, "max_wait_at": 0,
                   "max_wait_core": 1}}


def test_analyze_scheme_attributes_top_lock_at_widest_point():
    points = [
        _point(1, 10.0),
        _point(2, 15.0, spin=100,
               locks={**_lock_snap("qi", 400, {"1": 400}),
                      **_lock_snap("iova", 900, {"1": 900})}),
        _point(4, 18.0, spin=300, inval=100,
               locks={**_lock_snap("qi", 5000, {"1": 5000}),
                      **_lock_snap("iova", 200, {"1": 200})}),
    ]
    analysis = analyze_scheme("identity-strict", points)
    # Shares come from the widest (4-core) point only.
    assert analysis.lock_wait_share == pytest.approx(0.3)
    assert analysis.serial_fraction_measured == pytest.approx(0.4)
    # ... and so does the lock ranking: qi wins at 4 cores even though
    # iova led at 2.
    assert analysis.top_lock == "qi"
    assert analysis.top_lock_wait_cycles == 5000
    assert analysis.top_lock_wait_share == pytest.approx(5000 / 5200)
    assert analysis.fit.serial_fraction is not None


def test_analyze_scheme_without_contention_has_no_top_lock():
    analysis = analyze_scheme("copy", [_point(1, 10.0), _point(2, 19.0)])
    assert analysis.top_lock is None
    assert analysis.top_lock_wait_cycles == 0


def test_contention_matrix_tracks_wait_growth_across_counts():
    points = [
        _point(1, 10.0),
        _point(2, 15.0, locks=_lock_snap("qi", 400, {"1": 400})),
        _point(4, 18.0, locks=_lock_snap("qi", 5000, {"1": 3000,
                                                      "2": 2000})),
    ]
    (row,) = contention_matrix(points)
    assert row["lock"] == "qi"
    assert row["wait_cycles_by_cores"] == {1: 0, 2: 400, 4: 5000}
    assert row["widest_cores"] == 4
    assert row["waiting_cores"] == 2
    assert row["top_edges"] == [{"waiter": 1, "holder": 0, "count": 5}]
    assert contention_matrix([]) == []


def test_queueing_rows_sorted_with_zero_defaults():
    rows = queueing_rows([
        _point(4, 1.0, inv={"submissions": 40, "arrival_rate_per_us": 0.5,
                            "mean_service_cycles": 1500.0,
                            "mean_queue_delay_cycles": 10.0,
                            "queue_depth_mean": 1.2, "queue_depth_max": 3}),
        _point(1, 1.0),
    ])
    assert [r["cores"] for r in rows] == [1, 4]
    assert rows[0]["submissions"] == 0
    assert rows[1]["queue_depth_max"] == 3


# ----------------------------------------------------------------------
# Renderers: empty inputs degrade to placeholder lines.
# ----------------------------------------------------------------------
def test_renderers_handle_empty_inputs():
    assert render_speedup_table([]) == ["(no sweep data)"]
    assert render_fit_table([]) == ["(no sweep data)"]
    assert render_contention_matrix([]) == ["(no lock contention recorded)"]
    assert render_queueing_table([]) == ["(no invalidation traffic recorded)"]


def test_render_contention_matrix_drops_zero_wait_locks():
    rows = contention_matrix([_point(1, 10.0), _point(2, 20.0)])
    assert render_contention_matrix(rows) \
        == ["(no lock contention recorded)"]


def test_render_fit_table_ranks_worst_serial_fraction_first():
    bad = analyze_scheme("identity-strict", [
        _point(n, amdahl_speedup(0.6, n) * 10.0) for n in (1, 2, 4)])
    good = analyze_scheme("copy", [
        _point(n, amdahl_speedup(0.05, n) * 10.0) for n in (1, 2, 4)])
    lines = render_fit_table([good, bad])
    strict_row = next(i for i, line in enumerate(lines)
                      if "identity-strict" in line)
    copy_row = next(i for i, line in enumerate(lines) if "| copy |" in line)
    assert strict_row < copy_row


def test_render_single_core_only_sweep():
    """A one-point 'sweep' renders dashes, not crashes."""
    analysis = analyze_scheme("copy", [_point(1, 10.0)])
    lines = render_fit_table([analysis])
    assert any("| - |" in line or "| copy | -" in line for line in lines)
    assert isinstance(SchemeScaling(scheme="x").to_dict(), dict)
