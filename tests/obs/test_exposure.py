"""Exposure-accounting invariants (repro.obs.exposure).

Two layers of tests:

* unit tests drive the :class:`ExposureAccountant` directly with
  synthetic map/unmap/invalidate/access timelines, pinning down the
  arithmetic (byte-cycle integrals, refcounts, remap window closure,
  fault forensics, ring bounding);
* scheme-level tests run :func:`measure_scheme_exposure` and assert the
  paper's security story quantitatively — deferred schemes expose a
  positive stale window, strict and copy expose none, copy alone has
  zero granularity excess while page-granular schemes pad sub-page
  buffers up to a page.
"""

import pytest

from repro.attacks.scenarios import measure_scheme_exposure
from repro.obs.exposure import (
    KIND_DEDICATED,
    KIND_OS,
    PAGE_SIZE,
    ExposureAccountant,
)


# ----------------------------------------------------------------------
# Accountant unit behaviour.
# ----------------------------------------------------------------------
def test_stale_window_integral():
    """unmap at t=100 (cached), OS release at t=100, invalidation
    completes at t=350: one page stale for 250 cycles."""
    acc = ExposureAccountant()
    acc.note_map_range(t=0, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_unmap_range(t=100, domain_id=1, iova=0x1000, size=PAGE_SIZE,
                         cached_pages={0x1})
    acc.note_dma_unmap(t=100, scheme="identity-deferred", domain_id=1,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_invalidate_pages(t=350, domain_id=1, iova_page=0x1, npages=1)
    s = acc.summary()
    assert s["stale_windows"] == 1
    assert s["stale_byte_cycles"] == 250 * PAGE_SIZE
    assert s["stale_peak_window_cycles"] == 250
    assert s["stale_open_pages"] == 0


def test_uncached_page_never_goes_stale():
    """A page absent from the IOTLB at unmap time is revoked instantly —
    no window regardless of when the invalidation lands."""
    acc = ExposureAccountant()
    acc.note_map_range(t=0, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_unmap_range(t=100, domain_id=1, iova=0x1000, size=PAGE_SIZE,
                         cached_pages=set())
    acc.note_dma_unmap(t=100, scheme="s", domain_id=1,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_invalidate_pages(t=9999, domain_id=1, iova_page=0x1, npages=1)
    assert acc.summary()["stale_byte_cycles"] == 0
    assert acc.summary()["stale_windows"] == 0


def test_sync_invalidation_before_release_is_zero_window():
    """Strict ordering: the invalidation completes *before* dma_unmap
    returns, so released_at is never set and the window is zero."""
    acc = ExposureAccountant()
    acc.note_map_range(t=0, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_unmap_range(t=100, domain_id=1, iova=0x1000, size=PAGE_SIZE,
                         cached_pages={0x1})
    acc.note_invalidate_pages(t=150, domain_id=1, iova_page=0x1, npages=1)
    acc.note_dma_unmap(t=160, scheme="identity-strict", domain_id=1,
                       iova=0x1000, size=PAGE_SIZE)
    assert acc.summary()["stale_byte_cycles"] == 0
    assert acc.summary()["stale_windows"] == 0


def test_remap_closes_stale_window():
    """Re-mapping an iova whose stale IOTLB entry is still live
    re-legitimizes the translation: the window ends at remap time."""
    acc = ExposureAccountant()
    acc.note_map_range(t=0, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_unmap_range(t=100, domain_id=1, iova=0x1000, size=PAGE_SIZE,
                         cached_pages={0x1})
    acc.note_dma_unmap(t=100, scheme="identity-deferred", domain_id=1,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_map_range(t=400, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    s = acc.summary()
    assert s["stale_windows"] == 1
    assert s["stale_byte_cycles"] == 300 * PAGE_SIZE
    assert s["stale_open_pages"] == 0


def test_stale_access_counted():
    acc = ExposureAccountant()
    acc.note_map_range(t=0, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_unmap_range(t=100, domain_id=1, iova=0x1000, size=PAGE_SIZE,
                         cached_pages={0x1})
    acc.note_dma_unmap(t=100, scheme="s", domain_id=1,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_access(t=200, domain_id=1, iova=0x1040, is_write=False)
    # Access through an unknown domain counts nothing.
    acc.note_access(t=200, domain_id=2, iova=0x1040, is_write=False)
    assert acc.summary()["stale_accesses"] == 1


def test_granularity_excess_integral():
    """512 B buffer on a 4 KiB page: excess = 3584 B for the mapping
    lifetime."""
    acc = ExposureAccountant()
    acc.note_map_range(t=0, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_dma_map(t=0, scheme="identity-strict", domain_id=1,
                     iova=0x1200, size=512)
    acc.note_dma_unmap(t=1000, scheme="identity-strict", domain_id=1,
                       iova=0x1200, size=512)
    s = acc.summary()
    assert s["granularity_excess_byte_cycles"] == (PAGE_SIZE - 512) * 1000
    assert s["peak_excess_bytes"] == PAGE_SIZE - 512


def test_dedicated_pages_carry_no_excess():
    """Shadow-pool / coherent-ring pages are the scheme's own memory —
    device reachability there is by design, not granularity spill."""
    acc = ExposureAccountant()
    acc.note_map_range(t=0, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE, kind=KIND_DEDICATED)
    acc.note_dma_map(t=0, scheme="copy", domain_id=1, iova=0x1200, size=512)
    acc.note_dma_unmap(t=1000, scheme="copy", domain_id=1,
                       iova=0x1200, size=512)
    s = acc.summary()
    assert s["granularity_excess_byte_cycles"] == 0
    assert s["peak_excess_bytes"] == 0


def test_refcounted_page_stays_until_last_unmap():
    acc = ExposureAccountant()
    acc.note_map_range(t=0, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_map_range(t=10, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_unmap_range(t=20, domain_id=1, iova=0x1000, size=PAGE_SIZE,
                         cached_pages={0x1})
    assert acc.domain_summary(1)["surface_bytes"] == PAGE_SIZE
    acc.note_unmap_range(t=30, domain_id=1, iova=0x1000, size=PAGE_SIZE,
                         cached_pages=set())
    assert acc.domain_summary(1)["surface_bytes"] == 0


def test_surface_peak_tracks_mapped_plus_stale():
    acc = ExposureAccountant()
    for i in range(3):
        acc.note_map_range(t=i, domain_id=1, device_id=0x10,
                           iova=0x1000 * (i + 1), size=PAGE_SIZE)
    s = acc.summary()
    assert s["peak_surface_bytes"] == 3 * PAGE_SIZE


# ----------------------------------------------------------------------
# Fault forensics + ring bounding.
# ----------------------------------------------------------------------
def test_fault_forensics_page_lifecycle():
    acc = ExposureAccountant()
    acc.note_fault(t=5, domain_id=1, device_id=0x10, iova=0x9000,
                   is_write=True, reason="not-present")
    acc.note_map_range(t=10, domain_id=1, device_id=0x10,
                       iova=0x1000, size=PAGE_SIZE)
    acc.note_fault(t=20, domain_id=1, device_id=0x10, iova=0x1000,
                   is_write=True, reason="write-to-readonly")
    acc.note_unmap_range(t=30, domain_id=1, iova=0x1000, size=PAGE_SIZE,
                         cached_pages=set())
    acc.note_fault(t=40, domain_id=1, device_id=0x10, iova=0x1000,
                   is_write=False, reason="not-present")
    states = [f.page_state for f in acc.faults]
    assert states == ["never-mapped", "mapped", "revoked"]
    last = acc.faults[-1]
    assert last.last_map_t == 10
    assert last.last_unmap_t == 30
    assert acc.faults[0].last_map_t is None


def test_fault_ring_is_bounded():
    acc = ExposureAccountant(fault_capacity=4)
    for i in range(10):
        acc.note_fault(t=i, domain_id=1, device_id=0x10, iova=0x1000 * i,
                       is_write=False, reason="not-present")
    assert len(acc.faults) == 4
    assert acc.faults_recorded == 10
    assert acc.faults_dropped == 6
    # Oldest evicted first: the ring holds the newest four.
    assert [f.t for f in acc.faults] == [6, 7, 8, 9]


def test_fault_to_dict_round_trips_key_fields():
    acc = ExposureAccountant()
    acc.note_fault(t=7, domain_id=3, device_id=0x20, iova=0x2000,
                   is_write=True, reason="not-present")
    d = acc.faults[0].to_dict()
    assert d["t"] == 7 and d["domain"] == 3
    assert d["reason"] == "not-present" and d["page_state"] == "never-mapped"


# ----------------------------------------------------------------------
# Scheme-level invariants (the ISSUE's acceptance numbers).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def exposures():
    schemes = ("copy", "identity-strict", "identity-deferred",
               "linux-deferred", "self-invalidating")
    return {s: measure_scheme_exposure(s) for s in schemes}


def test_deferred_schemes_have_positive_stale_window(exposures):
    for scheme in ("identity-deferred", "linux-deferred",
                   "self-invalidating"):
        s = exposures[scheme]
        assert s["stale_byte_cycles"] > 0, scheme
        assert s["stale_windows"] > 0, scheme


def test_strict_and_copy_have_zero_stale_window(exposures):
    for scheme in ("copy", "identity-strict"):
        s = exposures[scheme]
        assert s["stale_byte_cycles"] == 0, scheme
        assert s["stale_windows"] == 0, scheme
        assert s["stale_accesses"] == 0, scheme


def test_copy_has_zero_granularity_excess(exposures):
    assert exposures["copy"]["granularity_excess_byte_cycles"] == 0
    assert exposures["copy"]["peak_excess_bytes"] == 0


def test_page_granular_schemes_pad_subpage_buffers(exposures):
    """The scenario maps a 512 B TX buffer; identity-family schemes
    expose the rest of its page."""
    for scheme in ("identity-strict", "identity-deferred"):
        s = exposures[scheme]
        assert s["granularity_excess_byte_cycles"] > 0, scheme
        assert s["peak_excess_bytes"] >= PAGE_SIZE - 512, scheme


def test_unprotected_schemes_have_no_domains():
    for scheme in ("no-iommu", "swiotlb"):
        assert not measure_scheme_exposure(scheme)["domains"], scheme


def test_strict_scheme_records_fault_forensics(exposures):
    """identity-strict blocks the post-unmap probes; each block is a
    fault with a revoked-page diagnosis."""
    s = exposures["identity-strict"]
    assert s["faults"] >= 2
