"""Live-pair diffs: scheme attribution and --jobs byte-stability.

The paper-shaped acceptance check: a strict-vs-copy diff must attribute
the strict side's extra cycles to the unmap path (IOTLB invalidation
and invalidation-lock wait) and the copy side's to the copy/pool path —
and the rendered bytes must not depend on worker fan-out.
"""

import pytest

from repro.obs.diff import build_diff, diff_to_json, render_diff_markdown
from repro.obs.diff.sides import run_live_pair

#: Small but multi-core (lock contention needs >1 core to exist).
SIZING = dict(cores=4, size=16384, units=30, warmup=8)


@pytest.fixture(scope="module")
def strict_copy_diff():
    a, b = run_live_pair("stream", "identity-strict", "copy",
                         jobs=1, quiet=True, **SIZING)
    # Uncapped metric listing so assertions can see every moved metric.
    return build_diff(a, b, metric_limit=10_000)


def test_live_pair_points_align_across_schemes(strict_copy_diff):
    assert strict_copy_diff["matched"] == 1
    assert not strict_copy_diff["only_a"]
    assert not strict_copy_diff["only_b"]


def test_strict_vs_copy_attribution(strict_copy_diff):
    spans = strict_copy_diff["spans"]
    assert len(spans) == 1
    shrunk_paths = [tuple(row["path"]) for row in spans[0]["shrunk"]]
    grown_paths = [tuple(row["path"]) for row in spans[0]["grown"]]
    # Strict (side A) pays in the unmap path: invalidation and the
    # invalidation-queue lock.
    assert any(path[-1] == "lock_wait" and "dma_unmap" in path
               for path in shrunk_paths)
    assert any(path[-1] == "iotlb_invalidate" for path in shrunk_paths)
    # Copy (side B) pays in the copy/pool path.
    assert any("copy" in path or "pool_acquire" in path
               for path in grown_paths)


def test_iotlb_metrics_flow_into_the_diff(strict_copy_diff):
    moved = [entry["metric"]
             for section in strict_copy_diff["metrics"]
             for entry in section["changed"]]
    assert any(name.startswith("metrics.counters.iotlb.")
               for name in moved)
    assert any(name.startswith("row.iotlb_") for name in moved)


def test_quantile_shift_present_for_live_pairs(strict_copy_diff):
    assert strict_copy_diff["quantile_shift"]
    shift = strict_copy_diff["quantile_shift"][0]
    assert shift["percentile"] == 99.0
    assert shift["stages"]


def test_jobs_fanout_is_byte_stable():
    a1, b1 = run_live_pair("stream", "identity-strict", "copy",
                           jobs=1, quiet=True, **SIZING)
    a2, b2 = run_live_pair("stream", "identity-strict", "copy",
                           jobs=2, quiet=True, **SIZING)
    diff1 = build_diff(a1, b1)
    diff2 = build_diff(a2, b2)
    assert diff_to_json(diff1) == diff_to_json(diff2)
    assert render_diff_markdown(diff1) == render_diff_markdown(diff2)
