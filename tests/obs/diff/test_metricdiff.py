"""Metric-delta semantics: flattening, unions, ordering."""

import pytest

from repro.obs.diff.metricdiff import (
    MetricDelta,
    changed,
    diff_metrics,
    flatten_numeric,
)


def test_flatten_skips_non_numeric_leaves():
    flat = flatten_numeric({
        "scheme": "copy",                  # string: skipped
        "armed": True,                     # bool: skipped
        "samples": [1, 2, 3],              # list: skipped
        "none": None,                      # None: skipped
        "locks": {"qi-lock": {"total_wait_cycles": 42}},
        "count": 7,
        "rate": 0.5,
    })
    assert flat == {"locks.qi-lock.total_wait_cycles": 42.0,
                    "count": 7.0, "rate": 0.5}


def test_union_flags_appearances_and_disappearances():
    deltas = diff_metrics({"a": 1, "gone": 5}, {"a": 1, "new": 3})
    by_name = {d.name: d for d in deltas}
    assert by_name["gone"].b is None
    assert by_name["gone"].delta == -5.0
    assert by_name["new"].a is None
    assert by_name["new"].delta == 3.0
    assert by_name["a"].is_zero


def test_changed_orders_no_rel_first_then_by_relative_change():
    deltas = [
        MetricDelta("steady", 100.0, 100.0),
        MetricDelta("small_move", 100.0, 101.0),     # +1%
        MetricDelta("big_move", 10.0, 30.0),         # +200%
        MetricDelta("appeared", None, 2.0),          # no rel
    ]
    moved = changed(deltas)
    assert [d.name for d in moved] \
        == ["appeared", "big_move", "small_move"]


def test_diff_is_deterministically_sorted():
    a = {"z": 1, "m": 2, "a": 3}
    names = [d.name for d in diff_metrics(a, a)]
    assert names == sorted(names)


def test_delta_to_dict_rounds():
    d = MetricDelta("x", 3.0, 4.0000004)
    row = d.to_dict()
    assert row["delta"] == pytest.approx(1.0)
    assert row["rel"] == pytest.approx(1 / 3, abs=1e-6)
