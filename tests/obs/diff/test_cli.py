"""``python -m repro diff`` end to end through the CLI entry point."""

import json
from pathlib import Path

import pytest

from repro.cli import main

BASELINE = Path(__file__).resolve().parents[3] \
    / "benchmarks" / "results" / "baseline.json"


def test_two_record_self_diff_is_zero(tmp_path):
    rc = main(["diff", str(BASELINE), str(BASELINE),
               "--out", str(tmp_path), "--quiet"])
    assert rc == 0
    diff = json.loads((tmp_path / "diff.json").read_text())
    assert diff["summary"]["zero"] is True
    md = (tmp_path / "diff.md").read_text()
    assert "zero deltas everywhere" in md


def test_one_record_diffs_against_checked_in_baseline(tmp_path, capsys):
    rc = main(["diff", str(BASELINE), "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "baseline:baseline.json" in out
    diff = json.loads((tmp_path / "diff.json").read_text())
    assert diff["a"]["label"] == "baseline:baseline.json"
    assert diff["summary"]["zero"] is True


def test_live_pair_via_cli_with_scheme_aliases(tmp_path):
    rc = main(["diff", "--workload", "stream",
               "--schemes", "strict,copy", "--cores", "2",
               "--units", "20", "--out", str(tmp_path), "--quiet"])
    assert rc == 0
    diff = json.loads((tmp_path / "diff.json").read_text())
    assert diff["a"]["label"] == "identity-strict"
    assert diff["b"]["label"] == "copy"
    assert diff["summary"]["zero"] is False


def test_paths_and_workload_are_mutually_exclusive(tmp_path, capsys):
    rc = main(["diff", str(BASELINE), "--workload", "stream",
               "--out", str(tmp_path)])
    assert rc == 2                      # ConfigurationError exit code
    assert "not both" in capsys.readouterr().err


def test_three_paths_rejected(tmp_path, capsys):
    rc = main(["diff", str(BASELINE), str(BASELINE), str(BASELINE),
               "--out", str(tmp_path)])
    assert rc == 2
    assert "at most two" in capsys.readouterr().err


def test_no_paths_no_workload_is_an_error(tmp_path, capsys):
    rc = main(["diff", "--out", str(tmp_path)])
    assert rc == 2
    assert "--workload" in capsys.readouterr().err


def test_live_pair_rejects_single_scheme(tmp_path, capsys):
    rc = main(["diff", "--workload", "stream", "--schemes", "copy",
               "--out", str(tmp_path)])
    assert rc == 2
    assert "exactly two" in capsys.readouterr().err
