"""Span-trie diff semantics: normalization, ranking, conservation.

The load-bearing invariant: self-cycle deltas over *all* union paths
sum exactly to the root-level total delta, so ranking by self delta
names the hot path itself instead of every ancestor above it.
"""

import pytest

from repro.obs.diff.spandiff import diff_span_trees, share_blame
from repro.obs.spans import SpanNode


def tree(spec, name="run"):
    """Build a SpanNode tree from {path-tuple: (count, total_cycles)}."""
    root = SpanNode(name)
    root.count = 1
    for path, (count, total) in spec.items():
        node = root
        for part in path:
            node = node.children.setdefault(part, SpanNode(part))
        node.count = count
        node.total_cycles = total
    # Parent totals must cover children (recorder invariant).
    def fix(node):
        for child in node.children.values():
            fix(child)
        node.total_cycles = max(node.total_cycles, node.child_cycles)
    fix(root)
    return root


BASE = {
    ("step",): (10, 1000),
    ("step", "dma_unmap"): (10, 600),
    ("step", "dma_unmap", "iotlb_invalidate"): (10, 400),
}


def test_self_deltas_sum_to_total_delta():
    a = tree(BASE)
    b = tree({
        ("step",): (10, 1600),
        ("step", "dma_unmap"): (10, 1200),
        ("step", "dma_unmap", "iotlb_invalidate"): (10, 1000),
    })
    diff = diff_span_trees(a, b, a_units=10, b_units=10)
    total = (b.total_cycles / 10) - (a.total_cycles / 10)
    assert diff.total_delta_per_unit == pytest.approx(total)
    assert sum(d.self_delta_per_unit for d in diff.deltas) \
        == pytest.approx(total)


def test_grown_names_the_hot_leaf_not_its_ancestors():
    a = tree(BASE)
    # Only the iotlb_invalidate leaf got slower; ancestors grow by
    # inclusion but their *self* cycles are unchanged.
    b = tree({
        ("step",): (10, 1000 + 300),
        ("step", "dma_unmap"): (10, 600 + 300),
        ("step", "dma_unmap", "iotlb_invalidate"): (10, 400 + 300),
    })
    diff = diff_span_trees(a, b, 10, 10)
    grown = diff.grown()
    assert grown[0].path == ("step", "dma_unmap", "iotlb_invalidate")
    assert grown[0].self_delta_per_unit == pytest.approx(30.0)
    assert len(grown) == 1            # ancestors did not grow in self
    assert diff.contribution(grown[0]) == pytest.approx(1.0)


def test_normalization_survives_different_run_lengths():
    a = tree(BASE)
    scaled = {path: (count * 6, total * 6)
              for path, (count, total) in BASE.items()}
    b = tree(scaled)
    diff = diff_span_trees(a, b, a_units=10, b_units=60)
    # 6x the work at 6x the units: identical per-unit cost everywhere.
    for delta in diff.deltas:
        assert delta.self_delta_per_unit == pytest.approx(0.0)
    assert not diff.is_zero            # counts still differ
    assert diff.grown() == [] and diff.shrunk() == []


def test_union_covers_paths_missing_on_either_side():
    a = tree(BASE)
    b = tree({
        ("step",): (10, 1000),
        ("step", "dma_unmap"): (10, 600),
        ("step", "dma_unmap", "copy"): (10, 500),
    })
    diff = diff_span_trees(a, b, 10, 10)
    paths = {d.path for d in diff.deltas}
    assert ("step", "dma_unmap", "iotlb_invalidate") in paths
    assert ("step", "dma_unmap", "copy") in paths
    grown = {d.path for d in diff.grown()}
    shrunk = {d.path for d in diff.shrunk()}
    assert ("step", "dma_unmap", "copy") in grown
    assert ("step", "dma_unmap", "iotlb_invalidate") in shrunk


def test_self_diff_is_zero():
    a = tree(BASE)
    diff = diff_span_trees(a, tree(BASE), 10, 10)
    assert diff.is_zero
    assert diff.grown() == [] and diff.shrunk() == []
    assert diff.total_delta_per_unit == pytest.approx(0.0)


def test_share_blame_matches_gate_semantics():
    a = tree(BASE)
    b = tree({
        ("step",): (10, 2000),
        ("step", "dma_unmap"): (10, 1600),
        ("step", "dma_unmap", "iotlb_invalidate"): (10, 1400),
    })
    blamed = share_blame(a, b)
    assert blamed is not None
    path, a_share, b_share = blamed
    assert path == ("step", "dma_unmap", "iotlb_invalidate")
    assert b_share > a_share
    # Nothing grew relative to itself: no blame.
    assert share_blame(a, tree(BASE)) is None
