"""Engine + sides + renderers over real artifacts.

The acceptance invariant from the differential observatory: a record
diffed against itself reports zero deltas everywhere, and an injected
hot path is what the report's top-ranked span growth names.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.obs.diff import (
    build_diff,
    diff_is_zero,
    diff_to_json,
    load_side,
    render_diff_markdown,
    side_from_record,
)
from repro.bench.record import load_record

BASELINE = Path(__file__).resolve().parents[3] \
    / "benchmarks" / "results" / "baseline.json"


@pytest.fixture(scope="module")
def baseline_record():
    return load_record(str(BASELINE))


def test_baseline_self_diff_is_zero(baseline_record):
    a = side_from_record(baseline_record, "A")
    b = side_from_record(copy.deepcopy(baseline_record), "B")
    diff = build_diff(a, b)
    assert diff_is_zero(diff)
    assert diff["summary"]["verdict"] == "zero deltas everywhere"
    assert diff["matched"] == diff["a"]["points"] == diff["b"]["points"]
    assert not diff["only_a"] and not diff["only_b"]


def test_load_side_dispatches_on_shape(tmp_path, baseline_record):
    assert side_from_record(baseline_record, "x").kind == "bench"
    scale = {"schema_version": 1, "workload": "stream", "figures": {},
             "points": {"copy": [{"cores": 2, "units": 10,
                                  "throughput_gbps": 1.5}]}}
    side = side_from_record(scale, "s")
    assert side.kind == "scale"
    assert ("stream", "copy", "cores=2") in side.points
    fleet = {"schema_version": 1, "figures": {},
             "capacity": {"copy": {"fleet_capacity_users": 900}}}
    assert side_from_record(fleet, "f").kind == "fleet"


def test_injected_hot_path_tops_the_report(baseline_record):
    mutated = copy.deepcopy(baseline_record)
    fig = mutated["figures"]["fig03"]
    tree = fig["spans"]["identity-strict"]

    def find(node, name):
        if node["name"] == name:
            return node
        for child in node.get("children", ()):
            hit = find(child, name)
            if hit is not None:
                return hit
        return None

    victim = find(tree, "iotlb_invalidate")
    assert victim is not None
    extra = victim["total_cycles"] * 4
    victim["total_cycles"] += extra
    # Propagate inclusively so the recorder invariant holds.
    def bump(node):
        if find(node, "iotlb_invalidate") is not None:
            node["total_cycles"] += extra
        for child in node.get("children", ()):
            bump(child)
    for child in tree.get("children", ()):
        bump(child)
    tree["total_cycles"] += extra

    diff = build_diff(side_from_record(baseline_record, "A"),
                      side_from_record(mutated, "B"))
    assert not diff_is_zero(diff)
    top = diff["summary"]["top_span"]
    assert top is not None
    assert top["path"][-1] == "iotlb_invalidate"
    assert "identity-strict" in top["key"]


def test_metric_movement_is_reported_with_rel(baseline_record):
    mutated = copy.deepcopy(baseline_record)
    row = mutated["figures"]["fig03"]["series"][0]
    row["throughput_gbps"] = row["throughput_gbps"] * 2
    diff = build_diff(side_from_record(baseline_record, "A"),
                      side_from_record(mutated, "B"))
    assert diff["summary"]["changed_metrics"] == 1
    moved = [entry for section in diff["metrics"]
             for entry in section["changed"]]
    assert len(moved) == 1
    assert moved[0]["metric"] == "throughput_gbps"
    assert moved[0]["rel"] == pytest.approx(1.0)


def test_render_is_pure_and_json_is_canonical(baseline_record):
    a = side_from_record(baseline_record, "A")
    b = side_from_record(baseline_record, "B")
    diff1 = build_diff(a, b)
    diff2 = build_diff(a, b)
    assert diff_to_json(diff1) == diff_to_json(diff2)
    assert render_diff_markdown(diff1) == render_diff_markdown(diff2)
    parsed = json.loads(diff_to_json(diff1))
    assert parsed["schema"] == "repro-diff/v1"
    md = render_diff_markdown(diff1)
    assert md.startswith("# Differential report")
    assert "zero deltas everywhere" in md


def test_load_side_uses_path_as_default_label():
    side = load_side(str(BASELINE))
    assert side.label == str(BASELINE)
    assert side.points
