"""Quantile-shift attribution: stage-wise tail-gap decomposition."""

import pytest

from repro.obs.diff.quantile import gap_attribution, quantile_shift
from repro.obs.requests import STAGE_UNATTRIBUTED, cycles_to_us


def mk_tail(threshold, p50, tail_profile, median_profile,
            percentile=99.0):
    return {
        "percentile": percentile,
        "threshold_cycles": threshold,
        "p50_cycles": p50,
        "tail_profile": tail_profile,
        "median_profile": median_profile,
    }


def test_gap_attribution_sums_to_the_gap():
    tail = mk_tail(2000, 800,
                   {"lock_wait": 0.6, "copy": 0.4},
                   {"lock_wait": 0.2, "copy": 0.8})
    gaps = gap_attribution(tail)
    assert sum(gaps.values()) == pytest.approx(2000 - 800)
    assert gaps["lock_wait"] == pytest.approx(0.6 * 2000 - 0.2 * 800)


def test_verdict_names_stage_with_largest_gap_change():
    a = mk_tail(2000, 800, {"lock_wait": 0.5, "copy": 0.5},
                {"lock_wait": 0.5, "copy": 0.5})
    b = mk_tail(4000, 800, {"lock_wait": 0.8, "copy": 0.2},
                {"lock_wait": 0.5, "copy": 0.5})
    shift = quantile_shift(a, b)
    assert shift is not None
    assert shift["verdict"] == "lock_wait"
    assert shift["gap_delta_us"] == pytest.approx(
        cycles_to_us(3200 - 1200), abs=1e-3)
    # Stage rows are sorted by |delta| descending.
    deltas = [abs(row["delta_us"]) for row in shift["stages"]]
    assert deltas == sorted(deltas, reverse=True)


def test_unattributed_time_is_reported_but_never_blamed():
    a = mk_tail(1000, 1000, {STAGE_UNATTRIBUTED: 1.0},
                {STAGE_UNATTRIBUTED: 1.0})
    b = mk_tail(5000, 1000, {STAGE_UNATTRIBUTED: 0.9, "copy": 0.1},
                {STAGE_UNATTRIBUTED: 1.0})
    shift = quantile_shift(a, b)
    assert shift["verdict"] == "copy"
    stages = {row["stage"] for row in shift["stages"]}
    assert STAGE_UNATTRIBUTED in stages


def test_missing_side_yields_none():
    tail = mk_tail(1000, 500, {}, {})
    assert quantile_shift(None, tail) is None
    assert quantile_shift(tail, None) is None
    assert quantile_shift(None, None) is None


def test_self_shift_is_all_zero():
    tail = mk_tail(3000, 1000, {"copy": 0.7, "dma_map": 0.3},
                   {"copy": 0.6, "dma_map": 0.4})
    shift = quantile_shift(tail, tail)
    assert shift["gap_delta_us"] == 0.0
    assert all(row["delta_us"] == 0.0 for row in shift["stages"])
