"""Regression-gate delegation: failing figures emit diff artifacts."""

import copy
from pathlib import Path

from repro.bench.record import load_record
from repro.bench.regression import (
    compare_records,
    gate_against_baseline,
    write_gate_diffs,
)

BASELINE = Path(__file__).resolve().parents[3] \
    / "benchmarks" / "results" / "baseline.json"


def _inject_regression(record):
    """Slow one strict point and grow its invalidation subtree."""
    mutated = copy.deepcopy(record)
    fig = mutated["figures"]["fig03"]
    for row in fig["series"]:
        if row["scheme"] == "identity-strict":
            row["us_per_unit"] = row["us_per_unit"] * 2
    tree = fig["spans"]["identity-strict"]

    def grow(node):
        hit = 0
        for child in node.get("children", ()):
            hit += grow(child)
        if node["name"] == "iotlb_invalidate":
            hit += node["total_cycles"] * 4
            node["total_cycles"] += hit
        elif hit:
            node["total_cycles"] += hit
        return hit

    grow(tree)
    return mutated


def test_gate_writes_diff_artifact_naming_the_hot_path(tmp_path, capsys):
    baseline = load_record(str(BASELINE))
    current = _inject_regression(baseline)
    regressions = compare_records(baseline, current)
    assert regressions
    assert {reg.figure for reg in regressions} == {"fig03"}

    rc = gate_against_baseline(str(BASELINE), current,
                               out_dir=str(tmp_path))
    assert rc == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    artifact = tmp_path / "diff_fig03.md"
    assert str(artifact) in out
    assert artifact.exists()
    text = artifact.read_text()
    # The top-ranked span growth names the injected hot path.
    verdict = next(line for line in text.splitlines()
                   if "**Verdict**" in line)
    assert "iotlb_invalidate" in verdict
    assert "identity-strict" in verdict


def test_passing_gate_writes_nothing(tmp_path, capsys):
    baseline = load_record(str(BASELINE))
    rc = gate_against_baseline(str(BASELINE), copy.deepcopy(baseline),
                               out_dir=str(tmp_path))
    assert rc == 0
    assert "PASS" in capsys.readouterr().out
    assert list(tmp_path.iterdir()) == []


def test_write_gate_diffs_one_artifact_per_regressed_figure(tmp_path):
    baseline = load_record(str(BASELINE))
    current = _inject_regression(baseline)
    regressions = compare_records(baseline, current)
    written = write_gate_diffs(baseline, current, regressions,
                               str(tmp_path))
    assert [Path(p).name for p in written] == ["diff_fig03.md"]
