"""Observability context tests: enable switch, phases, machine wiring."""

from repro.hw.machine import Machine
from repro.obs.context import NULL_OBS, Observability
from repro.obs.trace import EV_PHASE, NullTracer, RingTracer


def test_null_context_is_disabled():
    obs = Observability.null()
    assert obs.enabled is False
    assert isinstance(obs.tracer, NullTracer)
    # Phase calls through a disabled context record nothing.
    obs.phase_begin("warmup", 0)
    obs.phase_end(100)
    assert obs.phases == []


def test_null_tracer_forces_disabled():
    # Even with enabled=True, a NullTracer cannot capture anything.
    obs = Observability(tracer=NullTracer(), enabled=True)
    assert obs.enabled is False


def test_capture_context_is_enabled():
    obs = Observability.capture(trace_capacity=128)
    assert obs.enabled is True
    assert isinstance(obs.tracer, RingTracer)
    assert obs.tracer.capacity == 128


def test_phase_lifecycle_and_events():
    obs = Observability.capture()
    obs.phase_begin("warmup", 100)
    obs.phase_end(300, busy_cycles=150, breakdown={"copy": 90})
    obs.phase_begin("measure", 300)
    obs.phase_end(1000, busy_cycles=600)
    warm, measure = obs.phases
    assert (warm.name, warm.wall_cycles, warm.busy_cycles) == ("warmup",
                                                               200, 150)
    assert warm.breakdown == {"copy": 90}
    assert (measure.name, measure.wall_cycles) == ("measure", 700)
    # Begin/end edges land in the trace.
    edges = [(ev.data["name"], ev.data["edge"])
             for ev in obs.tracer.events(EV_PHASE)]
    assert edges == [("warmup", "begin"), ("warmup", "end"),
                     ("measure", "begin"), ("measure", "end")]


def test_phase_begin_closes_open_phase():
    obs = Observability.capture()
    obs.phase_begin("warmup", 0)
    obs.phase_begin("measure", 500)  # implicit end of warmup
    assert obs.phases[0].end == 500
    obs.phase_end(900)
    obs.phase_end(999)  # double end is a no-op
    assert obs.phases[1].end == 900


def test_machine_defaults_to_shared_null_context():
    machine = Machine.build(cores=1, numa_nodes=1)
    assert machine.obs is NULL_OBS
    traced = Machine.build(cores=1, numa_nodes=1,
                           obs=Observability.capture())
    assert traced.obs.enabled
