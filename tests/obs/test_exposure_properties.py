"""Property tests: exposure accounting under adversarial interleavings.

The accountant sees map/unmap/invalidate/dma_map/dma_unmap events in
whatever order two racing cores produce them — including the awkward
ones (invalidation completing before the unmap that would have made a
page stale, double invalidations, dma_unmap with no matching dma_map).
Whatever the interleaving:

* exposure integrals never go negative and never decrease;
* ``dedicated`` pages (shadow pool, descriptor rings) contribute
  neither stale-window nor granularity-excess byte·cycles;
* a global invalidation leaves no stale page behind.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.exposure import (
    KIND_DEDICATED,
    KIND_OS,
    PAGE_SHIFT,
    PAGE_SIZE,
    ExposureAccountant,
)

_DOMAIN = 1
_DEVICE = 0x10

_OPS = ("map", "unmap", "dma_map", "dma_unmap", "inv_pages", "inv_all")


@st.composite
def event_soups(draw):
    """Arbitrary event sequences with monotonic timestamps."""
    n = draw(st.integers(min_value=5, max_value=60))
    events = []
    t = 0
    for _ in range(n):
        t += draw(st.integers(min_value=1, max_value=100))
        events.append((
            draw(st.sampled_from(_OPS)),
            t,
            draw(st.integers(min_value=0, max_value=7)),   # page
            draw(st.booleans()),                           # cached?
        ))
    return events


def _apply(acct, kind, op, t, page, cached):
    iova = page << PAGE_SHIFT
    if op == "map":
        acct.note_map_range(t, _DOMAIN, _DEVICE, iova, PAGE_SIZE,
                            kind=kind)
    elif op == "unmap":
        acct.note_unmap_range(t, _DOMAIN, iova, PAGE_SIZE,
                              cached_pages={page} if cached else set())
    elif op == "dma_map":
        # Sub-page mapping: leaves page-rounding excess on OS pages.
        acct.note_dma_map(t, "test", _DOMAIN, iova + 128, 512)
    elif op == "dma_unmap":
        acct.note_dma_unmap(t, "test", _DOMAIN, iova + 128, 512)
    elif op == "inv_pages":
        acct.note_invalidate_pages(t, _DOMAIN, page, 1)
    elif op == "inv_all":
        acct.note_invalidate_all(t)


@given(events=event_soups())
@settings(max_examples=150, deadline=None)
def test_exposure_integrals_never_negative_and_monotonic(events):
    acct = ExposureAccountant()
    prev_stale = prev_excess = 0
    for op, t, page, cached in events:
        _apply(acct, KIND_OS, op, t, page, cached)
        summary = acct.summary()
        for key in ("stale_byte_cycles", "stale_windows",
                    "stale_peak_window_cycles",
                    "granularity_excess_byte_cycles",
                    "peak_excess_bytes", "peak_surface_bytes",
                    "stale_open_pages", "live_mappings"):
            assert summary[key] >= 0, (key, op, t, page)
        # The integrals only ever accumulate.
        assert summary["stale_byte_cycles"] >= prev_stale
        assert summary["granularity_excess_byte_cycles"] >= prev_excess
        prev_stale = summary["stale_byte_cycles"]
        prev_excess = summary["granularity_excess_byte_cycles"]


@given(events=event_soups())
@settings(max_examples=150, deadline=None)
def test_dedicated_pages_contribute_no_exposure(events):
    acct = ExposureAccountant()
    for op, t, page, cached in events:
        _apply(acct, KIND_DEDICATED, op, t, page, cached)
    summary = acct.summary()
    assert summary["stale_byte_cycles"] == 0
    assert summary["granularity_excess_byte_cycles"] == 0
    assert summary["peak_excess_bytes"] == 0


@st.composite
def two_core_interleavings(draw):
    """Two cores' page lifecycles, merged in an arbitrary interleave.

    Core 0 works OS pages 0..2, core 1 dedicated pages 4..6; each page
    runs the full map → dma_map → dma_unmap → unmap(cached) →
    invalidate lifecycle in order, but the merge order across cores —
    and thus whether core 1's invalidation lands between core 0's unmap
    and invalidation — is up to hypothesis.
    """
    scripts = []
    for core, (base, kind) in enumerate(((0, KIND_OS),
                                         (4, KIND_DEDICATED))):
        npages = draw(st.integers(min_value=1, max_value=3))
        script = []
        for page in range(base, base + npages):
            script.extend([("map", page, kind), ("dma_map", page, kind),
                           ("dma_unmap", page, kind),
                           ("unmap", page, kind),
                           ("inv_pages", page, kind)])
        scripts.append(script)
    merged = []
    pending = [list(reversed(s)) for s in scripts]
    while any(pending):
        choices = [i for i, s in enumerate(pending) if s]
        pick = draw(st.sampled_from(choices))
        merged.append(pending[pick].pop())
    return merged


@given(merged=two_core_interleavings())
@settings(max_examples=150, deadline=None)
def test_interleaved_lifecycles_window_accounting_is_exact(merged):
    acct = ExposureAccountant()
    t = 0
    expected = 0
    released_at = {}
    for op, page, kind in merged:
        t += 10
        _apply(acct, kind, op, t, page, cached=True)
        if op == "dma_unmap":
            released_at[page] = t
        elif op == "inv_pages" and kind == KIND_OS:
            # The page went stale at its unmap with release stamped at
            # dma_unmap's return; the window closes here.
            expected += (t - released_at[page]) * PAGE_SIZE
    summary = acct.summary()
    assert summary["stale_byte_cycles"] == expected
    assert summary["stale_open_pages"] == 0
    assert summary["live_mappings"] == 0
    # A trailing global flush is idempotent: nothing left to close.
    acct.note_invalidate_all(t + 1000)
    assert acct.summary()["stale_byte_cycles"] == expected
