"""The unified benchmark runner behind ``python -m repro bench``.

Two layers live here:

1. **Sweep helpers** (``stream_sweep``, ``rr_sweep``, ``relative``,
   ``save_report``, ``save_csv``) — shared by the per-figure
   ``benchmarks/bench_fig*.py`` scripts, which import them through the
   ``benchmarks/common.py`` shim exactly as before.
2. **The figure registry + runner** — every figure/table of the paper as
   a :class:`FigureSpec` that runs at a selectable scale
   (:data:`QUICK_SCALE` / :data:`FULL_SCALE`), captures span-attribution
   trees per scheme, and feeds one fingerprinted record
   (:mod:`repro.bench.record`) plus the optional regression gate
   (:mod:`repro.bench.regression`).

Every run in the registry executes under a capturing
:class:`~repro.obs.context.Observability`; the zero-overhead guarantee
(``tests/obs/test_zero_overhead.py``) means the numbers are identical to
an uninstrumented run, so span capture is unconditionally on here.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.context import Observability
from repro.obs.spans import SpanNode, merge_span_trees
from repro.stats.export import result_to_row, write_csv
from repro.stats.reporting import (
    render_breakdown_table,
    render_latency_table,
    render_memcached_table,
    render_throughput_table,
)
from repro.stats.results import RunResult
from repro.stats.timeline import render_span_tree
from repro.workloads.memcached import MemcachedConfig, run_memcached
from repro.workloads.netperf import (
    PAPER_MESSAGE_SIZES,
    RRConfig,
    StreamConfig,
    run_tcp_rr,
    run_tcp_stream_rx,
    run_tcp_stream_tx,
)
from repro.workloads.storage import StorageConfig, run_storage

#: The four systems of the paper's figures, in the legend's order.
FIGURE_SCHEMES = ("no-iommu", "copy", "identity-deferred", "identity-strict")

#: Work per configuration for the legacy per-figure scripts.  Sized for
#: steady state at tolerable runtime; override through the environment.
UNITS_SINGLE_CORE = int(os.environ.get("REPRO_BENCH_UNITS", "1200"))
UNITS_MULTI_CORE = int(os.environ.get("REPRO_BENCH_UNITS_MC", "350"))
WARMUP = 120

#: Ring capacity for bench-mode capture.  Spans and metrics aggregate in
#: place; the event ring is only kept small and warm so record extras
#: stay cheap.
_TRACE_CAPACITY = 256


def default_results_dir() -> str:
    """Where reports/records land: ``$REPRO_BENCH_RESULTS`` or
    ``benchmarks/results`` under the current directory."""
    return (os.environ.get("REPRO_BENCH_RESULTS")
            or os.path.join(os.getcwd(), "benchmarks", "results"))


def save_report(name: str, text: str,
                results_dir: Optional[str] = None) -> str:
    out = results_dir or default_results_dir()
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return path


def save_csv(name: str, results,
             results_dir: Optional[str] = None) -> str:
    """Write the raw RunResults behind a figure as CSV (for plotting).

    Accepts a dict of scheme -> [RunResult] (figure sweeps), a dict of
    scheme -> RunResult (breakdowns/bars), or a flat list.
    """
    flat = _flatten(results)
    out = results_dir or default_results_dir()
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, f"{name}.csv")
    write_csv(flat, path)
    return path


def _flatten(results) -> List[RunResult]:
    flat: List[RunResult] = []
    if isinstance(results, dict):
        for value in results.values():
            flat.extend(value if isinstance(value, list) else [value])
    else:
        flat = list(results)
    return flat


def stream_sweep(direction: str, cores: int,
                 schemes: Sequence[str] = FIGURE_SCHEMES,
                 sizes: Sequence[int] = PAPER_MESSAGE_SIZES,
                 **config_kwargs) -> Dict[str, List[RunResult]]:
    """Run a Figure 3/4/6/7-style sweep: schemes × message sizes."""
    units = UNITS_SINGLE_CORE if cores == 1 else UNITS_MULTI_CORE
    runner = run_tcp_stream_rx if direction == "rx" else run_tcp_stream_tx
    results: Dict[str, List[RunResult]] = {}
    for scheme in schemes:
        results[scheme] = [
            runner(StreamConfig(scheme=scheme, direction=direction,
                                message_size=size, cores=cores,
                                units_per_core=units, warmup_units=WARMUP,
                                **config_kwargs))
            for size in sizes
        ]
    return results


def rr_sweep(schemes: Sequence[str] = FIGURE_SCHEMES,
             sizes: Sequence[int] = PAPER_MESSAGE_SIZES,
             transactions: int = 300) -> Dict[str, List[RunResult]]:
    """Run the Figure 9/10 request/response sweep."""
    return {
        scheme: [run_tcp_rr(RRConfig(scheme=scheme, message_size=size,
                                     transactions=transactions,
                                     warmup_transactions=40))
                 for size in sizes]
        for scheme in schemes
    }


def relative(results: Dict[str, List[RunResult]], scheme: str, size: int,
             baseline: str = "no-iommu", what: str = "throughput") -> float:
    """Relative throughput/CPU of ``scheme`` at ``size`` vs ``baseline``."""
    def at(s):
        for r in results[s]:
            if r.params["message_size"] == size:
                return r
        raise KeyError(size)

    a, b = at(scheme), at(baseline)
    if what == "throughput":
        return a.throughput_gbps / b.throughput_gbps if b.throughput_gbps else 0
    return a.cpu_utilization / b.cpu_utilization if b.cpu_utilization else 0


def run_once(benchmark, fn: Callable[[], object]):
    """Execute a sweep exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Scales: how much work each registry figure does.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchScale:
    """One sizing preset for the figure registry."""

    name: str
    units_single: int
    units_multi: int
    warmup_single: int
    warmup_multi: int
    multi_cores: int
    sizes_single: Tuple[int, ...]
    sizes_multi: Tuple[int, ...]
    breakdown_size: int
    rr_sizes: Tuple[int, ...]
    rr_transactions: int
    rr_warmup: int
    memcached_cores: int
    memcached_tpc: int
    memcached_warmup: int
    storage_block_sizes: Tuple[int, ...]
    storage_ops: int
    storage_warmup: int
    #: Core counts for the scalable-invalidation figure (fig_scalinv).
    scalinv_cores: Tuple[int, ...] = (1, 2)


#: ``--quick``: every figure in miniature; the whole registry plus the
#: invariant checks fits the <60 s smoke budget (``benchmarks/smoke.py``).
QUICK_SCALE = BenchScale(
    name="quick",
    units_single=200, units_multi=50,
    warmup_single=40, warmup_multi=15,
    multi_cores=16,
    sizes_single=(1024, 16384, 65536),
    sizes_multi=(16384,),
    breakdown_size=65536,
    rr_sizes=(1024, 65536),
    rr_transactions=60, rr_warmup=10,
    memcached_cores=8, memcached_tpc=40, memcached_warmup=10,
    storage_block_sizes=(4096, 65536),
    storage_ops=100, storage_warmup=20,
    scalinv_cores=(1, 4, 16),
)

#: ``--full``: the sizes the per-figure scripts use for the paper tables.
FULL_SCALE = BenchScale(
    name="full",
    units_single=1200, units_multi=350,
    warmup_single=120, warmup_multi=120,
    multi_cores=16,
    sizes_single=PAPER_MESSAGE_SIZES,
    sizes_multi=PAPER_MESSAGE_SIZES,
    breakdown_size=65536,
    rr_sizes=PAPER_MESSAGE_SIZES,
    rr_transactions=300, rr_warmup=40,
    memcached_cores=16, memcached_tpc=450, memcached_warmup=100,
    storage_block_sizes=(4096, 65536, 262144),
    storage_ops=400, storage_warmup=60,
    scalinv_cores=(1, 2, 4, 8, 16, 32, 64),
)


# ----------------------------------------------------------------------
# Captured runs: every registry run records spans.
# ----------------------------------------------------------------------
def _captured(runner: Callable, config) -> Tuple[RunResult, SpanNode]:
    obs = Observability.capture(trace_capacity=_TRACE_CAPACITY)
    config.obs = obs
    result = runner(config)
    return result, obs.spans.tree()


def _series_rows(figure: str,
                 results: Dict[str, List[RunResult]]) -> List[dict]:
    rows = []
    for per_scheme in results.values():
        for result in per_scheme:
            row = result_to_row(result)
            row["figure"] = figure
            rows.append(row)
    return rows


@dataclass(frozen=True)
class FigureSpec:
    """One registry entry: a named figure and how to run it."""

    name: str
    title: str
    build: Callable[[BenchScale], dict]


def _figure_data(spec_name: str, title: str,
                 results: Dict[str, List[RunResult]],
                 spans: Dict[str, SpanNode], report: str) -> dict:
    return {
        "title": title,
        "series": _series_rows(spec_name, results),
        "spans": {scheme: tree.to_dict() for scheme, tree in spans.items()},
        "report": report,
    }


def _stream_figure(name: str, title: str, direction: str,
                   multi: bool, breakdown: bool = False) -> FigureSpec:
    def build(scale: BenchScale) -> dict:
        cores = scale.multi_cores if multi else 1
        units = scale.units_multi if multi else scale.units_single
        warmup = scale.warmup_multi if multi else scale.warmup_single
        if breakdown:
            sizes: Tuple[int, ...] = (scale.breakdown_size,)
        else:
            sizes = scale.sizes_multi if multi else scale.sizes_single
        runner = run_tcp_stream_rx if direction == "rx" \
            else run_tcp_stream_tx
        results: Dict[str, List[RunResult]] = {}
        spans: Dict[str, SpanNode] = {}
        for scheme in FIGURE_SCHEMES:
            runs, trees = [], []
            for size in sizes:
                result, tree = _captured(runner, StreamConfig(
                    scheme=scheme, direction=direction, message_size=size,
                    cores=cores, units_per_core=units, warmup_units=warmup))
                runs.append(result)
                trees.append(tree)
            results[scheme] = runs
            spans[scheme] = merge_span_trees(trees)
        if breakdown:
            report = render_breakdown_table(
                {s: rs[0] for s, rs in results.items()}, title=title)
        else:
            report = render_throughput_table(results, title=title)
        return _figure_data(name, title, results, spans, report)

    return FigureSpec(name=name, title=title, build=build)


def _fig01_build(scale: BenchScale) -> dict:
    """Protection cost overview: RX at 16 KB on 1 and N cores."""
    results: Dict[str, List[RunResult]] = {}
    spans: Dict[str, SpanNode] = {}
    for scheme in FIGURE_SCHEMES:
        runs, trees = [], []
        for cores in (1, scale.multi_cores):
            units = scale.units_single if cores == 1 else scale.units_multi
            warmup = (scale.warmup_single if cores == 1
                      else scale.warmup_multi)
            result, tree = _captured(run_tcp_stream_rx, StreamConfig(
                scheme=scheme, message_size=16384, cores=cores,
                units_per_core=units, warmup_units=warmup))
            runs.append(result)
            trees.append(tree)
        results[scheme] = runs
        spans[scheme] = merge_span_trees(trees)
    lines = [_FIG01_TITLE,
             f"  {'scheme':<20}{'cores':>6}{'Gb/s':>10}{'us/unit':>10}"]
    for scheme, runs in results.items():
        for result in runs:
            lines.append(f"  {scheme:<20}{result.cores:>6}"
                         f"{result.throughput_gbps:>10.2f}"
                         f"{result.us_per_unit:>10.3f}")
    return _figure_data("fig01", _FIG01_TITLE, results, spans,
                        "\n".join(lines))


_FIG01_TITLE = "Figure 1: IOMMU protection cost, RX 16KB, 1 vs N cores"


def _fig09_build(scale: BenchScale) -> dict:
    results: Dict[str, List[RunResult]] = {}
    spans: Dict[str, SpanNode] = {}
    for scheme in FIGURE_SCHEMES:
        runs, trees = [], []
        for size in scale.rr_sizes:
            result, tree = _captured(run_tcp_rr, RRConfig(
                scheme=scheme, message_size=size,
                transactions=scale.rr_transactions,
                warmup_transactions=scale.rr_warmup))
            runs.append(result)
            trees.append(tree)
        results[scheme] = runs
        spans[scheme] = merge_span_trees(trees)
    report = render_latency_table(
        results, title="Figure 9: TCP_RR latency (netperf TCP_RR)")
    return _figure_data("fig09", "Figure 9: TCP_RR latency",
                        results, spans, report)


def _fig10_build(scale: BenchScale) -> dict:
    results: Dict[str, List[RunResult]] = {}
    spans: Dict[str, SpanNode] = {}
    for scheme in FIGURE_SCHEMES:
        result, tree = _captured(run_tcp_rr, RRConfig(
            scheme=scheme, message_size=scale.breakdown_size,
            transactions=scale.rr_transactions,
            warmup_transactions=scale.rr_warmup))
        results[scheme] = [result]
        spans[scheme] = tree
    report = render_breakdown_table(
        {s: rs[0] for s, rs in results.items()},
        title="Figure 10: TCP_RR CPU breakdown per transaction [us], 64KB")
    return _figure_data("fig10", "Figure 10: TCP_RR CPU breakdown",
                        results, spans, report)


def _fig11_build(scale: BenchScale) -> dict:
    results: Dict[str, List[RunResult]] = {}
    spans: Dict[str, SpanNode] = {}
    for scheme in FIGURE_SCHEMES:
        result, tree = _captured(run_memcached, MemcachedConfig(
            scheme=scheme, cores=scale.memcached_cores,
            transactions_per_core=scale.memcached_tpc,
            warmup_transactions=scale.memcached_warmup))
        results[scheme] = [result]
        spans[scheme] = tree
    report = render_memcached_table(
        {s: rs[0] for s, rs in results.items()},
        title="Figure 11: memcached + memslap")
    return _figure_data("fig11", "Figure 11: memcached",
                        results, spans, report)


def _storage_build(scale: BenchScale) -> dict:
    results: Dict[str, List[RunResult]] = {}
    spans: Dict[str, SpanNode] = {}
    for scheme in FIGURE_SCHEMES:
        runs, trees = [], []
        for block_size in scale.storage_block_sizes:
            result, tree = _captured(run_storage, StorageConfig(
                scheme=scheme, block_size=block_size,
                ops_per_core=scale.storage_ops,
                warmup_ops=scale.storage_warmup))
            runs.append(result)
            trees.append(tree)
        results[scheme] = runs
        spans[scheme] = merge_span_trees(trees)
    lines = ["Storage (§5.5): block I/O ops/s by block size",
             f"  {'scheme':<20}{'block':>8}{'ops/s':>12}{'Gb/s':>10}"]
    for scheme, runs in results.items():
        for result in runs:
            tps = result.transactions_per_sec or 0.0
            lines.append(
                f"  {scheme:<20}{result.params['block_size']:>8}"
                f"{tps:>12,.0f}{result.throughput_gbps:>10.2f}")
    return _figure_data("storage", "Storage block I/O", results, spans,
                        "\n".join(lines))


#: Schemes of the scalable-invalidation figure: the paper's strict
#: baseline, the three post-2016 remedies, and copy — the contenders in
#: "can smart zero-copy beat copy?".
SCALINV_SCHEMES = ("identity-strict", "identity-strict-percore",
                   "identity-strict-prefetch", "identity-deferred-bounded",
                   "copy")

_FIG_SCALINV_TITLE = ("Scalable invalidation: strict vs per-core queues "
                      "vs copy, RX 16KB core sweep")


def _fig_scalinv_build(scale: BenchScale) -> dict:
    """Strict vs the scalable-invalidation schemes vs copy, across cores.

    Exposure columns ride along in the series rows (the capturing
    observability is on for every registry run), so the record gates
    both sides of the trade: throughput scaling *and* stale-window
    byte·cycles per remedy.
    """
    results: Dict[str, List[RunResult]] = {}
    spans: Dict[str, SpanNode] = {}
    for scheme in SCALINV_SCHEMES:
        runs, trees = [], []
        for cores in scale.scalinv_cores:
            units = scale.units_single if cores == 1 else scale.units_multi
            warmup = (scale.warmup_single if cores == 1
                      else scale.warmup_multi)
            result, tree = _captured(run_tcp_stream_rx, StreamConfig(
                scheme=scheme, message_size=16384, cores=cores,
                units_per_core=units, warmup_units=warmup))
            runs.append(result)
            trees.append(tree)
        results[scheme] = runs
        spans[scheme] = merge_span_trees(trees)
    lines = [_FIG_SCALINV_TITLE,
             f"  {'scheme':<28}{'cores':>6}{'Gb/s':>10}{'us/unit':>10}"
             f"{'stale byte-cycles':>20}"]
    for scheme, runs in results.items():
        for result in runs:
            exposure = result.extras.get("exposure") or {}
            stale = exposure.get("stale_byte_cycles", 0)
            lines.append(f"  {scheme:<28}{result.cores:>6}"
                         f"{result.throughput_gbps:>10.2f}"
                         f"{result.us_per_unit:>10.3f}"
                         f"{stale:>20,}")
    return _figure_data("fig_scalinv", _FIG_SCALINV_TITLE, results, spans,
                        "\n".join(lines))


def _fleet_build(scale: BenchScale) -> dict:
    # Lazy import: repro.bench.fleet imports this module's helpers.
    from repro.bench.fleet import build_fleet_figure
    return build_fleet_figure()


#: The registry, in the paper's figure order.
FIGURES: Tuple[FigureSpec, ...] = (
    FigureSpec("fig01", _FIG01_TITLE, _fig01_build),
    _stream_figure("fig03", "Figure 3: single-core TCP RX",
                   "rx", multi=False),
    _stream_figure("fig04", "Figure 4: single-core TCP TX",
                   "tx", multi=False),
    _stream_figure("fig05", "Figure 5: single-core RX breakdown [us], 64KB",
                   "rx", multi=False, breakdown=True),
    _stream_figure("fig06", "Figure 6: 16-core TCP RX", "rx", multi=True),
    _stream_figure("fig07", "Figure 7: 16-core TCP TX", "tx", multi=True),
    _stream_figure("fig08", "Figure 8: 16-core RX breakdown [us], 64KB",
                   "rx", multi=True, breakdown=True),
    FigureSpec("fig09", "Figure 9: TCP_RR latency", _fig09_build),
    FigureSpec("fig10", "Figure 10: TCP_RR CPU breakdown", _fig10_build),
    FigureSpec("fig11", "Figure 11: memcached", _fig11_build),
    FigureSpec("storage", "Storage block I/O", _storage_build),
    FigureSpec("fleet", "Fleet capacity at the SLO", _fleet_build),
    FigureSpec("fig_scalinv", _FIG_SCALINV_TITLE, _fig_scalinv_build),
)

FIGURE_NAMES = tuple(spec.name for spec in FIGURES)


def select_figures(only: Optional[Sequence[str]]) -> List[FigureSpec]:
    """Resolve ``--only`` selections against the registry (fail fast)."""
    if not only:
        return list(FIGURES)
    by_name = {spec.name: spec for spec in FIGURES}
    unknown = [name for name in only if name not in by_name]
    if unknown:
        raise SystemExit(
            f"error: unknown figure(s) {', '.join(unknown)}; "
            f"choices: {', '.join(FIGURE_NAMES)}")
    return [by_name[name] for name in only]


def _figure_sim_cycles(figure: dict) -> int:
    """Total simulated cycles behind one figure's series rows."""
    return sum(int(row.get("wall_cycles") or 0)
               for row in figure.get("series", ()))


def _throughput_entry(sim_cycles: int, wall_seconds: float) -> dict:
    rate = sim_cycles / wall_seconds if wall_seconds > 0 else 0.0
    return {
        "sim_cycles": sim_cycles,
        "wall_seconds": round(wall_seconds, 3),
        "sim_cycles_per_wall_second": round(rate),
    }


def _build_worker(task: Tuple[str, BenchScale]) -> Tuple[str, dict, float]:
    """Top-level (hence picklable) per-process worker: build one figure.

    The build is timed inside the worker so per-figure wall seconds mean
    the same thing at any ``--jobs`` count.
    """
    name, scale = task
    spec = next(spec for spec in FIGURES if spec.name == name)
    t0 = time.perf_counter()
    data = spec.build(scale)
    return name, data, time.perf_counter() - t0


def build_figures(specs: Sequence[FigureSpec], scale: BenchScale,
                  jobs: int = 1, label: str = "bench",
                  ) -> Tuple[Dict[str, dict], Dict[str, dict]]:
    """Build every figure, timed — THE shared timed-run helper behind
    ``bench`` and ``report`` (one implementation, so the two progress/
    timing paths cannot drift).

    Figures are independent, so ``jobs > 1`` simply distributes specs
    over worker processes; results are merged back **in spec order**,
    making both return values deterministic regardless of job count.
    Returns ``(figures, throughput)``: the per-figure record data plus a
    ``sim_cycles_per_wall_second`` entry per figure and ``"overall"``
    (summed figure build times, not makespan — comparable across job
    counts).
    """
    if jobs < 1:
        raise SystemExit(f"error: jobs must be positive: {jobs}")
    titles = {spec.name: spec.title for spec in specs}
    built: Dict[str, Tuple[dict, float]] = {}

    def note(name: str, data: dict, elapsed: float) -> None:
        built[name] = (data, elapsed)
        print(f"[{label}] {name:<8} {titles[name]:<50} "
              f"{elapsed:6.1f}s", file=sys.stderr)

    if jobs > 1 and len(specs) > 1:
        tasks = [(spec.name, scale) for spec in specs]
        with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
            for name, data, elapsed in pool.map(_build_worker, tasks):
                note(name, data, elapsed)
    else:
        for spec in specs:
            t0 = time.perf_counter()
            data = spec.build(scale)
            note(spec.name, data, time.perf_counter() - t0)

    figures = {spec.name: built[spec.name][0] for spec in specs}
    throughput: Dict[str, dict] = {}
    total_sim, total_wall = 0, 0.0
    for spec in specs:
        data, elapsed = built[spec.name]
        sim = _figure_sim_cycles(data)
        total_sim += sim
        total_wall += elapsed
        throughput[spec.name] = _throughput_entry(sim, elapsed)
    throughput["overall"] = _throughput_entry(total_sim, total_wall)
    return figures, throughput


def run_bench(mode: str = "quick", only: Optional[Sequence[str]] = None,
              baseline: Optional[str] = None,
              out_dir: Optional[str] = None, jobs: int = 1) -> int:
    """Run the registry, write the record + report, optionally gate.

    ``jobs`` shards the figure matrix across processes; the merged
    record is byte-stable regardless of job count (modulo the timestamp
    and the wall-clock throughput fields).  Returns the process exit
    status: 0 on success, 1 when the baseline comparison found a
    regression.
    """
    # Imported here to keep the module importable without a cycle once
    # record/regression need runner metadata.
    from repro.bench.record import build_record, write_record
    from repro.bench.regression import gate_against_baseline

    scale = {"quick": QUICK_SCALE, "full": FULL_SCALE}.get(mode)
    if scale is None:
        raise SystemExit(f"error: unknown bench mode {mode!r}")
    if baseline is not None and not os.path.exists(baseline):
        raise SystemExit(f"error: baseline record not found: {baseline}")
    specs = select_figures(only)
    out = out_dir or default_results_dir()

    started = time.perf_counter()
    figures, throughput = build_figures(specs, scale, jobs=jobs,
                                        label="bench")
    record = build_record(mode=scale.name, figures=figures,
                          schemes=FIGURE_SCHEMES, throughput=throughput)
    json_path, md_path = write_record(record, out)
    rate = throughput["overall"]["sim_cycles_per_wall_second"]
    print(f"[bench] {len(specs)} figures in "
          f"{time.perf_counter() - started:.1f}s (jobs={jobs}, "
          f"{rate:,} sim cycles/s)")
    print(f"[bench] record : {json_path}")
    print(f"[bench] report : {md_path}")

    if baseline is not None:
        return gate_against_baseline(baseline, record, out_dir=out)
    return 0


def render_figure_spans(figure: dict, scheme: str) -> str:
    """Render one scheme's attribution tree from a figure's record data."""
    tree = figure.get("spans", {}).get(scheme)
    if tree is None:
        return f"(no spans recorded for {scheme})"
    return render_span_tree(SpanNode.from_dict(tree))
