"""Fleet capacity search: ``python -m repro fleet``.

The paper reports throughput at fixed offered load; the ROADMAP's north
star wants the inverse — **max sustained users at an SLO** — so this
module runs a deterministic capacity search per scheme: bracket the
knee by doubling the user population until the
:class:`~repro.obs.slo.SloRecorder` reports a breached window, then
bisect the bracket down to a relative tolerance.  Every evaluation is
one independent :func:`repro.workloads.fleet.run_fleet` simulation
under a capturing :class:`~repro.obs.context.Observability`, so the
whole search is reproducible bit-for-bit; "sustained" means *zero*
breached windows across the measured diurnal trace.

Schemes are independent, so ``--jobs N`` fans them over worker
processes exactly like ``repro scale`` (top-level picklable worker,
results merged in scheme order) — the written record is byte-identical
at any job count once the host-dependent fields are stripped
(:func:`repro.bench.record.stable_view`), which
``tests/bench/test_fleet.py`` asserts.

Artifacts land under fixed names so CI globs stay trivial:

* ``fleet.json``   — capacity record (bench-record envelope + curves);
* ``fleet.md``     — the human-facing capacity report;
* ``fleet_windows.jsonl`` — one JSON line per SLO window at the
  capacity point and at the first failing point, per scheme;
* ``fleet_<scheme>.trace.json`` — a Perfetto trace of the first
  failing point, whose ``slo.p99_window`` / ``slo.burn_rate`` counter
  tracks show the objective being lost in real (simulated) time.
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.record import SCHEMA_VERSION, build_record
from repro.bench.runner import (
    _throughput_entry,
    _TRACE_CAPACITY,
    default_results_dir,
)
from repro.bench.scale import resolve_schemes
from repro.obs.context import Observability
from repro.obs.perfetto import perfetto_trace
from repro.obs.slo import SloObjective
from repro.stats.export import result_to_row
from repro.workloads.fleet import FleetConfig, run_fleet

#: Default search pair: the paper's verdict ("copy beats zero-copy under
#: protection") re-asked as capacity.
DEFAULT_FLEET_SCHEMES = ("identity-strict", "copy")

#: Requests kept in the Perfetto export of the failing point.
_TRACE_MAX_REQUESTS = 64


@dataclass(frozen=True)
class FleetSizing:
    """One capacity-search preset: run length, bracket, and objective."""

    name: str
    cores: int
    duration_us: float
    warmup_us: float
    #: Bracket start and how many doublings/halvings to try before
    #: declaring the search saturated.
    start_users: int
    max_doublings: int
    #: Bisection stops when ``hi - lo <= max(1, lo * rel_tol)``.
    rel_tol: float
    #: SLO objective parameters (see :class:`repro.obs.slo.SloObjective`).
    p99_objective_us: float
    availability: float
    window_us: float
    timeout_us: float


#: CI smoke sizing: two schemes to capacity in well under a minute.
QUICK_FLEET = FleetSizing(
    name="quick", cores=2, duration_us=2000.0, warmup_us=300.0,
    start_users=1_000_000, max_doublings=5, rel_tol=0.125,
    p99_objective_us=60.0, availability=0.999, window_us=200.0,
    timeout_us=240.0)

#: Report sizing: longer diurnal trace, tighter bisection.
FULL_FLEET = FleetSizing(
    name="full", cores=4, duration_us=4000.0, warmup_us=500.0,
    start_users=1_000_000, max_doublings=7, rel_tol=0.0625,
    p99_objective_us=60.0, availability=0.999, window_us=200.0,
    timeout_us=240.0)

#: Bench-registry sizing: a coarse search cheap enough for the quick
#: figure matrix while still landing gated capacity columns.
FIGURE_FLEET = FleetSizing(
    name="figure", cores=2, duration_us=1200.0, warmup_us=200.0,
    start_users=1_000_000, max_doublings=4, rel_tol=0.25,
    p99_objective_us=60.0, availability=0.999, window_us=200.0,
    timeout_us=240.0)

FLEET_SIZINGS = {"quick": QUICK_FLEET, "full": FULL_FLEET}


def fleet_objective(sizing: FleetSizing) -> SloObjective:
    return SloObjective(p99_us=sizing.p99_objective_us,
                        availability=sizing.availability,
                        window_us=sizing.window_us,
                        timeout_us=sizing.timeout_us)


# ----------------------------------------------------------------------
# One evaluation = one fleet run at a fixed user population.
# ----------------------------------------------------------------------
def _eval_point(scheme: str, users: int, sizing: FleetSizing,
                with_trace: bool = False) -> Dict[str, object]:
    """Run the fleet at ``users`` and flatten the SLO verdict."""
    obs = Observability.capture(trace_capacity=_TRACE_CAPACITY)
    result = run_fleet(FleetConfig(
        scheme=scheme, cores=sizing.cores, users=users,
        duration_us=sizing.duration_us, warmup_us=sizing.warmup_us,
        objective=fleet_objective(sizing), obs=obs))
    slo = result.extras["slo"]
    point: Dict[str, object] = {
        "users": users,
        "sustained": slo["breach_windows"] == 0,
        "windows": slo["windows"],
        "breach_windows": slo["breach_windows"],
        "worst_p99_us": slo["worst_p99_us"],
        "min_availability": slo["min_availability"],
        "max_burn_rate": slo["max_burn_rate"],
        "drops": slo["drops"],
        "timeouts": slo["timeouts"],
        "completions": slo["completions"],
        "row": result_to_row(result),
        "window_rows": list(obs.slo.windows),
        "forensics": slo["forensics"],
        "spans": obs.spans.tree().to_dict(),
    }
    if with_trace:
        point["trace"] = perfetto_trace(obs,
                                        max_requests=_TRACE_MAX_REQUESTS)
    return point


def search_capacity(scheme: str, sizing: FleetSizing,
                    with_trace: bool = False) -> Dict[str, object]:
    """Bracket + bisect the max sustained user population.

    Purely integer arithmetic over deterministic evaluations, so the
    search path — and therefore the record — is identical on every
    host and at every job count.
    """
    evaluated: Dict[int, Dict[str, object]] = {}
    order: List[int] = []

    def evaluate(users: int) -> Dict[str, object]:
        point = evaluated.get(users)
        if point is None:
            point = evaluated[users] = _eval_point(scheme, users, sizing)
            order.append(users)
        return point

    lo: Optional[int] = None        # highest sustained population seen
    hi: Optional[int] = None        # lowest failing population seen
    users = sizing.start_users
    if evaluate(users)["sustained"]:
        lo = users
        for _ in range(sizing.max_doublings):
            users *= 2
            if evaluate(users)["sustained"]:
                lo = users
            else:
                hi = users
                break
    else:
        hi = users
        for _ in range(sizing.max_doublings):
            users //= 2
            if users < 1:
                break
            if evaluate(users)["sustained"]:
                lo = users
                break
            hi = users
    saturated = hi is None          # never failed within the bracket
    if lo is not None and hi is not None:
        while hi - lo > max(1, int(lo * sizing.rel_tol)):
            mid = (lo + hi) // 2
            if evaluate(mid)["sustained"]:
                lo = mid
            else:
                hi = mid
    capacity = lo or 0
    breach_point = evaluated.get(hi) if hi is not None else None
    if with_trace and hi is not None:
        # Re-run the first failing point with a Perfetto export: the
        # slo.p99_window / slo.burn_rate counter tracks show the
        # objective being lost.
        breach_point = _eval_point(scheme, hi, sizing, with_trace=True)
        evaluated[hi] = breach_point

    def curve_entry(users: int) -> Dict[str, object]:
        point = evaluated[users]
        return {key: point[key]
                for key in ("users", "sustained", "windows",
                            "breach_windows", "worst_p99_us",
                            "min_availability", "max_burn_rate", "drops",
                            "timeouts", "completions")}

    return {
        "scheme": scheme,
        "capacity_users": capacity,
        "first_failing_users": hi,
        "saturated": saturated,
        "curve": [curve_entry(users) for users in order],
        "capacity_point": evaluated.get(capacity),
        "breach_point": breach_point,
    }


def _scheme_worker(task: Tuple[str, FleetSizing, bool]
                   ) -> Tuple[str, Dict[str, object], float]:
    """Top-level (hence picklable) per-process worker: one scheme."""
    scheme, sizing, with_trace = task
    t0 = time.perf_counter()
    search = search_capacity(scheme, sizing, with_trace=with_trace)
    return scheme, search, time.perf_counter() - t0


def build_searches(schemes: Sequence[str], sizing: FleetSizing,
                   jobs: int = 1, with_trace: bool = False,
                   label: str = "fleet",
                   ) -> Tuple[Dict[str, Dict], Dict[str, dict]]:
    """Run the capacity search for every scheme; fan over ``jobs``.

    Searches run in any order across processes but merge back **in
    scheme order**, so the result is deterministic at any job count.
    """
    if jobs < 1:
        raise SystemExit(f"error: jobs must be positive: {jobs}")
    tasks = [(scheme, sizing, with_trace) for scheme in schemes]
    built: Dict[str, Tuple[Dict, float]] = {}

    def note(scheme: str, search: Dict, elapsed: float) -> None:
        built[scheme] = (search, elapsed)
        print(f"[{label}] {scheme:<18} capacity "
              f"{search['capacity_users']:>12,} users  "
              f"({len(search['curve'])} evals, {elapsed:5.1f}s)",
              file=sys.stderr)

    if jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            for scheme, search, elapsed in pool.map(_scheme_worker, tasks):
                note(scheme, search, elapsed)
    else:
        for task in tasks:
            note(*_scheme_worker(task))

    searches = {scheme: built[scheme][0] for scheme in schemes}
    total_sim = sum(int(p["row"]["wall_cycles"])
                    for search in searches.values()
                    for p in (search["capacity_point"],
                              search["breach_point"])
                    if p is not None)
    total_wall = sum(elapsed for _, elapsed in built.values())
    throughput = {"overall": _throughput_entry(total_sim, total_wall)}
    return searches, throughput


# ----------------------------------------------------------------------
# Record + BENCH-figure integration.
# ----------------------------------------------------------------------
def capacity_row(search: Dict[str, object]) -> Dict[str, object]:
    """The gated BENCH series row for one scheme's search.

    The capacity point's flattened result row plus the two gated
    columns; ``param_users`` is stripped because the matched key must
    stay stable while the measured capacity moves.
    """
    point = search["capacity_point"] or search["breach_point"]
    row = dict(point["row"])
    row.pop("param_users", None)
    row["fleet_capacity_users"] = search["capacity_users"]
    row["slo_breach_windows"] = (
        search["capacity_point"]["breach_windows"]
        if search["capacity_point"] is not None else
        point["breach_windows"])
    return row


def build_fleet_figure(sizing: FleetSizing = FIGURE_FLEET,
                       schemes: Sequence[str] = DEFAULT_FLEET_SCHEMES,
                       ) -> Dict[str, object]:
    """The ``fleet`` entry of the BENCH figure registry: a coarse
    capacity search whose rows land the gated ``fleet_capacity_users``
    and ``slo_breach_windows`` columns."""
    searches, _ = build_searches(list(schemes), sizing, jobs=1,
                                 label="bench:fleet")
    rows = []
    spans: Dict[str, object] = {}
    for scheme in schemes:
        row = capacity_row(searches[scheme])
        row["figure"] = "fleet"
        rows.append(row)
        point = (searches[scheme]["capacity_point"]
                 or searches[scheme]["breach_point"])
        spans[scheme] = point["spans"]
    title = (f"Fleet capacity: max users at p99 <= "
             f"{sizing.p99_objective_us:g} us")
    lines = [title,
             f"  {'scheme':<20}{'capacity [users]':>18}"
             f"{'p99@cap [us]':>14}{'breach@cap':>12}"]
    for scheme in schemes:
        search = searches[scheme]
        point = search["capacity_point"]
        p99 = point["worst_p99_us"] if point else float("nan")
        breach = point["breach_windows"] if point else "-"
        lines.append(f"  {scheme:<20}{search['capacity_users']:>18,}"
                     f"{p99:>14.3f}{breach:>12}")
    return {"title": title, "series": rows, "spans": spans,
            "report": "\n".join(lines)}


def build_fleet_record(schemes: Sequence[str], sizing: FleetSizing,
                       searches: Dict[str, Dict],
                       throughput: Dict[str, dict]) -> Dict:
    """Assemble the fleet record (bench-record envelope, so
    :func:`repro.bench.record.stable_view` strips the same fields)."""
    figure = {
        "title": f"Fleet capacity ({sizing.name})",
        "series": [dict(capacity_row(searches[s]), figure="fleet")
                   for s in schemes],
        "spans": {s: (searches[s]["capacity_point"]
                      or searches[s]["breach_point"])["spans"]
                  for s in schemes},
        "report": "",
    }
    record = build_record(mode=f"fleet-{sizing.name}",
                          figures={"fleet": figure}, schemes=schemes,
                          throughput=throughput)
    assert record["schema_version"] == SCHEMA_VERSION
    record["objective"] = fleet_objective(sizing).to_dict()
    record["sizing"] = {
        "cores": sizing.cores, "duration_us": sizing.duration_us,
        "warmup_us": sizing.warmup_us,
        "start_users": sizing.start_users, "rel_tol": sizing.rel_tol,
    }
    record["capacity"] = {
        scheme: {
            "capacity_users": searches[scheme]["capacity_users"],
            "first_failing_users": searches[scheme]["first_failing_users"],
            "saturated": searches[scheme]["saturated"],
        } for scheme in schemes}
    record["curves"] = {scheme: searches[scheme]["curve"]
                        for scheme in schemes}
    record["forensics"] = {
        scheme: (searches[scheme]["breach_point"] or {}).get("forensics",
                                                             [])
        for scheme in schemes}
    return record


# ----------------------------------------------------------------------
# Markdown report (+ the section ``repro report`` embeds).
# ----------------------------------------------------------------------
def capacity_table(record: Dict) -> List[str]:
    """Markdown capacity table (shared by ``fleet.md`` and
    ``python -m repro report``)."""
    capacity = record.get("capacity") or {}
    if not capacity:
        return ["(no fleet capacity data)"]
    objective = record.get("objective") or {}
    lines = [
        f"Objective: p99 <= {objective.get('p99_us', '?')} us per "
        f"{objective.get('window_us', '?')} us window, availability >= "
        f"{objective.get('availability', '?')}, client timeout "
        f"{objective.get('timeout_us', '?')} us.",
        "",
        "| scheme | capacity [users] | first failing [users] "
        "| p99 @ capacity [us] | p99 @ failing [us] |",
        "|---|---:|---:|---:|---:|",
    ]
    curves = record.get("curves") or {}
    for scheme, entry in capacity.items():
        cap = entry["capacity_users"]
        hi = entry["first_failing_users"]
        by_users = {p["users"]: p for p in curves.get(scheme, ())}
        cap_p99 = by_users.get(cap, {}).get("worst_p99_us", "-")
        hi_p99 = by_users.get(hi, {}).get("worst_p99_us", "-")
        hi_text = f"{hi:,}" if hi is not None else "(saturated)"
        lines.append(f"| {scheme} | {cap:,} | {hi_text} "
                     f"| {cap_p99} | {hi_p99} |")
    return lines


def _forensics_lines(record: Dict) -> List[str]:
    lines: List[str] = []
    for scheme, entries in (record.get("forensics") or {}).items():
        if not entries:
            continue
        first = entries[0]
        lines.append(
            f"- **{scheme}** window {first['window']} "
            f"({first['start_us']:g}–{first['end_us']:g} us): "
            f"p99 {first['p99_us']} us, availability "
            f"{first['availability']}, burn rate {first['burn_rate']} — "
            f"dominant span `{first['dominant_span_path']}` "
            f"({first['dominant_span_cycles']:,} cycles), top lock "
            f"`{first['top_lock'] or '-'}` "
            f"({first['top_lock_wait_cycles']:,} wait cycles)")
    return lines or ["(no breached windows recorded)"]


def render_fleet_report(record: Dict) -> str:
    """The human-facing capacity report (written as ``fleet.md``)."""
    fp = record.get("fingerprint", {})
    schemes = list(record.get("capacity") or {})
    lines = [
        "# Fleet capacity report",
        "",
        f"- schemes: {', '.join(schemes)}",
        f"- mode: `{fp.get('mode', '?')}`",
        f"- git SHA: `{fp.get('git_sha', '?')}`",
        "",
        "## Capacity at the SLO",
        "",
        *capacity_table(record),
        "",
        "## Search curves",
        "",
    ]
    for scheme in schemes:
        lines.extend([
            f"### {scheme}",
            "",
            "| users | sustained | breach windows | worst p99 [us] "
            "| min availability | drops | completions |",
            "|---:|---|---:|---:|---:|---:|---:|",
        ])
        for point in sorted(record.get("curves", {}).get(scheme, ()),
                            key=lambda p: p["users"]):
            lines.append(
                f"| {point['users']:,} "
                f"| {'yes' if point['sustained'] else 'NO'} "
                f"| {point['breach_windows']}/{point['windows']} "
                f"| {point['worst_p99_us']} "
                f"| {point['min_availability']} "
                f"| {point['drops']} | {point['completions']} |")
        lines.append("")
    lines.extend([
        "## Breach forensics (first breached window past capacity)",
        "",
        *_forensics_lines(record),
        "",
    ])
    return "\n".join(lines).rstrip() + "\n"


def write_windows_jsonl(schemes: Sequence[str],
                        searches: Dict[str, Dict], path: str) -> int:
    """One JSON line per SLO window at the capacity point and the first
    failing point, per scheme; returns the line count."""
    count = 0
    with open(path, "w") as fh:
        for scheme in schemes:
            search = searches[scheme]
            for label in ("capacity_point", "breach_point"):
                point = search[label]
                if point is None:
                    continue
                for window in point["window_rows"]:
                    line = {"scheme": scheme, "users": point["users"],
                            "point": label.replace("_point", "")}
                    line.update(window)
                    fh.write(json.dumps(line, sort_keys=False) + "\n")
                    count += 1
    return count


# ----------------------------------------------------------------------
# Entry point (the ``repro fleet`` subcommand).
# ----------------------------------------------------------------------
def run_fleet_capacity(schemes: Sequence[str] = DEFAULT_FLEET_SCHEMES,
                       mode: str = "quick", jobs: int = 1,
                       out_dir: Optional[str] = None) -> int:
    """Run the search, write ``fleet.json`` / ``fleet.md`` /
    ``fleet_windows.jsonl`` / per-scheme Perfetto traces, print the
    capacity verdict.  Returns the process exit status."""
    sizing = FLEET_SIZINGS.get(mode)
    if sizing is None:
        raise SystemExit(f"error: unknown fleet mode {mode!r}; "
                         f"choices: {', '.join(FLEET_SIZINGS)}")
    scheme_list = resolve_schemes(schemes)

    started = time.perf_counter()
    searches, throughput = build_searches(scheme_list, sizing, jobs=jobs,
                                          with_trace=True)
    record = build_fleet_record(scheme_list, sizing, searches, throughput)

    out = out_dir or default_results_dir()
    os.makedirs(out, exist_ok=True)
    json_path = os.path.join(out, "fleet.json")
    with open(json_path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    md_path = os.path.join(out, "fleet.md")
    with open(md_path, "w") as fh:
        fh.write(render_fleet_report(record))
    jsonl_path = os.path.join(out, "fleet_windows.jsonl")
    windows = write_windows_jsonl(scheme_list, searches, jsonl_path)
    trace_paths = []
    for scheme in scheme_list:
        point = searches[scheme]["breach_point"]
        if point is None or "trace" not in point:
            continue
        trace_path = os.path.join(out, f"fleet_{scheme}.trace.json")
        with open(trace_path, "w") as fh:
            json.dump(point["trace"], fh, separators=(",", ":"))
        trace_paths.append(trace_path)

    print(f"[fleet] {len(scheme_list)} schemes in "
          f"{time.perf_counter() - started:.1f}s (jobs={jobs})")
    for scheme in scheme_list:
        entry = record["capacity"][scheme]
        hi = entry["first_failing_users"]
        hi_text = f"{hi:,}" if hi is not None else "search saturated"
        print(f"[fleet] {scheme:<18} capacity "
              f"{entry['capacity_users']:>12,} users "
              f"(first failing: {hi_text})")
    print(f"[fleet] record : {json_path}")
    print(f"[fleet] report : {md_path}")
    print(f"[fleet] windows: {jsonl_path} ({windows} lines)")
    for path in trace_paths:
        print(f"[fleet] trace  : {path}")
    return 0
