"""One-shot consolidated report: ``python -m repro report``.

Runs the quick-scale figure registry (the same sweeps ``bench --quick``
runs), then writes a single markdown document that combines

* the standard per-figure tables and span highlights of a bench record
  (:func:`repro.bench.record.render_markdown`);
* a **request latency tail table** — every series point that carried
  ``latency_p50/p99/p999`` columns, side by side across schemes;
* a **tail attribution** section — two contrasting 16-core MTU RX
  captures (``identity-strict`` vs ``copy``) with the critical-path
  analyzer's verdict for each, so the report states *why* the strict
  scheme's tail is slow (invalidation-lock wait) and where the copy
  scheme pays instead (the copy itself);
* a **differential analysis** section — the same two captures run
  through the ``repro diff`` engine (:mod:`repro.obs.diff`): per-unit
  span-cycle movement between the schemes and the stage-wise
  decomposition of the tail-gap change.

Unlike ``bench``, no ``BENCH_*.json`` record is written — this is the
human-facing artifact (CI uploads it; see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.record import build_record, render_markdown
from repro.bench.runner import (
    FIGURE_SCHEMES,
    QUICK_SCALE,
    build_figures,
    default_results_dir,
    select_figures,
)
from repro.obs.context import Observability
from repro.obs.requests import REQ_RX, tail_report
from repro.stats.timeline import render_tail_report
from repro.workloads.netperf import StreamConfig, run_tcp_stream_rx

#: Sizing of the contrast captures in the tail-attribution section:
#: enough 16-core MTU frames for a stable p99 without dominating the
#: report's runtime.
_ATTRIBUTION_CORES = 16
_ATTRIBUTION_UNITS = 60
_ATTRIBUTION_WARMUP = 15
_ATTRIBUTION_SIZE = 1448


def _latency_rows(record: Dict) -> List[Tuple[str, Dict]]:
    rows: List[Tuple[str, Dict]] = []
    for name, figure in record.get("figures", {}).items():
        for row in figure.get("series", ()):
            if row.get("latency_p50_us") is not None:
                rows.append((name, row))
    return rows


def _latency_table(record: Dict) -> List[str]:
    """Markdown table of every series point with request-tail columns."""
    rows = _latency_rows(record)
    if not rows:
        return ["(no request-latency data in this run)"]
    lines = [
        "| figure | scheme | workload | cores | params | p50 [us] "
        "| p99 [us] | p99.9 [us] |",
        "|---|---|---|---:|---|---:|---:|---:|",
    ]
    for name, row in rows:
        params = ", ".join(
            f"{key[len('param_'):]}={value}"
            for key, value in sorted(row.items())
            if key.startswith("param_") and key != "param_cores"
            and key != "param_direction")
        lines.append(
            f"| {name} | {row.get('scheme')} | {row.get('workload')} "
            f"| {row.get('cores')} | {params} "
            f"| {row.get('latency_p50_us')} "
            f"| {row.get('latency_p99_us')} "
            f"| {row.get('latency_p999_us')} |")
    return lines


def _exposure_table(record: Dict) -> List[str]:
    """Per-scheme exposure totals summed across the run's series rows."""
    per_scheme: Dict[str, Dict[str, int]] = {}
    for figure in record.get("figures", {}).values():
        for row in figure.get("series", ()):
            if row.get("exposure_stale_byte_cycles") is None:
                continue
            agg = per_scheme.setdefault(str(row.get("scheme")),
                                        {"stale": 0, "excess": 0,
                                         "faults": 0})
            agg["stale"] += row.get("exposure_stale_byte_cycles", 0)
            agg["excess"] += row.get("exposure_excess_byte_cycles", 0)
            agg["faults"] += row.get("exposure_faults", 0)
    if not per_scheme:
        return ["(no exposure data in this run)"]
    lines = [
        "| scheme | stale [B·cyc] | granularity excess [B·cyc] "
        "| faults |",
        "|---|---:|---:|---:|",
    ]
    for scheme, agg in sorted(per_scheme.items()):
        lines.append(f"| {scheme} | {agg['stale']:,} | {agg['excess']:,} "
                     f"| {agg['faults']:,} |")
    return lines


def _fleet_table(record: Dict) -> List[str]:
    """Fleet capacity per scheme (from the ``fleet`` figure's rows)."""
    rows = [row for row
            in record.get("figures", {}).get("fleet", {}).get("series", ())
            if row.get("fleet_capacity_users") is not None]
    if not rows:
        return ["(no fleet capacity data in this run — the `fleet` "
                "figure was excluded)"]
    lines = [
        "Max sustained user population per scheme before any SLO window "
        "breaches (see `python -m repro fleet` for the full search "
        "curves and breach forensics).",
        "",
        "| scheme | capacity [users] | breach windows @ capacity "
        "| worst window p99 [us] | drops |",
        "|---|---:|---:|---:|---:|",
    ]
    for row in rows:
        lines.append(
            f"| {row.get('scheme')} "
            f"| {row.get('fleet_capacity_users'):,} "
            f"| {row.get('slo_breach_windows')} "
            f"| {row.get('slo_worst_p99_us')} "
            f"| {row.get('slo_drops')} |")
    return lines


def _tail_attribution(tail: float) -> Tuple[List[str], List]:
    """Contrast captures: where the tail goes, strict vs copy.

    Returns the rendered section *and* the two captures as diff sides,
    so the differential-analysis section reuses the exact same runs
    rather than paying for a second pair.
    """
    from repro.obs.diff.sides import side_from_capture

    lines: List[str] = []
    sides: List = []
    for scheme in ("identity-strict", "copy"):
        obs = Observability.capture(trace_capacity=256)
        result = run_tcp_stream_rx(StreamConfig(
            scheme=scheme, direction="rx",
            message_size=_ATTRIBUTION_SIZE, cores=_ATTRIBUTION_CORES,
            units_per_core=_ATTRIBUTION_UNITS,
            warmup_units=_ATTRIBUTION_WARMUP, obs=obs))
        sides.append(side_from_capture(result, obs, label=scheme,
                                       tail_percentile=tail))
        report = tail_report(obs.requests, kind=REQ_RX, percentile=tail)
        lines.extend([
            f"### {scheme}",
            "",
            "```text",
            render_tail_report(report),
            "```",
            "",
        ])
    return lines, sides


def _diff_section(sides: List) -> List[str]:
    """Strict-vs-copy differential summary from the reused captures."""
    from repro.obs.diff.engine import build_diff
    from repro.obs.diff.render import render_diff_embed

    return render_diff_embed(build_diff(sides[0], sides[1]))


def run_report(out: Optional[str] = None,
               only: Optional[Sequence[str]] = None,
               tail: float = 99.0, jobs: int = 1) -> int:
    """Build and write the consolidated report; returns exit status."""
    specs = select_figures(only)
    started = time.time()
    # The same timed-run helper ``bench`` uses — progress lines, wall
    # accounting, and the --jobs fan-out are implemented exactly once.
    figures, throughput = build_figures(specs, QUICK_SCALE, jobs=jobs,
                                        label="report")
    record = build_record(mode=QUICK_SCALE.name, figures=figures,
                          schemes=FIGURE_SCHEMES, throughput=throughput)

    parts = [
        render_markdown(record).rstrip(),
        "",
        "## Request latency tails",
        "",
        *_latency_table(record),
        "",
        "## Exposure (summed across series points)",
        "",
        *_exposure_table(record),
        "",
        "## Fleet capacity at the SLO",
        "",
        *_fleet_table(record),
        "",
        f"## Tail attribution (p{tail:g}, {_ATTRIBUTION_CORES}-core RX, "
        f"{_ATTRIBUTION_SIZE}B frames)",
        "",
    ]
    attribution_lines, sides = _tail_attribution(tail)
    parts.extend(attribution_lines)
    parts.extend([
        "## Differential analysis (identity-strict vs copy)",
        "",
        "The same two captures as above, run through the `repro diff` "
        "engine: per-unit span-cycle movement and the stage-wise "
        "decomposition of the tail-gap change.",
        "",
        *_diff_section(sides),
    ])

    path = out or os.path.join(default_results_dir(), "REPORT.md")
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        fh.write("\n".join(parts).rstrip() + "\n")
    print(f"[report] {len(specs)} figures in {time.time() - started:.1f}s")
    print(f"[report] report : {path}")
    return 0
