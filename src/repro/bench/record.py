"""Machine-readable benchmark records (``BENCH_<timestamp>.json``).

A record is one self-describing snapshot of a bench run:

* a **fingerprint** — git SHA, bench mode, scheme set, and every cost
  model constant — so two records can be compared meaningfully (or the
  comparison refused);
* per-figure **series** — the flattened
  :func:`repro.stats.export.result_to_row` rows, the same serializer the
  CSV exports and the CLI's ``--json`` mode use;
* per-figure, per-scheme **span trees** — the cycle-attribution data the
  regression gate uses to name the subtree behind a slowdown.

The markdown report rendered next to the JSON embeds the paper-style
text tables so a record is readable without tooling.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
from datetime import datetime, timezone
from typing import Dict, Optional, Sequence, Tuple

from repro.obs.spans import SpanNode
from repro.sim.costmodel import CostModel
from repro.stats.timeline import render_span_tree

#: Bump when the record layout changes incompatibly.
SCHEMA_VERSION = 1


def cost_model_fingerprint(cost: Optional[CostModel] = None) -> Dict:
    """Every cost-model constant, minus the derived cache."""
    fields = dataclasses.asdict(cost if cost is not None else CostModel())
    fields.pop("derived", None)
    return fields


def repo_sha() -> str:
    """The repository HEAD, or ``unknown`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, check=False,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def build_fingerprint(mode: str, schemes: Sequence[str],
                      cost: Optional[CostModel] = None) -> Dict:
    return {
        "git_sha": repo_sha(),
        "mode": mode,
        "schemes": list(schemes),
        "cost_model": cost_model_fingerprint(cost),
    }


def build_record(mode: str, figures: Dict[str, dict],
                 schemes: Sequence[str],
                 cost: Optional[CostModel] = None,
                 throughput: Optional[Dict[str, dict]] = None) -> Dict:
    """Assemble the full record from the runner's per-figure data.

    ``throughput`` is the runner's per-figure (plus ``"overall"``)
    simulator-speed section: ``sim_cycles`` are deterministic, while
    ``wall_seconds`` / ``sim_cycles_per_wall_second`` are host-dependent
    — :func:`stable_view` strips the latter for byte-for-byte record
    comparison.
    """
    record = {
        "schema_version": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "fingerprint": build_fingerprint(mode, schemes, cost),
        "figures": figures,
    }
    if throughput is not None:
        record["throughput"] = throughput
    return record


def stable_view(record: Dict) -> Dict:
    """A deep copy with every host-dependent field removed.

    What remains is fully determined by the simulation, so two runs of
    the same code at the same scale — at any ``--jobs`` count — must
    produce byte-identical stable views (the property the fan-out tests
    assert).
    """
    view = json.loads(json.dumps(record))
    view.pop("created", None)
    for entry in view.get("throughput", {}).values():
        if isinstance(entry, dict):
            entry.pop("wall_seconds", None)
            entry.pop("sim_cycles_per_wall_second", None)
    return view


def single_run_record(row: Dict, mode: str = "single",
                      spans: Optional[Dict] = None) -> Dict:
    """The CLI ``--json`` form: one row, same schema as a bench record."""
    figure = {"title": f"{row.get('workload', 'run')} (single run)",
              "series": [row]}
    if spans is not None:
        figure["spans"] = {str(row.get("scheme", "run")): spans}
    return {
        "schema_version": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "fingerprint": build_fingerprint(mode, [row.get("scheme", "?")]),
        "figures": {"single": figure},
    }


def load_record(path: str) -> Dict:
    """Load and minimally validate a record (fail with a clear message)."""
    try:
        with open(path) as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read bench record {path}: {exc}")
    if not isinstance(record, dict) or "figures" not in record:
        raise SystemExit(
            f"error: {path} is not a bench record (no 'figures' key)")
    version = record.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SystemExit(
            f"error: {path} has schema_version {version!r}; "
            f"this build reads {SCHEMA_VERSION}")
    return record


def record_basename(record: Dict) -> str:
    stamp = (record["created"].replace("-", "").replace(":", "")
             .split("+")[0])
    return f"BENCH_{stamp}"


def write_record(record: Dict, out_dir: str) -> Tuple[str, str]:
    """Write ``BENCH_<timestamp>.json`` + ``.md``; returns both paths."""
    os.makedirs(out_dir, exist_ok=True)
    base = record_basename(record)
    json_path = os.path.join(out_dir, f"{base}.json")
    with open(json_path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    md_path = os.path.join(out_dir, f"{base}.md")
    with open(md_path, "w") as fh:
        fh.write(render_markdown(record))
    return json_path, md_path


# ----------------------------------------------------------------------
# Markdown report.
# ----------------------------------------------------------------------
def _span_highlights(figure: dict, max_schemes: int = 4) -> str:
    """Per-scheme attribution trees, depth-limited for readability."""
    spans = figure.get("spans", {})
    parts = []
    for scheme in list(spans)[:max_schemes]:
        tree = SpanNode.from_dict(spans[scheme])
        parts.append(f"spans — {scheme}:\n"
                     + render_span_tree(tree, max_depth=3))
    return "\n\n".join(parts)


def render_markdown(record: Dict) -> str:
    """A self-contained report: fingerprint + per-figure tables + spans."""
    fp = record.get("fingerprint", {})
    lines = [
        "# Benchmark record",
        "",
        f"- created: `{record.get('created', '?')}`",
        f"- git SHA: `{fp.get('git_sha', '?')}`",
        f"- mode: `{fp.get('mode', '?')}`",
        f"- schemes: {', '.join(fp.get('schemes', ()))}",
        f"- schema version: {record.get('schema_version', '?')}",
        "",
    ]
    throughput = record.get("throughput")
    if throughput:
        lines.extend([
            "## Simulator throughput",
            "",
            "| figure | sim cycles | wall [s] | sim cycles / wall s |",
            "|---|---:|---:|---:|",
        ])
        for name, entry in throughput.items():
            lines.append(
                f"| {name} | {entry.get('sim_cycles', 0):,} "
                f"| {entry.get('wall_seconds', 0)} "
                f"| {entry.get('sim_cycles_per_wall_second', 0):,} |")
        lines.append("")
    for name, figure in record.get("figures", {}).items():
        lines.append(f"## {name}: {figure.get('title', '')}")
        lines.append("")
        report = figure.get("report")
        if report:
            lines.extend(["```text", report.rstrip(), "```", ""])
        highlights = _span_highlights(figure)
        if highlights:
            lines.extend(["```text", highlights, "```", ""])
    return "\n".join(lines)
