"""Unified benchmark harness: figure runner, records, regression gate.

``python -m repro bench`` drives every figure/table sweep of the paper
through one harness (:mod:`repro.bench.runner`), writes a fingerprinted
machine-readable record plus a markdown report
(:mod:`repro.bench.record`), and can gate the run against a prior
baseline record (:mod:`repro.bench.regression`).  The resource
accounting smoke checks live in :mod:`repro.bench.invariants`.

The per-figure ``benchmarks/bench_fig*.py`` scripts keep working — their
shared helpers (``stream_sweep``, ``rr_sweep``, …) now live in
:mod:`repro.bench.runner` and ``benchmarks/common.py`` re-exports them.
"""

from repro.bench.runner import (  # noqa: F401
    FIGURES,
    FIGURE_SCHEMES,
    BenchScale,
    FULL_SCALE,
    QUICK_SCALE,
    relative,
    rr_sweep,
    run_bench,
    stream_sweep,
)

__all__ = [
    "FIGURES",
    "FIGURE_SCHEMES",
    "BenchScale",
    "FULL_SCALE",
    "QUICK_SCALE",
    "relative",
    "rr_sweep",
    "run_bench",
    "stream_sweep",
]
