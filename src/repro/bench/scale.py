"""Core-count sweep orchestration: ``python -m repro scale``.

The scalability observatory's front door.  A *sweep* runs one workload
under each requested scheme at each requested core count — every point
an independent, deterministic simulation under a capturing
:class:`~repro.obs.context.Observability` — and hands the recorded data
to :mod:`repro.obs.scaling` for the post-hoc analysis: speedup curves,
Amdahl/USL serial-fraction fits, the per-lock contention matrix, and
the invalidation-queue decomposition.

Points are independent, so ``--jobs N`` distributes them over worker
processes exactly like the bench fan-out (top-level picklable worker,
results merged in task order) — the written record is byte-identical at
any job count once the host-dependent fields are stripped
(:func:`repro.bench.record.stable_view` applies unchanged, which is
what ``tests/bench/test_scale.py`` asserts).

Artifacts land as fixed-name ``scale.json`` + ``scale.md`` (CI uploads
the JSON next to the bench records; fixed names keep the workflow glob
trivial and repeated sweeps diffable).
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.record import SCHEMA_VERSION, build_record
from repro.bench.runner import (
    _throughput_entry,
    _TRACE_CAPACITY,
    default_results_dir,
)
from repro.dma.registry import ALL_SCHEMES, PAPER_ALIASES
from repro.obs.context import Observability
from repro.obs.scaling import (
    analyze_scheme,
    contention_matrix,
    queueing_rows,
    render_contention_matrix,
    render_fit_table,
    render_queueing_table,
    render_speedup_table,
    serialized_shares,
)
from repro.obs.spans import SPAN_LOCK_WAIT
from repro.sim.units import cycles_to_us
from repro.stats.results import RunResult
from repro.workloads.memcached import MemcachedConfig, run_memcached
from repro.workloads.netperf import StreamConfig, run_tcp_stream
from repro.workloads.storage import StorageConfig, run_storage

#: The ROADMAP's target sweep for the "strict vs per-core vs copy" figure.
DEFAULT_CORES = (1, 2, 4, 8, 16, 32, 64)

#: Workloads the sweep can drive.
SCALE_WORKLOADS = ("stream", "stream-tx", "storage", "memcached")


@dataclass(frozen=True)
class ScaleSizing:
    """Work per sweep point (fixed *per core*, so aggregate throughput
    ratios are speedups)."""

    name: str
    units_per_core: int
    warmup_units: int
    message_size: int
    storage_block_size: int
    memcached_value_size: int


#: CI smoke sizing: a strict-vs-copy 1/2/4 sweep in a few seconds.
QUICK_SIZING = ScaleSizing(
    name="quick", units_per_core=60, warmup_units=15,
    message_size=16384, storage_block_size=4096,
    memcached_value_size=4096)

#: Report sizing: stable curves through 64 cores.
FULL_SIZING = ScaleSizing(
    name="full", units_per_core=200, warmup_units=40,
    message_size=16384, storage_block_size=4096,
    memcached_value_size=4096)

SIZINGS = {"quick": QUICK_SIZING, "full": FULL_SIZING}


# ----------------------------------------------------------------------
# One sweep point.
# ----------------------------------------------------------------------
def _lock_wait_paths(tree) -> List[Dict[str, object]]:
    """Span paths ending in ``lock_wait``, with their inclusive cycles —
    the "where in the stack does the spinning happen" evidence the
    report attaches to the top contended lock."""
    paths: List[Dict[str, object]] = []
    for path, node in tree.walk():
        if path and path[-1] == SPAN_LOCK_WAIT and node.total_cycles:
            # Drop the synthetic "run" root from the display path.
            paths.append({"path": list(path[1:]),
                          "cycles": node.total_cycles,
                          "count": node.count})
    paths.sort(key=lambda p: (-int(p["cycles"]), p["path"]))
    return paths


def _invalidation_section(result: RunResult) -> Dict[str, object]:
    """The queueing-decomposition inputs recorded by the workload."""
    extras = result.extras
    completions = int(extras.get("inv_hw_completions") or 0)
    service = int(extras.get("inv_hw_service_cycles") or 0)
    delay = int(extras.get("inv_hw_queue_delay_cycles") or 0)
    wall_us = cycles_to_us(result.wall_cycles) if result.wall_cycles else 0.0
    depth = {}
    metrics = extras.get("metrics")
    if isinstance(metrics, dict):
        depth = (metrics.get("series") or {}).get(
            "invalidation.queue_depth") or {}
    return {
        "submissions": completions,
        "arrival_rate_per_us": (round(completions / wall_us, 6)
                                if wall_us > 0 else 0.0),
        "mean_service_cycles": (round(service / completions, 2)
                                if completions else 0.0),
        "mean_queue_delay_cycles": (round(delay / completions, 2)
                                    if completions else 0.0),
        "queue_depth_mean": depth.get("mean", 0.0),
        "queue_depth_max": depth.get("max", 0),
    }


def _run_point(workload: str, scheme: str, cores: int,
               sizing: ScaleSizing) -> Dict[str, object]:
    """Run one (scheme, cores) point and flatten it into a point dict."""
    obs = Observability.capture(trace_capacity=_TRACE_CAPACITY)
    if workload in ("stream", "stream-tx"):
        result = run_tcp_stream(StreamConfig(
            scheme=scheme,
            direction="rx" if workload == "stream" else "tx",
            message_size=sizing.message_size, cores=cores,
            units_per_core=sizing.units_per_core,
            warmup_units=sizing.warmup_units, obs=obs))
    elif workload == "storage":
        result = run_storage(StorageConfig(
            scheme=scheme, block_size=sizing.storage_block_size,
            cores=cores, ops_per_core=sizing.units_per_core,
            warmup_ops=sizing.warmup_units, obs=obs))
    elif workload == "memcached":
        result = run_memcached(MemcachedConfig(
            scheme=scheme, cores=cores,
            value_size=sizing.memcached_value_size,
            transactions_per_core=sizing.units_per_core,
            warmup_transactions=sizing.warmup_units, obs=obs))
    else:
        raise SystemExit(f"error: unknown scale workload {workload!r}; "
                         f"choices: {', '.join(SCALE_WORKLOADS)}")
    lock_wait_share, serial_fraction = serialized_shares(
        result.breakdown_cycles, result.busy_cycles)
    return {
        "cores": cores,
        "units": result.units,
        "payload_bytes": result.payload_bytes,
        "wall_cycles": result.wall_cycles,
        "busy_cycles": result.busy_cycles,
        "throughput_gbps": round(result.throughput_gbps, 6),
        "breakdown_cycles": dict(result.breakdown_cycles),
        "lock_wait_share": round(lock_wait_share, 6),
        "scaling_serial_fraction": round(serial_fraction, 6),
        "locks": result.extras.get("locks") or {},
        "invalidation": _invalidation_section(result),
        "lock_wait_paths": _lock_wait_paths(obs.spans.tree()),
    }


def _point_worker(task: Tuple[str, str, int, ScaleSizing]
                  ) -> Tuple[str, int, Dict[str, object], float]:
    """Top-level (hence picklable) per-process worker: one sweep point."""
    workload, scheme, cores, sizing = task
    t0 = time.perf_counter()
    point = _run_point(workload, scheme, cores, sizing)
    return scheme, cores, point, time.perf_counter() - t0


# ----------------------------------------------------------------------
# Sweep orchestration.
# ----------------------------------------------------------------------
def resolve_schemes(schemes: Sequence[str]) -> List[str]:
    """Canonicalize scheme names (paper aliases allowed), fail fast."""
    resolved: List[str] = []
    for name in schemes:
        canonical = PAPER_ALIASES.get(name, name)
        if canonical not in ALL_SCHEMES:
            raise SystemExit(
                f"error: unknown scheme {name!r}; "
                f"choices: {', '.join(sorted(ALL_SCHEMES))}")
        if canonical not in resolved:
            resolved.append(canonical)
    if not resolved:
        raise SystemExit("error: no schemes to sweep")
    return resolved


def resolve_cores(cores: Sequence[int]) -> List[int]:
    """Validated, sorted, de-duplicated core counts."""
    unique = sorted(set(cores))
    if not unique:
        raise SystemExit("error: no core counts to sweep")
    if unique[0] < 1:
        raise SystemExit(f"error: core counts must be positive: {unique[0]}")
    return unique


def build_sweep(workload: str, schemes: Sequence[str],
                cores: Sequence[int], sizing: ScaleSizing,
                jobs: int = 1, label: str = "scale",
                ) -> Tuple[Dict[str, List[Dict]], Dict[str, dict]]:
    """Run every (scheme, cores) point; returns ``(points, throughput)``.

    Mirrors :func:`repro.bench.runner.build_figures`: points run in any
    order across processes but merge back **in task order**, so the
    result is deterministic at any ``jobs`` count.  The throughput
    section sums per-point wall times (not makespan), comparable across
    job counts the way the bench section is.
    """
    if jobs < 1:
        raise SystemExit(f"error: jobs must be positive: {jobs}")
    tasks = [(workload, scheme, n, sizing)
             for scheme in schemes for n in cores]
    built: Dict[Tuple[str, int], Tuple[Dict, float]] = {}

    def note(scheme: str, n: int, point: Dict, elapsed: float) -> None:
        built[(scheme, n)] = (point, elapsed)
        print(f"[{label}] {scheme:<18} cores={n:<3} "
              f"{point['throughput_gbps']:8.2f} Gb/s  {elapsed:5.1f}s",
              file=sys.stderr)

    if jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            for scheme, n, point, elapsed in pool.map(_point_worker, tasks):
                note(scheme, n, point, elapsed)
    else:
        for task in tasks:
            scheme, n, point, elapsed = _point_worker(task)
            note(scheme, n, point, elapsed)

    points: Dict[str, List[Dict]] = {
        scheme: [built[(scheme, n)][0] for n in cores]
        for scheme in schemes}
    total_sim = sum(point["wall_cycles"]
                    for per_scheme in points.values()
                    for point in per_scheme)
    total_wall = sum(elapsed for _, elapsed in built.values())
    throughput = {"overall": _throughput_entry(total_sim, total_wall)}
    return points, throughput


def build_scale_record(workload: str, schemes: Sequence[str],
                       cores: Sequence[int], sizing: ScaleSizing,
                       points: Dict[str, List[Dict]],
                       throughput: Dict[str, dict]) -> Dict:
    """Assemble the scale record (same envelope as a bench record, so
    :func:`repro.bench.record.stable_view` strips the same fields)."""
    record = build_record(mode=f"scale-{sizing.name}", figures={},
                          schemes=schemes, throughput=throughput)
    assert record["schema_version"] == SCHEMA_VERSION
    record["workload"] = workload
    record["cores"] = list(cores)
    record["points"] = points
    record["analysis"] = {
        scheme: analyze_scheme(scheme, points[scheme]).to_dict()
        for scheme in schemes}
    record["contention"] = {
        scheme: contention_matrix(points[scheme]) for scheme in schemes}
    record["queueing"] = {
        scheme: queueing_rows(points[scheme]) for scheme in schemes}
    return record


# ----------------------------------------------------------------------
# Markdown report.
# ----------------------------------------------------------------------
def _top_lock_evidence(scheme: str, points: List[Dict]) -> List[str]:
    """Span paths behind the widest point's heaviest lock waiting."""
    if not points:
        return []
    widest = max(points, key=lambda p: int(p["cores"]))
    paths = widest.get("lock_wait_paths") or []
    if not paths:
        return []
    lines = [f"Span paths of the lock waiting at {widest['cores']} cores "
             f"({scheme}):", ""]
    for entry in paths[:4]:
        path = " → ".join(entry["path"])
        lines.append(f"- `{path}` — {entry['cycles']:,} cycles "
                     f"across {entry['count']:,} waits")
    lines.append("")
    return lines


def render_scale_report(record: Dict) -> str:
    """The human-facing scaling report (written as ``scale.md``)."""
    schemes = list(record.get("points", {}))
    analyses = [analyze_scheme(s, record["points"][s]) for s in schemes]
    fp = record.get("fingerprint", {})
    lines = [
        "# Scaling report",
        "",
        f"- workload: `{record.get('workload', '?')}`",
        f"- cores: {', '.join(str(n) for n in record.get('cores', ()))}",
        f"- schemes: {', '.join(schemes)}",
        f"- mode: `{fp.get('mode', '?')}`",
        f"- git SHA: `{fp.get('git_sha', '?')}`",
        "",
        "## Speedup (aggregate throughput vs the smallest core count)",
        "",
        *render_speedup_table(analyses),
        "",
        "## Serial-fraction fits",
        "",
        *render_fit_table(analyses),
        "",
        "Amdahl's ``s`` is the fitted serial fraction; USL's κ > 0 "
        "means the model predicts throughput *degrades* past the peak "
        "core count.  `lock-wait share` is the measured spinlock share "
        "of busy cycles at the widest sweep point.",
        "",
    ]
    for scheme in schemes:
        points = record["points"][scheme]
        lines.extend([
            f"## {scheme}: contention matrix",
            "",
            *render_contention_matrix(
                record.get("contention", {}).get(scheme, ())),
            "",
            *_top_lock_evidence(scheme, points),
            f"### {scheme}: invalidation-queue decomposition",
            "",
            *render_queueing_table(
                record.get("queueing", {}).get(scheme, ())),
            "",
        ])
    return "\n".join(lines).rstrip() + "\n"


# ----------------------------------------------------------------------
# Entry point (the ``repro scale`` subcommand).
# ----------------------------------------------------------------------
def run_scale(workload: str = "stream",
              schemes: Sequence[str] = ("identity-strict", "copy"),
              cores: Sequence[int] = DEFAULT_CORES,
              mode: str = "quick", jobs: int = 1,
              out_dir: Optional[str] = None) -> int:
    """Run the sweep, write ``scale.json`` + ``scale.md``, print the
    ranking verdict.  Returns the process exit status."""
    sizing = SIZINGS.get(mode)
    if sizing is None:
        raise SystemExit(f"error: unknown scale mode {mode!r}; "
                         f"choices: {', '.join(SIZINGS)}")
    if workload not in SCALE_WORKLOADS:
        raise SystemExit(f"error: unknown scale workload {workload!r}; "
                         f"choices: {', '.join(SCALE_WORKLOADS)}")
    scheme_list = resolve_schemes(schemes)
    core_list = resolve_cores(cores)

    started = time.perf_counter()
    points, throughput = build_sweep(workload, scheme_list, core_list,
                                     sizing, jobs=jobs)
    record = build_scale_record(workload, scheme_list, core_list, sizing,
                                points, throughput)

    out = out_dir or default_results_dir()
    os.makedirs(out, exist_ok=True)
    json_path = os.path.join(out, "scale.json")
    with open(json_path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    md_path = os.path.join(out, "scale.md")
    with open(md_path, "w") as fh:
        fh.write(render_scale_report(record))

    ranked = sorted(record["analysis"].items(),
                    key=lambda kv: -(kv[1]["fit"]["serial_fraction"] or 0.0))
    print(f"[scale] {len(scheme_list)}×{len(core_list)} points in "
          f"{time.perf_counter() - started:.1f}s (jobs={jobs})")
    for scheme, analysis in ranked:
        s = analysis["fit"]["serial_fraction"]
        s_text = "-" if s is None else f"{s:.3f}"
        top = analysis["top_lock"] or "-"
        print(f"[scale] {scheme:<18} serial fraction {s_text:<6} "
              f"top lock {top}")
    print(f"[scale] record : {json_path}")
    print(f"[scale] report : {md_path}")
    return 0
