"""Resource-accounting smoke checks: a short run must leak nothing.

Each check guards an invariant that a real resource-management bug once
broke:

1. **Page-rights invariant** (§5.2) — after a short Fig. 3-style RX run
   through the ``copy`` scheme, every IOMMU-mapped pool page still holds
   shadow buffers of a single rights value.
2. **Balanced pool accounting** — a grow → acquire → release → shrink
   cycle ends with ``PoolStats.bytes_allocated == 0`` and
   ``buffers_allocated == 0``: shrink must subtract exactly what grow
   recorded (page-quantity bytes *and* the buffer count).
3. **No fallback-IOVA leaks** — retiring a fallback shadow buffer
   returns its page range to the external IOVA allocator, so
   ``outstanding_ranges()`` drops back to zero and the range is
   immediately re-allocatable.

Run through ``python -m repro.bench.invariants``, the
``benchmarks/check_invariants.py`` shim, or the suite
(``tests/test_check_invariants.py``).  Exit status 0 means every
invariant holds.
"""

from __future__ import annotations

import sys

from repro.core.shadow_pool import ShadowBufferPool
from repro.hw.locks import SpinLock
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.iommu.page_table import Perm
from repro.iova.allocators import MagazineIovaAllocator
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.net.packets import build_frame
from repro.sim.units import TCP_MSS
from repro.system import System, SystemConfig

#: Frames per core in the Fig. 3-style RX smoke run.
_FRAMES_PER_CORE = 200


def _check(ok: bool, label: str) -> None:
    if not ok:
        raise AssertionError(f"invariant violated: {label}")
    print(f"ok  {label}")


def _make_pool(**kwargs):
    machine = Machine.build(cores=2, numa_nodes=1)
    allocators = KernelAllocators(machine)
    iommu = Iommu(machine)
    domain = iommu.attach_device(1)
    fallback = MagazineIovaAllocator(machine.cost, machine.num_cores,
                                     SpinLock("depot", machine.cost))
    pool = ShadowBufferPool(machine, iommu, domain, allocators, fallback,
                            **kwargs)
    return machine, pool


def check_rx_run() -> None:
    """Short Fig. 3-style RX run, then drain the pool to empty."""
    system = System.build(SystemConfig(scheme="copy", cores=2))
    system.setup_queues()
    frame = build_frame(TCP_MSS)
    for core in system.machine.cores:
        for _ in range(_FRAMES_PER_CORE):
            if system.driver.receive_one(core, core.cid, frame) is None:
                raise AssertionError("NIC dropped a paced frame")
    pool = system.dma_api.pool
    _check(pool.check_page_rights_invariant(),
           "page-rights invariant after RX run")
    system.teardown_queues()
    _check(pool.stats.in_flight == 0,
           "no shadow buffers in flight after queue teardown")
    _check(pool.stats.acquires == pool.stats.releases,
           "acquires balance releases")
    core = system.machine.core(0)
    pool.shrink(core)
    _check(pool.stats.bytes_allocated == 0,
           "bytes_allocated == 0 after full shrink")
    _check(pool.stats.buffers_allocated == 0,
           "buffers_allocated == 0 after full shrink")
    _check(pool.fallback_iova.outstanding_ranges() == 0,
           "no outstanding fallback IOVA ranges after full shrink")


def check_grow_shrink_balance() -> None:
    """Grow → acquire → release → shrink leaves the accounting at zero."""
    machine, pool = _make_pool()
    core = machine.core(0)
    metas = [pool.acquire_shadow(core, KBuffer(pa=0x100000, size=size,
                                               node=0), size, rights)
             for size in (1500, 4096, 65536)
             for rights in (Perm.READ, Perm.WRITE)]
    assert pool.stats.bytes_allocated > 0
    for meta in metas:
        pool.release_shadow(core, meta)
    pool.shrink(core)
    _check(pool.stats.bytes_allocated == 0,
           "grow/shrink cycle balances bytes_allocated")
    _check(pool.stats.buffers_allocated == 0,
           "grow/shrink cycle balances buffers_allocated")
    _check(pool.stats.grows == pool.stats.shrinks,
           "one shrink per grow once the pool is empty")


def check_fallback_iova_recycling() -> None:
    """Retired fallback buffers return their IOVA range for reuse."""
    machine, pool = _make_pool(max_buffers_per_class=2)
    core = machine.core(0)
    metas = [pool.acquire_shadow(core, KBuffer(pa=0x100000, size=4096,
                                               node=0), 4096, Perm.READ)
             for _ in range(4)]
    _check(sum(m.fallback for m in metas) == 2,
           "metadata-array overflow takes the fallback path")
    _check(pool.fallback_iova.outstanding_ranges() == 2,
           "live fallback buffers hold external IOVA ranges")
    for meta in metas:
        pool.release_shadow(core, meta)
    pool.shrink(core)
    _check(pool.fallback_iova.outstanding_ranges() == 0,
           "retired fallback buffers returned their IOVA ranges")
    _check(pool.stats.bytes_allocated == 0
           and pool.stats.buffers_allocated == 0,
           "pool accounting balanced after fallback shrink")
    # The recycled range must be immediately re-allocatable.
    iova = pool.fallback_iova.alloc(1, core, 0x200000)
    _check(iova > 0, "retired fallback IOVA range is re-allocatable")


def main() -> int:
    check_rx_run()
    check_grow_shrink_balance()
    check_fallback_iova_recycling()
    print("all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
