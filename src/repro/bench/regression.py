"""Regression gating: compare a bench record against a baseline.

The gate matches series points between two records by
``(figure, scheme, workload, cores, param_*)``, applies per-metric
tolerance bands, and fails (exit status 1) when any matched point
regressed beyond tolerance.  For each regressed point it walks the two
span-attribution trees and names the subtree whose share of the run grew
the most — "`dma_unmap → lock_wait` went from 12% to 31%" is the
actionable sentence, not "throughput dropped".

The simulation is deterministic, so within one code version the
comparison is exact; the tolerance bands absorb intended small shifts
across versions (cost-model tweaks, workload refinements) while still
catching order-of-magnitude mistakes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.spans import SpanNode
from repro.stats.timeline import render_span_tree

#: metric name -> (higher_is_better, relative tolerance).  A point
#: regresses when it moves beyond the tolerance in the *bad* direction;
#: improvements never trip the gate.
DEFAULT_TOLERANCES: Dict[str, Tuple[bool, float]] = {
    "throughput_gbps": (True, 0.05),
    "us_per_unit": (False, 0.05),
    "latency_us": (False, 0.05),
    "transactions_per_sec": (True, 0.05),
    # Security exposure (repro.obs.exposure).  Wider bands than the perf
    # metrics: workload refinements legitimately shift the integrals, but
    # a scheme whose stale window grows past 1.5x its baseline — or
    # appears where the baseline had none — is a protection regression.
    "exposure_stale_byte_cycles": (False, 0.5),
    "exposure_excess_byte_cycles": (False, 0.5),
    # Request-latency tails (repro.obs.requests).  Percentiles are
    # noisier than means — the further into the tail, the wider the
    # band — but a p99 that doubles is exactly what this layer exists
    # to catch.
    "latency_p50_us": (False, 0.10),
    "latency_p99_us": (False, 0.15),
    "latency_p999_us": (False, 0.25),
    # Scalability (repro.obs.scaling): within-run serialized shares.
    # These are ratios of deterministic cycle counts, so the bands only
    # need to absorb intended cost-model/workload shifts — a serial
    # fraction growing 15% past baseline is a scalability collapse in
    # the making (more spinning per unit of work), exactly what the
    # ROADMAP's per-core invalidation schemes must not regress.  The
    # zero-baseline rule applies: a scheme whose lock-wait share was
    # provably zero (no-iommu, single-core) starting to spin trips.
    "lock_wait_share": (False, 0.20),
    "scaling_serial_fraction": (False, 0.15),
    # Fleet capacity (repro.bench.fleet): max sustained users at the SLO
    # objective.  The search bisects to a coarse relative tolerance, so
    # the band absorbs one bisection step either way; a capacity that
    # drops past 25% of baseline is a real knee shift.  Breach windows
    # at the capacity point are zero by construction, so the
    # zero-baseline rule does the guarding: any breach appearing where
    # the baseline had none trips the gate.
    "fleet_capacity_users": (True, 0.25),
    "slo_breach_windows": (False, 0.5),
    # Simulator speed (record["throughput"], not a series metric): the
    # only wall-clock-based number in the record, so the band must absorb
    # host variance between the baseline machine and the gating machine.
    # 0.8 means the gate trips when the simulator runs at under 1/5th of
    # the baseline's rate — an order-of-magnitude event-loop regression,
    # not scheduler jitter.
    "sim_cycles_per_wall_second": (True, 0.8),
}


@dataclass(frozen=True)
class Regression:
    """One tolerance-band violation."""

    figure: str
    scheme: str
    key: str
    metric: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Signed relative change, current vs baseline."""
        if not self.baseline:
            return math.inf if self.current else 0.0
        return (self.current - self.baseline) / self.baseline


def _row_key(row: Dict) -> Tuple:
    params = tuple(sorted((k, v) for k, v in row.items()
                          if k.startswith("param_")))
    return (row.get("scheme"), row.get("workload"), row.get("cores"),
            params)


def _key_label(key: Tuple) -> str:
    scheme, workload, cores, params = key
    detail = ", ".join(f"{k[len('param_'):]}={v}" for k, v in params)
    return f"{scheme} {workload} cores={cores} ({detail})"


def compare_records(baseline: Dict, current: Dict,
                    tolerances: Optional[Dict[str, Tuple[bool, float]]]
                    = None) -> List[Regression]:
    """All tolerance violations between two records.

    Only points present in both records are compared, so a ``--only``
    or quick-mode run gates just the figures it ran.
    """
    tol = tolerances if tolerances is not None else DEFAULT_TOLERANCES
    regressions: List[Regression] = []
    base_figures = baseline.get("figures", {})
    for fig_name, cur_fig in current.get("figures", {}).items():
        base_fig = base_figures.get(fig_name)
        if base_fig is None:
            continue
        base_rows = {_row_key(row): row
                     for row in base_fig.get("series", ())}
        for row in cur_fig.get("series", ()):
            key = _row_key(row)
            base_row = base_rows.get(key)
            if base_row is None:
                continue
            for metric, (higher_is_better, band) in tol.items():
                base_val = base_row.get(metric)
                cur_val = row.get(metric)
                if base_val is None or cur_val is None:
                    continue
                if not base_val:
                    # Zero baseline: relative change is undefined, but a
                    # lower-is-better metric growing from exactly 0 is
                    # the clearest regression there is — a scheme whose
                    # exposure was provably zero now leaks.  Higher-is-
                    # better metrics can only improve from 0; skip.
                    if not higher_is_better and cur_val > 0:
                        regressions.append(Regression(
                            figure=fig_name,
                            scheme=str(row.get("scheme")),
                            key=_key_label(key), metric=metric,
                            baseline=float(base_val),
                            current=float(cur_val)))
                    continue
                change = (cur_val - base_val) / base_val
                bad = -change if higher_is_better else change
                if bad > band:
                    regressions.append(Regression(
                        figure=fig_name, scheme=str(row.get("scheme")),
                        key=_key_label(key), metric=metric,
                        baseline=float(base_val), current=float(cur_val)))
    regressions.extend(_compare_throughput(baseline, current, tol))
    return regressions


def _compare_throughput(baseline: Dict, current: Dict,
                        tol: Dict[str, Tuple[bool, float]],
                        ) -> List[Regression]:
    """Gate the per-figure simulator-speed section, when both records
    carry one (records predating the section pass trivially)."""
    metric = "sim_cycles_per_wall_second"
    if metric not in tol:
        return []
    higher_is_better, band = tol[metric]
    base_tp = baseline.get("throughput") or {}
    regressions: List[Regression] = []
    for name, cur_entry in (current.get("throughput") or {}).items():
        base_entry = base_tp.get(name)
        if not isinstance(base_entry, dict) \
                or not isinstance(cur_entry, dict):
            continue
        base_val = base_entry.get(metric)
        cur_val = cur_entry.get(metric)
        if not base_val or cur_val is None:
            continue
        change = (cur_val - base_val) / base_val
        bad = -change if higher_is_better else change
        if bad > band:
            regressions.append(Regression(
                figure=name, scheme="*",
                key=f"simulator throughput ({name})", metric=metric,
                baseline=float(base_val), current=float(cur_val)))
    return regressions


# ----------------------------------------------------------------------
# Span attribution of a regression.
# ----------------------------------------------------------------------
def blame_span(base_tree: SpanNode,
               cur_tree: SpanNode) -> Optional[Tuple[Tuple[str, ...],
                                                     float, float]]:
    """The span path whose share of the run grew the most.

    Returns ``(path, baseline_share, current_share)`` or ``None`` when
    no path grew.  Shares (fractions of total cycles) rather than raw
    cycles keep the verdict meaningful across quick/full scales.
    Delegates to the diff engine's share-based blame so the gate's
    one-line verdict and ``repro diff`` agree by construction.
    """
    from repro.obs.diff.spandiff import share_blame

    return share_blame(base_tree, cur_tree)


def _span_verdict(baseline: Dict, current: Dict,
                  regression: Regression) -> str:
    base_spans = (baseline.get("figures", {})
                  .get(regression.figure, {}).get("spans", {}))
    cur_spans = (current.get("figures", {})
                 .get(regression.figure, {}).get("spans", {}))
    base_data = base_spans.get(regression.scheme)
    cur_data = cur_spans.get(regression.scheme)
    if base_data is None or cur_data is None:
        return "    (no span data to attribute the regression)"
    base_tree = SpanNode.from_dict(base_data)
    cur_tree = SpanNode.from_dict(cur_data)
    blamed = blame_span(base_tree, cur_tree)
    if blamed is None:
        return "    (no span subtree grew; attribution inconclusive)"
    path, base_share, cur_share = blamed
    lines = [f"    offending span subtree: {' -> '.join(path)} "
             f"({base_share:.1%} of cycles -> {cur_share:.1%})"]
    node = cur_tree
    for name in path:
        node = node.children[name]
    subtree = render_span_tree(node)
    lines.extend("    " + line for line in subtree.splitlines()[1:])
    return "\n".join(lines)


def render_gate_report(baseline: Dict, current: Dict,
                       regressions: List[Regression]) -> str:
    """Human-readable verdict for the whole comparison."""
    base_fp = baseline.get("fingerprint", {})
    cur_fp = current.get("fingerprint", {})
    lines = [
        "== regression gate ==",
        f"baseline: sha={base_fp.get('git_sha', '?')[:12]} "
        f"mode={base_fp.get('mode', '?')}",
        f"current : sha={cur_fp.get('git_sha', '?')[:12]} "
        f"mode={cur_fp.get('mode', '?')}",
    ]
    if base_fp.get("mode") != cur_fp.get("mode"):
        lines.append("warning: comparing records of different modes; "
                     "only shared points are gated")
    if base_fp.get("cost_model") != cur_fp.get("cost_model"):
        lines.append("warning: cost-model constants differ between "
                     "baseline and current")
    if not regressions:
        lines.append("PASS: no metric regressed beyond tolerance")
        return "\n".join(lines)
    lines.append(f"FAIL: {len(regressions)} regression(s)")
    for reg in regressions:
        lines.append(
            f"  {reg.figure} {reg.key}: {reg.metric} "
            f"{reg.baseline:g} -> {reg.current:g} ({reg.change:+.1%})")
        lines.append(_span_verdict(baseline, current, reg))
    return "\n".join(lines)


def write_gate_diffs(baseline: Dict, current: Dict,
                     regressions: List[Regression],
                     out_dir: str) -> List[str]:
    """One full differential report per regressed figure.

    The gate's inline verdict is one line; the emitted
    ``diff_<figure>.md`` is the whole story — per-unit span-trie deltas,
    metric movement, quantile shifts — restricted to the figure that
    tripped.  Returns the written paths (skipping figures neither
    record carries points for, e.g. the simulator-throughput section).
    """
    from pathlib import Path

    from repro.obs.diff.engine import build_diff
    from repro.obs.diff.render import render_diff_markdown
    from repro.obs.diff.sides import DiffSide, side_from_record

    base_side = side_from_record(baseline, "baseline")
    cur_side = side_from_record(current, "current")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    for figure in sorted({reg.figure for reg in regressions}):
        fig_a = DiffSide(label=f"baseline:{figure}", kind="bench")
        fig_a.points = {key: point
                        for key, point in base_side.points.items()
                        if key[0] == figure}
        fig_b = DiffSide(label=f"current:{figure}", kind="bench")
        fig_b.points = {key: point
                        for key, point in cur_side.points.items()
                        if key[0] == figure}
        if not fig_a.points or not fig_b.points:
            continue
        path = out / f"diff_{figure}.md"
        path.write_text(render_diff_markdown(build_diff(fig_a, fig_b)))
        written.append(str(path))
    return written


def gate_against_baseline(baseline_path: str, current: Dict,
                          tolerances: Optional[Dict[str,
                                                    Tuple[bool, float]]]
                          = None,
                          out_dir: Optional[str] = None) -> int:
    """Compare, print the verdict, return the exit status (0/1).

    With ``out_dir``, a failing gate also delegates root-cause analysis
    to the diff engine: every regressed figure gets a full
    ``diff_<figure>.md`` differential report next to the bench record.
    """
    from repro.bench.record import load_record

    baseline = load_record(baseline_path)
    regressions = compare_records(baseline, current, tolerances)
    print(render_gate_report(baseline, current, regressions))
    if regressions and out_dir is not None:
        for path in write_gate_diffs(baseline, current, regressions,
                                     out_dir):
            print(f"  differential report: {path}")
    return 1 if regressions else 0
