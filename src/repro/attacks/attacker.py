"""Malicious-device primitives (paper §3 attacker model).

The attacker controls a DMA-capable device but cannot otherwise touch the
OS: it can issue arbitrary reads/writes at arbitrary bus addresses through
its :class:`~repro.iommu.iommu.DmaPort`, and it can observe the IOVAs the
driver programs into it (a compromised NIC sees its own descriptors).
Everything else — reconfiguring the IOMMU, picking where the OS allocates
— is out of reach.

:class:`AttackerDevice` wraps a port with fault-catching probes so attack
scenarios can express "try to read X" and inspect the outcome instead of
handling exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import IommuFault, MemoryAccessError
from repro.iommu.iommu import DmaPort


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one attack DMA."""

    iova: int
    is_write: bool
    blocked: bool
    data: Optional[bytes] = None      # what a read returned (if it worked)
    fault_reason: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return not self.blocked


class AttackerDevice:
    """A compromised device issuing hostile DMAs."""

    def __init__(self, port: DmaPort, name: str = "malicious-nic"):
        self.port = port
        self.name = name
        self.probes: List[ProbeResult] = []

    def try_read(self, iova: int, size: int) -> ProbeResult:
        """Attempt a DMA read of ``size`` bytes at ``iova``."""
        try:
            data = self.port.dma_read(iova, size)
            result = ProbeResult(iova=iova, is_write=False, blocked=False,
                                 data=data)
        except (IommuFault, MemoryAccessError) as exc:
            result = ProbeResult(iova=iova, is_write=False, blocked=True,
                                 fault_reason=str(exc))
        self.probes.append(result)
        return result

    def try_write(self, iova: int, data: bytes) -> ProbeResult:
        """Attempt a DMA write of ``data`` at ``iova``."""
        try:
            self.port.dma_write(iova, data)
            result = ProbeResult(iova=iova, is_write=True, blocked=False)
        except (IommuFault, MemoryAccessError) as exc:
            result = ProbeResult(iova=iova, is_write=True, blocked=True,
                                 fault_reason=str(exc))
        self.probes.append(result)
        return result

    def scan_for(self, needle: bytes, iova_base: int, span: int,
                 stride: int = 4096) -> Optional[int]:
        """Sweep a bus-address range looking for ``needle``.

        Returns the IOVA where the needle was found, or ``None``.  Models
        the classic DMA-attack pattern of trawling memory for secrets
        (e.g. key material) page by page.
        """
        for offset in range(0, span, stride):
            probe = self.try_read(iova_base + offset, stride)
            if probe.succeeded and probe.data and needle in probe.data:
                return iova_base + offset + probe.data.index(needle)
        return None

    @property
    def blocked_probes(self) -> int:
        return sum(1 for p in self.probes if p.blocked)

    @property
    def successful_probes(self) -> int:
        return sum(1 for p in self.probes if p.succeeded)
