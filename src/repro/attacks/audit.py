"""Security audit: regenerate the paper's Table 1 *empirically*.

Rather than asserting each scheme's security properties, the audit runs
the attack scenarios against every scheme and derives the matrix from
observed outcomes:

* ``iommu protection``  — the arbitrary-DMA attack was blocked;
* ``sub-page protect``  — the co-located-secret read failed;
* ``no vulnerability window`` — neither window attack succeeded.

The two performance columns come from the benchmark results (they are
claims about throughput, verified by the Figure 1/6/7 benches); the
audit carries the claimed values through for rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.attacks.scenarios import (
    ScenarioOutcome,
    arbitrary_dma_attack,
    measure_scheme_exposure,
    subpage_read_attack,
    window_read_attack,
    window_write_attack,
)
from repro.dma.registry import ALL_SCHEMES, scheme_properties
from repro.errors import SecurityViolation
from repro.stats.reporting import render_exposure_report, \
    render_property_matrix

#: Column labels, matching the paper's Table 1.
TABLE1_COLUMNS = (
    "iommu protection",
    "sub-page protect",
    "no vulnerability window",
    "single core perf",
    "multi core perf",
)


@dataclass
class AuditRow:
    """One scheme's verified Table 1 row."""

    scheme: str
    label: str
    observed: Dict[str, bool]
    claimed: Dict[str, bool]
    outcomes: List[ScenarioOutcome]
    #: Quantitative exposure summary (repro.obs.exposure), attached when
    #: the audit runs with ``exposure=True``.  ``None`` either means the
    #: measurement was skipped or the scheme has no IOMMU domain.
    exposure: Optional[Dict[str, object]] = field(default=None)

    @property
    def matches_claims(self) -> bool:
        security_cols = TABLE1_COLUMNS[:3]
        return all(self.observed[c] == self.claimed[c]
                   for c in security_cols)


def audit_scheme(scheme: str, **scheme_kwargs) -> AuditRow:
    """Run every attack scenario against ``scheme``; derive its row."""
    outcomes = [
        arbitrary_dma_attack(scheme, **scheme_kwargs),
        subpage_read_attack(scheme, **scheme_kwargs),
        window_write_attack(scheme, **scheme_kwargs),
        window_read_attack(scheme, **scheme_kwargs),
    ]
    by_name = {o.name: o for o in outcomes}
    observed = {
        "iommu protection": not by_name["arbitrary-dma"].attack_succeeded,
        "sub-page protect": not by_name["subpage-read"].attack_succeeded,
        "no vulnerability window": not (
            by_name["window-write"].attack_succeeded
            or by_name["window-read"].attack_succeeded
        ),
    }
    props = scheme_properties(scheme)
    claimed = {
        "iommu protection": props.iommu_protection,
        "sub-page protect": props.sub_page,
        "no vulnerability window": props.no_window,
        "single core perf": props.single_core_perf,
        "multi core perf": props.multi_core_perf,
    }
    # Perf columns are not measurable by attacks; carry claims through.
    observed["single core perf"] = claimed["single core perf"]
    observed["multi core perf"] = claimed["multi core perf"]
    return AuditRow(scheme=scheme, label=props.label, observed=observed,
                    claimed=claimed, outcomes=outcomes)


def audit_all(schemes: Sequence[str] = ALL_SCHEMES,
              strict: bool = True,
              exposure: bool = False) -> List[AuditRow]:
    """Audit every scheme.  With ``strict``, a mismatch between observed
    security and the scheme's claimed properties raises
    :class:`~repro.errors.SecurityViolation`.  With ``exposure``, each
    row additionally carries the measured exposure summary
    (:func:`~repro.attacks.scenarios.measure_scheme_exposure`)."""
    rows = [audit_scheme(scheme) for scheme in schemes]
    if exposure:
        for row in rows:
            summary = measure_scheme_exposure(row.scheme)
            # No domains means no translation bounded the device at all
            # (no-iommu, SWIOTLB): keep None so renderers say so.
            row.exposure = summary if summary.get("domains") else None
    if strict:
        for row in rows:
            if not row.matches_claims:
                raise SecurityViolation(
                    f"scheme {row.scheme}: observed {row.observed} "
                    f"!= claimed {row.claimed}"
                )
    return rows


def render_table1(rows: Sequence[AuditRow]) -> str:
    """Render the verified matrix in the paper's Table 1 layout."""
    return render_property_matrix(
        [(row.label, row.observed) for row in rows],
        TABLE1_COLUMNS,
        title=("Table 1: protection properties (security columns verified "
               "by attack scenarios)"),
    )


def render_audit_exposure(rows: Sequence[AuditRow]) -> str:
    """Render the measured exposure surface behind the Table 1 booleans."""
    return render_exposure_report(
        [(row.label, row.exposure) for row in rows],
        title=("Exposure report: cycle-accurate surface behind the "
               "Table 1 claims"),
    )
