"""DMA attack framework: malicious device, attack scenarios, Table 1 audit."""

from repro.attacks.attacker import AttackerDevice, ProbeResult
from repro.attacks.audit import (
    TABLE1_COLUMNS,
    AuditRow,
    audit_all,
    audit_scheme,
    render_table1,
)
from repro.attacks.scenarios import (
    ALL_SCENARIOS,
    KERNEL_MAGIC,
    SECRET,
    ScenarioOutcome,
    arbitrary_dma_attack,
    subpage_read_attack,
    window_read_attack,
    window_write_attack,
)

__all__ = [
    "AttackerDevice",
    "ProbeResult",
    "ScenarioOutcome",
    "arbitrary_dma_attack",
    "subpage_read_attack",
    "window_write_attack",
    "window_read_attack",
    "ALL_SCENARIOS",
    "SECRET",
    "KERNEL_MAGIC",
    "audit_scheme",
    "audit_all",
    "render_table1",
    "AuditRow",
    "TABLE1_COLUMNS",
]
