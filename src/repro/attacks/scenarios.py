"""DMA attack scenarios (paper §1, §3, §4).

Each scenario stands up a fresh system under one protection scheme, lets
a victim driver use the DMA API exactly as the contract prescribes, and
then has a compromised device attempt an attack.  The outcome is judged
by *effect* — was the secret observed, was the kernel object corrupted —
not by whether a DMA faulted: under DMA shadowing a hostile write may
complete without a fault yet land harmlessly in a released shadow buffer.

Scenarios:

* :func:`arbitrary_dma_attack` — DMA at never-mapped memory (the basic
  IOMMU value proposition).
* :func:`subpage_read_attack` — §4 "no sub-page protection": steal a
  secret co-located on the mapped buffer's page (kmalloc co-location).
* :func:`window_write_attack` — §3/§4 "deferred protection": corrupt a
  kernel object that reuses an unmapped DMA buffer, through a stale
  IOTLB entry (this is the attack the authors used to crash Linux).
* :func:`window_read_attack` — same window, reading reused sensitive data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.attacks.attacker import AttackerDevice
from repro.dma.api import DmaApi, DmaDirection
from repro.dma.registry import create_dma_api
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.obs.context import Observability
from repro.sim.units import PAGE_SIZE

SECRET = b"TOP-SECRET-KEY-MATERIAL-0xDEADBEEF"
KERNEL_MAGIC = b"\x7fKOBJ" + bytes(range(32))

_ATTACK_DEVICE_ID = 0x66


@dataclass
class ScenarioOutcome:
    """What one scenario observed."""

    name: str
    scheme: str
    attack_succeeded: bool
    detail: str = ""
    extras: Dict[str, object] = field(default_factory=dict)


@dataclass
class _Bench:
    machine: Machine
    allocators: KernelAllocators
    iommu: Optional[Iommu]
    api: DmaApi
    attacker: AttackerDevice

    @property
    def core(self):
        return self.machine.core(0)


def _bench(scheme: str, obs: Observability | None = None,
           **scheme_kwargs) -> _Bench:
    machine = Machine.build(cores=2, numa_nodes=1, obs=obs)
    allocators = KernelAllocators(machine)
    iommu = None if scheme == "no-iommu" else Iommu(machine)
    api = create_dma_api(scheme, machine, iommu, _ATTACK_DEVICE_ID,
                         allocators, **scheme_kwargs)
    return _Bench(machine, allocators, iommu, api,
                  AttackerDevice(api.port()))


# ----------------------------------------------------------------------
def arbitrary_dma_attack(scheme: str, **scheme_kwargs) -> ScenarioOutcome:
    """The device DMAs into kernel memory that was never mapped for it."""
    bench = _bench(scheme, **scheme_kwargs)
    victim = bench.allocators.kmalloc(256, core=bench.core)
    bench.machine.memory.write(victim.pa, SECRET)
    # The attacker guesses/knows the physical address (bus address under
    # no-iommu; any unmapped IOVA otherwise behaves the same).
    probe = bench.attacker.try_read(victim.pa, len(SECRET))
    stolen = probe.succeeded and probe.data == SECRET
    return ScenarioOutcome(
        name="arbitrary-dma", scheme=scheme, attack_succeeded=stolen,
        detail=("secret read via raw DMA" if stolen
                else f"blocked: {probe.fault_reason}"),
    )


def subpage_read_attack(scheme: str, **scheme_kwargs) -> ScenarioOutcome:
    """Steal data co-located on the DMA buffer's page (§4).

    The victim driver kmallocs a 512-byte DMA buffer; the slab allocator
    co-locates an unrelated secret on the same 4 KB page.  The buffer is
    then legitimately mapped for device *read* access, and the attacker
    reads the whole page around the IOVA it was granted.
    """
    bench = _bench(scheme, **scheme_kwargs)
    core = bench.core
    slab = bench.allocators.slabs[0]
    dma_buf = slab.kmalloc(512, core)
    secret_buf = slab.kmalloc(512, core)
    if (secret_buf.pa >> 12) != (dma_buf.pa >> 12):
        raise AssertionError("slab did not co-locate — scenario invalid")
    bench.machine.memory.write(secret_buf.pa, SECRET)
    bench.machine.memory.write(dma_buf.pa, b"outbound packet data".ljust(512))

    handle = bench.api.dma_map(core, dma_buf, DmaDirection.TO_DEVICE)
    # The device reads the full page containing the buffer it was given.
    page_iova = handle.iova & ~(PAGE_SIZE - 1)
    probe = bench.attacker.try_read(page_iova, PAGE_SIZE)
    stolen = probe.succeeded and probe.data is not None and SECRET in probe.data
    if not stolen:
        # A scheme without address translation (no-iommu, SWIOTLB) still
        # fails sub-page protection trivially: the device reads the
        # co-located secret at its physical address.
        direct = bench.attacker.try_read(secret_buf.pa, len(SECRET))
        stolen = direct.succeeded and direct.data == SECRET
    bench.api.dma_unmap(core, handle)
    return ScenarioOutcome(
        name="subpage-read", scheme=scheme, attack_succeeded=stolen,
        detail=("co-located secret visible at page granularity" if stolen
                else "device saw only the mapped bytes"),
        extras={"page_readable": probe.succeeded},
    )


def _map_use_unmap(bench: _Bench, payload: bytes,
                   direction: DmaDirection) -> tuple[KBuffer, int]:
    """Victim I/O: map a buffer, let the device use it legitimately
    (caching the translation in the IOTLB), then unmap.

    Returns (buffer, iova).  ``FROM_DEVICE`` models an RX buffer (device
    writes it), ``TO_DEVICE`` a TX buffer (device reads it).
    """
    core = bench.core
    pa = bench.allocators.alloc_pages(0, node=0, core=core)
    buf = KBuffer(pa=pa, size=2048, node=0)
    if direction.device_reads:
        bench.machine.memory.write(buf.pa, payload)
    handle = bench.api.dma_map(core, buf, direction)
    # Legitimate DMA — this is what pulls the mapping into the IOTLB.
    if direction.device_writes:
        probe = bench.attacker.try_write(handle.iova, payload)
    else:
        probe = bench.attacker.try_read(handle.iova, len(payload))
    assert probe.succeeded, "legitimate DMA must work"
    bench.api.dma_unmap(core, handle)
    return buf, handle.iova


def window_write_attack(scheme: str, flush_first: bool = False,
                        **scheme_kwargs) -> ScenarioOutcome:
    """Corrupt a reused buffer through the deferred-unmap window (§3).

    After ``dma_unmap`` returns, the OS reuses the buffer's memory for a
    kernel object.  The device then writes through the stale IOVA.  With
    deferred protection the stale IOTLB entry makes the write land — the
    effect that crashed Linux for the authors.  ``flush_first`` runs the
    batched invalidations before attacking (closing the window), which
    lets tests bound the window's lifetime.
    """
    bench = _bench(scheme, **scheme_kwargs)
    buf, iova = _map_use_unmap(bench, b"legitimate inbound packet",
                               DmaDirection.FROM_DEVICE)
    # OS reuses the freed DMA buffer for a kernel object.
    bench.machine.memory.write(buf.pa, KERNEL_MAGIC)
    if flush_first:
        bench.api.flush_deferred(bench.core)
    probe = bench.attacker.try_write(iova, b"\xff" * len(KERNEL_MAGIC))
    corrupted = bench.machine.memory.read(buf.pa, len(KERNEL_MAGIC)) != KERNEL_MAGIC
    if not corrupted:
        # Without address translation the stale-IOVA detour is moot: the
        # device can corrupt the reused memory at its physical address.
        bench.attacker.try_write(buf.pa, b"\xff" * len(KERNEL_MAGIC))
        corrupted = (bench.machine.memory.read(buf.pa, len(KERNEL_MAGIC))
                     != KERNEL_MAGIC)
    return ScenarioOutcome(
        name="window-write", scheme=scheme, attack_succeeded=corrupted,
        detail=("kernel object corrupted through stale IOTLB entry"
                if corrupted else
                ("DMA blocked" if probe.blocked
                 else "DMA landed harmlessly outside OS memory")),
        extras={"dma_blocked": probe.blocked, "flushed": flush_first},
    )


def window_read_attack(scheme: str, flush_first: bool = False,
                       **scheme_kwargs) -> ScenarioOutcome:
    """Steal sensitive data placed in a reused DMA buffer (§3, §4)."""
    bench = _bench(scheme, **scheme_kwargs)
    # A transmit buffer: mapped readable, so the stale IOTLB entry grants
    # the device *read* access to whatever reuses this memory.
    buf, iova = _map_use_unmap(bench, b"legitimate outbound packet",
                               DmaDirection.TO_DEVICE)
    bench.machine.memory.write(buf.pa, SECRET)
    if flush_first:
        bench.api.flush_deferred(bench.core)
    probe = bench.attacker.try_read(iova, len(SECRET))
    stolen = probe.succeeded and probe.data == SECRET
    if not stolen:
        direct = bench.attacker.try_read(buf.pa, len(SECRET))
        stolen = direct.succeeded and direct.data == SECRET
    return ScenarioOutcome(
        name="window-read", scheme=scheme, attack_succeeded=stolen,
        detail=("reused secret read through stale IOTLB entry" if stolen
                else ("DMA blocked" if probe.blocked
                      else "device saw stale shadow contents, not the secret")),
        extras={"dma_blocked": probe.blocked, "flushed": flush_first},
    )


def measure_scheme_exposure(scheme: str,
                            **scheme_kwargs) -> Dict[str, object]:
    """Run a canonical victim I/O sequence under exposure accounting
    and return the scheme's :class:`~repro.obs.exposure` summary.

    The sequence exercises both exposure mechanisms Table 1 is about:

    1. a **sub-page TX buffer** (512 B from the slab) — page-granular
       mapping exposes the co-located remainder of its page
       (granularity excess), byte-granular shadowing does not;
    2. a **page RX buffer**, mapped/used/unmapped and then probed at
       its stale IOVA — deferred schemes leave it reachable until the
       batch flush (stale-window exposure), strict schemes revoke it
       inside ``dma_unmap``.

    The returned summary is deterministic for a given scheme, which is
    what lets the audit print it and the bench gate guard it.
    """
    obs = Observability.capture(trace_capacity=4096)
    bench = _bench(scheme, obs=obs, **scheme_kwargs)
    core = bench.core
    api = bench.api

    # --- sub-page co-location: the granularity-excess probe.
    slab = bench.allocators.slabs[0]
    small = slab.kmalloc(512, core)
    bench.machine.memory.write(small.pa, b"outbound payload".ljust(512))
    h1 = api.dma_map(core, small, DmaDirection.TO_DEVICE)
    bench.attacker.try_read(h1.iova, 512)     # caches the translation
    api.dma_unmap(core, h1)
    # Probe the revoked IOVA: strict faults (forensics), deferred reads
    # through the stale entry (a counted stale access).
    bench.attacker.try_read(h1.iova, 64)

    # --- RX page buffer: the stale-window carrier.
    pa = bench.allocators.alloc_pages(0, node=0, core=core)
    buf = KBuffer(pa=pa, size=2048, node=0)
    h2 = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    bench.attacker.try_write(h2.iova, b"inbound frame".ljust(1024))
    api.dma_unmap(core, h2)
    bench.attacker.try_write(h2.iova, b"\xff" * 64)

    # Any deferred batch flushes now — the true revocation instant that
    # closes the open windows.  Self-invalidating hardware revokes on
    # its own budget/lifetime; force that expiry so its (bounded)
    # window is measured rather than left open.
    api.flush_deferred(core)
    expire = getattr(api, "expire_all", None)
    if expire is not None:
        # The hardware revokes at its lifetime boundary, not at disarm:
        # advance the clock there so the measured window reflects the
        # bound the scheme actually guarantees.
        bench.machine.sync_clocks(bench.machine.wall_clock()
                                  + api.lifetime_cycles)
        expire()
    return obs.exposure.summary()


ALL_SCENARIOS = (
    arbitrary_dma_attack,
    subpage_read_attack,
    window_write_attack,
    window_read_attack,
)
