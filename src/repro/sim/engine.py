"""Min-clock discrete-event scheduler.

The simulation interleaves per-core work units (one packet, one message,
one transaction) in global time order: at every step the runnable core
with the smallest local clock executes its next unit, advancing its clock
through cycle charges and lock waits.  Because locks and shared hardware
resources coordinate through absolute timestamps, this ordering is all
that is needed for contention to resolve deterministically.

Work is supplied as :class:`CoreTask` objects — thin wrappers around a
``step()`` callable that processes one unit and reports whether more work
remains.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, List

from repro.errors import SimulationError
from repro.hw.cpu import Core
from repro.obs.context import NULL_OBS, Observability
from repro.obs.spans import SPAN_STEP
from repro.obs.trace import EV_SCHED_STEP


@dataclass
class CoreTask:
    """A stream of work units bound to one core.

    ``step`` runs exactly one unit on ``core`` and returns ``True`` while
    more units remain.  ``units_done`` counts completed steps.
    """

    core: Core
    step: Callable[[Core], bool]
    name: str = "task"
    units_done: int = 0

    def run_one(self) -> bool:
        more = self.step(self.core)
        self.units_done += 1
        return bool(more)


@dataclass
class GeneratorTask:
    """A work stream expressed as a generator, for fine-grained interleaving.

    The generator should ``yield`` at every natural preemption point —
    in particular *between lock acquisitions* (e.g. between the RX and TX
    halves of a transaction).  With coarse, multi-lock atomic steps the
    timestamp-based lock model over-serializes: it remembers only the
    last release, so a behind-clock core would wait out idle gaps it
    could really have used.  Yielding often keeps all core clocks close
    together, where the timestamp model is accurate.
    """

    core: Core
    gen: "object"                   # iterator; each next() is one segment
    name: str = "gen-task"
    units_done: int = 0

    def run_one(self) -> bool:
        try:
            signal = next(self.gen)
        except StopIteration:
            return False
        if signal is not None:      # yield UNIT_DONE to count a unit
            self.units_done += 1
        return True


#: Sentinel a generator yields to mark a completed work unit.
UNIT_DONE = object()

#: Units one task may run per heap pop while it stays the min-clock core.
#: Batching elides a heap push/pop per unit; ``1`` reproduces the classic
#: pop-per-unit loop exactly (the reference the determinism tests use).
DEFAULT_BURST = 64


class Scheduler:
    """Interleaves :class:`CoreTask` streams by smallest core clock."""

    def __init__(self, tasks: Iterable["CoreTask | GeneratorTask"],
                 obs: Observability | None = None):
        self.tasks: List["CoreTask | GeneratorTask"] = list(tasks)
        self.obs = obs if obs is not None else NULL_OBS
        if not self.tasks:
            raise SimulationError("scheduler needs at least one task")
        seen = set()
        for task in self.tasks:
            if task.core.cid in seen:
                raise SimulationError(
                    f"core {task.core.cid} assigned to more than one task"
                )
            seen.add(task.core.cid)

    def run(self, max_units: int | None = None,
            burst: int | None = None) -> int:
        """Run until every task is exhausted (or ``max_units`` steps total).

        A popped task keeps running — up to ``burst`` units (default
        :data:`DEFAULT_BURST`) — while its clock stays *strictly* below
        every other runnable task's, which is exactly when the classic
        pop-per-unit loop would pop it again: on a clock tie the other
        task holds the older heap entry and wins.  Batching is therefore
        cycle- and trace-identical to ``burst=1``.

        Returns the number of work units executed.
        """
        if burst is None:
            burst = DEFAULT_BURST
        if burst < 1:
            raise SimulationError(f"burst must be positive: {burst}")
        counter = itertools.count()
        heap = [(task.core.now, next(counter), task) for task in self.tasks]
        heapq.heapify(heap)
        if self.obs.enabled:
            return self._run_traced(heap, counter, max_units, burst)
        return self._run_fast(heap, counter, max_units, burst)

    def _run_fast(self, heap, counter, max_units, burst) -> int:
        """The pre-bound fast loop: no observability lookups per unit."""
        pop = heapq.heappop
        push = heapq.heappush
        executed = 0
        while heap:
            if max_units is not None and executed >= max_units:
                break
            _, _, task = pop(heap)
            core = task.core
            run_one = task.run_one
            # A burst never overruns max_units: the budget is clamped to
            # the remaining allowance before the inner loop starts.
            budget = burst if max_units is None \
                else min(burst, max_units - executed)
            while True:
                more = run_one()
                executed += 1
                budget -= 1
                if not more or budget == 0:
                    break
                if heap and heap[0][0] <= core.now:
                    break
            if more:
                push(heap, (core.now, next(counter), task))
        return executed

    def _run_traced(self, heap, counter, max_units, burst) -> int:
        """The traced loop: per-unit spans and ``sched.step`` events even
        within a burst, so batched traces match step-by-step traces."""
        spans = self.obs.spans
        emit = self.obs.tracer.emit
        executed = 0
        while heap:
            if max_units is not None and executed >= max_units:
                break
            _, _, task = heapq.heappop(heap)
            core = task.core
            run_one = task.run_one
            name = task.name
            cid = core.cid
            budget = burst if max_units is None \
                else min(burst, max_units - executed)
            while True:
                started_at = core.now
                spans.begin(SPAN_STEP, core)
                more = run_one()
                executed += 1
                budget -= 1
                spans.end(core)
                emit(EV_SCHED_STEP, started_at, cid, task=name,
                     ran_cycles=core.now - started_at,
                     units=task.units_done)
                if not more or budget == 0:
                    break
                if heap and heap[0][0] <= core.now:
                    break
            if more:
                heapq.heappush(heap, (core.now, next(counter), task))
        return executed


def run_per_core(cores: Iterable[Core],
                 make_step: Callable[[Core], Callable[[Core], bool]],
                 obs: Observability | None = None) -> Scheduler:
    """Convenience: build one task per core via ``make_step`` and run it.

    ``make_step(core)`` must return the task's ``step`` callable.  Returns
    the scheduler (already run) so callers can inspect task counters.
    """
    tasks = [CoreTask(core=c, step=make_step(c), name=f"core{c.cid}")
             for c in cores]
    sched = Scheduler(tasks, obs=obs)
    sched.run()
    return sched
