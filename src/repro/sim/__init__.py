"""Discrete-event simulation core: units, cost model, scheduler."""

from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.engine import CoreTask, Scheduler, run_per_core
from repro.sim.units import (
    CPU_FREQ_HZ,
    CYCLES_PER_US,
    ETH_MTU,
    PAGE_SIZE,
    TCP_MSS,
    TSO_MAX_BYTES,
    cycles_to_seconds,
    cycles_to_us,
    throughput_gbps,
    us_to_cycles,
)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "CoreTask",
    "Scheduler",
    "run_per_core",
    "CPU_FREQ_HZ",
    "CYCLES_PER_US",
    "PAGE_SIZE",
    "ETH_MTU",
    "TCP_MSS",
    "TSO_MAX_BYTES",
    "us_to_cycles",
    "cycles_to_us",
    "cycles_to_seconds",
    "throughput_gbps",
]
