"""Calibrated cycle-cost model for the simulated machine.

The paper's headline claim is a *cost comparison*: copying a DMA buffer is
usually cheaper than an IOTLB invalidation, and under multicore load the
invalidation lock makes zero-copy strict protection collapse.  We reproduce
the comparison by charging measured costs — taken from the paper's own
packet-processing breakdowns (Figures 5 and 8) and its §2.2.1 background —
to simulated cores inside a discrete-event simulation.  Lock contention,
queueing at the IOMMU invalidation hardware, and the throughput crossovers
then *emerge* from the simulation rather than being hard-coded.

Calibration sources (all §6 of the paper, 2.4 GHz Haswell ⇒ 2400 cyc/µs):

===============================  ==========  =============================
quantity                         paper       model constant
===============================  ==========  =============================
IOTLB invalidation (idle)        0.61 µs     ``iotlb_invalidation_cycles``
IOTLB invalidation (16 cores)    2.7 µs      ``iotlb_contention_alpha``
IOMMU page-table map+unmap/page  0.17 µs     ``pt_map_cycles + pt_unmap_cycles``
memcpy of 1500 B                 0.11 µs     ``memcpy_cycles(1500)``
memcpy of 64 KB                  4.65 µs     ``memcpy_cycles(65536)``
shadow pool acquire+release      0.02 µs     ``pool_acquire + pool_release``
identity+ spinlock, 16-core RX   ≈ 70 µs     emerges from the lock model
cache pollution, 64 KB copy      ≈ 2 µs      ``pollution_cycles(65536)``
===============================  ==========  =============================

Baseline (protection-independent) stack costs are chosen so the no-IOMMU
end-to-end rates land where the paper's figures put them: ≈17.5 Gb/s
single-core RX at large messages (Fig. 3a) and ≈36 Gb/s single-core TX
with TSO (Fig. 4a).  These are documented per constant below.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.units import CYCLES_PER_US, us_to_cycles


@dataclass
class CostModel:
    """All tunable cycle costs for the simulation.

    Instances are plain dataclasses so experiments can perturb a single
    constant (e.g. for sensitivity analysis) without monkey-patching.
    """

    # ------------------------------------------------------------------
    # memcpy — enhanced REP MOVSB (§5.4: ERMS beats SIMD variants).
    # 1500 B → ≈0.11 µs and 64 KB → ≈4.65 µs give ≈5.8 B/cycle + fixed cost.
    # ------------------------------------------------------------------
    memcpy_fixed_cycles: int = 40
    memcpy_bytes_per_cycle: float = 5.8

    #: Cache-pollution penalty charged per cache line copied, accounting for
    #: the destination/source lines evicted from L1/L2 (Fig. 5b attributes
    #: ≈2 µs of extra "other" time to the 64 KB copy's pollution).
    pollution_cycles_per_line: float = 5.0
    #: Copies at or below this size fit comfortably in L1 (32 KB) together
    #: with the working set and are charged no pollution... except that the
    #: paper's RX numbers (0.76× no-IOMMU at 1500 B) require a small cold-
    #: line penalty even for MTU copies, so the threshold is a single page.
    pollution_free_bytes: int = 256
    cache_line_bytes: int = 64

    # ------------------------------------------------------------------
    # IOMMU hardware.
    # ------------------------------------------------------------------
    #: Latency of one IOTLB invalidation with an idle invalidation queue
    #: (Fig. 5a: identity+ spends 0.61 µs per packet on invalidation).
    iotlb_invalidation_cycles: int = us_to_cycles(0.61)
    #: Linear slowdown of the invalidation hardware per additional core
    #: concurrently submitting invalidations.  Calibrated so 16 concurrent
    #: cores see ≈2.7 µs per invalidation (Fig. 8a): 0.61·(1+α·15) = 2.7.
    iotlb_contention_alpha: float = 0.23
    #: Window (number of recent submissions) over which concurrency at the
    #: invalidation queue is estimated.
    iotlb_contention_window: int = 32

    #: Cost of submitting a descriptor to the invalidation queue (ring-buffer
    #: write + tail register MMIO).
    invq_submit_cycles: int = 300
    #: Cost of the busy-wait bookkeeping for a wait descriptor (strict mode
    #: polls a memory location the IOMMU writes on completion).
    invq_wait_poll_cycles: int = 350

    # ------------------------------------------------------------------
    # Scalable invalidation (per-core queues, ranged descriptors,
    # prefetch) — the post-2016 remedies; see iommu/invalidation.py.
    # ------------------------------------------------------------------
    #: Hardware dispatch slot per descriptor on a *per-core* ring.  The
    #: engine walks the rings round-robin and pipelines descriptor
    #: execution, so occupancy per descriptor is a fraction of the
    #: end-to-end latency (which submitters still observe in full).
    #: Calibrated at ~1/5 of the idle latency: the engine can retire ~5
    #: concurrent shards' traffic before queueing delay appears.
    invq_percore_service_cycles: int = us_to_cycles(0.12)
    #: CPU cost of each *additional* ranged descriptor in one batched
    #: submission (ring write only; tail MMIO and wait descriptor are
    #: shared across the batch).
    invq_ranged_desc_cycles: int = 80
    #: Hardware latency added per additional ranged descriptor in a
    #: batch (descriptor fetch + decode).
    invq_ranged_desc_service_cycles: int = 150
    #: Hardware latency added per page named by a ranged descriptor
    #: (IOTLB CAM sweep is range-sized, unlike a single-page tag match).
    invq_ranged_page_service_cycles: int = 4

    #: IOMMU page-table update, per 4 KB page, on map (Fig. 5a: identity±
    #: spend 0.17 µs per packet on page-table management, split evenly
    #: between map and unmap).
    pt_map_cycles: int = us_to_cycles(0.085)
    #: IOMMU page-table update, per 4 KB page, on unmap.
    pt_unmap_cycles: int = us_to_cycles(0.085)
    #: IOTLB lookup cost on a device-side translation (charged to the device
    #: model, not a CPU core; kept small — the IOTLB hit path is hardware).
    iotlb_lookup_cycles: int = 0

    # ------------------------------------------------------------------
    # IOVA allocation.
    # ------------------------------------------------------------------
    #: Identity mapping "allocation" — computing IOVA = physical address.
    iova_identity_cycles: int = 40
    #: Linux red-black-tree IOVA allocator, uncontended alloc or free.  The
    #: paper uses the identity variant of [42] precisely because the stock
    #: allocator (and its global lock) is a separate Linux bottleneck.
    iova_rbtree_cycles: int = 300
    #: Scalable per-core (magazine) IOVA allocator of [42].
    iova_magazine_cycles: int = 90

    # ------------------------------------------------------------------
    # Locks.
    # ------------------------------------------------------------------
    #: Uncontended spinlock acquire+release pair.
    lock_uncontended_cycles: int = 60
    #: Extra penalty per contended hand-off (cache-line transfer between
    #: cores plus the ticket-lock wakeup).
    lock_handoff_cycles: int = 400

    # ------------------------------------------------------------------
    # Deferred-protection bookkeeping (identity−, [42]-style per-core
    # batching: flush after 250 invalidations or 10 ms).
    # ------------------------------------------------------------------
    deferred_batch_size: int = 250
    deferred_timeout_cycles: int = us_to_cycles(10_000.0)  # 10 ms
    #: Per-unmap cost of queueing the IOVA on the per-core flush list and
    #: deferring its deallocation.
    deferred_bookkeeping_cycles: int = 260
    #: Bounded-window variant (identity-deferred-bounded): flush when the
    #: oldest pending entry is this old, even if the 250-entry batch is
    #: not full — caps the vulnerability window at 100 µs instead of
    #: 10 ms, turning stale-window byte·cycles into a tunable knob.
    deferred_window_budget_cycles: int = us_to_cycles(100.0)
    #: CPU cost per page of posting an IOTLB prefetch hint at map time
    #: (identity-strict-prefetch; MMU-aware DMA engine style).
    iotlb_prefetch_cycles: int = 30

    # ------------------------------------------------------------------
    # Shadow buffer pool (the contribution) — Fig. 5a: 0.02 µs management.
    # ------------------------------------------------------------------
    pool_acquire_cycles: int = 24
    pool_release_cycles: int = 24
    #: find_shadow is O(1) — decode the IOVA and index the metadata array.
    pool_find_cycles: int = 12
    #: Slow path: carving a fresh page(s) into shadow buffers, writing the
    #: metadata node and installing the permanent IOMMU mapping.  Infrequent
    #: (only while the pool grows), so the exact value barely matters.
    pool_grow_cycles: int = 2200
    #: Extra cost per release when the releasing core does not own the free
    #: list (remote cache-line transfer on the tail lock).
    pool_remote_release_cycles: int = 120
    #: Evaluating a driver-supplied copying hint (§5.4).
    copy_hint_cycles: int = 30
    #: Slowdown of a copy whose source and destination live on different
    #: NUMA nodes (why shadow buffers are sticky — §5.3).
    numa_remote_copy_factor: float = 1.6

    # ------------------------------------------------------------------
    # Kernel memory allocation substrate.
    # ------------------------------------------------------------------
    kmalloc_cycles: int = 120
    kfree_cycles: int = 100
    page_alloc_cycles: int = 120
    page_free_cycles: int = 100

    # ------------------------------------------------------------------
    # Baseline network-stack costs (protection independent).  Calibrated
    # against the paper's no-IOMMU curves; see module docstring.
    # ------------------------------------------------------------------
    #: Parsing/validating a received frame (eth+IP+TCP header processing).
    rx_parse_cycles: int = 420
    #: Per-RX-packet "everything else": interrupt amortization, skb
    #: bookkeeping, socket queueing, scheduler wakeups.  Together with
    #: parse + copy_to_user this puts single-core no-IOMMU RX at ≈17.5 Gb/s
    #: for MTU packets (Fig. 3a).
    rx_other_cycles: int = 550
    #: Refilling one RX descriptor (buffer alloc cost charged separately).
    rx_refill_cycles: int = 80

    #: Syscall entry/exit for send()/recv().
    syscall_cycles: int = 600
    #: Per-message TCP transmit bookkeeping (congestion control, skb alloc).
    tcp_tx_fixed_cycles: int = 1000
    #: Per-4KB-page transmit-path cost: page allocation/charging and frag
    #: append in tcp_sendmsg.  Dominates large-message TX; calibrated so
    #: no-IOMMU single-core TSO TX lands near the paper's ≈36 Gb/s.
    tcp_tx_per_page_cycles: int = 1000
    #: Driver work to build one TX descriptor (per scatter-gather element).
    tx_desc_cycles: int = 80
    #: TX completion processing per transmitted chunk.
    tx_complete_cycles: int = 800
    #: Processing the (coalesced) ACK feedback per TSO chunk.  Modeled as
    #: plain CPU cost — see DESIGN.md for why ACK DMAs are not separately
    #: charged through the DMA API.
    ack_process_cycles: int = 350

    #: One-way NIC/driver interrupt + PCIe latency for the request/response
    #: latency model (Fig. 9: back-to-back 40 GbE RTTs start near ≈15 µs).
    wire_latency_cycles: int = us_to_cycles(6.0)
    #: Scheduler wakeup of the blocked netperf/memcached thread.
    wakeup_cycles: int = us_to_cycles(0.6)

    #: Effective NIC TX line rate in Gb/s.  Slightly below the nominal
    #: 40 Gb/s: TSO segmentation, framing overhead, and PCIe overheads cap
    #: the achievable TX goodput (the paper's TX curves saturate ≈36 Gb/s).
    nic_tx_line_gbps: float = 36.0
    #: Effective NIC RX line rate in Gb/s (goodput of MTU frames at 40 Gb/s
    #: minus eth/IP/TCP framing: 1460/1538 · 40 ≈ 38).
    nic_rx_line_gbps: float = 38.0

    # ------------------------------------------------------------------
    # Application-level costs.
    # ------------------------------------------------------------------
    #: memcached per-transaction CPU (hashing, LRU, libevent, syscalls) on
    #: top of the raw network path.  Calibrated so the non-collapsed schemes
    #: land near the paper's ≈1.3 M transactions/s at 16 cores (Fig. 11).
    memcached_app_cycles: int = us_to_cycles(10.0)
    #: memslap client offered-load ceiling, transactions/s (aggregate).
    memslap_offered_tps: float = 1.45e6

    #: netperf sender syscall ceiling, messages/s: for small messages the
    #: sender's syscall rate — not the receiver — is the bottleneck, which
    #: is why all RX curves coincide below 512 B (§6, footnote 6).
    netperf_sender_msgs_per_sec: float = 1.25e6

    derived: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Convenience computations.
    # ------------------------------------------------------------------
    def memcpy_cycles(self, nbytes: int) -> int:
        """Cycles for an ERMS ``memcpy`` of ``nbytes`` (§5.4)."""
        if nbytes <= 0:
            return 0
        return self.memcpy_fixed_cycles + round(nbytes / self.memcpy_bytes_per_cycle)

    def pollution_cycles(self, nbytes: int) -> int:
        """Deferred cache-pollution cost of copying ``nbytes``.

        Charged to the *other* category: the cost is paid later, by code
        that misses on the lines the copy evicted (Fig. 5b discussion).
        """
        if nbytes <= self.pollution_free_bytes:
            return 0
        lines = nbytes / self.cache_line_bytes
        return round(lines * self.pollution_cycles_per_line)

    def copy_to_user_cycles(self, nbytes: int) -> int:
        """Kernel→user (or user→kernel) copy; same engine as memcpy."""
        return self.memcpy_cycles(nbytes)

    # ------------------------------------------------------------------
    # Vectorized burst accumulation.  Per-item costs are integral, so a
    # burst of ``n`` identical items costs exactly ``n`` per-item charges
    # — one multiply replaces ``n`` round trips through ``core.charge``
    # without shifting a single cycle.  Callers may only coalesce charges
    # across operations that read no clock in between (no locks, shared
    # hardware, or observability notes).
    # ------------------------------------------------------------------
    def tx_desc_burst_cycles(self, count: int) -> int:
        """Driver work to build ``count`` back-to-back TX descriptors
        (one scatter-gather posting loop)."""
        return self.tx_desc_cycles * max(0, count)

    def pt_map_range_cycles(self, npages: int) -> int:
        """Page-table update cost for mapping an ``npages`` range."""
        return self.pt_map_cycles * max(0, npages)

    def pt_unmap_range_cycles(self, npages: int) -> int:
        """Page-table update cost for unmapping an ``npages`` range."""
        return self.pt_unmap_cycles * max(0, npages)

    def memcpy_cycles_burst(self, nbytes: int, count: int) -> int:
        """``count`` back-to-back ERMS copies of ``nbytes`` each."""
        if count <= 0:
            return 0
        return count * self.memcpy_cycles(nbytes)

    def iotlb_invalidation_latency(self, concurrency: int) -> int:
        """Invalidation latency when ``concurrency`` cores are submitting.

        Linear degradation calibrated against Fig. 8a (0.61 µs idle →
        ≈2.7 µs with 16 concurrent cores).
        """
        n = max(1, concurrency)
        scale = 1.0 + self.iotlb_contention_alpha * (n - 1)
        return round(self.iotlb_invalidation_cycles * scale)

    def ranged_invalidation_extra_cycles(self, ndesc: int,
                                         npages: int) -> int:
        """Hardware latency added by a *ranged* batched submission on top
        of the base invalidation latency: descriptor fetch/decode per
        additional descriptor, plus a per-page IOTLB sweep component.

        The curve is deliberately sublinear versus submitting each range
        at full latency — that gap is the whole point of ranged
        descriptors — but not free, so huge scatter-gather batches still
        show up in the latency histogram.
        """
        return (self.invq_ranged_desc_service_cycles * max(0, ndesc - 1)
                + self.invq_ranged_page_service_cycles * max(0, npages))

    def us(self, cycles: float) -> float:
        """Convert cycles to microseconds (breakdown reporting helper)."""
        return cycles / CYCLES_PER_US


#: Shared default instance.  Experiments that need to perturb costs should
#: construct their own ``CostModel(...)`` instead of mutating this one.
DEFAULT_COST_MODEL = CostModel()
