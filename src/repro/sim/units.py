"""Unit conversions used across the simulator.

The whole timing model is expressed in *CPU cycles* of the evaluated
machine — a 2.40 GHz Intel Xeon E5-2630 v3 (Haswell), per the paper's
experimental setup (§6).  Throughput is expressed in bits per second and
converted via the cycle clock.  Keeping a single canonical unit (cycles)
avoids the float drift that mixing nanoseconds and cycles would cause.
"""

from __future__ import annotations

#: Clock frequency of the evaluated machine (§6: 2.40 GHz Haswell,
#: Turbo Boost disabled, so the clock is fixed).
CPU_FREQ_HZ: float = 2.4e9

#: Cycles per microsecond at :data:`CPU_FREQ_HZ`.
CYCLES_PER_US: float = CPU_FREQ_HZ / 1e6

#: Standard x86 page size.  IOMMU mappings are done at this granularity.
PAGE_SIZE: int = 4096
PAGE_SHIFT: int = 12

#: Ethernet MTU used throughout the evaluation (1500-byte frames).
ETH_MTU: int = 1500

#: TCP maximum segment size for an MTU of 1500 (20 B IP + 20 B TCP headers,
#: no options — netperf's default back-to-back configuration).
TCP_MSS: int = ETH_MTU - 40

#: Largest buffer a TSO-capable NIC accepts in one transmit descriptor chain.
TSO_MAX_BYTES: int = 64 * 1024

KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024


def us_to_cycles(us: float) -> int:
    """Convert microseconds to (rounded) CPU cycles."""
    return round(us * CYCLES_PER_US)


def cycles_to_us(cycles: float) -> float:
    """Convert CPU cycles to microseconds."""
    return cycles / CYCLES_PER_US


def cycles_to_seconds(cycles: float) -> float:
    """Convert CPU cycles to seconds."""
    return cycles / CPU_FREQ_HZ


def seconds_to_cycles(seconds: float) -> int:
    """Convert seconds to (rounded) CPU cycles."""
    return round(seconds * CPU_FREQ_HZ)


def gbps_to_bytes_per_cycle(gbps: float) -> float:
    """Convert a line rate in Gb/s to bytes transferred per CPU cycle."""
    return (gbps * 1e9 / 8.0) / CPU_FREQ_HZ


def throughput_gbps(total_bytes: int, elapsed_cycles: float) -> float:
    """Aggregate throughput in Gb/s for ``total_bytes`` over ``elapsed_cycles``."""
    if elapsed_cycles <= 0:
        return 0.0
    seconds = cycles_to_seconds(elapsed_cycles)
    return total_bytes * 8.0 / seconds / 1e9


def pages_spanned(addr: int, size: int) -> int:
    """Number of 4 KB pages touched by the byte range ``[addr, addr+size)``."""
    if size <= 0:
        return 0
    first = addr >> PAGE_SHIFT
    last = (addr + size - 1) >> PAGE_SHIFT
    return last - first + 1


def page_align_down(addr: int) -> int:
    """Round ``addr`` down to a page boundary."""
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    """Round ``addr`` up to a page boundary."""
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
