"""Machine model: cores, NUMA nodes, physical memory, cost model.

The default geometry mirrors the paper's testbed (§6): a dual-socket
2.4 GHz Haswell with 8 cores per socket (hyperthreading disabled) and one
NUMA domain per socket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.faults.injector import NULL_FAULTS
from repro.hw.cpu import Core
from repro.hw.memory import PhysicalMemory
from repro.obs.context import NULL_OBS, Observability
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel


@dataclass
class NumaNode:
    """One NUMA domain: a set of cores plus a physical-memory region."""

    nid: int
    cores: List[Core] = field(default_factory=list)


class Machine:
    """The simulated host: topology plus shared cost model.

    Use :meth:`build` for the common case::

        machine = Machine.build(cores=16, numa_nodes=2)
    """

    def __init__(self, cores: List[Core], nodes: List[NumaNode],
                 memory: PhysicalMemory, cost: CostModel,
                 obs: Observability | None = None, faults=None):
        if not cores:
            raise ConfigurationError("machine needs at least one core")
        self.cores = cores
        self.nodes = nodes
        self.memory = memory
        self.cost = cost
        #: Observability context every component built on this machine
        #: shares.  Disabled (NULL_OBS) by default — see repro.obs.
        self.obs = obs if obs is not None else NULL_OBS
        #: Fault injector shared the same way (NULL_FAULTS by default) —
        #: see repro.faults.
        self.faults = faults if faults is not None else NULL_FAULTS

    @classmethod
    def build(cls, cores: int = 16, numa_nodes: int = 2,
              cost: CostModel | None = None,
              obs: Observability | None = None,
              faults=None) -> "Machine":
        """Construct a machine with ``cores`` spread evenly over ``numa_nodes``."""
        if cores < 1:
            raise ConfigurationError(f"invalid core count: {cores}")
        if numa_nodes < 1 or numa_nodes > cores:
            raise ConfigurationError(
                f"invalid NUMA node count {numa_nodes} for {cores} cores"
            )
        cost = cost if cost is not None else DEFAULT_COST_MODEL
        nodes = [NumaNode(nid) for nid in range(numa_nodes)]
        core_objs: List[Core] = []
        for cid in range(cores):
            # Block distribution, like the paper's machine: cores 0..7 on
            # socket 0, cores 8..15 on socket 1.
            nid = min(cid * numa_nodes // cores, numa_nodes - 1)
            core = Core(cid=cid, numa_node=nid)
            core_objs.append(core)
            nodes[nid].cores.append(core)
        memory = PhysicalMemory(num_nodes=numa_nodes)
        return cls(core_objs, nodes, memory, cost, obs=obs, faults=faults)

    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def core(self, cid: int) -> Core:
        return self.cores[cid]

    def node_of_core(self, cid: int) -> int:
        return self.cores[cid].numa_node

    def wall_clock(self) -> int:
        """Latest local clock across all cores (the run's wall time)."""
        return max(core.now for core in self.cores)

    def sync_clocks(self, when: int | None = None) -> int:
        """Advance every core (idling) to a common instant; returns it."""
        target = when if when is not None else self.wall_clock()
        for core in self.cores:
            core.advance_to(target)
        return target

    def reset_accounting(self) -> None:
        """Clear busy-cycle accounting on all cores (clocks keep running)."""
        for core in self.cores:
            core.reset_accounting()
