"""Timestamp-based lock models for the discrete-event simulation.

Simulated cores do not run concurrently — the scheduler interleaves them
by local clock — so mutual exclusion is modeled with *timestamps*: a lock
remembers when it next becomes free, and an acquiring core busy-waits
(charging ``spinlock`` cycles) until that instant.  With the min-clock
scheduler this reproduces FIFO ticket-lock behaviour closely enough that
the paper's 16-core invalidation-lock collapse emerges quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.hw.cpu import CAT_SPINLOCK, Core
from repro.obs.context import NULL_OBS, Observability
from repro.obs.spans import SPAN_LOCK_WAIT
from repro.obs.trace import EV_LOCK_ACQUIRE, EV_LOCK_CONTEND, EV_LOCK_RELEASE
from repro.sim.costmodel import CostModel


@dataclass
class LockStats:
    """Counters a lock accumulates over its lifetime.

    These lifetime aggregates stay for cheap assertions; runs that want
    distributions (wait/hold profiles per lock) enable the observability
    layer, which records ``lock.wait_cycles:<name>`` and
    ``lock.hold_cycles:<name>`` histograms in the metrics registry.
    """

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_cycles: int = 0
    total_hold_cycles: int = 0

    @property
    def mean_wait_cycles(self) -> float:
        if not self.acquisitions:
            return 0.0
        return self.total_wait_cycles / self.acquisitions


class SpinLock:
    """A ticket-style spinlock living in simulated time.

    Usage::

        lock.acquire(core)
        core.charge(...)          # critical section work
        lock.release(core)

    ``acquire`` spins the core (busy cycles, ``spinlock`` category) until
    the lock's ``free_at`` timestamp, plus a cache-line hand-off penalty
    when the acquisition was contended.
    """

    def __init__(self, name: str, cost: CostModel,
                 obs: Observability | None = None):
        self.name = name
        self.cost = cost
        self.obs = obs if obs is not None else NULL_OBS
        self.free_at: int = 0
        self.stats = LockStats()
        self._holder: Core | None = None
        self._acquired_at: int = 0
        # Core id of the most recent holder.  By the time a waiter
        # observes contention the lock was already released in host
        # order (``_holder`` is None), so holder attribution for the
        # contention matrix needs this one-slot memory.
        self._last_holder_cid: int = -1

    def acquire(self, core: Core) -> None:
        if self._holder is core:
            raise SimulationError(f"lock {self.name}: recursive acquire")
        if self.obs.enabled:
            self.obs.spans.begin(SPAN_LOCK_WAIT, core)
        waited = core.spin_until(self.free_at, CAT_SPINLOCK)
        self.stats.acquisitions += 1
        if waited:
            self.stats.contended_acquisitions += 1
            self.stats.total_wait_cycles += waited
            # Cache-line transfer + ticket hand-off.
            core.charge(self.cost.lock_handoff_cycles, CAT_SPINLOCK)
        else:
            # Uncontended fast path: the atomic RMW pair.
            core.charge(self.cost.lock_uncontended_cycles, CAT_SPINLOCK)
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter(f"lock.acquisitions:{self.name}").inc()
            self.obs.locks.note_acquire(self.name, core.cid,
                                        self._last_holder_cid, waited,
                                        core.now)
            if waited:
                metrics.histogram(
                    f"lock.wait_cycles:{self.name}").observe(waited)
                self.obs.tracer.emit(EV_LOCK_CONTEND, core.now, core.cid,
                                     lock=self.name, wait_cycles=waited)
                self.obs.requests.note_lock_wait(core, self.name, waited)
            else:
                self.obs.tracer.emit(EV_LOCK_ACQUIRE, core.now, core.cid,
                                     lock=self.name)
            self.obs.spans.end(core)
        self._holder = core
        self._acquired_at = core.now

    def release(self, core: Core) -> None:
        if self._holder is not core:
            raise SimulationError(
                f"lock {self.name}: released by non-holder core {core.cid}"
            )
        held = core.now - self._acquired_at
        self.stats.total_hold_cycles += held
        if self.obs.enabled:
            self.obs.metrics.histogram(
                f"lock.hold_cycles:{self.name}").observe(held)
            self.obs.tracer.emit(EV_LOCK_RELEASE, core.now, core.cid,
                                 lock=self.name, hold_cycles=held)
            self.obs.locks.note_release(self.name, core.cid, held)
        self.free_at = core.now
        self._last_holder_cid = core.cid
        self._holder = None

    @property
    def held(self) -> bool:
        return self._holder is not None


class NullLock:
    """Free "lock" for single-core configurations and lock ablations.

    Charges nothing and never waits; keeps the same interface as
    :class:`SpinLock` so call sites need no branching.
    """

    def __init__(self, name: str = "null"):
        self.name = name
        self.stats = LockStats()

    def acquire(self, core: Core) -> None:  # noqa: ARG002 - interface parity
        self.stats.acquisitions += 1

    def release(self, core: Core) -> None:  # noqa: ARG002 - interface parity
        pass

    @property
    def held(self) -> bool:
        return False


@dataclass
class SharedResource:
    """A hardware unit with a serial service queue (e.g. the IOMMU's
    invalidation engine).

    ``occupy`` reserves the resource for ``service_cycles`` starting no
    earlier than the caller's clock and no earlier than the previous
    occupancy's end; it returns the completion timestamp.  Callers decide
    whether to busy-wait on that timestamp (strict mode does; deferred
    mode does not).
    """

    name: str
    busy_until: int = 0
    completions: int = 0
    total_service_cycles: int = 0
    queue_delay_cycles: int = field(default=0)

    def occupy(self, start: int, service_cycles: int) -> int:
        begin = max(start, self.busy_until)
        self.queue_delay_cycles += begin - start
        end = begin + service_cycles
        self.busy_until = end
        self.completions += 1
        self.total_service_cycles += service_cycles
        return end
