"""Hardware substrate: cores, NUMA machine, physical memory, locks."""

from repro.hw.cpu import (
    ALL_CATEGORIES,
    CAT_COPY_MGMT,
    CAT_COPY_USER,
    CAT_INVALIDATE,
    CAT_MEMCPY,
    CAT_OTHER,
    CAT_PT_MGMT,
    CAT_RX_PARSE,
    CAT_SPINLOCK,
    Core,
    merge_breakdowns,
)
from repro.hw.locks import NullLock, SharedResource, SpinLock
from repro.hw.machine import Machine, NumaNode
from repro.hw.memory import PhysicalMemory

__all__ = [
    "Core",
    "Machine",
    "NumaNode",
    "PhysicalMemory",
    "SpinLock",
    "NullLock",
    "SharedResource",
    "merge_breakdowns",
    "ALL_CATEGORIES",
    "CAT_COPY_MGMT",
    "CAT_SPINLOCK",
    "CAT_INVALIDATE",
    "CAT_PT_MGMT",
    "CAT_MEMCPY",
    "CAT_RX_PARSE",
    "CAT_COPY_USER",
    "CAT_OTHER",
]
