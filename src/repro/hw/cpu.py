"""Simulated CPU cores with per-category cycle accounting.

Each :class:`Core` carries its own clock (``now``, in cycles) plus a
breakdown of where busy cycles went.  The breakdown categories deliberately
match the stacked bars of the paper's Figures 5, 8 and 10 so the benchmark
harness can print the same rows the paper reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

# Breakdown categories, named exactly as in the paper's figures.
CAT_COPY_MGMT = "copy mgmt"
CAT_SPINLOCK = "spinlock"
CAT_INVALIDATE = "invalidate iotlb"
CAT_PT_MGMT = "iommu page table mgmt"
CAT_MEMCPY = "memcpy"
CAT_RX_PARSE = "rx parsing"
CAT_COPY_USER = "copy_user"
CAT_OTHER = "other"

ALL_CATEGORIES = (
    CAT_COPY_MGMT,
    CAT_SPINLOCK,
    CAT_INVALIDATE,
    CAT_PT_MGMT,
    CAT_MEMCPY,
    CAT_RX_PARSE,
    CAT_COPY_USER,
    CAT_OTHER,
)


@dataclass
class Core:
    """One hardware thread of the simulated machine.

    ``now`` is the core's local clock in cycles.  ``charge`` advances the
    clock *and* attributes the cycles to a breakdown category;
    ``advance_to`` models idle waiting (clock moves, nothing is attributed
    to busy time).
    """

    cid: int
    numa_node: int
    now: int = 0
    busy_cycles: int = 0
    breakdown: Counter = field(default_factory=Counter)

    def charge(self, cycles: int, category: str = CAT_OTHER) -> None:
        """Consume ``cycles`` of busy CPU time in ``category``."""
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        if cycles == 0:
            return
        self.now += cycles
        self.busy_cycles += cycles
        self.breakdown[category] += cycles

    def advance_to(self, when: int) -> int:
        """Idle until absolute time ``when``; returns the idle cycles spent."""
        if when <= self.now:
            return 0
        idled = when - self.now
        self.now = when
        return idled

    def spin_until(self, when: int, category: str = CAT_SPINLOCK) -> int:
        """Busy-wait until absolute time ``when`` (cycles count as busy)."""
        if when <= self.now:
            return 0
        waited = when - self.now
        self.charge(waited, category)
        return waited

    def reset_accounting(self) -> None:
        """Zero busy time and breakdown (the clock keeps running)."""
        self.busy_cycles = 0
        self.breakdown.clear()

    def snapshot(self) -> "CoreSnapshot":
        """Freeze the current accounting state (for phase-delta reports)."""
        return CoreSnapshot(now=self.now, busy_cycles=self.busy_cycles,
                            breakdown=Counter(self.breakdown))

    def utilization(self, window_cycles: int) -> float:
        """Fraction of ``window_cycles`` this core spent busy (clamped to 1)."""
        if window_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / window_cycles)


@dataclass
class CoreSnapshot:
    """A point-in-time copy of one core's accounting state."""

    now: int
    busy_cycles: int
    breakdown: Counter

    def delta(self, later: "CoreSnapshot") -> "CoreSnapshot":
        """Accounting accrued between this snapshot and ``later``."""
        diff = Counter(later.breakdown)
        diff.subtract(self.breakdown)
        return CoreSnapshot(now=later.now - self.now,
                            busy_cycles=later.busy_cycles - self.busy_cycles,
                            breakdown=+diff)


def merge_breakdowns(cores: Iterable[Core]) -> Counter:
    """Sum the per-category breakdowns of several cores."""
    total: Counter = Counter()
    for core in cores:
        total.update(core.breakdown)
    return total
