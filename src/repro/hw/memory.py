"""Simulated physical memory with real byte backing.

All DMA in the simulation moves *actual bytes* through this model: device
writes land in page frames here, the shadow-pool copies read and write
these frames, and the attack framework inspects them.  Frames are
materialized lazily (a ``dict`` keyed by page-frame number), so a machine
can expose many gigabytes of address space while only the touched pages
cost host memory.

Each NUMA node owns a disjoint physical address range (64 GiB apart), so
the node of any physical address can be recovered arithmetically — the
shadow pool uses this to keep copies NUMA-local (§5.3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import MemoryAccessError
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE

#: Physical address stride between NUMA node regions (64 GiB).
NODE_REGION_SHIFT = 36
NODE_REGION_BYTES = 1 << NODE_REGION_SHIFT


class PhysicalMemory:
    """Byte-addressable physical memory split into per-NUMA-node regions."""

    def __init__(self, num_nodes: int, node_bytes: int = NODE_REGION_BYTES):
        if num_nodes < 1:
            raise MemoryAccessError("machine needs at least one NUMA node")
        if node_bytes > NODE_REGION_BYTES:
            raise MemoryAccessError(
                f"node size {node_bytes:#x} exceeds region stride"
            )
        self.num_nodes = num_nodes
        self.node_bytes = node_bytes
        self._frames: Dict[int, bytearray] = {}

    # ------------------------------------------------------------------
    # Address-space geometry.
    # ------------------------------------------------------------------
    def node_base(self, node: int) -> int:
        """First physical address belonging to NUMA ``node``."""
        self._check_node(node)
        return node << NODE_REGION_SHIFT

    def node_region(self, node: int) -> tuple[int, int]:
        """``(base, size)`` of the physical range owned by ``node``."""
        return self.node_base(node), self.node_bytes

    def node_of(self, pa: int) -> int:
        """NUMA node that owns physical address ``pa``."""
        node = pa >> NODE_REGION_SHIFT
        if not 0 <= node < self.num_nodes or (pa - (node << NODE_REGION_SHIFT)) >= self.node_bytes:
            raise MemoryAccessError(f"physical address {pa:#x} outside any node")
        return node

    def contains(self, pa: int, size: int = 1) -> bool:
        """Whether ``[pa, pa+size)`` lies entirely inside one node's region."""
        if size <= 0:
            return False
        try:
            node = self.node_of(pa)
        except MemoryAccessError:
            return False
        base = self.node_base(node)
        return pa + size <= base + self.node_bytes

    # ------------------------------------------------------------------
    # Byte access.
    # ------------------------------------------------------------------
    def _frame(self, pfn: int) -> bytearray:
        frame = self._frames.get(pfn)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[pfn] = frame
        return frame

    def write(self, pa: int, data: bytes) -> None:
        """Write ``data`` starting at physical address ``pa``."""
        if not data:
            return
        if not self.contains(pa, len(data)):
            raise MemoryAccessError(
                f"write of {len(data)} bytes at {pa:#x} leaves physical memory"
            )
        offset = 0
        remaining = len(data)
        view = memoryview(data)
        while remaining:
            pfn = (pa + offset) >> PAGE_SHIFT
            in_page = (pa + offset) & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - in_page)
            self._frame(pfn)[in_page:in_page + chunk] = view[offset:offset + chunk]
            offset += chunk
            remaining -= chunk

    def read(self, pa: int, size: int) -> bytes:
        """Read ``size`` bytes starting at physical address ``pa``."""
        if size == 0:
            return b""
        if not self.contains(pa, size):
            raise MemoryAccessError(
                f"read of {size} bytes at {pa:#x} leaves physical memory"
            )
        parts: List[bytes] = []
        offset = 0
        remaining = size
        while remaining:
            pfn = (pa + offset) >> PAGE_SHIFT
            in_page = (pa + offset) & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - in_page)
            parts.append(bytes(self._frame(pfn)[in_page:in_page + chunk]))
            offset += chunk
            remaining -= chunk
        return b"".join(parts)

    def copy(self, dst_pa: int, src_pa: int, size: int) -> None:
        """Copy ``size`` bytes between physical ranges (the memcpy engine)."""
        if size == 0:
            return
        self.write(dst_pa, self.read(src_pa, size))

    def fill(self, pa: int, size: int, value: int = 0) -> None:
        """Fill ``[pa, pa+size)`` with ``value``."""
        self.write(pa, bytes([value]) * size)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def resident_pages(self) -> int:
        """Number of frames actually materialized (touched) so far."""
        return len(self._frames)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise MemoryAccessError(f"no such NUMA node: {node}")
