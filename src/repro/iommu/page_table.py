"""Per-device I/O page table (VT-d style 4-level radix tree).

IOVA mappings are kept at 4 KB page granularity in a 4-level table (9 bits
per level, 48-bit IOVA space), mirroring Intel VT-d second-level
translation (§2.1).  The table tracks how many backing pages its interior
nodes consume so experiments can report page-table memory overhead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import DmaApiError
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE

IOVA_BITS = 48
_LEVEL_BITS = 9
_LEVELS = 4
_INDEX_MASK = (1 << _LEVEL_BITS) - 1


class Perm(enum.IntFlag):
    """Device access rights for a mapping (read / write / both)."""

    NONE = 0
    READ = 1   # device may read host memory (DMA to device)
    WRITE = 2  # device may write host memory (DMA from device)
    RW = READ | WRITE

    def allows(self, *, is_write: bool) -> bool:
        needed = Perm.WRITE if is_write else Perm.READ
        return bool(self & needed)


@dataclass(frozen=True)
class PteEntry:
    """A leaf translation: IOVA page → physical frame + permissions."""

    pfn: int
    perm: Perm

    @property
    def pa(self) -> int:
        return self.pfn << PAGE_SHIFT


def _indices(iova_page: int) -> Tuple[int, int, int, int]:
    return (
        (iova_page >> (3 * _LEVEL_BITS)) & _INDEX_MASK,
        (iova_page >> (2 * _LEVEL_BITS)) & _INDEX_MASK,
        (iova_page >> (1 * _LEVEL_BITS)) & _INDEX_MASK,
        iova_page & _INDEX_MASK,
    )


class IoPageTable:
    """4-level radix tree from IOVA page number to :class:`PteEntry`."""

    def __init__(self) -> None:
        self._root: Dict[int, dict] = {}
        self.mapped_pages = 0
        self.table_nodes = 1  # the root

    # ------------------------------------------------------------------
    def map_page(self, iova_page: int, pfn: int, perm: Perm) -> None:
        """Install a translation; refuses to overwrite a live mapping."""
        if perm == Perm.NONE:
            raise DmaApiError("mapping with no access rights")
        self._check_page(iova_page)
        l1, l2, l3, l4 = _indices(iova_page)
        node = self._root
        for idx in (l1, l2, l3):
            nxt = node.get(idx)
            if nxt is None:
                nxt = {}
                node[idx] = nxt
                self.table_nodes += 1
            node = nxt
        if l4 in node:
            raise DmaApiError(
                f"IOVA page {iova_page:#x} already mapped (would overwrite)"
            )
        node[l4] = PteEntry(pfn=pfn, perm=perm)
        self.mapped_pages += 1

    def unmap_page(self, iova_page: int) -> PteEntry:
        """Remove a translation; returns the entry that was present."""
        self._check_page(iova_page)
        l1, l2, l3, l4 = _indices(iova_page)
        node = self._root
        for idx in (l1, l2, l3):
            node = node.get(idx)  # type: ignore[assignment]
            if node is None:
                raise DmaApiError(f"unmap of unmapped IOVA page {iova_page:#x}")
        entry = node.pop(l4, None)
        if entry is None:
            raise DmaApiError(f"unmap of unmapped IOVA page {iova_page:#x}")
        self.mapped_pages -= 1
        return entry

    def lookup(self, iova_page: int) -> PteEntry | None:
        """Walk the table; ``None`` when no translation exists."""
        l1, l2, l3, l4 = _indices(iova_page)
        node = self._root
        for idx in (l1, l2, l3):
            node = node.get(idx)  # type: ignore[assignment]
            if node is None:
                return None
        return node.get(l4)

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Tuple[int, PteEntry]]:
        """Iterate ``(iova_page, entry)`` over all live mappings."""
        for l1, n1 in self._root.items():
            for l2, n2 in n1.items():
                for l3, n3 in n2.items():
                    for l4, entry in n3.items():
                        page = (((l1 << _LEVEL_BITS | l2) << _LEVEL_BITS | l3)
                                << _LEVEL_BITS | l4)
                        yield page, entry

    @property
    def table_bytes(self) -> int:
        """Approximate memory consumed by table nodes (4 KB each, as in HW)."""
        return self.table_nodes * PAGE_SIZE

    @staticmethod
    def _check_page(iova_page: int) -> None:
        if not 0 <= iova_page < (1 << (IOVA_BITS - PAGE_SHIFT)):
            raise DmaApiError(f"IOVA page {iova_page:#x} outside 48-bit space")
