"""IOMMU substrate: page tables, IOTLB, invalidation queue, DMA ports."""

from repro.iommu.invalidation import InvalidationQueue, PendingInvalidation
from repro.iommu.iommu import (
    DmaPort,
    Domain,
    FaultRecord,
    Iommu,
    PassthroughDmaPort,
    TranslatingDmaPort,
)
from repro.iommu.iotlb import Iotlb, IotlbStats
from repro.iommu.page_table import IoPageTable, Perm, PteEntry

__all__ = [
    "Iommu",
    "Domain",
    "DmaPort",
    "TranslatingDmaPort",
    "PassthroughDmaPort",
    "FaultRecord",
    "Iotlb",
    "IotlbStats",
    "InvalidationQueue",
    "PendingInvalidation",
    "IoPageTable",
    "Perm",
    "PteEntry",
]
