"""The IOMMU device model: domains, mapping, and device-side translation.

Every device attached to the IOMMU gets a *domain* — its private I/O page
table.  The OS side maps/unmaps IOVA ranges into the domain; the device
side issues DMAs through a :class:`DmaPort`, which translates each touched
page through the IOTLB (falling back to a page-table walk) and enforces
permissions.  Blocked DMAs raise :class:`~repro.errors.IommuFault` and are
recorded for the security audit.

Crucially, *unmap does not invalidate the IOTLB* — that is the caller's
(the DMA API strategy's) decision, which is the entire strict-vs-deferred
trade-off the paper is about.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Protocol

from repro.errors import ConfigurationError, IommuFault, KallocError
from repro.faults.plan import SITE_PT_MAP
from repro.hw.cpu import CAT_PT_MGMT, Core
from repro.hw.locks import NullLock, SpinLock
from repro.hw.machine import Machine
from repro.iommu.invalidation import (
    InvalidationQueue,
    PerCoreInvalidationQueue,
)
from repro.iommu.iotlb import Iotlb
from repro.iommu.page_table import IoPageTable, Perm, PteEntry
from repro.obs.exposure import KIND_OS
from repro.obs.trace import EV_IOMMU_FAULT
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE


@dataclass(frozen=True)
class FaultRecord:
    """One blocked DMA, as the OS would see it in the fault log.

    ``t`` is the simulated cycle the fault was raised at (the machine's
    wall clock — device-side accesses have no core of their own) and
    ``domain_id`` the protection domain it hit.
    """

    device_id: int
    iova: int
    is_write: bool
    reason: str
    t: int = -1
    domain_id: int = -1


class FaultRing:
    """Bounded fault log with :class:`~repro.obs.trace.RingTracer`
    semantics: once full the *oldest* records are evicted, ``recorded``
    counts every fault ever appended, and ``dropped`` reports the loss.

    Supports the sequence operations the OS-side consumers use
    (``len``, truthiness, indexing, iteration).
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError(
                f"fault ring capacity must be positive: {capacity}")
        self.capacity = capacity
        self._ring: Deque[FaultRecord] = deque(maxlen=capacity)
        self.recorded = 0

    def append(self, record: FaultRecord) -> None:
        self._ring.append(record)
        self.recorded += 1

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __bool__(self) -> bool:
        return bool(self._ring)

    def __iter__(self) -> Iterator[FaultRecord]:
        return iter(self._ring)

    def __getitem__(self, index: int) -> FaultRecord:
        return self._ring[index]

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0


@dataclass
class Domain:
    """A protection domain: one device's I/O address space."""

    domain_id: int
    device_id: int
    page_table: IoPageTable = field(default_factory=IoPageTable)


class Iommu:
    """The platform IOMMU: shared IOTLB + invalidation queue, per-device
    domains."""

    def __init__(self, machine: Machine, iotlb_capacity: int = 4096,
                 concurrent_invalidation_lock: bool = True,
                 fault_capacity: int = 1024):
        self.machine = machine
        self.cost = machine.cost
        self.obs = machine.obs
        self.iotlb = Iotlb(capacity=iotlb_capacity)
        lock = (SpinLock("qi-lock", machine.cost, obs=machine.obs)
                if concurrent_invalidation_lock else NullLock("qi-lock"))
        self.invalidation_queue = InvalidationQueue(self.iotlb, machine.cost,
                                                    lock, obs=machine.obs,
                                                    faults=machine.faults)
        self.domains: Dict[int, Domain] = {}
        self.faults = FaultRing(capacity=fault_capacity)
        self._domain_ids = itertools.count(1)

    def enable_percore_invalidation(
            self, nqueues: int | None = None) -> PerCoreInvalidationQueue:
        """Replace the single global invalidation queue with per-core
        shards (see :class:`PerCoreInvalidationQueue`): one queue per
        core (default) over one shared hardware engine.

        Idempotent — several schemes sharing one IOMMU (the test
        fixtures do this) can each request per-core invalidation and get
        the same subsystem back.  Existing IOTLB contents and domains
        are untouched; only the submission front end changes.
        """
        if isinstance(self.invalidation_queue, PerCoreInvalidationQueue):
            return self.invalidation_queue
        self.invalidation_queue = PerCoreInvalidationQueue(
            self.iotlb, self.cost,
            nqueues=nqueues if nqueues is not None
            else self.machine.num_cores,
            obs=self.obs, faults=self.machine.faults)
        return self.invalidation_queue

    # ------------------------------------------------------------------
    # OS side.
    # ------------------------------------------------------------------
    def attach_device(self, device_id: int) -> Domain:
        """Create (or return) the protection domain for ``device_id``."""
        for domain in self.domains.values():
            if domain.device_id == device_id:
                return domain
        domain = Domain(domain_id=next(self._domain_ids), device_id=device_id)
        self.domains[domain.domain_id] = domain
        return domain

    def map_range(self, domain: Domain, iova: int, pa: int, size: int,
                  perm: Perm, core: Core | None = None,
                  kind: str = KIND_OS) -> None:
        """Map ``size`` bytes of physically-contiguous memory at ``iova``.

        ``iova`` and ``pa`` must share their page offset (the mapping is
        page-granular; sub-page offsets pass through unchanged).
        ``kind`` tags the memory for exposure accounting: ``"os"`` for
        data the OS lends to the device (the default), ``"dedicated"``
        for scheme-owned state (shadow buffers, coherent rings) that
        carries no co-located foreign data.
        """
        if size <= 0:
            raise ConfigurationError("mapping of non-positive size")
        if (iova & (PAGE_SIZE - 1)) != (pa & (PAGE_SIZE - 1)):
            raise ConfigurationError(
                f"IOVA {iova:#x} and PA {pa:#x} offsets disagree"
            )
        faults = self.machine.faults
        if faults.enabled and faults.fires(SITE_PT_MAP, core):
            raise KallocError(
                "injected page-table allocation failure (fault plan)")
        first_iova_page = iova >> PAGE_SHIFT
        first_pfn = pa >> PAGE_SHIFT
        npages = ((iova + size - 1) >> PAGE_SHIFT) - first_iova_page + 1
        for i in range(npages):
            domain.page_table.map_page(first_iova_page + i, first_pfn + i, perm)
        if core is not None:
            core.charge(self.cost.pt_map_range_cycles(npages), CAT_PT_MGMT)
        if self.obs.enabled:
            t = core.now if core is not None else self.machine.wall_clock()
            self.obs.exposure.note_map_range(t, domain.domain_id,
                                            domain.device_id, iova, size,
                                            kind)

    def unmap_range(self, domain: Domain, iova: int, size: int,
                    core: Core | None = None) -> int:
        """Remove the translations covering ``[iova, iova+size)``.

        Returns the number of pages unmapped.  Does **not** touch the
        IOTLB — strict callers must invalidate synchronously, deferred
        callers queue the range (§2.2.1).
        """
        first_page = iova >> PAGE_SHIFT
        npages = ((iova + size - 1) >> PAGE_SHIFT) - first_page + 1
        for i in range(npages):
            domain.page_table.unmap_page(first_page + i)
        if core is not None:
            core.charge(self.cost.pt_unmap_range_cycles(npages), CAT_PT_MGMT)
        if self.obs.enabled:
            t = core.now if core is not None else self.machine.wall_clock()
            cached = {first_page + i for i in range(npages)
                      if self.iotlb.peek(domain.domain_id,
                                         first_page + i) is not None}
            self.obs.exposure.note_unmap_range(t, domain.domain_id, iova,
                                               size, cached)
        return npages

    # ------------------------------------------------------------------
    # Device side.
    # ------------------------------------------------------------------
    def translate(self, domain: Domain, iova: int, *,
                  is_write: bool) -> PteEntry:
        """Translate one access through the IOTLB (device's view).

        An IOTLB hit uses the cached entry even if the page table has
        since changed — stale entries are precisely the deferred window.
        """
        iova_page = iova >> PAGE_SHIFT
        entry = self.iotlb.lookup(domain.domain_id, iova_page)
        if entry is None:
            entry = domain.page_table.lookup(iova_page)
            if entry is None:
                self._fault(domain, iova, is_write, "no mapping")
            self.iotlb.insert(domain.domain_id, iova_page, entry)
        if not entry.perm.allows(is_write=is_write):
            self._fault(domain, iova, is_write,
                        f"permission ({entry.perm.name})")
        if self.obs.enabled:
            self.obs.exposure.note_access(self.machine.wall_clock(),
                                          domain.domain_id, iova, is_write)
        return entry

    def _fault(self, domain: Domain, iova: int, is_write: bool,
               reason: str) -> None:
        t = self.machine.wall_clock()
        record = FaultRecord(device_id=domain.device_id, iova=iova,
                             is_write=is_write, reason=reason,
                             t=t, domain_id=domain.domain_id)
        self.faults.append(record)
        if self.obs.enabled:
            self.obs.tracer.emit(EV_IOMMU_FAULT, t, -1,
                                 device=domain.device_id,
                                 domain=domain.domain_id, iova=iova,
                                 write=is_write, reason=reason)
            self.obs.metrics.counter("iommu.faults").inc()
            self.obs.exposure.note_fault(t, domain.domain_id,
                                         domain.device_id, iova,
                                         is_write, reason)
        raise IommuFault(domain.device_id, iova, is_write=is_write,
                         reason=reason)


class DmaPort(Protocol):
    """What a device holds: the ability to issue DMAs at bus addresses."""

    def dma_read(self, iova: int, size: int) -> bytes:
        """DMA from host memory to the device."""
        ...

    def dma_write(self, iova: int, data: bytes) -> None:
        """DMA from the device into host memory."""
        ...


class TranslatingDmaPort:
    """A device's bus connection when the IOMMU is enabled."""

    def __init__(self, iommu: Iommu, domain: Domain):
        self.iommu = iommu
        self.domain = domain

    def dma_read(self, iova: int, size: int) -> bytes:
        parts: List[bytes] = []
        for chunk_iova, chunk_size in _page_chunks(iova, size):
            entry = self.iommu.translate(self.domain, chunk_iova,
                                         is_write=False)
            pa = entry.pa | (chunk_iova & (PAGE_SIZE - 1))
            parts.append(self.iommu.machine.memory.read(pa, chunk_size))
        return b"".join(parts)

    def dma_write(self, iova: int, data: bytes) -> None:
        offset = 0
        for chunk_iova, chunk_size in _page_chunks(iova, len(data)):
            entry = self.iommu.translate(self.domain, chunk_iova,
                                         is_write=True)
            pa = entry.pa | (chunk_iova & (PAGE_SIZE - 1))
            self.iommu.machine.memory.write(pa, data[offset:offset + chunk_size])
            offset += chunk_size


class PassthroughDmaPort:
    """A device's bus connection with the IOMMU disabled: bus address ==
    physical address, no checks — the defenseless ``no iommu`` baseline."""

    def __init__(self, machine: Machine):
        self.machine = machine

    def dma_read(self, iova: int, size: int) -> bytes:
        return self.machine.memory.read(iova, size)

    def dma_write(self, iova: int, data: bytes) -> None:
        self.machine.memory.write(iova, data)


def _page_chunks(addr: int, size: int):
    """Split ``[addr, addr+size)`` at page boundaries."""
    offset = 0
    while offset < size:
        current = addr + offset
        in_page = current & (PAGE_SIZE - 1)
        chunk = min(size - offset, PAGE_SIZE - in_page)
        yield current, chunk
        offset += chunk
