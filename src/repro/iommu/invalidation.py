"""IOMMU invalidation queue with a contention-aware hardware model.

The queue reproduces the two costs §2.2.1 identifies:

1. *The hardware is slow* — an invalidation takes ≈0.61 µs with an idle
   queue and degrades to ≈2.7 µs when many cores submit concurrently
   (Fig. 8a).  Concurrency is estimated from a sliding time window of
   recent submissions, so the degradation appears and disappears with the
   actual workload.
2. *The queue is serialized by a lock* — all submissions funnel through a
   single spinlock (``qi_lock``), which under strict protection becomes
   the multicore bottleneck (≈70 µs of spinning per packet at 16 cores).

Functionally, an invalidation removes entries from the :class:`Iotlb`
*when it executes*: synchronously inside :meth:`invalidate_sync`, or at
batch-flush time for deferred protection — this is exactly what creates
(and bounds) the deferred vulnerability window.

Scalable invalidation
---------------------
The paper's bottleneck is the *single* queue, not invalidation per se.
:class:`PerCoreInvalidationQueue` models the post-2016 remedies as a
sharded front end over the same hardware:

* each core owns a shard (its own descriptor ring + lock), so strict
  unmaps stop funneling through one spinlock;
* the shared hardware walks the rings round-robin and retires
  descriptors in a pipeline: occupancy per descriptor is the small
  dispatch slot (``invq_percore_service_cycles``), while the submitter
  still observes at least the idle completion latency.  The Fig. 8a
  concurrency degradation is a property of the shared-ring design
  (every submitter contending on one tail register) and does not apply
  to per-core rings — cf. Kurth et al.'s MMU-aware DMA engine.
  Degradation under saturation still *emerges* here, from the shared
  engine's queueing delay.

Independent of sharding, :meth:`InvalidationQueue.invalidate_ranges_sync`
and the ranged :meth:`InvalidationQueue.flush_batch` path post *ranged*
descriptors — coalesced contiguous page runs, per domain — instead of
page-at-a-time or global flushes, with a descriptor/page cost curve in
the :class:`~repro.sim.costmodel.CostModel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Sequence, Tuple

from repro.faults.injector import NULL_FAULTS
from repro.faults.plan import SITE_INV_STALL
from repro.hw.cpu import CAT_INVALIDATE, Core
from repro.hw.locks import NullLock, SharedResource, SpinLock
from repro.iommu.iotlb import Iotlb
from repro.obs.context import NULL_OBS, Observability
from repro.obs.requests import MARK_INVALIDATED
from repro.obs.spans import SPAN_IOTLB_INVALIDATE
from repro.obs.trace import (
    EV_FAULT_RECOVER,
    EV_INV_COMPLETE,
    EV_INV_FLUSH,
    EV_INV_SUBMIT,
    EV_INV_TIMEOUT,
)
from repro.sim.costmodel import CostModel
from repro.sim.units import us_to_cycles

#: Sliding window (cycles) over which concurrent submitters are counted.
_CONCURRENCY_WINDOW_CYCLES = us_to_cycles(64.0)

#: Recovery policy for wait descriptors that never retire (injected via
#: the ``inv.stall`` fault site): spin this long before declaring a
#: timeout, back off idling (exponentially) between bounded re-submits,
#: then reset the queue and flush the whole IOTLB as a last resort.
_STALL_TIMEOUT_CYCLES = us_to_cycles(10.0)
_STALL_BACKOFF_CYCLES = us_to_cycles(2.0)
_STALL_MAX_RETRIES = 3


def _in_window(t: int, horizon: int) -> bool:
    """THE window predicate: a submission at ``t`` counts iff it is at or
    after ``horizon``.  Eviction and counting must both use this (and its
    exact negation) or the two sides of the window disagree about
    submissions landing exactly on the boundary."""
    return t >= horizon


def coalesce_pages(pages: Iterable[int]) -> List[Tuple[int, int]]:
    """Coalesce page numbers into maximal contiguous ``(start, npages)``
    runs — the unit a *ranged* invalidation descriptor names.

    Input need not be sorted or unique; output runs are sorted and
    disjoint.  This is plain arithmetic on host ints: callers charge the
    per-descriptor CPU cost via the cost model, not per loop iteration.
    """
    runs: List[Tuple[int, int]] = []
    start = prev = None
    for page in sorted(set(pages)):
        if start is None:
            start = prev = page
            continue
        if page == prev + 1:
            prev = page
            continue
        runs.append((start, prev - start + 1))
        start = prev = page
    if start is not None:
        runs.append((start, prev - start + 1))
    return runs


@dataclass(frozen=True)
class PendingInvalidation:
    """One queued (deferred) invalidation: a page range in a domain."""

    domain_id: int
    iova_page: int
    npages: int
    queued_at: int


class InvalidationQueue:
    """The IOMMU's command queue for IOTLB invalidations.

    With ``pipelined=False`` (the default, the paper's shared ring) the
    hardware is occupied for the full observed latency of every
    descriptor, and submitter concurrency degrades that latency per
    Fig. 8a.  With ``pipelined=True`` (a per-core shard; see module
    docstring) occupancy per descriptor is only the dispatch slot and
    the Fig. 8a degradation does not apply — queueing delay on the
    shared engine is what remains.  Pass ``hardware`` to share one
    engine between several shards.
    """

    def __init__(self, iotlb: Iotlb, cost: CostModel,
                 lock: SpinLock | NullLock | None = None,
                 obs: Observability | None = None, faults=None,
                 hardware: SharedResource | None = None,
                 pipelined: bool = False):
        self.iotlb = iotlb
        self.cost = cost
        self.lock: SpinLock | NullLock = lock if lock is not None \
            else NullLock("qi-lock")
        self.obs = obs if obs is not None else NULL_OBS
        self.faults = faults if faults is not None else NULL_FAULTS
        self.hardware = hardware if hardware is not None \
            else SharedResource("iommu-invalidation-hw")
        self.pipelined = pipelined
        self._recent: Deque[Tuple[int, int]] = deque()  # (time, core id)
        # Completion timestamps of descriptors still in flight at the
        # latest submission — obs-only bookkeeping behind the queue-depth
        # time series (host memory; never read by the simulation).
        self._inflight_done: Deque[int] = deque()
        self.sync_invalidations = 0
        self.batch_flushes = 0
        # Stall-recovery accounting (see _recover_stall).
        self.timeouts = 0
        self.recovered_stalls = 0
        self.queue_resets = 0

    # ------------------------------------------------------------------
    # Concurrency estimation (drives the Fig. 8a latency degradation).
    # ------------------------------------------------------------------
    def _window_concurrency(self, now: int) -> int:
        """Distinct submitting cores within the window ending at ``now``.

        Evicts expired entries from the head; both eviction and counting
        use :func:`_in_window` so a submission exactly on the boundary is
        either counted everywhere or nowhere.
        """
        horizon = now - _CONCURRENCY_WINDOW_CYCLES
        recent = self._recent
        # Both comparisons below inline :func:`_in_window` (``t >=
        # horizon``) — this runs per submission over the whole window, so
        # the predicate call per element is measurable.  The per-query
        # filter cannot become incremental distinct-counting: appends are
        # not time-monotonic under min-clock interleaving.
        while recent and recent[0][0] < horizon:
            recent.popleft()
        return len({cid for t, cid in recent if t >= horizon})

    def _note_submission(self, core: Core) -> int:
        self._recent.append((core.now, core.cid))
        return self._window_concurrency(core.now)

    def current_concurrency(self, core: Core) -> int:
        """Distinct cores that submitted within the recent window.

        Returns the raw window count — 0 when the queue has been idle for
        a full window — exactly like :meth:`_note_submission` reports for
        a submission (which is always ≥ 1: it counts itself).  Callers
        that need "what latency factor would a submission see right now"
        should take ``max(1, current_concurrency(core))``.
        """
        return self._window_concurrency(core.now)

    # ------------------------------------------------------------------
    # Strict protection: invalidate and wait, under the queue lock.
    # ------------------------------------------------------------------
    def invalidate_sync(self, core: Core, domain_id: int, iova_page: int,
                        npages: int = 1) -> None:
        """Page-range invalidation with completion wait (strict unmap path).

        Mirrors the Linux intel-iommu strict path: take the queue lock,
        post the invalidation descriptor plus a wait descriptor, busy-wait
        for the hardware to signal completion, release the lock.
        """
        self.lock.acquire(core)
        self._invalidate_locked(core, domain_id, iova_page, npages)
        self.lock.release(core)
        self.sync_invalidations += 1

    def invalidate_ranges_sync(self, core: Core, domain_id: int,
                               pages: Sequence[int]) -> None:
        """Invalidate an arbitrary page set with *ranged* descriptors.

        Coalesces ``pages`` into contiguous runs and posts one descriptor
        per run — one lock acquisition, one wait descriptor — instead of
        one full-latency submission per page range.  This is the strict
        path of the scalable schemes: an unmap whose cleared pages have
        holes (refcounted sharing) still completes in a single batch.
        """
        runs = coalesce_pages(pages)
        if not runs:
            return
        total = sum(n for _, n in runs)
        self.lock.acquire(core)
        self._submit_and_wait(core, scope="page", domain_id=domain_id,
                              npages=total, ndesc=len(runs), ranged=True)
        for start, npages in runs:
            self.iotlb.invalidate_pages(domain_id, start, npages)
            if self.obs.enabled:
                # ``core.now`` is the completion instant — the true
                # revocation time the exposure windows close at.
                self.obs.exposure.note_invalidate_pages(
                    core.now, domain_id, start, npages)
        self.lock.release(core)
        self.sync_invalidations += 1

    def invalidate_domain_sync(self, core: Core, domain_id: int) -> None:
        """Domain-wide invalidation with completion wait."""
        self.lock.acquire(core)
        self._submit_and_wait(core, scope="domain", domain_id=domain_id)
        self.iotlb.invalidate_domain(domain_id)
        if self.obs.enabled:
            self.obs.exposure.note_invalidate_domain(core.now, domain_id)
        self.lock.release(core)
        self.sync_invalidations += 1

    def _latency_for(self, concurrency: int, extra: int) -> int:
        """Submitter-observed completion latency for one submission.

        Per-core rings do not exhibit the Fig. 8a degradation (it is a
        shared-tail-register artifact), so pipelined shards always see
        the idle-queue latency; saturation shows up as hardware queueing
        delay in :meth:`_occupy_and_wait` instead.
        """
        effective = 1 if self.pipelined else concurrency
        return self.cost.iotlb_invalidation_latency(effective) + extra

    def _occupy_and_wait(self, core: Core, latency: int,
                         ndesc: int = 1) -> int:
        """Reserve the hardware, busy-wait completion, charge the poll.

        Shared ring: the engine is busy for the full latency (descriptor
        fetch → wait-descriptor retire is one serial transaction).
        Pipelined shard: the engine is busy only for the dispatch slots
        (``invq_percore_service_cycles`` per descriptor); the submitter
        still observes ≥ ``latency`` from now, plus any queueing delay
        the slots picked up behind other shards' traffic.
        """
        if self.pipelined:
            slot = self.cost.invq_percore_service_cycles * max(1, ndesc)
            end = self.hardware.occupy(core.now, slot)
            done = max(end, core.now + latency)
        else:
            done = self.hardware.occupy(core.now, latency)
        core.spin_until(done, CAT_INVALIDATE)
        core.charge(self.cost.invq_wait_poll_cycles, CAT_INVALIDATE)
        return done

    def _submit_and_wait(self, core: Core, scope: str,
                         domain_id: int = -1, npages: int = 0,
                         ndesc: int = 1, ranged: bool = False) -> None:
        """Post ``ndesc`` descriptors + a wait descriptor and busy-wait.

        Shared by every submission path; the observed latency (hardware
        queueing + service) feeds the ``invalidation.latency_cycles``
        histogram that reproduces Fig. 8a as a distribution.  Ranged
        submissions (``ranged=True``) pay the descriptor/page cost curve
        from the cost model on top of the base latency.
        """
        if self.obs.enabled:
            self.obs.spans.begin(SPAN_IOTLB_INVALIDATE, core)
        core.charge(self.cost.invq_submit_cycles
                    + self.cost.invq_ranged_desc_cycles * (ndesc - 1),
                    CAT_INVALIDATE)
        concurrency = self._note_submission(core)
        submitted_at = core.now
        extra = (self.cost.ranged_invalidation_extra_cycles(ndesc, npages)
                 if ranged else 0)
        latency = self._latency_for(concurrency, extra)
        if self.faults.enabled and self.faults.fires(SITE_INV_STALL, core):
            done = self._recover_stall(core, scope, extra, ndesc)
        else:
            done = self._occupy_and_wait(core, latency, ndesc)
        if self.obs.enabled:
            observed = done - submitted_at
            metrics = self.obs.metrics
            metrics.histogram("invalidation.latency_cycles").observe(observed)
            # One count per descriptor actually posted, under the scope
            # it was posted with — ranged batches are ndesc page-scope
            # submissions, not one global one.
            metrics.counter(f"invalidation.submissions:{scope}").inc(ndesc)
            metrics.series("invalidation.concurrency").sample(
                submitted_at, concurrency)
            # Queue depth seen by this submission: descriptors whose
            # completion lies beyond the submit instant.  The hardware's
            # FIFO discipline makes completion times monotone per
            # occupancy order, so evicting from the head suffices.
            inflight = self._inflight_done
            while inflight and inflight[0] <= submitted_at:
                inflight.popleft()
            inflight.append(done)
            metrics.series("invalidation.queue_depth").sample(
                submitted_at, len(inflight))
            self.obs.tracer.emit(EV_INV_SUBMIT, submitted_at, core.cid,
                                 scope=scope, domain=domain_id,
                                 pages=npages, concurrency=concurrency,
                                 descriptors=ndesc)
            self.obs.tracer.emit(EV_INV_COMPLETE, done, core.cid,
                                 scope=scope, latency_cycles=observed)
            self.obs.requests.mark(core, MARK_INVALIDATED)
            self.obs.spans.end(core)

    def _recover_stall(self, core: Core, scope: str, extra: int,
                       ndesc: int = 1) -> int:
        """A wait descriptor never retired: timeout, back off, re-submit
        (bounded), then reset the queue and flush the whole IOTLB.

        Never raises and never leaves an IOTLB entry the caller believes
        is gone — over-invalidating is always safe, so strict schemes
        keep their zero-window guarantee even through a reset.  Returns
        the completion instant.

        Every re-submit is a real submission: it lands in the Fig. 8a
        concurrency window (``_note_submission``), its latency is
        recomputed from the concurrency *at the retry instant*, and the
        concurrency / queue-depth series sample the resubmit like the
        first attempt did — so stall storms are visible, and costed, at
        the moment they retry.
        """
        retries = 0
        while True:
            core.spin_until(core.now + _STALL_TIMEOUT_CYCLES,
                            CAT_INVALIDATE)
            core.charge(self.cost.invq_wait_poll_cycles, CAT_INVALIDATE)
            self.timeouts += 1
            if self.obs.enabled:
                self.obs.tracer.emit(EV_INV_TIMEOUT, core.now, core.cid,
                                     scope=scope, retry=retries)
                self.obs.metrics.counter("invalidation.timeouts").inc()
            if retries >= _STALL_MAX_RETRIES:
                break
            core.advance_to(core.now + (_STALL_BACKOFF_CYCLES << retries))
            retries += 1
            core.charge(self.cost.invq_submit_cycles, CAT_INVALIDATE)
            concurrency = self._note_submission(core)
            self._sample_resubmit(core, concurrency)
            if not (self.faults.enabled
                    and self.faults.fires(SITE_INV_STALL, core)):
                latency = self._latency_for(concurrency, extra)
                done = self._occupy_and_wait(core, latency, ndesc)
                self.recovered_stalls += 1
                if self.obs.enabled:
                    self.obs.tracer.emit(EV_FAULT_RECOVER, core.now,
                                         core.cid, site=SITE_INV_STALL,
                                         action="retry", retries=retries)
                    self.obs.metrics.counter(
                        "invalidation.stall_retries").inc()
                return done
        # Retries exhausted: model a queue reset.  The reset path always
        # completes, and flushing every entry is a superset of whatever
        # the stuck descriptor was meant to revoke.  The reset's global
        # flush is itself a submission — count it.
        self.queue_resets += 1
        core.charge(self.cost.invq_submit_cycles * 2, CAT_INVALIDATE)
        concurrency = self._note_submission(core)
        self._sample_resubmit(core, concurrency)
        done = self._occupy_and_wait(
            core, self._latency_for(concurrency, extra=0))
        self.iotlb.invalidate_all()
        self.recovered_stalls += 1
        if self.obs.enabled:
            self.obs.exposure.note_invalidate_all(core.now)
            self.obs.tracer.emit(EV_FAULT_RECOVER, core.now, core.cid,
                                 site=SITE_INV_STALL, action="queue-reset")
            self.obs.metrics.counter("invalidation.queue_resets").inc()
        return done

    def _sample_resubmit(self, core: Core, concurrency: int) -> None:
        """Sample the concurrency / queue-depth series at a re-submit.

        The retried descriptor itself is still in flight (its completion
        is appended by the outer ``_submit_and_wait`` once known), hence
        the ``+ 1``.
        """
        if not self.obs.enabled:
            return
        metrics = self.obs.metrics
        metrics.series("invalidation.concurrency").sample(
            core.now, concurrency)
        inflight = self._inflight_done
        while inflight and inflight[0] <= core.now:
            inflight.popleft()
        metrics.series("invalidation.queue_depth").sample(
            core.now, len(inflight) + 1)

    def _invalidate_locked(self, core: Core, domain_id: int,
                           iova_page: int, npages: int) -> None:
        self._submit_and_wait(core, scope="page", domain_id=domain_id,
                              npages=npages)
        self.iotlb.invalidate_pages(domain_id, iova_page, npages)
        if self.obs.enabled:
            # ``core.now`` is the completion instant — the true
            # revocation time the exposure windows close at.
            self.obs.exposure.note_invalidate_pages(core.now, domain_id,
                                                    iova_page, npages)

    # ------------------------------------------------------------------
    # Deferred protection: flush a batch with one global invalidation.
    # ------------------------------------------------------------------
    def flush_batch(self, core: Core,
                    pending: List[PendingInvalidation],
                    ranged: bool = False) -> None:
        """Flush a deferred batch.

        Default (Linux) path: one *global* IOTLB invalidation amortized
        over up to 250 unmaps.  A global descriptor names no pages, so it
        is accounted as one ``scope="global"`` submission with
        ``npages=0`` — the summed page count of the batch lives on the
        ``inv.flush`` trace event, not on the submission counter.

        Ranged path (``ranged=True``): per-domain *ranged* descriptors
        covering exactly the coalesced pending pages — counted as
        page-scope submissions with true page counts, and closing
        exposure windows per range instead of globally.

        Until this runs, every IOVA in ``pending`` remains reachable
        through stale IOTLB entries — the vulnerability window.
        """
        if not pending:
            return
        total_pages = sum(p.npages for p in pending)
        self.lock.acquire(core)
        if ranged:
            by_domain: dict = {}
            for p in pending:
                by_domain.setdefault(p.domain_id, []).extend(
                    range(p.iova_page, p.iova_page + p.npages))
            descriptors = 0
            for domain_id, pages in sorted(by_domain.items()):
                runs = coalesce_pages(pages)
                descriptors += len(runs)
                self._submit_and_wait(core, scope="page",
                                      domain_id=domain_id,
                                      npages=sum(n for _, n in runs),
                                      ndesc=len(runs), ranged=True)
                for start, npages in runs:
                    self.iotlb.invalidate_pages(domain_id, start, npages)
                    if self.obs.enabled:
                        self.obs.exposure.note_invalidate_pages(
                            core.now, domain_id, start, npages)
        else:
            descriptors = 1
            self._submit_and_wait(core, scope="global")
            self.iotlb.invalidate_all()
            if self.obs.enabled:
                self.obs.exposure.note_invalidate_all(core.now)
        self.lock.release(core)
        self.batch_flushes += 1
        if self.obs.enabled:
            self.obs.tracer.emit(EV_INV_FLUSH, core.now, core.cid,
                                 batch=len(pending), pages=total_pages,
                                 ranged=ranged, descriptors=descriptors)
            self.obs.metrics.histogram(
                "invalidation.batch_size").observe(len(pending))


class _AggregatedLockStats:
    """Read-only :class:`~repro.hw.locks.LockStats` view summed over the
    shard locks — keeps ``invq.lock.stats.*`` consumers (workload extras,
    scale observatory) working unchanged against the sharded queue."""

    def __init__(self, locks):
        self._locks = locks

    @property
    def acquisitions(self) -> int:
        return sum(lock.stats.acquisitions for lock in self._locks)

    @property
    def contended_acquisitions(self) -> int:
        return sum(lock.stats.contended_acquisitions
                   for lock in self._locks)

    @property
    def total_wait_cycles(self) -> int:
        return sum(lock.stats.total_wait_cycles for lock in self._locks)

    @property
    def total_hold_cycles(self) -> int:
        return sum(lock.stats.total_hold_cycles for lock in self._locks)

    @property
    def mean_wait_cycles(self) -> float:
        acquisitions = self.acquisitions
        if not acquisitions:
            return 0.0
        return self.total_wait_cycles / acquisitions


class _AggregatedLockView:
    """Facade ``.lock`` attribute of the sharded queue: a stats-only view
    over every shard lock (the shards hold their own locks; nothing
    acquires this object)."""

    def __init__(self, locks, name: str = "qi-shard[*]"):
        self.name = name
        self._locks = locks
        self.stats = _AggregatedLockStats(locks)

    @property
    def held(self) -> bool:
        return any(lock.held for lock in self._locks)


class PerCoreInvalidationQueue:
    """Sharded invalidation front end: one pipelined
    :class:`InvalidationQueue` per core over one shared hardware engine.

    Submissions route to the submitting core's shard
    (``core.cid % nqueues``), so the per-shard spinlock is effectively
    private — the paper's ``qi-lock`` funnel disappears — while the
    engine itself stays a single :class:`SharedResource`, so hardware
    saturation (and the queueing delay it causes) is still modeled.
    The shards share one concurrency window and one in-flight deque, so
    Fig. 8a-style observability (``invalidation.concurrency`` /
    ``queue_depth`` series) reads across the whole subsystem.

    Exposes the same counters and ``lock.stats`` shape as
    :class:`InvalidationQueue` (aggregated over shards), so workload
    extras, the chaos soak, and the scale observatory apply unchanged.
    """

    def __init__(self, iotlb: Iotlb, cost: CostModel, nqueues: int,
                 obs: Observability | None = None, faults=None):
        if nqueues < 1:
            raise ValueError("per-core invalidation needs >= 1 queue")
        self.iotlb = iotlb
        self.cost = cost
        self.obs = obs if obs is not None else NULL_OBS
        self.hardware = SharedResource("iommu-invalidation-hw")
        shared_recent: Deque[Tuple[int, int]] = deque()
        shared_inflight: Deque[int] = deque()
        self.shards: List[InvalidationQueue] = []
        for i in range(nqueues):
            shard = InvalidationQueue(
                iotlb, cost,
                lock=SpinLock(f"qi-shard{i}", cost, obs=self.obs),
                obs=obs, faults=faults,
                hardware=self.hardware, pipelined=True)
            shard._recent = shared_recent
            shard._inflight_done = shared_inflight
            self.shards.append(shard)
        self.lock = _AggregatedLockView([s.lock for s in self.shards])

    @property
    def nqueues(self) -> int:
        return len(self.shards)

    @property
    def pipelined(self) -> bool:
        return True

    def _shard(self, core: Core) -> InvalidationQueue:
        return self.shards[core.cid % len(self.shards)]

    # Routed operations — same signatures as InvalidationQueue.
    def invalidate_sync(self, core: Core, domain_id: int, iova_page: int,
                        npages: int = 1) -> None:
        self._shard(core).invalidate_sync(core, domain_id, iova_page,
                                          npages)

    def invalidate_ranges_sync(self, core: Core, domain_id: int,
                               pages: Sequence[int]) -> None:
        self._shard(core).invalidate_ranges_sync(core, domain_id, pages)

    def invalidate_domain_sync(self, core: Core, domain_id: int) -> None:
        self._shard(core).invalidate_domain_sync(core, domain_id)

    def flush_batch(self, core: Core,
                    pending: List[PendingInvalidation],
                    ranged: bool = False) -> None:
        self._shard(core).flush_batch(core, pending, ranged=ranged)

    def current_concurrency(self, core: Core) -> int:
        # The window deque is shared; any shard answers for all.
        return self.shards[0].current_concurrency(core)

    # Aggregated counters — same names as InvalidationQueue fields.
    @property
    def sync_invalidations(self) -> int:
        return sum(s.sync_invalidations for s in self.shards)

    @property
    def batch_flushes(self) -> int:
        return sum(s.batch_flushes for s in self.shards)

    @property
    def timeouts(self) -> int:
        return sum(s.timeouts for s in self.shards)

    @property
    def recovered_stalls(self) -> int:
        return sum(s.recovered_stalls for s in self.shards)

    @property
    def queue_resets(self) -> int:
        return sum(s.queue_resets for s in self.shards)
