"""IOMMU invalidation queue with a contention-aware hardware model.

The queue reproduces the two costs §2.2.1 identifies:

1. *The hardware is slow* — an invalidation takes ≈0.61 µs with an idle
   queue and degrades to ≈2.7 µs when many cores submit concurrently
   (Fig. 8a).  Concurrency is estimated from a sliding time window of
   recent submissions, so the degradation appears and disappears with the
   actual workload.
2. *The queue is serialized by a lock* — all submissions funnel through a
   single spinlock (``qi_lock``), which under strict protection becomes
   the multicore bottleneck (≈70 µs of spinning per packet at 16 cores).

Functionally, an invalidation removes entries from the :class:`Iotlb`
*when it executes*: synchronously inside :meth:`invalidate_sync`, or at
batch-flush time for deferred protection — this is exactly what creates
(and bounds) the deferred vulnerability window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

from repro.faults.injector import NULL_FAULTS
from repro.faults.plan import SITE_INV_STALL
from repro.hw.cpu import CAT_INVALIDATE, Core
from repro.hw.locks import NullLock, SharedResource, SpinLock
from repro.iommu.iotlb import Iotlb
from repro.obs.context import NULL_OBS, Observability
from repro.obs.requests import MARK_INVALIDATED
from repro.obs.spans import SPAN_IOTLB_INVALIDATE
from repro.obs.trace import (
    EV_FAULT_RECOVER,
    EV_INV_COMPLETE,
    EV_INV_FLUSH,
    EV_INV_SUBMIT,
    EV_INV_TIMEOUT,
)
from repro.sim.costmodel import CostModel
from repro.sim.units import us_to_cycles

#: Sliding window (cycles) over which concurrent submitters are counted.
_CONCURRENCY_WINDOW_CYCLES = us_to_cycles(64.0)

#: Recovery policy for wait descriptors that never retire (injected via
#: the ``inv.stall`` fault site): spin this long before declaring a
#: timeout, back off idling (exponentially) between bounded re-submits,
#: then reset the queue and flush the whole IOTLB as a last resort.
_STALL_TIMEOUT_CYCLES = us_to_cycles(10.0)
_STALL_BACKOFF_CYCLES = us_to_cycles(2.0)
_STALL_MAX_RETRIES = 3


def _in_window(t: int, horizon: int) -> bool:
    """THE window predicate: a submission at ``t`` counts iff it is at or
    after ``horizon``.  Eviction and counting must both use this (and its
    exact negation) or the two sides of the window disagree about
    submissions landing exactly on the boundary."""
    return t >= horizon


@dataclass(frozen=True)
class PendingInvalidation:
    """One queued (deferred) invalidation: a page range in a domain."""

    domain_id: int
    iova_page: int
    npages: int
    queued_at: int


class InvalidationQueue:
    """The IOMMU's command queue for IOTLB invalidations."""

    def __init__(self, iotlb: Iotlb, cost: CostModel,
                 lock: SpinLock | NullLock | None = None,
                 obs: Observability | None = None, faults=None):
        self.iotlb = iotlb
        self.cost = cost
        self.lock: SpinLock | NullLock = lock if lock is not None \
            else NullLock("qi-lock")
        self.obs = obs if obs is not None else NULL_OBS
        self.faults = faults if faults is not None else NULL_FAULTS
        self.hardware = SharedResource("iommu-invalidation-hw")
        self._recent: Deque[Tuple[int, int]] = deque()  # (time, core id)
        # Completion timestamps of descriptors still in flight at the
        # latest submission — obs-only bookkeeping behind the queue-depth
        # time series (host memory; never read by the simulation).
        self._inflight_done: Deque[int] = deque()
        self.sync_invalidations = 0
        self.batch_flushes = 0
        # Stall-recovery accounting (see _recover_stall).
        self.timeouts = 0
        self.recovered_stalls = 0
        self.queue_resets = 0

    # ------------------------------------------------------------------
    # Concurrency estimation (drives the Fig. 8a latency degradation).
    # ------------------------------------------------------------------
    def _window_concurrency(self, now: int) -> int:
        """Distinct submitting cores within the window ending at ``now``.

        Evicts expired entries from the head; both eviction and counting
        use :func:`_in_window` so a submission exactly on the boundary is
        either counted everywhere or nowhere.
        """
        horizon = now - _CONCURRENCY_WINDOW_CYCLES
        recent = self._recent
        # Both comparisons below inline :func:`_in_window` (``t >=
        # horizon``) — this runs per submission over the whole window, so
        # the predicate call per element is measurable.  The per-query
        # filter cannot become incremental distinct-counting: appends are
        # not time-monotonic under min-clock interleaving.
        while recent and recent[0][0] < horizon:
            recent.popleft()
        return len({cid for t, cid in recent if t >= horizon})

    def _note_submission(self, core: Core) -> int:
        self._recent.append((core.now, core.cid))
        return self._window_concurrency(core.now)

    def current_concurrency(self, core: Core) -> int:
        """Distinct cores that submitted within the recent window."""
        return self._window_concurrency(core.now) or 1

    # ------------------------------------------------------------------
    # Strict protection: invalidate and wait, under the queue lock.
    # ------------------------------------------------------------------
    def invalidate_sync(self, core: Core, domain_id: int, iova_page: int,
                        npages: int = 1) -> None:
        """Page-range invalidation with completion wait (strict unmap path).

        Mirrors the Linux intel-iommu strict path: take the queue lock,
        post the invalidation descriptor plus a wait descriptor, busy-wait
        for the hardware to signal completion, release the lock.
        """
        self.lock.acquire(core)
        self._invalidate_locked(core, domain_id, iova_page, npages)
        self.lock.release(core)
        self.sync_invalidations += 1

    def invalidate_domain_sync(self, core: Core, domain_id: int) -> None:
        """Domain-wide invalidation with completion wait."""
        self.lock.acquire(core)
        self._submit_and_wait(core, scope="domain", domain_id=domain_id)
        self.iotlb.invalidate_domain(domain_id)
        if self.obs.enabled:
            self.obs.exposure.note_invalidate_domain(core.now, domain_id)
        self.lock.release(core)
        self.sync_invalidations += 1

    def _submit_and_wait(self, core: Core, scope: str,
                         domain_id: int = -1, npages: int = 0) -> None:
        """Post one descriptor + wait descriptor and busy-wait completion.

        Shared by every submission path; the observed latency (hardware
        queueing + service) feeds the ``invalidation.latency_cycles``
        histogram that reproduces Fig. 8a as a distribution.
        """
        if self.obs.enabled:
            self.obs.spans.begin(SPAN_IOTLB_INVALIDATE, core)
        core.charge(self.cost.invq_submit_cycles, CAT_INVALIDATE)
        concurrency = self._note_submission(core)
        submitted_at = core.now
        latency = self.cost.iotlb_invalidation_latency(concurrency)
        if self.faults.enabled and self.faults.fires(SITE_INV_STALL, core):
            done = self._recover_stall(core, scope, latency)
        else:
            done = self.hardware.occupy(core.now, latency)
            core.spin_until(done, CAT_INVALIDATE)
            core.charge(self.cost.invq_wait_poll_cycles, CAT_INVALIDATE)
        if self.obs.enabled:
            observed = done - submitted_at
            metrics = self.obs.metrics
            metrics.histogram("invalidation.latency_cycles").observe(observed)
            metrics.counter(f"invalidation.submissions:{scope}").inc()
            metrics.series("invalidation.concurrency").sample(
                submitted_at, concurrency)
            # Queue depth seen by this submission: descriptors whose
            # completion lies beyond the submit instant.  The hardware's
            # FIFO discipline makes completion times monotone per
            # occupancy order, so evicting from the head suffices.
            inflight = self._inflight_done
            while inflight and inflight[0] <= submitted_at:
                inflight.popleft()
            inflight.append(done)
            metrics.series("invalidation.queue_depth").sample(
                submitted_at, len(inflight))
            self.obs.tracer.emit(EV_INV_SUBMIT, submitted_at, core.cid,
                                 scope=scope, domain=domain_id,
                                 pages=npages, concurrency=concurrency)
            self.obs.tracer.emit(EV_INV_COMPLETE, done, core.cid,
                                 scope=scope, latency_cycles=observed)
            self.obs.requests.mark(core, MARK_INVALIDATED)
            self.obs.spans.end(core)

    def _recover_stall(self, core: Core, scope: str, latency: int) -> int:
        """A wait descriptor never retired: timeout, back off, re-submit
        (bounded), then reset the queue and flush the whole IOTLB.

        Never raises and never leaves an IOTLB entry the caller believes
        is gone — over-invalidating is always safe, so strict schemes
        keep their zero-window guarantee even through a reset.  Returns
        the completion instant.
        """
        retries = 0
        while True:
            core.spin_until(core.now + _STALL_TIMEOUT_CYCLES,
                            CAT_INVALIDATE)
            core.charge(self.cost.invq_wait_poll_cycles, CAT_INVALIDATE)
            self.timeouts += 1
            if self.obs.enabled:
                self.obs.tracer.emit(EV_INV_TIMEOUT, core.now, core.cid,
                                     scope=scope, retry=retries)
                self.obs.metrics.counter("invalidation.timeouts").inc()
            if retries >= _STALL_MAX_RETRIES:
                break
            core.advance_to(core.now + (_STALL_BACKOFF_CYCLES << retries))
            retries += 1
            core.charge(self.cost.invq_submit_cycles, CAT_INVALIDATE)
            if not (self.faults.enabled
                    and self.faults.fires(SITE_INV_STALL, core)):
                done = self.hardware.occupy(core.now, latency)
                core.spin_until(done, CAT_INVALIDATE)
                core.charge(self.cost.invq_wait_poll_cycles,
                            CAT_INVALIDATE)
                self.recovered_stalls += 1
                if self.obs.enabled:
                    self.obs.tracer.emit(EV_FAULT_RECOVER, core.now,
                                         core.cid, site=SITE_INV_STALL,
                                         action="retry", retries=retries)
                    self.obs.metrics.counter(
                        "invalidation.stall_retries").inc()
                return done
        # Retries exhausted: model a queue reset.  The reset path always
        # completes, and flushing every entry is a superset of whatever
        # the stuck descriptor was meant to revoke.
        self.queue_resets += 1
        core.charge(self.cost.invq_submit_cycles * 2, CAT_INVALIDATE)
        done = self.hardware.occupy(
            core.now, self.cost.iotlb_invalidation_latency(1))
        core.spin_until(done, CAT_INVALIDATE)
        self.iotlb.invalidate_all()
        self.recovered_stalls += 1
        if self.obs.enabled:
            self.obs.exposure.note_invalidate_all(core.now)
            self.obs.tracer.emit(EV_FAULT_RECOVER, core.now, core.cid,
                                 site=SITE_INV_STALL, action="queue-reset")
            self.obs.metrics.counter("invalidation.queue_resets").inc()
        return done

    def _invalidate_locked(self, core: Core, domain_id: int,
                           iova_page: int, npages: int) -> None:
        self._submit_and_wait(core, scope="page", domain_id=domain_id,
                              npages=npages)
        self.iotlb.invalidate_pages(domain_id, iova_page, npages)
        if self.obs.enabled:
            # ``core.now`` is the completion instant — the true
            # revocation time the exposure windows close at.
            self.obs.exposure.note_invalidate_pages(core.now, domain_id,
                                                    iova_page, npages)

    # ------------------------------------------------------------------
    # Deferred protection: flush a batch with one global invalidation.
    # ------------------------------------------------------------------
    def flush_batch(self, core: Core,
                    pending: List[PendingInvalidation]) -> None:
        """Flush a deferred batch (Linux: one *global* IOTLB invalidation
        amortized over up to 250 unmaps).

        Until this runs, every IOVA in ``pending`` remains reachable
        through stale IOTLB entries — the vulnerability window.
        """
        if not pending:
            return
        self.lock.acquire(core)
        self._submit_and_wait(core, scope="global",
                              npages=sum(p.npages for p in pending))
        self.iotlb.invalidate_all()
        if self.obs.enabled:
            self.obs.exposure.note_invalidate_all(core.now)
        self.lock.release(core)
        self.batch_flushes += 1
        if self.obs.enabled:
            self.obs.tracer.emit(EV_INV_FLUSH, core.now, core.cid,
                                 batch=len(pending))
            self.obs.metrics.histogram(
                "invalidation.batch_size").observe(len(pending))
