"""IOTLB — the IOMMU's translation cache.

The IOTLB is what makes deferred protection insecure: removing a page-table
entry does *not* revoke device access until the corresponding IOTLB entry
is invalidated.  This model is fully functional — translations inserted on
page-table walks stay visible to devices until an explicit invalidation —
so the paper's vulnerability window exists in the simulation and the
attack scenarios can exploit it.

Entries are kept per (domain, IOVA page) with LRU eviction at a bounded
capacity, like the real structure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from repro.iommu.page_table import PteEntry


@dataclass
class IotlbStats:
    """Counter semantics, kept deliberately distinct:

    * ``invalidations`` — invalidation *operations* issued (one per
      ``invalidate_pages``/``invalidate_domain`` call, however many
      entries it covers); this is the paper's cost unit — each op is a
      queued-invalidation command.
    * ``invalidated_entries`` — cached entries actually *removed* by
      those operations; ops over uncached pages remove nothing.
    * ``evictions`` — entries displaced by capacity pressure on
      ``insert``, never by invalidation.
    * ``prefetches`` / ``prefetch_hits`` — hint-inserted entries
      (:meth:`Iotlb.prefetch`, MMU-aware DMA engine style) and the
      subset whose *first* device lookup found them still cached.
      Counted apart from demand fills so the hint hit rate is visible
      on its own.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    invalidated_entries: int = 0
    global_invalidations: int = 0
    evictions: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0

    @property
    def prefetch_hit_rate(self) -> float:
        return (self.prefetch_hits / self.prefetches
                if self.prefetches else 0.0)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Iotlb:
    """LRU cache of (domain_id, iova_page) → :class:`PteEntry`."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("IOTLB capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], PteEntry]" = OrderedDict()
        # Keys inserted by prefetch() whose first lookup hasn't happened
        # yet — membership drives the prefetch_hits counter; discarded on
        # first hit, invalidation, or eviction.
        self._prefetched: set = set()
        self.stats = IotlbStats()

    def lookup(self, domain_id: int, iova_page: int) -> PteEntry | None:
        key = (domain_id, iova_page)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if key in self._prefetched:
            self._prefetched.discard(key)
            self.stats.prefetch_hits += 1
        return entry

    def insert(self, domain_id: int, iova_page: int, entry: PteEntry) -> None:
        key = (domain_id, iova_page)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        # A demand fill over a pending hint supersedes it.
        self._prefetched.discard(key)
        if len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._prefetched.discard(evicted)
            self.stats.evictions += 1

    def prefetch(self, domain_id: int, iova_page: int,
                 entry: PteEntry) -> None:
        """Hint-insert a translation at map time (MMU-aware DMA engine /
        TLB-prefetch style, Kurth et al.): the first device access then
        hits instead of walking.  Counted separately from demand fills —
        see :class:`IotlbStats`."""
        key = (domain_id, iova_page)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._prefetched.add(key)
        self.stats.prefetches += 1
        if len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._prefetched.discard(evicted)
            self.stats.evictions += 1

    def contains(self, domain_id: int, iova_page: int) -> bool:
        """Non-perturbing membership test (no LRU update, no stats)."""
        return (domain_id, iova_page) in self._entries

    def peek(self, domain_id: int, iova_page: int) -> PteEntry | None:
        """Non-perturbing read of a cached entry (no LRU update/stats)."""
        return self._entries.get((domain_id, iova_page))

    # ------------------------------------------------------------------
    # Invalidation — the operations the paper's whole cost story is about.
    # ------------------------------------------------------------------
    def invalidate_pages(self, domain_id: int, iova_page: int,
                         npages: int = 1) -> int:
        """Drop entries for ``npages`` starting at ``iova_page``.

        Returns how many cached entries were actually removed.
        """
        removed = 0
        for page in range(iova_page, iova_page + npages):
            key = (domain_id, page)
            if self._entries.pop(key, None) is not None:
                removed += 1
            self._prefetched.discard(key)
        self.stats.invalidations += 1
        self.stats.invalidated_entries += removed
        return removed

    def invalidate_domain(self, domain_id: int) -> int:
        """Drop every entry belonging to ``domain_id``."""
        keys = [k for k in self._entries if k[0] == domain_id]
        for key in keys:
            del self._entries[key]
            self._prefetched.discard(key)
        self.stats.invalidations += 1
        self.stats.invalidated_entries += len(keys)
        return len(keys)

    def invalidate_all(self) -> int:
        """Global invalidation: drop everything."""
        count = len(self._entries)
        self._entries.clear()
        self._prefetched.clear()
        self.stats.global_invalidations += 1
        self.stats.invalidated_entries += count
        return count

    def __len__(self) -> int:
        return len(self._entries)
