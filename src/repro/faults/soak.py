"""Chaos soak harness: every scheme under every fault mix, no leaks.

The harness drives a full system (NIC + driver + scheme) through a
bidirectional traffic loop while a :class:`~repro.faults.injector.
FaultInjector` fires a :class:`~repro.faults.plan.FaultPlan` at it, then
quiesces and audits the wreckage:

* ``live_mappings == 0`` — every ``dma_map`` met its ``dma_unmap``;
* ``outstanding_ranges() == 0`` — no leaked IOVA ranges, even on the
  paths where a mid-map failure forced unwinding;
* shadow pool ``in_flight == 0`` and balanced accounting;
* *no-window* schemes (the ``-strict`` family and ``copy``) show
  **exactly zero** stale byte·cycles and zero stale accesses — injected
  invalidation stalls must be recovered *inside* ``dma_unmap``;
* windowed schemes end with **zero open** stale pages once quiesced —
  their exposure only shrinks after the traffic stops.

The injector is inactive during build/setup and quiesce/teardown, so a
plan perturbs only the traffic phase — recovery-free control paths can
never trip, and the audited end state is reached deterministically.
Same seed + same plan ⇒ byte-identical JSONL event trace.

``soak_matrix`` runs the scheme × mix × seed cube and renders a
degradation report: each faulted run is compared against a same-seed
baseline run with an empty plan, so the report shows what the faults
*cost*, not what the scheme costs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.attacks.attacker import AttackerDevice
from repro.dma.registry import ALL_SCHEMES, scheme_properties
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    SITE_ATTACK_BURST,
    SITE_INV_STALL,
    SITE_IOVA_ALLOC,
    SITE_NIC_RX_DROP,
    SITE_POOL_GROW,
    SITE_PT_MAP,
    SITE_RING_OVERFLOW,
    FaultPlan,
    SiteRule,
    site_seed,
)
from repro.net.packets import build_frame
from repro.obs.context import Observability
from repro.sim.units import TCP_MSS
from repro.system import System, SystemConfig

#: Named fault mixes for the soak matrix.  Rates are per-consult, so a
#: few hundred traffic units see each armed site fire several times.
MIXES: Dict[str, Dict[str, SiteRule]] = {
    "resource": {
        SITE_POOL_GROW: SiteRule(rate=0.05),
        SITE_IOVA_ALLOC: SiteRule(rate=0.05),
        SITE_PT_MAP: SiteRule(rate=0.02),
    },
    "invalidation": {
        SITE_INV_STALL: SiteRule(rate=0.2),
    },
    "device": {
        SITE_NIC_RX_DROP: SiteRule(rate=0.05),
        SITE_RING_OVERFLOW: SiteRule(rate=0.05),
        SITE_ATTACK_BURST: SiteRule(rate=0.05),
    },
    "mixed": {
        SITE_POOL_GROW: SiteRule(rate=0.02),
        SITE_IOVA_ALLOC: SiteRule(rate=0.02),
        SITE_PT_MAP: SiteRule(rate=0.01),
        SITE_INV_STALL: SiteRule(rate=0.05),
        SITE_NIC_RX_DROP: SiteRule(rate=0.02),
        SITE_RING_OVERFLOW: SiteRule(rate=0.02),
        SITE_ATTACK_BURST: SiteRule(rate=0.02),
    },
}

#: Probes per attack burst.  Reads only: hostile reads are side-effect
#: free on every scheme (including the unprotected baselines), so the
#: soak measures protection and recovery, not self-inflicted memory
#: corruption — the write-attack scenarios live in repro.attacks.
_BURST_PROBES = 4
_BURST_SPAN = 1 << 35


def mix_plan(mix: str, seed: int) -> FaultPlan:
    """The named ``mix`` as a plan under ``seed`` (empty plan for "none")."""
    if mix == "none":
        return FaultPlan(seed=seed)
    try:
        rules = MIXES[mix]
    except KeyError:
        raise SimulationError(
            f"unknown fault mix {mix!r}; choices: "
            + ", ".join(["none", *MIXES])) from None
    return FaultPlan(seed=seed, rules=dict(rules))


@dataclass
class ChaosResult:
    """Outcome of one chaos run, with the post-quiesce audit attached."""

    scheme: str
    seed: int
    plan_desc: str
    cores: int
    units: int
    rx_delivered: int = 0
    rx_offered: int = 0
    tx_segments: int = 0
    wall_cycles: int = 0
    fault_summary: Dict[str, Dict[str, int]] = field(default_factory=dict)
    recovery: Dict[str, int] = field(default_factory=dict)
    exposure: Dict[str, object] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    trace_jsonl: Optional[str] = None
    #: Host seconds the run took — the only wall-clock number here;
    #: everything else on this result is deterministic.
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def goodput(self) -> float:
        """Delivered RX bytes per simulated cycle (degradation metric)."""
        if self.wall_cycles <= 0:
            return 0.0
        return self.rx_delivered * TCP_MSS / self.wall_cycles

    @property
    def sim_cycles_per_wall_second(self) -> float:
        """Simulator speed (the bench throughput metric, per soak run)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.wall_cycles / self.wall_seconds


def _scheme_kwargs(scheme: str) -> Dict[str, object]:
    if scheme == "copy":
        # The chaos harness opts into the full degradation ladder:
        # shadow pool -> §5.3 fallback -> swiotlb-style bounce.  Regular
        # runs keep the default (fail loudly) so capacity bugs surface.
        return {"bounce_fallback": True}
    if scheme == "self-invalidating":
        # Thresholds that outlast the soak: the defaults model a ~100us
        # window, far shorter than a multi-fault soak, and an expired
        # mapping turns every later frame into a faulted drop.  The
        # windows still close — quiesce calls expire_all().
        return {"dma_budget": 1 << 20, "lifetime_us": 10_000_000.0}
    return {}


def _collect_recovery(system: System) -> Dict[str, int]:
    driver = system.driver
    counters = {
        "rx_refill_failures": driver.stats.rx_refill_failures,
        "rx_refill_recoveries": driver.stats.rx_refill_recoveries,
        "tx_map_failures": driver.stats.tx_map_failures,
        "tx_ring_recoveries": driver.stats.tx_ring_recoveries,
        "tx_dropped_chunks": driver.stats.tx_dropped_chunks,
        "rx_drops_injected": system.nic.stats.rx_drops_injected,
    }
    if system.iommu is not None:
        q = system.iommu.invalidation_queue
        counters.update({
            "inv_timeouts": q.timeouts,
            "inv_recovered_stalls": q.recovered_stalls,
            "inv_queue_resets": q.queue_resets,
        })
    api = system.dma_api
    if hasattr(api, "bounce_maps"):
        counters["bounce_maps"] = api.bounce_maps
    pool = getattr(api, "pool", None)
    if pool is not None:
        counters["pool_grow_failures"] = getattr(pool.stats,
                                                 "grow_failures", 0)
    return counters


def _audit(system: System, obs: Optional[Observability]) -> List[str]:
    """Post-quiesce invariant audit; returns human-readable violations."""
    violations: List[str] = []
    api = system.dma_api

    if api.live_mappings != 0:
        violations.append(
            f"{api.live_mappings} DMA mappings still live after quiesce")
    for attr in ("iova_allocator", "fallback_iova"):
        allocator = getattr(api, attr, None)
        if allocator is None:
            continue
        leaked = allocator.outstanding_ranges()
        if leaked:
            violations.append(
                f"{attr} leaked {leaked} IOVA range(s) at quiesce")
    pool = getattr(api, "pool", None)
    if pool is not None:
        if pool.stats.in_flight != 0:
            violations.append(
                f"shadow pool has {pool.stats.in_flight} buffers in "
                "flight after quiesce")
        if pool.stats.acquires != pool.stats.releases:
            violations.append(
                f"shadow pool acquires ({pool.stats.acquires}) != "
                f"releases ({pool.stats.releases})")

    if obs is not None and obs.enabled:
        summary = obs.exposure.summary()
        props = scheme_properties(system.config.scheme)
        if props.no_window and props.iommu_protection:
            # Strict schemes promise a zero window even while faults are
            # being injected into their invalidation path.
            if summary["stale_byte_cycles"] != 0:
                violations.append(
                    f"no-window scheme exposed "
                    f"{summary['stale_byte_cycles']} stale byte-cycles")
            if summary["stale_accesses"] != 0:
                violations.append(
                    f"no-window scheme served "
                    f"{summary['stale_accesses']} stale accesses")
        if summary["stale_open_pages"] != 0:
            violations.append(
                f"{summary['stale_open_pages']} stale windows still open "
                "after quiesce (deferred exposure must only shrink)")
    return violations


def run_chaos(scheme: str, plan: FaultPlan, *, cores: int = 1,
              units: int = 200, capture: bool = True,
              chunk_bytes: int = 4096,
              keep_trace: bool = False) -> ChaosResult:
    """One soak run: build, blast traffic under the plan, quiesce, audit.

    Never raises on an *injected* fault — absorbing them is the point.
    Invariant violations are reported on the result, not raised, so a
    matrix run can show every failure instead of the first.
    """
    started = time.perf_counter()
    obs = Observability.capture() if capture else None
    injector = FaultInjector(plan, obs=obs)
    system = System.build(SystemConfig(
        scheme=scheme, cores=cores, obs=obs, faults=injector,
        scheme_kwargs=_scheme_kwargs(scheme)))
    system.setup_queues()

    machine = system.machine
    queues = system.config.resolved_queues()
    frame = build_frame(TCP_MSS)
    attacker = AttackerDevice(system.dma_api.port())
    burst_rng = random.Random(site_seed(plan.seed, SITE_ATTACK_BURST) ^
                              0x5EED)
    result = ChaosResult(scheme=scheme, seed=plan.seed,
                         plan_desc=plan.describe(), cores=cores,
                         units=units)

    injector.start()
    for i in range(units):
        qid = i % queues
        core = machine.core(qid % machine.num_cores)
        result.rx_offered += 1
        if system.driver.receive_one(core, qid, frame) is not None:
            result.rx_delivered += 1
        result.tx_segments += system.driver.transmit_one(core, qid,
                                                         chunk_bytes)
        if injector.fires(SITE_ATTACK_BURST, core):
            for _ in range(_BURST_PROBES):
                iova = burst_rng.randrange(0, _BURST_SPAN) & ~0xFFF
                attacker.try_read(iova, 64)
    injector.stop()

    # Quiesce: drain the datapath with injection off — recovery must
    # already have restored enough state for a clean teardown.
    core0 = machine.core(0)
    system.teardown_queues()
    system.dma_api.quiesce(core0)
    if hasattr(system.dma_api, "expire_all"):
        # Self-invalidating hardware: model the clock passing every
        # armed threshold so its windows close before the audit.
        system.dma_api.expire_all()
    pool = getattr(system.dma_api, "pool", None)
    if pool is not None:
        pool.shrink(core0)

    result.wall_cycles = machine.wall_clock()
    result.fault_summary = injector.summary()
    result.recovery = _collect_recovery(system)
    if obs is not None:
        result.exposure = obs.exposure.summary()
    result.violations = _audit(system, obs)
    if keep_trace and obs is not None:
        result.trace_jsonl = obs.tracer.to_jsonl()
    result.wall_seconds = time.perf_counter() - started
    return result


# ----------------------------------------------------------------------
# The matrix: schemes x mixes x seeds, with a degradation report.
# ----------------------------------------------------------------------
@dataclass
class SoakRow:
    result: ChaosResult
    mix: str
    baseline_goodput: float

    @property
    def degradation_pct(self) -> float:
        if self.baseline_goodput <= 0:
            return 0.0
        loss = 1.0 - self.result.goodput / self.baseline_goodput
        return max(0.0, 100.0 * loss)


def soak_matrix(schemes: Sequence[str] = ALL_SCHEMES,
                mixes: Sequence[str] = tuple(MIXES),
                seeds: Sequence[int] = (1,), *, cores: int = 1,
                units: int = 200,
                capture: bool = True) -> List[SoakRow]:
    """Run the full cube; baselines (empty plan) are shared per scheme
    x seed so each mix's degradation is measured against the same run."""
    rows: List[SoakRow] = []
    baselines: Dict[tuple, float] = {}
    for scheme in schemes:
        for seed in seeds:
            key = (scheme, seed, cores, units)
            if key not in baselines:
                base = run_chaos(scheme, FaultPlan(seed=seed), cores=cores,
                                 units=units, capture=capture)
                baselines[key] = base.goodput
                rows.append(SoakRow(result=base, mix="none",
                                    baseline_goodput=base.goodput))
            for mix in mixes:
                res = run_chaos(scheme, mix_plan(mix, seed), cores=cores,
                                units=units, capture=capture)
                rows.append(SoakRow(result=res, mix=mix,
                                    baseline_goodput=baselines[key]))
    return rows


def render_soak_report(rows: Sequence[SoakRow]) -> str:
    """Human-readable degradation report for a soak matrix."""
    lines = [
        f"{'scheme':<20}{'mix':<14}{'seed':>5}{'rx':>7}{'drop%':>8}"
        f"{'degr%':>8}{'recoveries':>12}  status",
        "-" * 84,
    ]
    for row in rows:
        r = row.result
        dropped = r.rx_offered - r.rx_delivered
        drop_pct = 100.0 * dropped / r.rx_offered if r.rx_offered else 0.0
        recoveries = (r.recovery.get("inv_recovered_stalls", 0)
                      + r.recovery.get("rx_refill_recoveries", 0)
                      + r.recovery.get("tx_ring_recoveries", 0)
                      + r.recovery.get("bounce_maps", 0))
        status = "ok" if r.ok else "FAIL: " + "; ".join(r.violations)
        lines.append(
            f"{r.scheme:<20}{row.mix:<14}{r.seed:>5}{r.rx_delivered:>7}"
            f"{drop_pct:>8.1f}{row.degradation_pct:>8.1f}"
            f"{recoveries:>12}  {status}")
    failures = sum(1 for row in rows if not row.result.ok)
    lines.append("-" * 84)
    lines.append(f"{len(rows)} runs, {failures} invariant failure(s)")
    # The bench throughput section, for soaks: long chaos runs also
    # track simulator speed, so an event-loop regression shows up here
    # before it shows up as a CI timeout.
    total_sim = sum(row.result.wall_cycles for row in rows)
    total_wall = sum(row.result.wall_seconds for row in rows)
    if total_wall > 0:
        lines.append(
            f"simulator throughput: {total_sim:,} sim cycles in "
            f"{total_wall:.1f}s wall "
            f"({total_sim / total_wall:,.0f} sim cycles/s)")
    return "\n".join(lines)
