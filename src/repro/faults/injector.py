"""The fault injector: deterministic runtime evaluation of a plan.

Mirrors the zero-overhead observability pattern of :mod:`repro.obs`:
every component holds a ``faults`` attribute that defaults to
:data:`NULL_FAULTS` (``enabled = False``) and guards its injection sites
with ``if self.faults.enabled and self.faults.fires(SITE, core):`` — so
runs without a plan pay one attribute check per site and behave exactly
as before.

Determinism contract
--------------------
Each site owns a private ``random.Random`` seeded from
``sha256(f"{seed}:{site}")`` (see :func:`~repro.faults.plan.site_seed`);
stochastic draws therefore depend only on the plan seed and the ordered
sequence of *consults* of that site, never on wall clock, ``id()``
ordering, or ``PYTHONHASHSEED``.  Scripted ``at=`` triggers fire on
exact consult indices (1-based) and do not consume RNG draws, so mixing
the two stays reproducible.  The injector can be deactivated
(:meth:`FaultInjector.stop`) for build/quiesce phases: deactivated
consults are not counted and draw nothing, so the schedule resumes
exactly where it paused.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from .plan import FaultPlan, SiteRule, site_seed

try:  # trace constants only; keep this module import-cycle-free.
    from ..obs.trace import EV_FAULT_INJECT
except ImportError:  # pragma: no cover - obs is a sibling package
    EV_FAULT_INJECT = "fault.inject"


class NullFaultInjector:
    """Disabled injector — the default wired into every machine.

    ``fires`` always answers ``False``; hot paths additionally guard on
    ``enabled`` so the common case costs a single attribute check.
    """

    enabled = False
    active = False

    def fires(self, site: str, core=None) -> bool:
        return False

    def fire_count(self, site: str) -> int:
        return 0

    def consult_count(self, site: str) -> int:
        return 0

    def summary(self) -> Dict[str, Dict[str, int]]:
        return {}


#: Shared disabled injector (stateless, safe to share like ``NULL_OBS``).
NULL_FAULTS = NullFaultInjector()


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at runtime, deterministically.

    ``obs`` is an optional :class:`~repro.obs.context.Observability`;
    when tracing is enabled every fire emits an ``fault.inject`` event
    stamped with the site, consult index, and trigger kind so two runs
    of the same plan can be diffed event-for-event.
    """

    enabled = True

    def __init__(self, plan: FaultPlan, obs=None):
        self.plan = plan
        self.obs = obs
        #: ``False`` during system build and quiesce: consults pass
        #: through without counting, so recovery-free phases (coherent
        #: ring allocation, teardown) cannot trip injected faults.
        self.active = False
        self._rngs: Dict[str, random.Random] = {}
        self._consults: Dict[str, int] = {}
        self._fires: Dict[str, int] = {}
        for site, rule in plan.rules.items():
            if rule.rate > 0.0:
                self._rngs[site] = random.Random(site_seed(plan.seed, site))
            self._consults[site] = 0
            self._fires[site] = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.active = True

    def stop(self) -> None:
        self.active = False

    # ------------------------------------------------------------------
    def fires(self, site: str, core=None) -> bool:
        """One consult of ``site``: does the plan fire here?"""
        rule: Optional[SiteRule] = self.plan.rules.get(site)
        if rule is None or not self.active:
            return False
        self._consults[site] += 1
        index = self._consults[site]
        fired = index in rule.at
        if not fired and rule.rate > 0.0:
            # The draw happens on every counted consult so the schedule
            # depends only on the consult sequence, not on prior hits.
            fired = self._rngs[site].random() < rule.rate
        if fired and rule.max_fires is not None \
                and self._fires[site] >= rule.max_fires:
            fired = False
        if fired:
            self._fires[site] += 1
            if self.obs is not None and self.obs.enabled:
                t = core.now if core is not None else 0
                cid = core.cid if core is not None else -1
                self.obs.tracer.emit(EV_FAULT_INJECT, t, cid, site=site,
                                     consult=index, fire=self._fires[site])
                self.obs.metrics.counter(f"faults.injected.{site}").inc()
        return fired

    # ------------------------------------------------------------------
    def fire_count(self, site: str) -> int:
        return self._fires.get(site, 0)

    def consult_count(self, site: str) -> int:
        return self._consults.get(site, 0)

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-site consult/fire totals (for reports and tests)."""
        return {site: {"consults": self._consults[site],
                       "fires": self._fires[site]}
                for site in sorted(self._consults)}
