"""Fault plans: *what* to inject, *where*, and *when*.

A :class:`FaultPlan` is pure configuration — a seed plus one
:class:`SiteRule` per injection site.  It deliberately contains no
mutable state, so the same plan object can drive any number of
:class:`~repro.faults.injector.FaultInjector` instances and every one of
them replays exactly the same fault schedule (determinism is the whole
point of the subsystem; see docs/faults.md).

Sites are stable dotted names, mirroring the trace-event schema.  Each
names one well-defined failure the simulation can absorb:

=====================  =================================================
``pool.grow``          shadow-pool grow fails (buddy refuses the pages)
``iova.alloc``         IOVA allocator reports exhaustion
``pt.map``             page-table node allocation fails inside map_range
``inv.stall``          invalidation wait-descriptor never retires
``nic.rx_drop``        NIC silently drops an incoming frame
``ring.overflow``      TX descriptor ring is reported full
``attack.burst``       a malicious peer device fires a DMA probe burst
=====================  =================================================

A rule triggers either *stochastically* (``rate`` — probability per
consult, drawn from a per-site deterministic RNG) or *scripted* (``at``
— fire on exactly the Nth consult of that site, 1-based), and can be
capped with ``max_fires``.

Plans are built programmatically or parsed from the compact CLI spec
accepted by ``python -m repro chaos --plan``::

    pool.grow:rate=0.05,inv.stall:at=3|7,iova.alloc:rate=0.1:max=2
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..seeding import derive_seed

# ----------------------------------------------------------------------
# Injection sites (stable schema — docs/faults.md documents each).
# ----------------------------------------------------------------------
SITE_POOL_GROW = "pool.grow"
SITE_IOVA_ALLOC = "iova.alloc"
SITE_PT_MAP = "pt.map"
SITE_INV_STALL = "inv.stall"
SITE_NIC_RX_DROP = "nic.rx_drop"
SITE_RING_OVERFLOW = "ring.overflow"
SITE_ATTACK_BURST = "attack.burst"

ALL_SITES = (
    SITE_POOL_GROW, SITE_IOVA_ALLOC, SITE_PT_MAP, SITE_INV_STALL,
    SITE_NIC_RX_DROP, SITE_RING_OVERFLOW, SITE_ATTACK_BURST,
)


def site_seed(seed: int, site: str) -> int:
    """Stable per-site sub-seed.

    Delegates to :func:`repro.seeding.derive_seed` — the shared sha256
    scheme every randomized subsystem uses — with the site name as the
    stream label, so fault schedules survive interpreter restarts and
    ``PYTHONHASHSEED`` randomisation (the determinism tests compare
    JSONL traces byte-for-byte across processes).
    """
    return derive_seed(seed, site)


@dataclass(frozen=True)
class SiteRule:
    """When one site fires.

    ``rate`` is the per-consult probability (0 disables the stochastic
    part); ``at`` lists 1-based consult indices that fire
    unconditionally; ``max_fires`` caps the total fires (``None`` =
    unbounded).
    """

    rate: float = 0.0
    at: Tuple[int, ...] = ()
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ConfigurationError(
                f"fault rate must be in [0, 1]: {self.rate}")
        if any(i < 1 for i in self.at):
            raise ConfigurationError(
                f"scripted trigger indices are 1-based: {self.at}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ConfigurationError(
                f"max_fires must be non-negative: {self.max_fires}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, immutable fault schedule: seed + per-site rules."""

    seed: int = 0
    rules: Dict[str, SiteRule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for site in self.rules:
            if site not in ALL_SITES:
                raise ConfigurationError(
                    f"unknown fault site {site!r}; valid sites: "
                    + ", ".join(ALL_SITES))

    def rule(self, site: str) -> Optional[SiteRule]:
        return self.rules.get(site)

    @property
    def empty(self) -> bool:
        return not self.rules

    def describe(self) -> str:
        if self.empty:
            return "no faults"
        parts = []
        for site in ALL_SITES:
            r = self.rules.get(site)
            if r is None:
                continue
            bits = []
            if r.rate:
                bits.append(f"rate={r.rate:g}")
            if r.at:
                bits.append("at=" + "|".join(str(i) for i in r.at))
            if r.max_fires is not None:
                bits.append(f"max={r.max_fires}")
            parts.append(f"{site}:" + ":".join(bits) if bits else site)
        return ", ".join(parts)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Parse the compact CLI spec into a plan.

        Grammar: comma-separated clauses, each
        ``site[:rate=F][:at=N|N|...][:max=N]``.
        """
        rules: Dict[str, SiteRule] = {}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            site = parts[0].strip()
            if site not in ALL_SITES:
                raise ConfigurationError(
                    f"unknown fault site {site!r} in plan spec; valid "
                    "sites: " + ", ".join(ALL_SITES))
            if site in rules:
                raise ConfigurationError(
                    f"duplicate fault site {site!r} in plan spec")
            rate = 0.0
            at: Tuple[int, ...] = ()
            max_fires: Optional[int] = None
            for opt in parts[1:]:
                key, sep, value = opt.partition("=")
                key = key.strip()
                if not sep:
                    raise ConfigurationError(
                        f"malformed option {opt!r} for site {site!r} "
                        "(expected key=value)")
                try:
                    if key == "rate":
                        rate = float(value)
                    elif key == "at":
                        at = tuple(int(v) for v in value.split("|") if v)
                    elif key == "max":
                        max_fires = int(value)
                    else:
                        raise ConfigurationError(
                            f"unknown option {key!r} for site {site!r} "
                            "(valid: rate, at, max)")
                except ValueError as exc:
                    raise ConfigurationError(
                        f"bad value {value!r} for {site}:{key}: {exc}"
                    ) from exc
            if rate == 0.0 and not at:
                raise ConfigurationError(
                    f"site {site!r} needs rate= or at= to ever fire")
            rules[site] = SiteRule(rate=rate, at=at, max_fires=max_fires)
        if not rules:
            raise ConfigurationError(f"empty fault plan spec: {spec!r}")
        return cls(seed=seed, rules=rules)
