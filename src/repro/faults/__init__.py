"""Deterministic fault injection, recovery policies, and chaos soak.

See docs/faults.md for the site catalogue, plan grammar, recovery
policies, and the invariants the soak harness enforces.
"""

from .injector import NULL_FAULTS, FaultInjector, NullFaultInjector
from .plan import (
    ALL_SITES,
    SITE_ATTACK_BURST,
    SITE_INV_STALL,
    SITE_IOVA_ALLOC,
    SITE_NIC_RX_DROP,
    SITE_POOL_GROW,
    SITE_PT_MAP,
    SITE_RING_OVERFLOW,
    FaultPlan,
    SiteRule,
    site_seed,
)

__all__ = [
    "ALL_SITES", "FaultInjector", "FaultPlan", "NULL_FAULTS",
    "NullFaultInjector", "SITE_ATTACK_BURST", "SITE_INV_STALL",
    "SITE_IOVA_ALLOC", "SITE_NIC_RX_DROP", "SITE_POOL_GROW",
    "SITE_PT_MAP", "SITE_RING_OVERFLOW", "SiteRule", "site_seed",
]
