"""IOVA allocators: identity, Linux rbtree, EiovaR cache, per-core magazines."""

from repro.iova.allocators import (
    EiovaRAllocator,
    IdentityIovaAllocator,
    LinuxIovaAllocator,
    MagazineIovaAllocator,
)
from repro.iova.base import IovaAllocator

__all__ = [
    "IovaAllocator",
    "IdentityIovaAllocator",
    "LinuxIovaAllocator",
    "EiovaRAllocator",
    "MagazineIovaAllocator",
]
