"""Common interface for IOVA allocators.

The zero-copy protection schemes need an I/O virtual address range for
every ``dma_map``.  How that range is found is one of the two performance
stories of prior work (the other being IOTLB invalidation): Linux's
red-black-tree allocator with its global lock [Fig. 1], EiovaR's cached
ranges [38], and Peleg et al.'s per-core magazines [42].  All are modeled
here behind one interface so DMA strategies can be composed with any of
them.

Allocation is in whole pages; allocators return the *page-aligned base*
of the range and callers add the sub-page offset of the buffer.
"""

from __future__ import annotations

from typing import Protocol

from repro.hw.cpu import Core


class IovaAllocator(Protocol):
    """Allocate/free page-granular IOVA ranges for one device domain."""

    #: Human-readable allocator name (used in reports and Table 1).
    name: str

    def alloc(self, npages: int, core: Core, pa: int) -> int:
        """Return the base IOVA (page aligned) of a fresh ``npages`` range.

        ``pa`` is the physical address being mapped — identity allocators
        derive the IOVA from it; the others ignore it.
        """
        ...

    def free(self, iova: int, npages: int, core: Core) -> None:
        """Release a range previously returned by :meth:`alloc`."""
        ...
