"""IOVA allocator implementations.

Four allocators, matching the systems compared in the paper's Table 1 and
Figure 1:

* :class:`IdentityIovaAllocator` — IOVA = physical address ([42]'s
  ``identity`` variant, used for the paper's identity± baselines).  No
  allocation state at all.
* :class:`LinuxIovaAllocator` — models the stock Linux red-black-tree
  allocator: a globally locked address-ordered tree, allocating from the
  top of the space downward.
* :class:`EiovaRAllocator` — FAST'15 [38]: a cache of previously freed
  ranges in front of the Linux tree.  Fast when request sizes repeat
  (they do, in networking), but still serialized by the same global lock.
* :class:`MagazineIovaAllocator` — ATC'15 [42]: per-core magazines of
  freed ranges; the global tree (and its lock) is touched only to refill
  or drain a magazine.

All of them hand out page-granular ranges within the lower half of the
48-bit space — the upper half (MSB set) is reserved for shadow-buffer
IOVAs (§5.3, Fig. 2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.errors import ConfigurationError, IovaExhaustedError
from repro.faults.injector import NULL_FAULTS
from repro.faults.plan import SITE_IOVA_ALLOC
from repro.hw.cpu import Core
from repro.hw.locks import NullLock, SpinLock
from repro.sim.costmodel import CostModel
from repro.sim.units import PAGE_SHIFT

#: Lower-half 48-bit IOVA space, in pages: [1, 2^35) page numbers.
#: Page 0 is never allocated so an IOVA of 0 can act as "none".
_FIRST_PAGE = 1
_LAST_PAGE = (1 << 35) - 1


class IdentityIovaAllocator:
    """IOVA = physical address; nothing to allocate or free."""

    name = "identity"

    def __init__(self, cost: CostModel):
        self.cost = cost

    def alloc(self, npages: int, core: Core, pa: int) -> int:  # noqa: ARG002
        core.charge(self.cost.iova_identity_cycles)
        return (pa >> PAGE_SHIFT) << PAGE_SHIFT

    def free(self, iova: int, npages: int, core: Core) -> None:  # noqa: ARG002
        core.charge(self.cost.iova_identity_cycles // 2)

    def outstanding_ranges(self) -> int:
        return 0


class LinuxIovaAllocator:
    """Stock Linux: globally locked, address-ordered allocation.

    The functional structure is a next-fit free cursor with an allocated-
    range map (enough to guarantee non-overlap and catch double frees);
    the *cost* is the calibrated red-black-tree walk plus the global
    ``iova_rbtree_lock``.
    """

    name = "linux"

    #: Fault injector (instance-assigned by the scheme registry; the
    #: class default keeps standalone construction injection-free).
    faults = NULL_FAULTS

    def __init__(self, cost: CostModel, lock: SpinLock | NullLock | None = None,
                 alloc_cycles: int | None = None):
        self.cost = cost
        self.lock = lock if lock is not None else NullLock("iova-lock")
        self._alloc_cycles = (alloc_cycles if alloc_cycles is not None
                              else cost.iova_rbtree_cycles)
        self._cursor = _LAST_PAGE
        self._allocated: Dict[int, int] = {}   # base page -> npages
        self._free_ranges: List[tuple[int, int]] = []  # recycled (base, npages)

    def alloc(self, npages: int, core: Core, pa: int) -> int:  # noqa: ARG002
        if npages < 1:
            raise ConfigurationError("IOVA allocation of zero pages")
        if self.faults.enabled and self.faults.fires(SITE_IOVA_ALLOC, core):
            raise IovaExhaustedError("injected IOVA exhaustion (fault plan)")
        self.lock.acquire(core)
        core.charge(self._alloc_cycles)
        try:
            base = self._take_range(npages)
        except IovaExhaustedError:
            self.lock.release(core)
            raise
        self._allocated[base] = npages
        self.lock.release(core)
        return base << PAGE_SHIFT

    def free(self, iova: int, npages: int, core: Core) -> None:
        base = iova >> PAGE_SHIFT
        self.lock.acquire(core)
        core.charge(self._alloc_cycles)
        recorded = self._allocated.pop(base, None)
        if recorded is None:
            self.lock.release(core)
            raise IovaExhaustedError(f"free of unallocated IOVA {iova:#x}")
        if recorded != npages:
            self.lock.release(core)
            raise IovaExhaustedError(
                f"IOVA {iova:#x}: freed {npages} pages, allocated {recorded}"
            )
        self._free_ranges.append((base, npages))
        self.lock.release(core)

    def outstanding_ranges(self) -> int:
        """Allocated-but-unfreed ranges (leak detector hook)."""
        return len(self._allocated)

    def _take_range(self, npages: int) -> int:
        base = self._try_take(npages)
        if base is None:
            # Exhaustion: coalesce the recycled ranges (rewinding the
            # cursor over any block that reaches it) and retry once.
            self._coalesce()
            base = self._try_take(npages)
        if base is None:
            raise IovaExhaustedError("IOVA space exhausted")
        return base

    def _try_take(self, npages: int) -> int | None:
        # Prefer a recycled range of exactly the right size.
        for i, (base, size) in enumerate(self._free_ranges):
            if size == npages:
                del self._free_ranges[i]
                return base
        # Virgin space below the downward cursor.
        if self._cursor - npages >= _FIRST_PAGE:
            self._cursor -= npages
            return self._cursor
        # Split the smallest recycled range that still fits.
        best = -1
        best_size = 0
        for i, (base, size) in enumerate(self._free_ranges):
            if size > npages and (best < 0 or size < best_size):
                best, best_size = i, size
        if best >= 0:
            base, size = self._free_ranges[best]
            self._free_ranges[best] = (base + npages, size - npages)
            return base
        return None

    def _coalesce(self) -> None:
        """Merge adjacent recycled ranges; rewind the cursor over any
        merged block that ends exactly at it (that space is virgin
        again)."""
        if not self._free_ranges:
            return
        self._free_ranges.sort()
        merged: List[List[int]] = []
        for base, size in self._free_ranges:
            if merged and merged[-1][0] + merged[-1][1] == base:
                merged[-1][1] += size
            else:
                merged.append([base, size])
        self._free_ranges = []
        for base, size in merged:
            if base == self._cursor:
                self._cursor = base + size
            else:
                self._free_ranges.append((base, size))

    # Internal hook for EiovaR / magazines, called with the lock held
    # conceptually (they manage their own locking).
    def _take_range_unlocked(self, npages: int) -> int:
        base = self._take_range(npages)
        self._allocated[base] = npages
        return base

    def _give_range_unlocked(self, base: int, npages: int) -> None:
        recorded = self._allocated.pop(base, None)
        if recorded != npages:
            raise IovaExhaustedError(
                f"return of corrupt range base={base:#x} npages={npages}"
            )
        self._free_ranges.append((base, npages))


class EiovaRAllocator:
    """FAST'15 EiovaR: exact-size cache of freed ranges over the Linux tree.

    Hits avoid the expensive tree walk but still take the global lock —
    which is why EiovaR is fast single-core yet shares Linux's multicore
    scalability wall (Table 1, "single core perf ✓ / multi core perf ✗").
    """

    name = "eiovar"

    faults = NULL_FAULTS

    def __init__(self, cost: CostModel, lock: SpinLock | NullLock | None = None):
        self.cost = cost
        self.lock = lock if lock is not None else NullLock("iova-lock")
        self._tree = LinuxIovaAllocator(cost, NullLock("inner"),
                                        alloc_cycles=0)
        self._cache: Dict[int, List[int]] = defaultdict(list)  # npages -> bases
        self.cache_hits = 0
        self.cache_misses = 0

    def alloc(self, npages: int, core: Core, pa: int) -> int:  # noqa: ARG002
        if self.faults.enabled and self.faults.fires(SITE_IOVA_ALLOC, core):
            raise IovaExhaustedError("injected IOVA exhaustion (fault plan)")
        self.lock.acquire(core)
        bucket = self._cache[npages]
        if bucket:
            base = bucket.pop()
            self._tree._allocated[base] = npages
            core.charge(self.cost.iova_magazine_cycles)
            self.cache_hits += 1
        else:
            core.charge(self.cost.iova_rbtree_cycles)
            try:
                base = self._tree._take_range_unlocked(npages)
            except IovaExhaustedError:
                # The cached ranges of *other* sizes may cover most of
                # the space: spill them back to the tree and retry once
                # (splitting/coalescing happens down there).
                self._spill_cache()
                try:
                    base = self._tree._take_range_unlocked(npages)
                except IovaExhaustedError:
                    self.lock.release(core)
                    raise
            self.cache_misses += 1
        self.lock.release(core)
        return base << PAGE_SHIFT

    def _spill_cache(self) -> None:
        for size, bases in self._cache.items():
            for base in bases:
                self._tree._free_ranges.append((base, size))
            bases.clear()
        self._tree._coalesce()

    def free(self, iova: int, npages: int, core: Core) -> None:
        base = iova >> PAGE_SHIFT
        self.lock.acquire(core)
        core.charge(self.cost.iova_magazine_cycles)
        recorded = self._tree._allocated.pop(base, None)
        if recorded != npages:
            self.lock.release(core)
            raise IovaExhaustedError(f"free of unallocated IOVA {iova:#x}")
        self._cache[npages].append(base)
        self.lock.release(core)

    def outstanding_ranges(self) -> int:
        """Allocated-but-unfreed ranges (leak detector hook)."""
        return len(self._tree._allocated)


class MagazineIovaAllocator:
    """ATC'15 [42]: per-core magazines over a globally locked depot.

    Each core keeps up to ``magazine_size`` freed ranges per size class
    and satisfies allocations locally; only magazine refills/drains touch
    the shared tree.  This removes the allocation bottleneck — but the
    *invalidation* bottleneck (§2.2.1) remains, which is the paper's
    point.
    """

    name = "magazine"

    faults = NULL_FAULTS

    def __init__(self, cost: CostModel, num_cores: int,
                 lock: SpinLock | NullLock | None = None,
                 magazine_size: int = 127):
        self.cost = cost
        self.depot_lock = lock if lock is not None else NullLock("iova-depot")
        self.magazine_size = magazine_size
        self._tree = LinuxIovaAllocator(cost, NullLock("inner"),
                                        alloc_cycles=0)
        # magazines[core][npages] -> list of free bases
        self._magazines: List[Dict[int, List[int]]] = [
            defaultdict(list) for _ in range(num_cores)
        ]
        self.depot_refills = 0

    def alloc(self, npages: int, core: Core, pa: int) -> int:  # noqa: ARG002
        if self.faults.enabled and self.faults.fires(SITE_IOVA_ALLOC, core):
            raise IovaExhaustedError("injected IOVA exhaustion (fault plan)")
        magazine = self._magazines[core.cid][npages]
        core.charge(self.cost.iova_magazine_cycles)
        if magazine:
            base = magazine.pop()
            self._tree._allocated[base] = npages
            return base << PAGE_SHIFT
        # Refill from the depot: half a magazine at a time.  A partial
        # refill is kept; a completely dry depot reclaims every range
        # parked in any core's magazine before giving up.
        self.depot_lock.acquire(core)
        core.charge(self.cost.iova_rbtree_cycles)
        refill = max(1, self.magazine_size // 2)
        try:
            for _ in range(refill):
                # Ranges held by a magazine are reserved: neither
                # allocated nor in the depot's free pool.
                magazine.append(self._tree._take_range(npages))
        except IovaExhaustedError:
            if not magazine:
                self._reclaim_magazines()
                try:
                    magazine.append(self._tree._take_range(npages))
                except IovaExhaustedError:
                    self.depot_lock.release(core)
                    raise
        self.depot_refills += 1
        self.depot_lock.release(core)
        base = magazine.pop()
        self._tree._allocated[base] = npages
        return base << PAGE_SHIFT

    def _reclaim_magazines(self) -> None:
        """Return every parked range to the depot (exhaustion recovery)."""
        for mags in self._magazines:
            for size, bases in mags.items():
                for base in bases:
                    self._tree._free_ranges.append((base, size))
                bases.clear()
        self._tree._coalesce()

    def free(self, iova: int, npages: int, core: Core) -> None:
        base = iova >> PAGE_SHIFT
        core.charge(self.cost.iova_magazine_cycles)
        recorded = self._tree._allocated.pop(base, None)
        if recorded != npages:
            raise IovaExhaustedError(f"free of unallocated IOVA {iova:#x}")
        magazine = self._magazines[core.cid][npages]
        if len(magazine) >= self.magazine_size:
            # Drain overflow back to the depot.
            self.depot_lock.acquire(core)
            core.charge(self.cost.iova_rbtree_cycles)
            for extra in magazine[self.magazine_size // 2:]:
                self._tree._free_ranges.append((extra, npages))
            del magazine[self.magazine_size // 2:]
            self.depot_lock.release(core)
        magazine.append(base)

    def outstanding_ranges(self) -> int:
        """Allocated-but-unfreed ranges (leak detector hook).

        Ranges parked in magazines are reserved, not outstanding — only
        ranges handed to a caller and never freed count.
        """
        return len(self._tree._allocated)
