"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing Python
built-ins.  The sub-classes mirror the subsystems: hardware model, kernel
allocators, IOMMU, DMA API, shadow pool, and the attack framework.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class AllocationError(ReproError):
    """An allocator could not satisfy a request (out of memory / space)."""


class KallocError(AllocationError):
    """The kernel memory allocator (buddy / slab) failed."""


class IovaExhaustedError(AllocationError):
    """No IOVA range of the requested size is available."""


class PoolExhaustedError(AllocationError):
    """The shadow buffer pool hit its configured memory limit."""


class MemoryAccessError(ReproError):
    """A CPU-side access touched unallocated or out-of-range physical memory."""


class IommuFault(ReproError):
    """A DMA was blocked by the IOMMU (no mapping, or wrong permission).

    Mirrors a VT-d translation fault: carries the faulting device, the
    I/O virtual address, and whether the access was a read or a write.
    """

    def __init__(self, device_id: int, iova: int, *, is_write: bool,
                 reason: str = "no mapping"):
        self.device_id = device_id
        self.iova = iova
        self.is_write = is_write
        self.reason = reason
        kind = "write" if is_write else "read"
        super().__init__(
            f"IOMMU fault: device {device_id} {kind} at IOVA {iova:#x} ({reason})"
        )


class DmaApiError(ReproError):
    """Misuse of the DMA API (double unmap, unknown handle, bad direction)."""


class DmaApiUsageError(DmaApiError):
    """A driver violated the DMA API contract (e.g. touching an owned buffer)."""


class SecurityViolation(ReproError):
    """An attack scenario succeeded where the protection scheme claims it must not.

    Raised by the audit harness, not by regular operation: it means the
    protection property under test was breached.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""
