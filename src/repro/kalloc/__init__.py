"""Kernel memory allocation substrate: buddy pages + slab kmalloc."""

from repro.kalloc.buddy import BuddyAllocator
from repro.kalloc.slab import SLAB_SIZE_CLASSES, KBuffer, KernelAllocators, SlabAllocator

__all__ = [
    "BuddyAllocator",
    "SlabAllocator",
    "KernelAllocators",
    "KBuffer",
    "SLAB_SIZE_CLASSES",
]
