"""Slab (kmalloc-style) allocator.

Reproduces the property the paper's §4 leans on: ``kmalloc`` packs
multiple small allocations onto the *same 4 KB page* (Bonwick-style slab
caches), so a DMA buffer obtained from kmalloc can share its page with
unrelated — possibly sensitive — kernel data.  Page-granular IOMMU
mappings then expose that neighbouring data to the device; the shadow
pool's byte-granularity property is demonstrated against exactly this
allocator.

Requests larger than half a page fall through to the buddy allocator in
page quantities (as Linux's kmalloc does for large objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import KallocError
from repro.hw.cpu import Core
from repro.kalloc.buddy import BuddyAllocator
from repro.sim.costmodel import CostModel
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE

#: kmalloc size classes, like Linux's kmalloc-32 … kmalloc-2048 caches.
SLAB_SIZE_CLASSES = (32, 64, 128, 256, 512, 1024, 2048)


@dataclass(frozen=True)
class KBuffer:
    """A kernel allocation: physical address, usable size, owning node."""

    pa: int
    size: int
    node: int

    @property
    def end(self) -> int:
        return self.pa + self.size

    @property
    def first_page(self) -> int:
        return self.pa >> PAGE_SHIFT

    @property
    def last_page(self) -> int:
        return (self.pa + self.size - 1) >> PAGE_SHIFT

    def page_offset(self) -> int:
        """Byte offset of the buffer within its first page."""
        return self.pa & (PAGE_SIZE - 1)


class _SlabCache:
    """One size class: partial slabs are consumed object-by-object."""

    def __init__(self, object_size: int):
        self.object_size = object_size
        self.objects_per_slab = PAGE_SIZE // object_size
        self._free_objects: List[int] = []  # PAs of free objects

    def take(self) -> int | None:
        if self._free_objects:
            return self._free_objects.pop()
        return None

    def add_slab(self, page_pa: int) -> None:
        for i in range(self.objects_per_slab):
            self._free_objects.append(page_pa + i * self.object_size)

    def give_back(self, pa: int) -> None:
        self._free_objects.append(pa)

    @property
    def free_count(self) -> int:
        return len(self._free_objects)


class SlabAllocator:
    """kmalloc/kfree over one NUMA node's buddy allocator."""

    def __init__(self, node: int, buddy: BuddyAllocator, cost: CostModel):
        self.node = node
        self.buddy = buddy
        self.cost = cost
        self._caches: Dict[int, _SlabCache] = {
            size: _SlabCache(size) for size in SLAB_SIZE_CLASSES
        }
        # pa -> size class (for kfree of slab objects).
        self._objects: Dict[int, int] = {}
        # pa -> page order (for kfree of large allocations).
        self._large: Dict[int, int] = {}
        self.live_allocations = 0

    # ------------------------------------------------------------------
    def kmalloc(self, size: int, core: Core | None = None) -> KBuffer:
        """Allocate ``size`` bytes of kernel memory.

        Small sizes come from slab caches (co-located on shared pages);
        sizes above the largest class come from the buddy allocator in
        page quantities.
        """
        if size <= 0:
            raise KallocError(f"kmalloc of non-positive size {size}")
        if core is not None:
            core.charge(self.cost.kmalloc_cycles)
        cls = self._size_class(size)
        if cls is None:
            npages = (size + PAGE_SIZE - 1) >> PAGE_SHIFT
            order = (npages - 1).bit_length()
            pa = self.buddy.alloc_pages(order)
            self._large[pa] = order
            self.live_allocations += 1
            return KBuffer(pa=pa, size=size, node=self.node)
        cache = self._caches[cls]
        pa = cache.take()
        if pa is None:
            page_pa = self.buddy.alloc_pages(0)
            cache.add_slab(page_pa)
            pa = cache.take()
            assert pa is not None
        self._objects[pa] = cls
        self.live_allocations += 1
        return KBuffer(pa=pa, size=size, node=self.node)

    def kfree(self, buf: KBuffer, core: Core | None = None) -> None:
        """Return an allocation to its cache (or the buddy allocator)."""
        if core is not None:
            core.charge(self.cost.kfree_cycles)
        cls = self._objects.pop(buf.pa, None)
        if cls is not None:
            self._caches[cls].give_back(buf.pa)
            self.live_allocations -= 1
            return
        order = self._large.pop(buf.pa, None)
        if order is not None:
            self.buddy.free_pages(buf.pa)
            self.live_allocations -= 1
            return
        raise KallocError(f"kfree of unknown allocation at {buf.pa:#x}")

    # ------------------------------------------------------------------
    def neighbours_on_page(self, buf: KBuffer) -> List[int]:
        """PAs of other *live* slab objects sharing a page with ``buf``.

        Used by the attack framework to find co-located victims.
        """
        pages = set(range(buf.first_page, buf.last_page + 1))
        result = []
        for pa in self._objects:
            if pa == buf.pa:
                continue
            if (pa >> PAGE_SHIFT) in pages:
                result.append(pa)
        return sorted(result)

    @staticmethod
    def _size_class(size: int) -> int | None:
        for cls in SLAB_SIZE_CLASSES:
            if size <= cls:
                return cls
        return None


class KernelAllocators:
    """Per-NUMA-node buddy + slab allocators for a whole machine."""

    def __init__(self, machine) -> None:
        from repro.hw.machine import Machine  # local import to avoid cycle

        assert isinstance(machine, Machine)
        self.machine = machine
        self.buddies: List[BuddyAllocator] = []
        self.slabs: List[SlabAllocator] = []
        for node in machine.nodes:
            base, size = machine.memory.node_region(node.nid)
            # Manage a bounded slice of each node (4 GiB) — plenty for the
            # simulation while keeping buddy bookkeeping cheap.
            managed = min(size, 4 << 30)
            # max_order 14 (64 MiB blocks) accommodates large contiguous
            # reservations like the SWIOTLB bounce pool.
            buddy = BuddyAllocator(base, managed, machine.cost,
                                   max_order=14)
            self.buddies.append(buddy)
            self.slabs.append(SlabAllocator(node.nid, buddy, machine.cost))

    def kmalloc(self, size: int, node: int = 0,
                core: Core | None = None) -> KBuffer:
        return self.slabs[node].kmalloc(size, core)

    def kfree(self, buf: KBuffer, core: Core | None = None) -> None:
        self.slabs[buf.node].kfree(buf, core)

    def alloc_pages(self, order: int = 0, node: int = 0,
                    core: Core | None = None) -> int:
        return self.buddies[node].alloc_pages(order, core)

    def free_pages(self, pa: int, node: int = 0,
                   core: Core | None = None) -> None:
        self.buddies[node].free_pages(pa, core)
