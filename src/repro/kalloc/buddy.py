"""Buddy page-frame allocator.

One instance manages the physical range of a single NUMA node, handing
out naturally-aligned power-of-two runs of 4 KB pages.  It is the backing
store for the slab allocator, the shadow buffer pool, DMA-coherent
allocations, and NIC rings — i.e. every byte the simulation touches comes
from here, so double frees and overlap bugs surface immediately.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import KallocError
from repro.hw.cpu import Core
from repro.sim.costmodel import CostModel
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE


class BuddyAllocator:
    """Binary-buddy allocator over ``[base_pa, base_pa + size_bytes)``.

    ``alloc_pages(order)`` returns the physical address of a block of
    ``2**order`` pages; ``free_pages`` coalesces buddies back up to
    ``max_order``.  All bookkeeping is by page-frame number relative to
    ``base_pa``.
    """

    def __init__(self, base_pa: int, size_bytes: int, cost: CostModel,
                 max_order: int = 10):
        if base_pa % PAGE_SIZE:
            raise KallocError(f"base {base_pa:#x} not page aligned")
        if size_bytes < PAGE_SIZE:
            raise KallocError("buddy region smaller than one page")
        self.base_pa = base_pa
        self.cost = cost
        self.max_order = max_order
        self.total_pages = size_bytes >> PAGE_SHIFT
        # Free blocks per order, stored as sets of relative pfns.
        self._free: List[Set[int]] = [set() for _ in range(max_order + 1)]
        # rel-pfn -> order for currently allocated blocks.
        self._allocated: Dict[int, int] = {}
        self.allocated_pages = 0
        self.peak_allocated_pages = 0
        self._seed_free_blocks()

    def _seed_free_blocks(self) -> None:
        pfn = 0
        remaining = self.total_pages
        while remaining:
            order = min(self.max_order, remaining.bit_length() - 1)
            # Respect natural alignment of the block.
            while order and (pfn & ((1 << order) - 1)):
                order -= 1
            self._free[order].add(pfn)
            pfn += 1 << order
            remaining -= 1 << order

    # ------------------------------------------------------------------
    def alloc_pages(self, order: int = 0, core: Core | None = None) -> int:
        """Allocate ``2**order`` contiguous pages; returns their base PA."""
        if not 0 <= order <= self.max_order:
            raise KallocError(f"order {order} out of range")
        if core is not None:
            core.charge(self.cost.page_alloc_cycles)
        current = order
        while current <= self.max_order and not self._free[current]:
            current += 1
        if current > self.max_order:
            raise KallocError(
                f"out of pages: want order {order}, "
                f"{self.allocated_pages}/{self.total_pages} allocated"
            )
        pfn = min(self._free[current])
        self._free[current].discard(pfn)
        # Split down to the requested order, releasing the upper halves.
        while current > order:
            current -= 1
            buddy = pfn + (1 << current)
            self._free[current].add(buddy)
        self._allocated[pfn] = order
        self.allocated_pages += 1 << order
        self.peak_allocated_pages = max(self.peak_allocated_pages,
                                        self.allocated_pages)
        return self.base_pa + (pfn << PAGE_SHIFT)

    def free_pages(self, pa: int, core: Core | None = None) -> None:
        """Free a block previously returned by :meth:`alloc_pages`."""
        if core is not None:
            core.charge(self.cost.page_free_cycles)
        pfn = self._rel_pfn(pa)
        order = self._allocated.pop(pfn, None)
        if order is None:
            raise KallocError(f"free of unallocated block at {pa:#x}")
        self.allocated_pages -= 1 << order
        # Coalesce with free buddies.
        while order < self.max_order:
            buddy = pfn ^ (1 << order)
            if buddy not in self._free[order]:
                break
            self._free[order].discard(buddy)
            pfn = min(pfn, buddy)
            order += 1
        self._free[order].add(pfn)

    # ------------------------------------------------------------------
    def owns(self, pa: int) -> bool:
        """Whether ``pa`` lies inside this allocator's region."""
        rel = pa - self.base_pa
        return 0 <= rel < (self.total_pages << PAGE_SHIFT)

    def block_order(self, pa: int) -> int | None:
        """Order of the allocated block starting at ``pa`` (None if free)."""
        if not self.owns(pa) or pa % PAGE_SIZE:
            return None
        return self._allocated.get(self._rel_pfn(pa))

    @property
    def free_pages_count(self) -> int:
        return self.total_pages - self.allocated_pages

    def _rel_pfn(self, pa: int) -> int:
        if pa % PAGE_SIZE:
            raise KallocError(f"address {pa:#x} not page aligned")
        if not self.owns(pa):
            raise KallocError(f"address {pa:#x} outside buddy region")
        return (pa - self.base_pa) >> PAGE_SHIFT
