"""Deterministic seed derivation shared by every randomized subsystem.

Workloads and the fault planner all need *independent* pseudo-random
streams derived from one user-facing seed: memcached's per-core request
mixes, the storage workload's read/write choices, the fleet workload's
connection composition, the fault plan's per-site schedules.  Ad-hoc
mixing (``seed ^ cid``) is dangerous when streams are composed — two
generators seeded ``seed ^ 1`` and ``seed ^ 1`` collide, and XOR mixes
of small integers keep the streams correlated.

:func:`derive_seed` is the one scheme everything routes through: a
sha256 digest of the base seed plus a stable label path.  sha256 rather
than ``hash()`` so schedules survive interpreter restarts and
``PYTHONHASHSEED`` randomisation (the determinism tests compare traces
byte-for-byte across processes), and labelled rather than XOR-mixed so
distinct subsystems can never collide — ``("memcached", 3)`` and
``("storage", 3)`` derive unrelated streams from the same base seed.
"""

from __future__ import annotations

import hashlib


def derive_seed(seed: int, *parts: object) -> int:
    """A stable 64-bit sub-seed for the stream labelled by ``parts``.

    ``derive_seed(seed, "memcached", cid)`` and
    ``derive_seed(seed, "storage", cid)`` are independent even for the
    same ``seed`` and ``cid``; the same arguments always produce the
    same sub-seed, on any platform, in any process.
    """
    label = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")
