"""Metrics registry: counters, cycle histograms, and time series.

Where the tracer answers "what happened, in order", the metrics registry
answers "how was it distributed": invalidation-latency percentiles
(Fig. 8a is a *distribution* claim), per-lock wait profiles, and pool
occupancy over time (the §6 memory-consumption claim).  All instruments
are created on demand by name, so instrumented components need no
registration ceremony::

    obs.metrics.histogram("invalidation.latency_cycles").observe(lat)
    obs.metrics.series("pool.bytes_allocated").sample(core.now, nbytes)

Everything here is pure Python bookkeeping in *host* time — recording a
metric never charges simulated cycles, so metric-enabled runs reproduce
the exact cycle counts of bare runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Histogram buckets are powers of two: bucket ``i`` holds observations
#: ``v`` with ``2**(i-1) < v <= 2**i`` (bucket 0 holds ``v <= 1``).
_MAX_BUCKETS = 64


@dataclass
class MetricCounter:
    """A monotonically increasing named counter."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class CycleHistogram:
    """Log2-bucketed histogram of non-negative integer observations.

    Keeps exact count/sum/min/max plus power-of-two buckets — enough for
    meaningful percentile estimates of latency distributions without
    storing samples.  ``percentile`` interpolates linearly *within* the
    bucket holding the requested rank (clamped to the exact observed
    min/max), so estimates stay inside one bucket width of the truth
    without the systematic upper-bound bias coarse log2 buckets would
    otherwise impose on p50/p99.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: List[int] = [0] * _MAX_BUCKETS

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative value {value}")
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.buckets[min(max(int(value) - 1, 0).bit_length(),
                         _MAX_BUCKETS - 1)] += 1

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Interpolated estimate of the ``p``-th percentile (0 < p <= 100).

        Finds the bucket holding the requested rank, interpolates
        linearly within its ``(lower, upper]`` span, and clamps to the
        exact observed min/max so single-bucket distributions report
        the true value rather than a power of two.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile {p} out of (0, 100]")
        if not self.count:
            return 0
        threshold = self.count * p / 100.0
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if cumulative + n >= threshold:
                lower = 0 if i == 0 else 1 << (i - 1)
                upper = 1 << i
                frac = (threshold - cumulative) / n
                value = lower + frac * (upper - lower)
                lo = self.min if self.min is not None else 0
                hi = self.max if self.max is not None else upper
                return int(min(max(value, lo), hi))
            cumulative += n
        return self.max or 0

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """(bucket upper bound, count) for every populated bucket."""
        return [(1 << i, n) for i, n in enumerate(self.buckets) if n]

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "min": self.min or 0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max or 0,
        }


class TimeSeries:
    """(timestamp, value) samples, decimated to a bounded reservoir.

    When the sample budget is exhausted every *other* retained sample is
    dropped and the sampling stride doubles — the classic halving scheme
    that keeps a run-length-independent, time-uniform overview (the pool
    occupancy curve needs shape, not every point).
    """

    __slots__ = ("name", "samples", "max_samples", "_stride", "_pending")

    def __init__(self, name: str, max_samples: int = 4096):
        if max_samples < 2:
            raise ValueError("a time series needs at least two samples")
        self.name = name
        self.samples: List[Tuple[int, int]] = []
        self.max_samples = max_samples
        self._stride = 1
        self._pending = 0

    def sample(self, t: int, value: int) -> None:
        self._pending += 1
        if self._pending < self._stride:
            return
        self._pending = 0
        self.samples.append((t, value))
        if len(self.samples) >= self.max_samples:
            self.samples = self.samples[::2]
            self._stride *= 2

    # ------------------------------------------------------------------
    @property
    def last(self) -> Optional[int]:
        return self.samples[-1][1] if self.samples else None

    def summary(self) -> Dict[str, object]:
        if not self.samples:
            return {"samples": 0}
        values = [v for _, v in self.samples]
        return {
            "samples": len(self.samples),
            "min": min(values),
            "mean": round(sum(values) / len(values), 2),
            "max": max(values),
            "last": values[-1],
        }


@dataclass
class MetricsRegistry:
    """Named instruments, created on first use."""

    counters: Dict[str, MetricCounter] = field(default_factory=dict)
    histograms: Dict[str, CycleHistogram] = field(default_factory=dict)
    time_series: Dict[str, TimeSeries] = field(default_factory=dict)

    def counter(self, name: str) -> MetricCounter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = MetricCounter(name)
        return counter

    def histogram(self, name: str) -> CycleHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = CycleHistogram(name)
        return hist

    def series(self, name: str, max_samples: int = 4096) -> TimeSeries:
        series = self.time_series.get(name)
        if series is None:
            series = self.time_series[name] = TimeSeries(name, max_samples)
        return series

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump of every instrument (for RunResult.extras)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self.histograms.items())},
            "series": {n: s.summary()
                       for n, s in sorted(self.time_series.items())},
        }


def record_iotlb_stats(metrics: MetricsRegistry, now: int,
                       stats: Dict[str, int], hit_rate: float) -> None:
    """Surface quiesce-time IOTLB accounting into the metrics registry.

    Called once when a workload quiesces (the cache's counters are
    cumulative, so sampling mid-run would double-count): every integer
    counter becomes an ``iotlb.<name>`` counter, and the hit rate is
    sampled into the ``iotlb.hit_rate_ppm`` series in parts per million
    (the series reservoir stores integers).  Pure host-time bookkeeping,
    like every instrument here — no simulated cycles are charged.
    """
    for name, value in sorted(stats.items()):
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        metrics.counter(f"iotlb.{name}").inc(value)
    metrics.series("iotlb.hit_rate_ppm").sample(
        now, int(round(hit_rate * 1_000_000)))
