"""Low-overhead event tracing for the simulation's hot paths.

The tracer is the structured-log counterpart of the paper's aggregate
tables: every interesting occurrence on a hot path — a lock hand-off, an
invalidation submission, a pool grow, a DMA map — can be recorded as a
typed event with the simulated timestamp and core that produced it.
Events land in a bounded ring buffer (oldest events are dropped once the
capacity is reached, never the newest), so tracing a long run costs O(1)
memory and a traced run observes *exactly* the same simulated behaviour
as an untraced one: emitting an event never charges cycles.

Two implementations share the interface:

* :class:`NullTracer` — the default.  ``enabled`` is ``False`` and every
  ``emit`` is a no-op; instrumented components guard their emission on
  ``obs.enabled`` so untraced runs skip even the event construction.
* :class:`RingTracer` — an enabled tracer over a ``deque`` ring buffer
  with JSONL export (one event object per line), the format the
  ``--trace`` CLI flag writes.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

# ----------------------------------------------------------------------
# Event kinds.  Dotted names group by subsystem; renderers and tests
# match on these strings, so treat them as a stable schema (documented
# in docs/observability.md).
# ----------------------------------------------------------------------
EV_LOCK_ACQUIRE = "lock.acquire"        # lock taken (uncontended fast path)
EV_LOCK_CONTEND = "lock.contend"        # lock taken after spinning
EV_LOCK_RELEASE = "lock.release"        # lock released (hold time attached)
EV_INV_SUBMIT = "inv.submit"            # invalidation descriptor posted
EV_INV_COMPLETE = "inv.complete"        # hardware signalled completion
EV_INV_DEFER = "inv.defer"              # unmap queued on a deferred list
EV_INV_FLUSH = "inv.flush"              # deferred batch flushed
EV_POOL_GROW = "pool.grow"              # shadow pool allocated fresh pages
EV_POOL_SHRINK = "pool.shrink"          # shadow pool returned a buffer
EV_POOL_FALLBACK = "pool.fallback"      # metadata array full; external IOVA
EV_DMA_MAP = "dma.map"                  # dma_map issued
EV_DMA_UNMAP = "dma.unmap"              # dma_unmap issued
EV_DMA_COPY = "dma.copy"                # shadow copy (map-in or unmap-out)
EV_NET_RX = "net.rx"                    # frame received + processed
EV_NET_TX = "net.tx"                    # chunk posted for transmission
EV_SCHED_STEP = "sched.step"            # scheduler dispatched one work unit
EV_PHASE = "phase"                      # workload phase boundary
EV_IOMMU_FAULT = "iommu.fault"          # DMA blocked by the IOMMU
EV_REQ_BEGIN = "req.begin"              # request-scoped unit of work opened
EV_REQ_END = "req.end"                  # request completed (latency attached)
EV_FAULT_INJECT = "fault.inject"        # fault injector fired at a site
EV_FAULT_RECOVER = "fault.recover"      # a recovery policy absorbed a fault
EV_INV_TIMEOUT = "inv.timeout"          # invalidation wait timed out (retry)
EV_DMA_BOUNCE = "dma.bounce"            # mapping degraded to a bounce buffer

ALL_EVENT_KINDS = (
    EV_LOCK_ACQUIRE, EV_LOCK_CONTEND, EV_LOCK_RELEASE,
    EV_INV_SUBMIT, EV_INV_COMPLETE, EV_INV_DEFER, EV_INV_FLUSH,
    EV_POOL_GROW, EV_POOL_SHRINK, EV_POOL_FALLBACK,
    EV_DMA_MAP, EV_DMA_UNMAP, EV_DMA_COPY,
    EV_NET_RX, EV_NET_TX,
    EV_SCHED_STEP, EV_PHASE, EV_IOMMU_FAULT,
    EV_REQ_BEGIN, EV_REQ_END,
    EV_FAULT_INJECT, EV_FAULT_RECOVER, EV_INV_TIMEOUT, EV_DMA_BOUNCE,
)


@dataclass(frozen=True)
class TraceEvent:
    """One typed trace record.

    ``t`` is the simulated cycle timestamp, ``core`` the id of the core
    that produced the event (``-1`` when no core is meaningful), ``kind``
    one of the ``EV_*`` constants, and ``data`` the kind-specific fields.
    """

    t: int
    core: int
    kind: str
    data: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {"t": self.t, "core": self.core,
                                  "kind": self.kind}
        row.update(self.data)
        return row


class NullTracer:
    """Disabled tracer: the default for every benchmark run.

    Instrumented code guards on ``obs.enabled`` before constructing an
    event, so the only per-call cost of the default configuration is one
    attribute check.
    """

    enabled = False

    def emit(self, kind: str, t: int, core: int, **data: object) -> None:
        """Drop the event (interface parity with :class:`RingTracer`)."""

    def __len__(self) -> int:
        return 0

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        return []


class RingTracer:
    """Bounded in-memory tracer with JSONL export.

    ``capacity`` bounds the retained events; once full, the *oldest*
    events are evicted (the tail of a run is usually what a debugging
    session needs).  ``emitted`` counts every event ever emitted, so
    ``dropped`` reports how much history the ring evicted.
    """

    enabled = True

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError(f"tracer capacity must be positive: {capacity}")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        #: Optional ``cid -> rid`` resolver (``RequestRecorder.current_rid``)
        #: wired by the Observability context: when a request is active on
        #: the emitting core, events are stamped with its ``rid`` so the
        #: whole trace is request-linkable.
        self.rid_of = None

    # ------------------------------------------------------------------
    def emit(self, kind: str, t: int, core: int, **data: object) -> None:
        if self.rid_of is not None and "rid" not in data:
            rid = self.rid_of(core)
            if rid is not None:
                data["rid"] = rid
        self._ring.append(TraceEvent(t=t, core=core, kind=kind, data=data))
        self.emitted += 1

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        return self.emitted - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """All retained events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._ring)
        return [ev for ev in self._ring if ev.kind == kind]

    def counts_by_kind(self) -> Counter:
        """Retained event counts per kind (cheap trace overview)."""
        return Counter(ev.kind for ev in self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.emitted = 0

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One compact JSON object per line, in emission order."""
        return "\n".join(json.dumps(ev.to_dict(), sort_keys=True,
                                    separators=(",", ":"))
                         for ev in self._ring)

    def write_jsonl(self, path: str) -> int:
        """Write the retained events to ``path``; returns the event count."""
        text = self.to_jsonl()
        with open(path, "w") as fh:
            if text:
                fh.write(text + "\n")
        return len(self._ring)
