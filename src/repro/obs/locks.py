"""Per-lock contention accounting: who waited, on whom, for how long.

:class:`LockStats` (repro.hw.locks) keeps lifetime totals per lock;
the metrics registry keeps wait/hold *distributions*.  What neither can
answer is the scalability question the paper's multicore collapse turns
on: *which cores* queue on a lock, *which core* they queue behind, and
how the wait burden is distributed across the machine.  This module
records exactly that — a bounded per-lock matrix of waiter and holder
cycles plus waiter→holder hand-off edges — and :mod:`repro.obs.scaling`
derives the contention matrix of the scale report from it.

Design constraints (shared with the rest of :mod:`repro.obs`):

* **Zero simulated overhead.**  Recording reads ``core.now`` and writes
  host memory; it never charges cycles (``tests/obs/test_zero_overhead``
  covers the hooks).
* **Guarded write sites.**  :class:`~repro.hw.locks.SpinLock` calls
  ``note_acquire`` / ``note_release`` only under ``obs.enabled``.
* **Bounded memory.**  O(locks × cores) aggregates — independent of run
  length, so a 64-core soak costs the same as a smoke run.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple


class LockContentionStats:
    """Aggregated contention state of one named lock."""

    __slots__ = ("name", "acquisitions", "contended", "total_wait_cycles",
                 "total_hold_cycles", "wait_by_core", "hold_by_core",
                 "acquisitions_by_core", "handoff_edges", "max_wait_cycles",
                 "max_wait_at", "max_wait_core")

    def __init__(self, name: str):
        self.name = name
        self.acquisitions = 0
        self.contended = 0
        self.total_wait_cycles = 0
        self.total_hold_cycles = 0
        #: cid -> cycles spent spinning on this lock.
        self.wait_by_core: Counter = Counter()
        #: cid -> cycles spent holding this lock.
        self.hold_by_core: Counter = Counter()
        #: cid -> acquisitions (contended or not).
        self.acquisitions_by_core: Counter = Counter()
        #: (waiter cid, previous holder cid) -> contended hand-offs.
        self.handoff_edges: Counter = Counter()
        self.max_wait_cycles = 0
        self.max_wait_at = 0
        self.max_wait_core = -1

    # ------------------------------------------------------------------
    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that had to spin."""
        if not self.acquisitions:
            return 0.0
        return self.contended / self.acquisitions

    @property
    def mean_wait_cycles(self) -> float:
        if not self.contended:
            return 0.0
        return self.total_wait_cycles / self.contended

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (deterministically ordered)."""
        return {
            "name": self.name,
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "total_wait_cycles": self.total_wait_cycles,
            "total_hold_cycles": self.total_hold_cycles,
            "wait_by_core": {str(cid): c for cid, c
                             in sorted(self.wait_by_core.items())},
            "hold_by_core": {str(cid): c for cid, c
                             in sorted(self.hold_by_core.items())},
            "acquisitions_by_core": {
                str(cid): c for cid, c
                in sorted(self.acquisitions_by_core.items())},
            "handoff_edges": {f"{w}->{h}": c for (w, h), c
                              in sorted(self.handoff_edges.items())},
            "max_wait_cycles": self.max_wait_cycles,
            "max_wait_at": self.max_wait_at,
            "max_wait_core": self.max_wait_core,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LockContentionStats":
        """Rebuild a snapshot (scale records load these post-hoc)."""
        stats = cls(str(data["name"]))
        stats.acquisitions = int(data.get("acquisitions", 0))
        stats.contended = int(data.get("contended", 0))
        stats.total_wait_cycles = int(data.get("total_wait_cycles", 0))
        stats.total_hold_cycles = int(data.get("total_hold_cycles", 0))
        for key, target in (("wait_by_core", stats.wait_by_core),
                            ("hold_by_core", stats.hold_by_core),
                            ("acquisitions_by_core",
                             stats.acquisitions_by_core)):
            for cid, cycles in data.get(key, {}).items():  # type: ignore
                target[int(cid)] = int(cycles)
        for edge, count in data.get("handoff_edges", {}).items():  # type: ignore
            waiter, holder = edge.split("->")
            stats.handoff_edges[(int(waiter), int(holder))] = int(count)
        stats.max_wait_cycles = int(data.get("max_wait_cycles", 0))
        stats.max_wait_at = int(data.get("max_wait_at", 0))
        stats.max_wait_core = int(data.get("max_wait_core", -1))
        return stats


class LockContentionRecorder:
    """All locks' contention state for one observed run (``obs.locks``)."""

    __slots__ = ("locks",)

    def __init__(self) -> None:
        self.locks: Dict[str, LockContentionStats] = {}

    # ------------------------------------------------------------------
    def _lock(self, name: str) -> LockContentionStats:
        stats = self.locks.get(name)
        if stats is None:
            stats = self.locks[name] = LockContentionStats(name)
        return stats

    def note_acquire(self, name: str, waiter_cid: int, holder_cid: int,
                     waited: int, now: int) -> None:
        """One acquisition; ``waited > 0`` means it was contended, with
        ``holder_cid`` the core whose critical section blocked it
        (``-1`` when unknown, e.g. the lock's very first acquisition)."""
        stats = self._lock(name)
        stats.acquisitions += 1
        stats.acquisitions_by_core[waiter_cid] += 1
        if waited <= 0:
            return
        stats.contended += 1
        stats.total_wait_cycles += waited
        stats.wait_by_core[waiter_cid] += waited
        stats.handoff_edges[(waiter_cid, holder_cid)] += 1
        if waited > stats.max_wait_cycles:
            stats.max_wait_cycles = waited
            stats.max_wait_at = now
            stats.max_wait_core = waiter_cid

    def note_release(self, name: str, holder_cid: int, held: int) -> None:
        """One release: attribute the hold time to the holding core."""
        stats = self._lock(name)
        stats.total_hold_cycles += held
        stats.hold_by_core[holder_cid] += held

    # ------------------------------------------------------------------
    @property
    def total_wait_cycles(self) -> int:
        return sum(s.total_wait_cycles for s in self.locks.values())

    def by_wait(self) -> List[LockContentionStats]:
        """Locks ordered by total wait burden (the contention ranking)."""
        return sorted(self.locks.values(),
                      key=lambda s: (-s.total_wait_cycles, s.name))

    def get(self, name: str) -> Optional[LockContentionStats]:
        return self.locks.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly dump of every lock, sorted by name."""
        return {name: self.locks[name].to_dict()
                for name in sorted(self.locks)}

    def clear(self) -> None:
        self.locks.clear()


def load_snapshot(data: Dict[str, Dict[str, object]]
                  ) -> Dict[str, LockContentionStats]:
    """Rebuild a :meth:`LockContentionRecorder.snapshot` dump."""
    return {name: LockContentionStats.from_dict(entry)
            for name, entry in data.items()}


def top_edges(stats: LockContentionStats,
              limit: int = 3) -> List[Tuple[int, int, int]]:
    """The busiest waiter→holder hand-off edges: (waiter, holder, count)."""
    ranked = sorted(stats.handoff_edges.items(),
                    key=lambda kv: (-kv[1], kv[0]))
    return [(waiter, holder, count)
            for (waiter, holder), count in ranked[:limit]]
