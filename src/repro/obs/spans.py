"""Hierarchical span profiling: causal attribution of simulated cycles.

Where the tracer answers "what happened" and the metrics registry "how
was it distributed", spans answer *where the cycles went*: every
instrumented operation (``dma_map``, ``pool_acquire``, ``copy``,
``device_access``, ``dma_unmap``, ``iotlb_invalidate``, ``lock_wait``)
opens a span on its core when it starts and closes it when it ends, and
the elapsed simulated cycles aggregate into a flamegraph-style tree
keyed by the span *path* — ``step → rx_packet → dma_unmap →
iotlb_invalidate → lock_wait`` reads exactly like the paper's "where
does strict protection lose its time" argument.

Design constraints, shared with the rest of :mod:`repro.obs`:

* **Zero simulated overhead.**  Opening or closing a span reads
  ``core.now``; it never charges cycles, takes a simulated lock, or
  advances a clock, so span-instrumented runs are cycle-identical to
  bare runs (enforced by ``tests/obs/test_zero_overhead.py``).
* **Guarded write sites.**  Hot paths guard on ``obs.enabled`` before
  calling :meth:`SpanRecorder.begin`/:meth:`~SpanRecorder.end`, so the
  default (disabled) configuration pays one attribute check per site.
* **Bounded memory.**  Spans aggregate in place into a trie of
  :class:`SpanNode`; memory is O(distinct span paths), independent of
  run length.

Spans nest *per core*: each core keeps its own open-span stack, so the
interleaved execution of the min-clock scheduler cannot tangle one
core's hierarchy with another's.  The nesting invariant — the summed
cycles of a node's children never exceed the node's own total — follows
from core clocks being monotonic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

# Canonical span names.  These are a stable schema (documented in
# docs/observability.md); renderers, the bench runner, and the
# regression gate match on them.
SPAN_STEP = "step"                      # one scheduler work unit
SPAN_RX_PACKET = "rx_packet"            # driver RX: frame -> stack
SPAN_TX_CHUNK = "tx_chunk"              # driver TX: chunk -> wire
SPAN_DEVICE_ACCESS = "device_access"    # NIC descriptor/DMA interaction
SPAN_DMA_MAP = "dma_map"                # DmaApi.dma_map
SPAN_DMA_UNMAP = "dma_unmap"            # DmaApi.dma_unmap
SPAN_POOL_ACQUIRE = "pool_acquire"      # shadow pool acquire
SPAN_POOL_RELEASE = "pool_release"      # shadow pool release
SPAN_COPY = "copy"                      # shadow buffer memcpy
SPAN_IOTLB_INVALIDATE = "iotlb_invalidate"  # submit + completion wait
SPAN_LOCK_WAIT = "lock_wait"            # spinlock acquisition

ALL_SPAN_NAMES = (
    SPAN_STEP, SPAN_RX_PACKET, SPAN_TX_CHUNK, SPAN_DEVICE_ACCESS,
    SPAN_DMA_MAP, SPAN_DMA_UNMAP, SPAN_POOL_ACQUIRE, SPAN_POOL_RELEASE,
    SPAN_COPY, SPAN_IOTLB_INVALIDATE, SPAN_LOCK_WAIT,
)


class SpanNode:
    """One node of the attribution trie: a span name in a given context.

    ``total_cycles`` is wall time on the opening core (close minus open
    timestamp) summed over every occurrence of this path;
    ``self_cycles`` subtracts what nested children account for.
    """

    __slots__ = ("name", "count", "total_cycles", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_cycles = 0
        self.children: Dict[str, "SpanNode"] = {}

    # ------------------------------------------------------------------
    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    @property
    def child_cycles(self) -> int:
        return sum(c.total_cycles for c in self.children.values())

    @property
    def self_cycles(self) -> int:
        return self.total_cycles - self.child_cycles

    def walk(self, path: Tuple[str, ...] = ()
             ) -> Iterator[Tuple[Tuple[str, ...], "SpanNode"]]:
        """Yield ``(path, node)`` for this node and all descendants."""
        here = path + (self.name,)
        yield here, self
        for child in self.children.values():
            yield from child.walk(here)

    # ------------------------------------------------------------------
    def merge(self, other: "SpanNode") -> None:
        """Fold ``other``'s counts into this node (same-name trees)."""
        self.count += other.count
        self.total_cycles += other.total_cycles
        for name, theirs in other.children.items():
            self.child(name).merge(theirs)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form, children sorted by descending cycles."""
        row: Dict[str, object] = {
            "name": self.name,
            "count": self.count,
            "total_cycles": self.total_cycles,
            "self_cycles": self.self_cycles,
        }
        if self.children:
            row["children"] = [
                c.to_dict() for c in sorted(self.children.values(),
                                            key=lambda c: -c.total_cycles)
            ]
        return row

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanNode":
        """Rebuild a tree from :meth:`to_dict` output (baseline loading)."""
        node = cls(str(data["name"]))
        node.count = int(data.get("count", 0))
        node.total_cycles = int(data.get("total_cycles", 0))
        for child in data.get("children", ()):  # type: ignore[union-attr]
            rebuilt = cls.from_dict(child)
            node.children[rebuilt.name] = rebuilt
        return node


class SpanRecorder:
    """Per-core open-span stacks feeding one shared attribution trie."""

    __slots__ = ("root", "_stacks", "opened", "closed", "listener")

    def __init__(self) -> None:
        self.root = SpanNode("run")
        #: Per-core stack of ``(node, opened_at)`` for open spans.
        self._stacks: Dict[int, List[Tuple[SpanNode, int]]] = {}
        self.opened = 0
        self.closed = 0
        #: Optional observer with ``on_span_begin(cid, name, t)`` /
        #: ``on_span_end(cid, name, opened_at, t)`` — how the request
        #: recorder turns spans into per-request stages.
        self.listener = None

    # ------------------------------------------------------------------
    def begin(self, name: str, core) -> None:
        """Open span ``name`` on ``core`` at the core's current clock."""
        stack = self._stacks.get(core.cid)
        if stack is None:
            stack = self._stacks[core.cid] = []
        parent = stack[-1][0] if stack else self.root
        stack.append((parent.child(name), core.now))
        self.opened += 1
        if self.listener is not None:
            self.listener.on_span_begin(core.cid, name, core.now)

    def end(self, core) -> None:
        """Close the innermost open span on ``core``.

        Tolerates an empty stack (an exception may have unwound past the
        matching ``begin``); the span is simply not recorded.
        """
        stack = self._stacks.get(core.cid)
        if not stack:
            return
        node, opened_at = stack.pop()
        node.count += 1
        node.total_cycles += core.now - opened_at
        self.closed += 1
        if self.listener is not None:
            self.listener.on_span_end(core.cid, node.name, opened_at,
                                      core.now)

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return sum(len(s) for s in self._stacks.values())

    def open_paths(self) -> Dict[int, Tuple[str, ...]]:
        """Per-core path of currently-open spans (fault forensics)."""
        return {cid: tuple(node.name for node, _ in stack)
                for cid, stack in self._stacks.items() if stack}

    def tree(self) -> SpanNode:
        """The attribution root (named ``run``; roots of real spans are
        its children)."""
        return self.root

    def to_dict(self) -> Dict[str, object]:
        return self.root.to_dict()

    def clear(self) -> None:
        self.root = SpanNode("run")
        self._stacks.clear()
        self.opened = 0
        self.closed = 0


def merge_span_trees(trees: List[SpanNode]) -> SpanNode:
    """Merge same-shaped attribution trees (e.g. one per run of a sweep)."""
    merged = SpanNode("run")
    for tree in trees:
        merged.merge(tree)
    merged.name = "run"
    return merged


def find_node(root: SpanNode,
              path: Tuple[str, ...]) -> Optional[SpanNode]:
    """Resolve a path (excluding the root's own name) to a node."""
    node = root
    for name in path:
        node = node.children.get(name)
        if node is None:
            return None
    return node
