"""Perfetto / Chrome ``trace_event`` export of a traced run.

Turns an enabled :class:`~repro.obs.context.Observability` into the JSON
object format every Chromium-lineage trace viewer understands
(``chrome://tracing``, https://ui.perfetto.dev): load the file and the
run reads like a production trace —

* one **thread track per core** (pid 0, tid = core id) carrying complete
  ``ph: "X"`` slices: an outer slice per request plus nested slices for
  its stage segments (``dma_map``, ``copy``, ``lock_wait``, …);
* **flow arrows** (``ph: "s"/"t"/"f"``, one flow id per request id)
  stitching each request's begin → lifecycle marks → end, so a request
  remains followable even across drops and retained-trace gaps;
* **counter tracks** (``ph: "C"``) from the metrics time series
  (``pool.bytes_allocated``, ``invalidation.concurrency``,
  ``invalidation.queue_depth``, ``exposure.surface_bytes``, …) plus
  per-lock waiter counts (``lock.waiters:<name>``) derived from the
  retained ``lock.contend`` events, so the scaling report's contention
  findings are visible as piles on the trace timeline;
* the workload **phases** (warmup/measure) as slices on a dedicated
  virtual thread.

Timestamps convert simulated cycles to microseconds (the trace_event
unit) at the model's 2.4 GHz clock; durations below one nanosecond are
clamped so zero-width slices stay visible.

Only retained requests are exported (the recorder keeps a decimated
sample plus the exact slowest per kind — see :mod:`repro.obs.requests`),
which is precisely the cohort the tail analyzer talks about.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional

from repro.obs.requests import cycles_to_us
from repro.obs.trace import EV_LOCK_CONTEND

#: Virtual tid hosting workload phase slices (real cores are 0..N-1).
PHASE_TID = 1000

#: trace_event category tags.
CAT_REQUEST = "request"
CAT_STAGE = "stage"
CAT_PHASE = "phase"


def _ts(cycles: int) -> float:
    """Simulated cycles -> trace_event microseconds."""
    return round(cycles_to_us(cycles), 6)


def _dur(cycles: int) -> float:
    """Slice duration in µs; clamped so zero-cycle slices render."""
    return max(round(cycles_to_us(cycles), 6), 0.001)


def _lock_waiter_counters(obs) -> List[Dict[str, object]]:
    """Per-lock waiter-count counter events from the retained trace.

    Every ``lock.contend`` event marks the *end* of a spin: the emitting
    core was waiting over ``[t - wait_cycles, t]``.  An endpoint sweep
    (+1 at wait start, -1 at acquisition) turns those intervals into a
    running waiter count per lock — the "how many cores are piled up on
    this lock right now" series the scaling report's contention matrix
    aggregates, but on the trace timeline.
    """
    deltas: Dict[str, Counter] = {}
    for ev in obs.tracer.events(EV_LOCK_CONTEND):
        waited = int(ev.data.get("wait_cycles", 0))
        if waited <= 0:
            continue
        edges = deltas.setdefault(str(ev.data.get("lock", "?")), Counter())
        edges[ev.t - waited] += 1
        edges[ev.t] -= 1
    events: List[Dict[str, object]] = []
    for name in sorted(deltas):
        running = 0
        for t in sorted(deltas[name]):
            delta = deltas[name][t]
            if delta == 0:
                continue
            running += delta
            events.append({
                "ph": "C", "pid": 0, "tid": 0,
                "name": f"lock.waiters:{name}",
                "ts": _ts(t), "args": {"waiters": running},
            })
    return events


def perfetto_trace(obs, max_requests: Optional[int] = None) -> Dict[str, object]:
    """Build the Chrome ``trace_event`` JSON object for a traced run."""
    events: List[Dict[str, object]] = []
    cores_seen = set()

    def metadata(tid: int, name: str) -> None:
        events.append({
            "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
            "args": {"name": name},
        })

    events.append({
        "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
        "args": {"name": "repro simulation"},
    })

    records = obs.requests.retained()
    if max_requests is not None:
        records = records[:max_requests]
    for record in records:
        cores_seen.add(record.core)
        args = {"rid": record.rid, "kind": record.kind,
                "latency_us": round(cycles_to_us(record.latency), 3)}
        args.update({k: v for k, v in record.meta.items()})
        # The request itself: one complete slice on its core's track.
        events.append({
            "ph": "X", "pid": 0, "tid": record.core,
            "name": f"{record.kind} #{record.rid}", "cat": CAT_REQUEST,
            "ts": _ts(record.start), "dur": _dur(record.latency),
            "args": args,
        })
        # Flow start anchored at the request's begin.
        events.append({
            "ph": "s", "pid": 0, "tid": record.core, "id": record.rid,
            "name": "request", "cat": CAT_REQUEST, "ts": _ts(record.start),
        })
        # Stage segments as nested slices (close order preserves nesting
        # for the viewer because complete slices carry explicit ts/dur).
        for name, seg_start, seg_end, depth in record.segments:
            events.append({
                "ph": "X", "pid": 0, "tid": record.core,
                "name": name, "cat": CAT_STAGE,
                "ts": _ts(seg_start), "dur": _dur(seg_end - seg_start),
                "args": {"rid": record.rid, "depth": depth},
            })
        # Lifecycle marks become flow steps: map → copy → translate →
        # unmap → invalidate, all sharing the request's flow id.
        for mark, t in record.marks:
            events.append({
                "ph": "t", "pid": 0, "tid": record.core, "id": record.rid,
                "name": mark, "cat": CAT_REQUEST, "ts": _ts(t),
            })
        events.append({
            "ph": "f", "pid": 0, "tid": record.core, "id": record.rid,
            "name": "request", "cat": CAT_REQUEST, "ts": _ts(record.end),
            "bp": "e",
        })

    for cid in sorted(cores_seen):
        metadata(cid, f"core {cid}")

    # Counter tracks from the metrics time series.
    for name, series in sorted(obs.metrics.time_series.items()):
        for t, value in series.samples:
            events.append({
                "ph": "C", "pid": 0, "tid": 0, "name": name,
                "ts": _ts(t), "args": {"value": value},
            })

    # Derived counter tracks: per-lock waiter counts from the trace.
    events.extend(_lock_waiter_counters(obs))

    # Workload phases on a virtual thread.
    phased = False
    for phase in obs.phases:
        if phase.end is None:
            continue
        phased = True
        events.append({
            "ph": "X", "pid": 0, "tid": PHASE_TID, "name": phase.name,
            "cat": CAT_PHASE, "ts": _ts(phase.start),
            "dur": _dur(phase.end - phase.start),
            "args": {"busy_cycles": phase.busy_cycles},
        })
    if phased:
        metadata(PHASE_TID, "phases")

    events.sort(key=lambda ev: (ev.get("ts", -1.0), ev["tid"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.obs.perfetto",
            "requests_exported": len(records),
            "requests_completed": obs.requests.completed,
        },
    }


def write_perfetto(obs, path: str,
                   max_requests: Optional[int] = None) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    trace = perfetto_trace(obs, max_requests=max_requests)
    with open(path, "w") as fh:
        json.dump(trace, fh, separators=(",", ":"))
    return len(trace["traceEvents"])
