"""Request-scoped causal tracing: follow one DMA-carrying unit of work.

Everything else in :mod:`repro.obs` is an aggregate — span tries, cycle
histograms, exposure integrals.  This module adds the per-request lens:
every unit of work that carries a DMA (an RX frame, a TX chunk, a
storage I/O, a memcached transaction) gets a **monotonic request id**
when it begins, and everything that happens on its core until it ends —
spans, trace events, lock waits, invalidation completions, exposure
touches — is linked to that id.  The result is a per-request causal
timeline with stage boundaries (queued → mapped → copied →
device-translated → unmapped → completed), which is what lets the tail
analyzer say *why the p99 packet was slow* ("71% invalidation-lock
wait") instead of only that it was.

Design constraints, shared with the rest of the layer:

* **Zero simulated overhead.**  Recording reads ``core.now``/``core.cid``
  only; it never charges cycles, never takes a simulated lock, never
  advances a clock.  Request-traced runs are cycle-identical to bare
  runs (``tests/obs/test_zero_overhead.py`` proves it).
* **Guarded write sites.**  Every ``begin``/``end``/``mark`` call site
  guards on ``obs.enabled`` first.
* **Bounded memory.**  Latency reservoirs and the retained-record sample
  use stride-doubling decimation; the slowest requests are kept exactly
  in a bounded top-K heap, so exemplars for the tail buckets always
  reference real, complete traces.

Stage capture piggybacks on :class:`~repro.obs.spans.SpanRecorder`
through its listener hook: a span that *begins while a request is active
on its core* becomes a stage of that request, with self-time (exclusive
of nested stages) computed online.  Spans already open when the request
begins (e.g. the scheduler's ``step``) are not attributed to it.

Nesting folds: when a composite request (a memcached transaction) is
active and the driver begins its own rx/tx request on the same core, the
inner ``begin`` joins the enclosing request instead of starting a new
one — the driver's spans become stages of the transaction.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import EV_REQ_BEGIN, EV_REQ_END

# Mirrors repro.sim.units; importing it here would cycle back through
# repro.sim.engine -> repro.obs.context (same dance as obs.exposure).
_CYCLES_PER_US = 2.4e9 / 1e6


def cycles_to_us(cycles: float) -> float:
    return cycles / _CYCLES_PER_US

# Canonical request kinds.  A stable schema, like span names.
REQ_RX = "rx"                  # one received frame through the RX path
REQ_TX = "tx"                  # one transmitted chunk through the TX path
REQ_RR = "rr"                  # one request/response transaction (server side)
REQ_MEMCACHED = "memcached"    # one memcached GET/SET transaction
REQ_STORAGE = "storage"        # one block-device read/write

ALL_REQUEST_KINDS = (REQ_RX, REQ_TX, REQ_RR, REQ_MEMCACHED, REQ_STORAGE)

# Lifecycle marks: point-in-time boundaries inside a request, recorded by
# the DMA API, the shadow copy engine, the NIC, and the invalidation
# queue.  ``queued`` is implicit (the request's begin), ``completed`` its
# end.
MARK_MAPPED = "mapped"                       # dma_map returned
MARK_COPIED = "copied"                       # shadow copy performed
MARK_DEVICE_TRANSLATED = "device_translated"  # device DMA went through
MARK_UNMAPPED = "unmapped"                   # dma_unmap returned
MARK_INVALIDATED = "invalidated"             # IOTLB invalidation completed

ALL_MARKS = (MARK_MAPPED, MARK_COPIED, MARK_DEVICE_TRANSLATED,
             MARK_UNMAPPED, MARK_INVALIDATED)

#: Latency cycles a request spends outside any stage (span) — e.g. the
#: charges a workload makes between driver calls.
STAGE_UNATTRIBUTED = "unattributed"

#: Stages that are *protection* work (what the paper's schemes differ
#: in), as opposed to driver/stack overhead every scheme pays.  The tail
#: analyzer reports the dominant stage overall and the dominant
#: protection stage separately.
PROTECTION_STAGES = frozenset((
    "dma_map", "dma_unmap", "pool_acquire", "pool_release", "copy",
    "iotlb_invalidate", "lock_wait",
))

#: Latency reservoir cap per kind; beyond it the reservoir decimates
#: (keep every other sample) and doubles its stride.
_LATENCY_CAP = 1 << 14

#: Retained full-record sample cap (stride-doubling, like the reservoir).
_SAMPLE_CAP = 1024

#: Exact top-K slowest requests kept per kind (tail exemplars).
_SLOWEST_CAP = 32

#: Per-request bounds on the causal detail we retain.
_MAX_SEGMENTS = 256
_MAX_MARKS = 64


@dataclass(frozen=True)
class RequestRecord:
    """One completed request: latency, stage profile, causal timeline."""

    rid: int
    kind: str
    core: int
    start: int
    end: int
    #: Flat stage profile: span name -> *self* cycles (exclusive of
    #: nested stages), plus :data:`STAGE_UNATTRIBUTED`.
    stages: Dict[str, int]
    #: Causal timeline: ``(stage, start, end, depth)`` in close order.
    segments: Tuple[Tuple[str, int, int, int], ...]
    #: Lifecycle marks: ``(name, t)`` in occurrence order.
    marks: Tuple[Tuple[str, int], ...]
    #: Per-lock wait cycles (e.g. the qi-lock behind ``lock_wait``).
    locks: Dict[str, int]
    meta: Dict[str, object]

    @property
    def latency(self) -> int:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "rid": self.rid,
            "kind": self.kind,
            "core": self.core,
            "start": self.start,
            "end": self.end,
            "latency_cycles": self.latency,
            "latency_us": round(cycles_to_us(self.latency), 3),
            "stages": dict(self.stages),
            "segments": [list(seg) for seg in self.segments],
            "marks": [list(mark) for mark in self.marks],
            "locks": dict(self.locks),
            "meta": dict(self.meta),
        }


class _ActiveRequest:
    """Mutable in-flight request state (one per core at most)."""

    __slots__ = ("rid", "kind", "core", "start", "depth", "meta",
                 "stage_stack", "stages", "segments", "marks", "locks",
                 "top_cycles")

    def __init__(self, rid: int, kind: str, core: int, start: int,
                 meta: Dict[str, object]):
        self.rid = rid
        self.kind = kind
        self.core = core
        self.start = start
        self.depth = 0
        self.meta = meta
        #: Open stages: ``[name, opened_at, child_cycles]`` entries.
        self.stage_stack: List[List[object]] = []
        self.stages: Dict[str, int] = {}
        self.segments: List[Tuple[str, int, int, int]] = []
        self.marks: List[Tuple[str, int]] = []
        self.locks: Dict[str, int] = {}
        #: Cycles covered by top-level (depth-0) stages; the remainder of
        #: the latency is :data:`STAGE_UNATTRIBUTED`.
        self.top_cycles = 0


class _KindAggregate:
    """Streaming per-kind aggregates + bounded retention."""

    __slots__ = ("count", "total_latency", "max_latency", "latencies",
                 "_lat_stride", "_lat_skip", "stage_cycles", "lock_cycles",
                 "slowest", "_heap_seq")

    def __init__(self) -> None:
        self.count = 0
        self.total_latency = 0
        self.max_latency = 0
        self.latencies: List[int] = []
        self._lat_stride = 1
        self._lat_skip = 0
        self.stage_cycles: Dict[str, int] = {}
        self.lock_cycles: Dict[str, int] = {}
        #: Min-heap of ``(latency, seq, record)`` capped at _SLOWEST_CAP.
        self.slowest: List[Tuple[int, int, RequestRecord]] = []
        self._heap_seq = 0

    def observe(self, record: RequestRecord) -> None:
        latency = record.latency
        self.count += 1
        self.total_latency += latency
        if latency > self.max_latency:
            self.max_latency = latency
        # Stride-decimated latency reservoir (deterministic, bounded).
        self._lat_skip += 1
        if self._lat_skip >= self._lat_stride:
            self._lat_skip = 0
            self.latencies.append(latency)
            if len(self.latencies) >= _LATENCY_CAP:
                self.latencies = self.latencies[::2]
                self._lat_stride *= 2
        for stage, cycles in record.stages.items():
            self.stage_cycles[stage] = \
                self.stage_cycles.get(stage, 0) + cycles
        for lock, cycles in record.locks.items():
            self.lock_cycles[lock] = self.lock_cycles.get(lock, 0) + cycles
        # Exact top-K slowest (exemplars for the tail buckets).
        self._heap_seq += 1
        entry = (latency, self._heap_seq, record)
        if len(self.slowest) < _SLOWEST_CAP:
            heapq.heappush(self.slowest, entry)
        elif latency > self.slowest[0][0]:
            heapq.heapreplace(self.slowest, entry)


def _quantile(sorted_values: List[int], percentile: float) -> int:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0
    rank = math.ceil(percentile / 100.0 * len(sorted_values))
    index = min(len(sorted_values) - 1, max(0, rank - 1))
    return sorted_values[index]


class RequestRecorder:
    """Assigns request ids and folds spans/marks/locks into them.

    One recorder hangs off every :class:`~repro.obs.context.Observability`
    as ``obs.requests``.  It doubles as the
    :class:`~repro.obs.spans.SpanRecorder` listener: spans that begin
    while a request is active on their core become that request's stages.
    """

    def __init__(self) -> None:
        #: Set by Observability so begin/end can emit trace events.
        self.tracer = None
        #: Optional observer with ``on_request(record)``, called with
        #: every completed (outermost) request — how the SLO recorder
        #: folds requests into windows.
        self.listener = None
        self._next_rid = 1
        self._active: Dict[int, _ActiveRequest] = {}
        self.started = 0
        self.completed = 0
        self._kinds: Dict[str, _KindAggregate] = {}
        #: Stride-decimated sample of full records across all kinds.
        self._sample: List[RequestRecord] = []
        self._sample_stride = 1
        self._sample_skip = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def begin(self, core, kind: str, **meta: object) -> int:
        """Open a request of ``kind`` on ``core``; returns its id.

        If a request is already active on the core (a composite request
        like a memcached transaction wrapping the driver's rx/tx), the
        call *folds into* it: no new id is assigned and the matching
        :meth:`end` simply unwinds the nesting.
        """
        active = self._active.get(core.cid)
        if active is not None:
            active.depth += 1
            return active.rid
        rid = self._next_rid
        self._next_rid += 1
        self._active[core.cid] = _ActiveRequest(
            rid=rid, kind=kind, core=core.cid, start=core.now,
            meta=dict(meta))
        self.started += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(EV_REQ_BEGIN, core.now, core.cid,
                             rid=rid, req_kind=kind)
        return rid

    def end(self, core) -> Optional[RequestRecord]:
        """Close the request on ``core``; returns the record when the
        outermost nesting level closed (``None`` otherwise)."""
        active = self._active.get(core.cid)
        if active is None:
            return None
        if active.depth > 0:
            active.depth -= 1
            return None
        end = core.now
        # Stages still open at request end (e.g. a scheduler step that
        # outlives the request): attribute what elapsed inside the
        # request so the stage sum + unattributed equals the latency.
        stack = active.stage_stack
        while stack:
            name, opened_at, child = stack.pop()
            duration = end - opened_at
            active.stages[name] = (active.stages.get(name, 0)
                                   + duration - child)
            if stack:
                stack[-1][2] += duration
            else:
                active.top_cycles += duration
        latency = end - active.start
        unattributed = latency - active.top_cycles
        if unattributed > 0:
            active.stages[STAGE_UNATTRIBUTED] = \
                active.stages.get(STAGE_UNATTRIBUTED, 0) + unattributed
        record = RequestRecord(
            rid=active.rid, kind=active.kind, core=active.core,
            start=active.start, end=end, stages=active.stages,
            segments=tuple(active.segments), marks=tuple(active.marks),
            locks=active.locks, meta=active.meta)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(EV_REQ_END, end, core.cid,
                             rid=active.rid, req_kind=active.kind,
                             latency_cycles=latency)
        del self._active[core.cid]
        self.completed += 1
        aggregate = self._kinds.get(active.kind)
        if aggregate is None:
            aggregate = self._kinds[active.kind] = _KindAggregate()
        aggregate.observe(record)
        self._sample_skip += 1
        if self._sample_skip >= self._sample_stride:
            self._sample_skip = 0
            self._sample.append(record)
            if len(self._sample) >= _SAMPLE_CAP:
                self._sample = self._sample[::2]
                self._sample_stride *= 2
        if self.listener is not None:
            self.listener.on_request(record)
        return record

    def mark(self, core, name: str) -> None:
        """Record a lifecycle mark on the core's active request."""
        active = self._active.get(core.cid)
        if active is not None and len(active.marks) < _MAX_MARKS:
            active.marks.append((name, core.now))

    def note_lock_wait(self, core, lock_name: str, waited: int) -> None:
        """Attribute a contended lock wait to the active request."""
        active = self._active.get(core.cid)
        if active is not None:
            active.locks[lock_name] = \
                active.locks.get(lock_name, 0) + waited

    def current_rid(self, cid: int) -> Optional[int]:
        """The active request id on core ``cid`` (tracer linkage)."""
        active = self._active.get(cid)
        return active.rid if active is not None else None

    def active_rids(self) -> Dict[int, int]:
        """Per-core active request ids (fault forensics)."""
        return {cid: active.rid for cid, active in self._active.items()}

    # ------------------------------------------------------------------
    # SpanRecorder listener hook (stage capture).
    # ------------------------------------------------------------------
    def on_span_begin(self, cid: int, name: str, t: int) -> None:
        active = self._active.get(cid)
        if active is not None:
            active.stage_stack.append([name, t, 0])

    def on_span_end(self, cid: int, name: str, opened_at: int,
                    t: int) -> None:
        active = self._active.get(cid)
        if active is None:
            return
        stack = active.stage_stack
        if not stack:
            return      # span opened before the request began
        top = stack[-1]
        if top[0] != name or top[1] != opened_at:
            return      # closing a span that predates the request
        stack.pop()
        duration = t - opened_at
        active.stages[name] = (active.stages.get(name, 0)
                               + duration - top[2])
        if stack:
            stack[-1][2] += duration
        else:
            active.top_cycles += duration
        if len(active.segments) < _MAX_SEGMENTS:
            active.segments.append((name, opened_at, t, len(stack)))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def open_requests(self) -> int:
        return len(self._active)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted(self._kinds))

    def retained(self, kind: Optional[str] = None) -> List[RequestRecord]:
        """All retained full records (sample + exact slowest), deduped
        by id and sorted by start time."""
        by_rid: Dict[int, RequestRecord] = {}
        for record in self._sample:
            if kind is None or record.kind == kind:
                by_rid[record.rid] = record
        for name, aggregate in self._kinds.items():
            if kind is not None and name != kind:
                continue
            for _, _, record in aggregate.slowest:
                by_rid[record.rid] = record
        return sorted(by_rid.values(), key=lambda r: (r.start, r.rid))

    def latencies(self, kind: Optional[str] = None) -> List[int]:
        """Ascending retained latencies (for percentile queries)."""
        if kind is not None:
            aggregate = self._kinds.get(kind)
            return sorted(aggregate.latencies) if aggregate else []
        merged: List[int] = []
        for aggregate in self._kinds.values():
            merged.extend(aggregate.latencies)
        merged.sort()
        return merged

    def percentile(self, p: float,
                   kind: Optional[str] = None) -> int:
        """Nearest-rank latency percentile in cycles."""
        return _quantile(self.latencies(kind), p)

    # ------------------------------------------------------------------
    # Summaries.
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-friendly aggregate (rides in ``extras['requests']``)."""
        kinds: Dict[str, object] = {}
        for name in sorted(self._kinds):
            aggregate = self._kinds[name]
            lats = sorted(aggregate.latencies)
            cycles = {
                "p50": _quantile(lats, 50.0),
                "p90": _quantile(lats, 90.0),
                "p99": _quantile(lats, 99.0),
                "p999": _quantile(lats, 99.9),
                "max": aggregate.max_latency,
                "mean": (round(aggregate.total_latency / aggregate.count, 1)
                         if aggregate.count else 0.0),
            }
            kinds[name] = {
                "count": aggregate.count,
                "latency_cycles": cycles,
                "latency_us": {key: round(cycles_to_us(value), 3)
                               for key, value in cycles.items()},
                "stages": dict(sorted(aggregate.stage_cycles.items(),
                                      key=lambda kv: -kv[1])),
                "locks": dict(sorted(aggregate.lock_cycles.items(),
                                     key=lambda kv: -kv[1])),
            }
        merged = self.latencies()
        count = sum(agg.count for agg in self._kinds.values())
        overall = {
            "count": count,
            "p50_us": round(cycles_to_us(_quantile(merged, 50.0)), 3),
            "p90_us": round(cycles_to_us(_quantile(merged, 90.0)), 3),
            "p99_us": round(cycles_to_us(_quantile(merged, 99.0)), 3),
            "p999_us": round(cycles_to_us(_quantile(merged, 99.9)), 3),
            "max_us": round(cycles_to_us(
                max((agg.max_latency for agg in self._kinds.values()),
                    default=0)), 3),
        }
        return {
            "started": self.started,
            "completed": self.completed,
            "open": self.open_requests,
            "kinds": kinds,
            "overall": overall,
        }

    def exemplars(self, kind: Optional[str] = None,
                  percentiles: Tuple[float, ...] = (50.0, 90.0, 99.0,
                                                    99.9)
                  ) -> Dict[str, Optional[Dict[str, object]]]:
        """Worst concrete request trace at or below each percentile.

        Each p50/p90/p99/p999 bucket keeps a reference to the slowest
        retained record whose latency does not exceed the bucket's
        threshold — OpenTelemetry-style exemplars: the histogram row
        points at a real trace you can open.
        """
        lats = self.latencies(kind)
        records = self.retained(kind)
        out: Dict[str, Optional[Dict[str, object]]] = {}
        for p in percentiles:
            label = f"p{p:g}".replace(".", "")
            threshold = _quantile(lats, p)
            best: Optional[RequestRecord] = None
            for record in records:
                if record.latency <= threshold and (
                        best is None or record.latency > best.latency):
                    best = record
            out[label] = best.to_dict() if best is not None else None
        return out


# ----------------------------------------------------------------------
# Critical-path / tail analysis.
# ----------------------------------------------------------------------
def _profile(records: List[RequestRecord]) -> Dict[str, float]:
    """Stage shares of the cohort's total latency (sums to ~1.0)."""
    totals: Dict[str, int] = {}
    latency_sum = 0
    for record in records:
        latency_sum += record.latency
        for stage, cycles in record.stages.items():
            totals[stage] = totals.get(stage, 0) + cycles
    if not latency_sum:
        return {}
    return {stage: cycles / latency_sum
            for stage, cycles in sorted(totals.items(),
                                        key=lambda kv: -kv[1])}


def _dominant(profile: Dict[str, float],
              allowed: Optional[frozenset] = None) -> Optional[str]:
    best, best_share = None, 0.0
    for stage, share in profile.items():
        if stage == STAGE_UNATTRIBUTED:
            continue
        if allowed is not None and stage not in allowed:
            continue
        if share > best_share:
            best, best_share = stage, share
    return best


def tail_report(recorder: RequestRecorder, kind: Optional[str] = None,
                percentile: float = 99.0) -> Optional[Dict[str, object]]:
    """Attribute the tail cohort's cycles to stages and diff vs median.

    Returns ``None`` when no request completed.  The tail cohort is
    every retained record at or above the latency percentile; the median
    cohort everything at or below p50.  ``dominant_stage`` is the stage
    with the largest share of the tail cohort's latency (instrumented
    stages only — ``unattributed`` is reported but never blamed);
    ``dominant_protection_stage`` restricts the choice to
    :data:`PROTECTION_STAGES`, i.e. what the paper's schemes differ in.
    """
    lats = recorder.latencies(kind)
    if not lats:
        return None
    threshold = _quantile(lats, percentile)
    p50 = _quantile(lats, 50.0)
    records = recorder.retained(kind)
    tail = [r for r in records if r.latency >= threshold]
    median = [r for r in records if r.latency <= p50]
    tail_profile = _profile(tail)
    median_profile = _profile(median)
    stages = set(tail_profile) | set(median_profile)
    diff = {stage: round(tail_profile.get(stage, 0.0)
                         - median_profile.get(stage, 0.0), 4)
            for stage in sorted(
                stages, key=lambda s: -(tail_profile.get(s, 0.0)
                                        - median_profile.get(s, 0.0)))}
    tail_locks: Dict[str, int] = {}
    for record in tail:
        for lock, cycles in record.locks.items():
            tail_locks[lock] = tail_locks.get(lock, 0) + cycles
    exemplars = sorted(tail, key=lambda r: -r.latency)[:3]
    return {
        "kind": kind,
        "percentile": percentile,
        "completed": recorder.completed,
        "threshold_cycles": threshold,
        "threshold_us": round(cycles_to_us(threshold), 3),
        "p50_cycles": p50,
        "tail_count": len(tail),
        "median_count": len(median),
        "tail_profile": {s: round(v, 4) for s, v in tail_profile.items()},
        "median_profile": {s: round(v, 4)
                           for s, v in median_profile.items()},
        "profile_diff": diff,
        "dominant_stage": _dominant(tail_profile),
        "dominant_protection_stage": _dominant(tail_profile,
                                               PROTECTION_STAGES),
        "tail_locks": dict(sorted(tail_locks.items(),
                                  key=lambda kv: -kv[1])),
        "exemplars": [record.to_dict() for record in exemplars],
    }


def parse_percentile(text: str) -> float:
    """``"p99"``/``"99"``/``"p99.9"`` → ``99.0``/``99.9`` (CLI helper)."""
    raw = text.strip().lower()
    if raw.startswith("p"):
        raw = raw[1:]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"not a percentile: {text!r}")
    if not 0.0 < value < 100.0:
        raise ValueError(f"percentile out of range (0, 100): {text!r}")
    return value
