"""The scalability observatory: serial-fraction models and attribution.

The paper's headline multicore result — strict IOMMU protection
collapsing while copy scales — is a *serial fraction* story: every
unmap funnels through the invalidation-queue lock, so strict's speedup
curve flattens exactly as Amdahl's law predicts for a large serial
share.  This module turns measured sweep data into that statement:

* **Speedup curves** from measured throughput across core counts.
* **Model fits** — Amdahl's law ``S(N) = 1 / (s + (1-s)/N)`` for the
  serial fraction ``s``, and the Universal Scalability Law
  ``S(N) = N / (1 + σ(N-1) + κN(N-1))`` whose coherence term ``κ``
  distinguishes "saturates" from "gets *worse* with more cores".
* **Attribution** — a per-lock contention matrix (which lock, which
  cores, waiter→holder hand-offs; from :mod:`repro.obs.locks`
  snapshots) and a queueing decomposition of the invalidation queue
  (arrival rate, service cycles, queue delay, depth) saying *which*
  serial resource owns the fitted fraction.

Everything here is **post-hoc derivation over recorded data** — no
function in this module runs during simulation, so the zero-simulated-
cycle-overhead contract of :mod:`repro.obs` is untouched.  Inputs are
JSON-friendly point dicts (see :mod:`repro.bench.scale`, which builds
them) so the same code analyzes a live sweep or a ``scale.json`` from
disk.

Both fits have closed forms after linearization, so no optimizer (and
no third-party dependency) is needed:

* Amdahl: with ``y = 1/S - 1/N`` and ``x = 1 - 1/N``, the model is
  ``y = s·x`` and least squares gives ``s = Σxy / Σx²``.
* USL: with ``y = N/S - 1`` over the basis ``(N-1)`` and ``N(N-1)``,
  the model is linear in ``(σ, κ)`` and the 2×2 normal equations solve
  it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.cpu import CAT_INVALIDATE, CAT_SPINLOCK
from repro.obs.locks import LockContentionStats, load_snapshot, top_edges

__all__ = [
    "ScalingFit",
    "SchemeScaling",
    "amdahl_fit",
    "usl_fit",
    "amdahl_speedup",
    "usl_speedup",
    "speedup_curve",
    "serialized_shares",
    "analyze_scheme",
    "contention_matrix",
    "queueing_rows",
    "render_speedup_table",
    "render_fit_table",
    "render_contention_matrix",
    "render_queueing_table",
]


# ----------------------------------------------------------------------
# Per-row serialized-share columns (BENCH record / regression gate).
# ----------------------------------------------------------------------
def serialized_shares(breakdown_cycles: Dict[str, int],
                      busy_cycles: int) -> Tuple[float, float]:
    """``(lock_wait_share, scaling_serial_fraction)`` of one run.

    * ``lock_wait_share`` — fraction of busy cycles spent spinning on
      locks (the ``spinlock`` category).
    * ``scaling_serial_fraction`` — fraction of busy cycles spent on
      serial resources: lock spinning plus the serialized invalidation
      hardware (``invalidate iotlb``).  This is the within-run
      Karp–Flatt-style estimator the regression gate guards: it is
      defined at any core count (including 1, where it measures the
      serial-resource *cost* that contention will amplify) and it is
      exactly the share Amdahl's ``s`` converges to as the sweep's
      contention grows.

    Both are pure functions of the measured breakdown — no observability
    capture is needed, so every BENCH row gets them.
    """
    if busy_cycles <= 0:
        return 0.0, 0.0
    lock_wait = breakdown_cycles.get(CAT_SPINLOCK, 0)
    serial = lock_wait + breakdown_cycles.get(CAT_INVALIDATE, 0)
    return lock_wait / busy_cycles, serial / busy_cycles


# ----------------------------------------------------------------------
# Model fits.
# ----------------------------------------------------------------------
@dataclass
class ScalingFit:
    """Fitted scaling models of one scheme's sweep."""

    #: Amdahl serial fraction ``s`` ∈ [0, 1]; None if the sweep had no
    #: multi-core point to constrain it.
    serial_fraction: Optional[float] = None
    #: USL contention coefficient σ ≥ 0 (queueing on shared resources).
    usl_sigma: Optional[float] = None
    #: USL coherence coefficient κ ≥ 0 (pairwise coordination; κ > 0
    #: means throughput eventually *drops* as cores are added).
    usl_kappa: Optional[float] = None
    #: Core count maximizing the fitted USL curve (None when κ = 0:
    #: the model predicts monotone — if saturating — speedup).
    usl_peak_cores: Optional[float] = None

    def to_dict(self) -> Dict[str, Optional[float]]:
        return {
            "serial_fraction": self.serial_fraction,
            "usl_sigma": self.usl_sigma,
            "usl_kappa": self.usl_kappa,
            "usl_peak_cores": self.usl_peak_cores,
        }


def amdahl_speedup(s: float, n: float) -> float:
    """Amdahl's law: predicted speedup at ``n`` cores for serial ``s``."""
    return 1.0 / (s + (1.0 - s) / n)


def usl_speedup(sigma: float, kappa: float, n: float) -> float:
    """USL: predicted speedup at ``n`` cores."""
    return n / (1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0))


def amdahl_fit(speedups: Sequence[Tuple[int, float]]) -> Optional[float]:
    """Least-squares Amdahl serial fraction from ``(cores, speedup)``.

    Closed form on the linearized model (see module docstring), clamped
    to [0, 1].  Returns None when no point constrains ``s`` (only
    single-core points, or degenerate speedups).
    """
    sxx = 0.0
    sxy = 0.0
    for n, s_meas in speedups:
        if n <= 1 or s_meas <= 0.0:
            continue
        x = 1.0 - 1.0 / n
        y = 1.0 / s_meas - 1.0 / n
        sxx += x * x
        sxy += x * y
    if sxx == 0.0:
        return None
    return min(1.0, max(0.0, sxy / sxx))


def usl_fit(speedups: Sequence[Tuple[int, float]]
            ) -> Optional[Tuple[float, float]]:
    """Least-squares USL ``(σ, κ)`` from ``(cores, speedup)`` points.

    Solves the 2×2 normal equations of the linearized model; both
    coefficients are clamped to ≥ 0 (negative values have no physical
    reading here).  Returns None with fewer than two distinct
    multi-core points (the two coefficients would be unidentifiable).
    """
    rows: List[Tuple[float, float, float]] = []   # (a, b, y)
    for n, s_meas in speedups:
        if n <= 1 or s_meas <= 0.0:
            continue
        rows.append((n - 1.0, n * (n - 1.0), n / s_meas - 1.0))
    if len({a for a, _, _ in rows}) < 2:
        return None
    saa = sum(a * a for a, _, _ in rows)
    sab = sum(a * b for a, b, _ in rows)
    sbb = sum(b * b for _, b, _ in rows)
    say = sum(a * y for a, _, y in rows)
    sby = sum(b * y for _, b, y in rows)
    det = saa * sbb - sab * sab
    if abs(det) < 1e-12:
        return None
    sigma = (say * sbb - sby * sab) / det
    kappa = (sby * saa - say * sab) / det
    return max(0.0, sigma), max(0.0, kappa)


def _usl_peak(sigma: float, kappa: float) -> Optional[float]:
    """Core count where the fitted USL curve peaks (κ > 0 only)."""
    if kappa <= 0.0:
        return None
    return ((1.0 - sigma) / kappa) ** 0.5


def fit_models(speedups: Sequence[Tuple[int, float]]) -> ScalingFit:
    """Fit both models; degenerate sweeps yield a fit full of Nones."""
    fit = ScalingFit(serial_fraction=amdahl_fit(speedups))
    usl = usl_fit(speedups)
    if usl is not None:
        fit.usl_sigma, fit.usl_kappa = usl
        fit.usl_peak_cores = _usl_peak(fit.usl_sigma, fit.usl_kappa)
    return fit


# ----------------------------------------------------------------------
# Sweep analysis over point dicts.
# ----------------------------------------------------------------------
def speedup_curve(points: Sequence[Dict]) -> List[Tuple[int, float]]:
    """``(cores, speedup)`` normalized to the sweep's smallest count.

    Speedup is aggregate-throughput ratio.  When the baseline point has
    more than one core the ratio is rescaled by the baseline count —
    i.e. scaling below the measured range is assumed perfect, which
    keeps the Amdahl/USL linearizations (anchored at N=1) applicable.
    """
    ordered = sorted(points, key=lambda p: int(p["cores"]))
    if not ordered:
        return []
    base = ordered[0]
    base_n = int(base["cores"])
    base_tput = float(base.get("throughput_gbps") or 0.0)
    curve: List[Tuple[int, float]] = []
    for point in ordered:
        n = int(point["cores"])
        tput = float(point.get("throughput_gbps") or 0.0)
        speedup = base_n * tput / base_tput if base_tput > 0.0 else 0.0
        curve.append((n, speedup))
    return curve


@dataclass
class SchemeScaling:
    """Full analysis of one scheme's core sweep."""

    scheme: str
    speedups: List[Tuple[int, float]] = field(default_factory=list)
    fit: ScalingFit = field(default_factory=ScalingFit)
    #: Serialized-share columns at the largest core count.
    lock_wait_share: float = 0.0
    serial_fraction_measured: float = 0.0
    #: Lock owning the most wait cycles at the largest core count
    #: (None when the sweep recorded no contention).
    top_lock: Optional[str] = None
    top_lock_wait_cycles: int = 0
    top_lock_wait_share: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "speedups": [[n, round(s, 4)] for n, s in self.speedups],
            "fit": self.fit.to_dict(),
            "lock_wait_share": round(self.lock_wait_share, 6),
            "serial_fraction_measured":
                round(self.serial_fraction_measured, 6),
            "top_lock": self.top_lock,
            "top_lock_wait_cycles": self.top_lock_wait_cycles,
            "top_lock_wait_share": round(self.top_lock_wait_share, 6),
        }


def _point_locks(point: Dict) -> Dict[str, LockContentionStats]:
    return load_snapshot(point.get("locks") or {})


def analyze_scheme(scheme: str, points: Sequence[Dict]) -> SchemeScaling:
    """Speedups, model fits, and lock attribution for one scheme."""
    analysis = SchemeScaling(scheme=scheme)
    analysis.speedups = speedup_curve(points)
    analysis.fit = fit_models(analysis.speedups)
    ordered = sorted(points, key=lambda p: int(p["cores"]))
    if not ordered:
        return analysis
    widest = ordered[-1]
    analysis.lock_wait_share, analysis.serial_fraction_measured = \
        serialized_shares(widest.get("breakdown_cycles") or {},
                          int(widest.get("busy_cycles") or 0))
    ranked = sorted(_point_locks(widest).values(),
                    key=lambda s: (-s.total_wait_cycles, s.name))
    if ranked and ranked[0].total_wait_cycles > 0:
        top = ranked[0]
        total = sum(s.total_wait_cycles for s in ranked)
        analysis.top_lock = top.name
        analysis.top_lock_wait_cycles = top.total_wait_cycles
        analysis.top_lock_wait_share = top.total_wait_cycles / total
    return analysis


# ----------------------------------------------------------------------
# Contention matrix + queueing decomposition.
# ----------------------------------------------------------------------
def contention_matrix(points: Sequence[Dict]
                      ) -> List[Dict[str, object]]:
    """Per-lock rows for one scheme's sweep, ranked by wait burden.

    Each row carries the lock's wait cycles at every swept core count,
    plus — at the largest count — the waiter distribution, the busiest
    waiter→holder hand-off edges, and the holder-side (hold-cycle)
    breakdown.  This is the "which lock owns the serial fraction, and
    between which cores" table of the scale report.
    """
    ordered = sorted(points, key=lambda p: int(p["cores"]))
    if not ordered:
        return []
    per_point = [(int(p["cores"]), _point_locks(p)) for p in ordered]
    names = sorted({name for _, locks in per_point for name in locks})
    widest_n, widest = per_point[-1]
    rows: List[Dict[str, object]] = []
    for name in names:
        wait_by_cores = {n: (locks[name].total_wait_cycles
                             if name in locks else 0)
                         for n, locks in per_point}
        stats = widest.get(name)
        row: Dict[str, object] = {
            "lock": name,
            "wait_cycles_by_cores": wait_by_cores,
            "widest_cores": widest_n,
        }
        if stats is not None:
            row.update({
                "acquisitions": stats.acquisitions,
                "contended": stats.contended,
                "contention_ratio": round(stats.contention_ratio, 4),
                "mean_wait_cycles": round(stats.mean_wait_cycles, 1),
                "max_wait_cycles": stats.max_wait_cycles,
                "waiting_cores": len(stats.wait_by_core),
                "wait_by_core": {str(cid): c for cid, c
                                 in sorted(stats.wait_by_core.items())},
                "hold_by_core": {str(cid): c for cid, c
                                 in sorted(stats.hold_by_core.items())},
                "top_edges": [
                    {"waiter": w, "holder": h, "count": c}
                    for w, h, c in top_edges(stats)],
            })
        rows.append(row)
    rows.sort(key=lambda r: (-max(r["wait_cycles_by_cores"].values(),
                                  default=0), r["lock"]))
    return rows


def queueing_rows(points: Sequence[Dict]) -> List[Dict[str, object]]:
    """Invalidation-queue decomposition per swept core count.

    Reads the ``invalidation`` section the sweep recorded for each
    point: arrivals (submissions), mean service cycles, mean hardware
    queue delay, and the queue-depth series summary.  Rows for points
    without invalidation traffic (e.g. no-iommu) carry zeros.
    """
    rows: List[Dict[str, object]] = []
    for point in sorted(points, key=lambda p: int(p["cores"])):
        inv = point.get("invalidation") or {}
        rows.append({
            "cores": int(point["cores"]),
            "submissions": int(inv.get("submissions") or 0),
            "arrival_rate_per_us": float(
                inv.get("arrival_rate_per_us") or 0.0),
            "mean_service_cycles": float(
                inv.get("mean_service_cycles") or 0.0),
            "mean_queue_delay_cycles": float(
                inv.get("mean_queue_delay_cycles") or 0.0),
            "queue_depth_mean": float(inv.get("queue_depth_mean") or 0.0),
            "queue_depth_max": int(inv.get("queue_depth_max") or 0),
        })
    return rows


# ----------------------------------------------------------------------
# Markdown renderers (the scale report assembles these).
# ----------------------------------------------------------------------
def _fmt(value: Optional[float], digits: int = 3) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def render_speedup_table(analyses: Sequence[SchemeScaling]) -> List[str]:
    """One row per scheme, one column per swept core count."""
    if not analyses:
        return ["(no sweep data)"]
    cores = sorted({n for a in analyses for n, _ in a.speedups})
    header = "| scheme | " + " | ".join(f"S({n})" for n in cores) + " |"
    rule = "|---|" + "---:|" * len(cores)
    lines = [header, rule]
    for analysis in analyses:
        by_n = dict(analysis.speedups)
        cells = " | ".join(
            f"{by_n[n]:.2f}" if n in by_n else "-" for n in cores)
        lines.append(f"| {analysis.scheme} | {cells} |")
    return lines


def render_fit_table(analyses: Sequence[SchemeScaling]) -> List[str]:
    """Serial fractions and USL coefficients, worst scheme first."""
    if not analyses:
        return ["(no sweep data)"]
    ranked = sorted(analyses,
                    key=lambda a: -(a.fit.serial_fraction or 0.0))
    lines = [
        "| scheme | serial fraction (Amdahl s) | USL σ | USL κ "
        "| USL peak cores | lock-wait share | top lock |",
        "|---|---:|---:|---:|---:|---:|---|",
    ]
    for a in ranked:
        peak = ("-" if a.fit.usl_peak_cores is None
                else f"{a.fit.usl_peak_cores:.0f}")
        lines.append(
            f"| {a.scheme} | {_fmt(a.fit.serial_fraction)} "
            f"| {_fmt(a.fit.usl_sigma)} | {_fmt(a.fit.usl_kappa, 5)} "
            f"| {peak} | {a.lock_wait_share:.3f} "
            f"| {a.top_lock or '-'} |")
    return lines


def render_contention_matrix(rows: Sequence[Dict[str, object]],
                             limit: int = 5) -> List[str]:
    """Markdown for the top contended locks of one scheme's sweep."""
    rows = [r for r in rows
            if max(r["wait_cycles_by_cores"].values(), default=0) > 0]
    if not rows:
        return ["(no lock contention recorded)"]
    cores = sorted(rows[0]["wait_cycles_by_cores"])
    header = ("| lock | " + " | ".join(f"wait@{n}" for n in cores)
              + " | contended/acq | mean wait | waiters | top hand-offs |")
    rule = "|---|" + "---:|" * len(cores) + "---:|---:|---:|---|"
    lines = [header, rule]
    for row in rows[:limit]:
        waits = " | ".join(
            f"{row['wait_cycles_by_cores'].get(n, 0):,}" for n in cores)
        edges = ", ".join(
            f"c{e['waiter']}←c{e['holder']}×{e['count']}"
            for e in row.get("top_edges", [])) or "-"
        ratio = (f"{row.get('contended', 0)}/{row.get('acquisitions', 0)}"
                 if row.get("acquisitions") else "-")
        lines.append(
            f"| {row['lock']} | {waits} | {ratio} "
            f"| {row.get('mean_wait_cycles', 0.0):,} "
            f"| {row.get('waiting_cores', 0)} | {edges} |")
    dropped = len(rows) - min(len(rows), limit)
    if dropped:
        lines.append(f"| … {dropped} more lock(s) elided … "
                     + "| " * (len(cores) + 4) + "|")
    return lines


def render_queueing_table(rows: Sequence[Dict[str, object]]) -> List[str]:
    """Markdown for the invalidation-queue decomposition."""
    if not rows or all(r["submissions"] == 0 for r in rows):
        return ["(no invalidation traffic recorded)"]
    lines = [
        "| cores | submissions | arrivals/µs | service [cyc] "
        "| hw queue delay [cyc] | depth mean | depth max |",
        "|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for row in rows:
        lines.append(
            f"| {row['cores']} | {row['submissions']:,} "
            f"| {row['arrival_rate_per_us']:.3f} "
            f"| {row['mean_service_cycles']:.0f} "
            f"| {row['mean_queue_delay_cycles']:.0f} "
            f"| {row['queue_depth_mean']:.2f} "
            f"| {row['queue_depth_max']} |")
    return lines
