"""The diff engine: two sides in, one deterministic report out.

:func:`build_diff` aligns the two sides' points by key, then applies
each analyzer where its inputs exist — metric deltas everywhere, span
diffs where both-or-either side carries an attribution trie, quantile
shifts where both sides carry request tail profiles — and folds the
results into a single JSON-ready dict.  The dict is pure data: sorted
keys, rounded floats, no timestamps, no wall-clock — byte-stable for
deterministic inputs regardless of how the sides were produced
(in-process or via ``--jobs`` worker fan-out).

The ``summary`` block is the report's one-glance layer: the moved
metric count, the single top grown span path across every compared
trie, and a one-line verdict.  :func:`diff_is_zero` is the self-diff
invariant the test suite leans on: a side diffed against itself
reports zero deltas everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.diff.metricdiff import changed, diff_metrics
from repro.obs.diff.quantile import quantile_shift
from repro.obs.diff.sides import DiffSide, key_label
from repro.obs.diff.spandiff import diff_span_trees

#: Report format marker, bumped on any structural change.
DIFF_SCHEMA = "repro-diff/v1"

#: Per-point cap on listed metric deltas (the count is always exact).
METRIC_LIMIT = 40

#: Per-trie cap on listed grown/shrunk span paths.
SPAN_LIMIT = 8


def _quantile_is_zero(shift: Dict[str, object]) -> bool:
    return (shift.get("gap_delta_us") == 0.0
            and all(row.get("delta_us") == 0.0
                    for row in shift.get("stages", ())))


def build_diff(a: DiffSide, b: DiffSide,
               span_limit: int = SPAN_LIMIT,
               metric_limit: int = METRIC_LIMIT) -> Dict[str, object]:
    """Compare side A against side B; returns the JSON-ready report."""
    keys_a = set(a.points)
    keys_b = set(b.points)
    matched = sorted(keys_a & keys_b)
    only_a = sorted(keys_a - keys_b)
    only_b = sorted(keys_b - keys_a)

    metric_sections: List[Dict[str, object]] = []
    span_sections: List[Dict[str, object]] = []
    quantile_sections: List[Dict[str, object]] = []
    changed_total = 0
    spans_zero = True
    quantiles_zero = True
    top_span: Optional[Dict[str, object]] = None

    for key in matched:
        pa = a.points[key]
        pb = b.points[key]

        deltas = diff_metrics(pa.metrics, pb.metrics)
        moved = changed(deltas)
        changed_total += len(moved)
        if deltas:
            metric_sections.append({
                "key": key_label(key),
                "changed": [d.to_dict() for d in moved[:metric_limit]],
                "changed_total": len(moved),
                "unchanged": len(deltas) - len(moved),
            })

        if pa.spans is not None or pb.spans is not None:
            sdiff = diff_span_trees(pa.spans, pb.spans,
                                    pa.units, pb.units)
            if not sdiff.is_zero:
                spans_zero = False
            section = sdiff.to_dict(limit=span_limit)
            for rows, ranked in ((section["grown"], sdiff.grown()),
                                 (section["shrunk"], sdiff.shrunk())):
                for row, delta in zip(rows, ranked):
                    row["contribution"] = round(
                        sdiff.contribution(delta), 4)
            section["key"] = key_label(key)
            span_sections.append(section)
            for delta in sdiff.grown()[:1]:
                if (top_span is None
                        or delta.self_delta_per_unit
                        > top_span["self_delta_per_unit"]):
                    top_span = {
                        "key": key_label(key),
                        "path": list(delta.path),
                        "self_delta_per_unit": round(
                            delta.self_delta_per_unit, 6),
                    }

        shift = quantile_shift(pa.tail, pb.tail)
        if shift is not None:
            if not _quantile_is_zero(shift):
                quantiles_zero = False
            shift["key"] = key_label(key)
            quantile_sections.append(shift)

    zero = (changed_total == 0 and spans_zero and quantiles_zero
            and not only_a and not only_b)
    if zero:
        verdict = "zero deltas everywhere"
    else:
        parts = [f"{changed_total} metric(s) moved across "
                 f"{len(matched)} matched point(s)"]
        if top_span is not None:
            parts.append(
                f"top span growth: {top_span['key']}: "
                f"{' > '.join(top_span['path'])} "
                f"(+{top_span['self_delta_per_unit']:.3f} cycles/unit)")
        if only_a or only_b:
            parts.append(f"{len(only_a)} point(s) only in A, "
                         f"{len(only_b)} only in B")
        verdict = "; ".join(parts)

    return {
        "schema": DIFF_SCHEMA,
        "a": {"label": a.label, "kind": a.kind, "points": len(a.points)},
        "b": {"label": b.label, "kind": b.kind, "points": len(b.points)},
        "matched": len(matched),
        "only_a": [key_label(k) for k in only_a],
        "only_b": [key_label(k) for k in only_b],
        "metrics": metric_sections,
        "spans": span_sections,
        "quantile_shift": quantile_sections,
        "summary": {
            "zero": zero,
            "changed_metrics": changed_total,
            "spans_zero": spans_zero,
            "quantiles_zero": quantiles_zero,
            "top_span": top_span,
            "verdict": verdict,
        },
    }


def diff_is_zero(diff: Dict[str, object]) -> bool:
    """True when the report found no movement anywhere."""
    return bool(diff.get("summary", {}).get("zero"))
