"""Renderers for the differential report: markdown for humans, JSON
for machines.

Both renderers are pure functions of the report dict from
:func:`repro.obs.diff.engine.build_diff`; neither consults the clock or
the environment, so the rendered bytes are stable for identical inputs
— the property the CI smoke step and the ``--jobs`` byte-stability
tests pin down.
"""

from __future__ import annotations

import json
from typing import Dict, List


def diff_to_json(diff: Dict[str, object]) -> str:
    """Canonical JSON form: sorted keys, trailing newline."""
    return json.dumps(diff, indent=2, sort_keys=True) + "\n"


def _fmt(value: object, signed: bool = False) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:+.3f}" if signed else f"{value:.3f}"
    return str(value)


def _span_section(section: Dict[str, object], lines: List[str]) -> None:
    lines.append(f"### `{section['key']}`")
    lines.append("")
    if section.get("zero"):
        lines.append("No span movement.")
        lines.append("")
        return
    lines.append(
        f"Total: {_fmt(section['total_delta_per_unit'], signed=True)} "
        f"cycles/unit across {section['paths']} path(s) "
        f"(A: {section['a_units']} units, B: {section['b_units']} units).")
    lines.append("")
    for title, rows in (("Grown (B pays more)", section.get("grown", ())),
                        ("Shrunk (A pays more)",
                         section.get("shrunk", ()))):
        if not rows:
            continue
        lines.append(f"**{title}**")
        lines.append("")
        lines.append("| span path | A self/unit | B self/unit "
                     "| Δ self/unit | share of Δ |")
        lines.append("| --- | ---: | ---: | ---: | ---: |")
        for row in rows:
            share = row.get("contribution")
            share_s = f"{share * 100:.1f}%" if share is not None else "—"
            lines.append(
                f"| `{' > '.join(row['path'])}` "
                f"| {_fmt(row['a_self_per_unit'])} "
                f"| {_fmt(row['b_self_per_unit'])} "
                f"| {_fmt(row['self_delta_per_unit'], signed=True)} "
                f"| {share_s} |")
        lines.append("")


def _metric_section(section: Dict[str, object],
                    lines: List[str]) -> None:
    lines.append(f"### `{section['key']}`")
    lines.append("")
    shown = section.get("changed", ())
    total = section.get("changed_total", 0)
    if not total:
        lines.append(f"No metric movement "
                     f"({section.get('unchanged', 0)} metrics equal).")
        lines.append("")
        return
    lines.append("| metric | A | B | Δ | rel |")
    lines.append("| --- | ---: | ---: | ---: | ---: |")
    for row in shown:
        rel = row.get("rel")
        rel_s = f"{rel * 100:+.2f}%" if rel is not None else "new/gone"
        lines.append(f"| `{row['metric']}` | {_fmt(row['a'])} "
                     f"| {_fmt(row['b'])} "
                     f"| {_fmt(row['delta'], signed=True)} | {rel_s} |")
    if total > len(shown):
        lines.append("")
        lines.append(f"_{total - len(shown)} further moved metric(s) "
                     f"elided; see the JSON report._")
    lines.append("")
    lines.append(f"_{section.get('unchanged', 0)} metric(s) unchanged._")
    lines.append("")


def _quantile_section(section: Dict[str, object],
                      lines: List[str]) -> None:
    lines.append(f"### `{section['key']}`")
    lines.append("")
    pct = section.get("percentile")
    verdict = section.get("verdict")
    lines.append(
        f"p50→p{pct:g} gap: {_fmt(section['gap_a_us'])} µs (A) → "
        f"{_fmt(section['gap_b_us'])} µs (B), "
        f"Δ {_fmt(section['gap_delta_us'], signed=True)} µs.")
    if verdict is not None:
        lines.append(
            f"Verdict: **{verdict}** explains "
            f"{_fmt(section['verdict_delta_us'], signed=True)} µs "
            f"of the gap change.")
    lines.append("")
    lines.append("| stage | gap A (µs) | gap B (µs) | Δ (µs) |")
    lines.append("| --- | ---: | ---: | ---: |")
    for row in section.get("stages", ()):
        lines.append(f"| `{row['stage']}` | {_fmt(row['gap_a_us'])} "
                     f"| {_fmt(row['gap_b_us'])} "
                     f"| {_fmt(row['delta_us'], signed=True)} |")
    lines.append("")


def render_diff_embed(diff: Dict[str, object]) -> List[str]:
    """Compact body for embedding inside a larger report: verdict, span
    movement, quantile shift — no top-level heading and no full metric
    dump (that's the standalone report's job)."""
    summary = diff.get("summary", {})
    lines: List[str] = [
        f"`{diff['a']['label']}` (A) vs `{diff['b']['label']}` (B) — "
        f"{summary.get('verdict', '?')}",
        "",
    ]
    for section in diff.get("spans", ()):
        _span_section(section, lines)
    if diff.get("quantile_shift"):
        for section in diff["quantile_shift"]:
            _quantile_section(section, lines)
    return lines


def render_diff_markdown(diff: Dict[str, object]) -> str:
    """The human-facing differential report."""
    summary = diff.get("summary", {})
    lines: List[str] = ["# Differential report", ""]
    lines.append(f"- **A**: `{diff['a']['label']}` "
                 f"({diff['a']['kind']}, {diff['a']['points']} point(s))")
    lines.append(f"- **B**: `{diff['b']['label']}` "
                 f"({diff['b']['kind']}, {diff['b']['points']} point(s))")
    lines.append(f"- **Matched points**: {diff['matched']}")
    lines.append(f"- **Verdict**: {summary.get('verdict', '?')}")
    lines.append("")

    if diff.get("only_a") or diff.get("only_b"):
        lines.append("## Unmatched points")
        lines.append("")
        for label, keys in (("Only in A", diff.get("only_a", ())),
                            ("Only in B", diff.get("only_b", ()))):
            for key in keys:
                lines.append(f"- {label}: `{key}`")
        lines.append("")

    if diff.get("spans"):
        lines.append("## Span-trie diff (self cycles per unit of work)")
        lines.append("")
        for section in diff["spans"]:
            _span_section(section, lines)

    if diff.get("metrics"):
        lines.append("## Metric deltas")
        lines.append("")
        for section in diff["metrics"]:
            _metric_section(section, lines)

    if diff.get("quantile_shift"):
        lines.append("## Quantile-shift attribution")
        lines.append("")
        for section in diff["quantile_shift"]:
            _quantile_section(section, lines)

    return "\n".join(lines).rstrip() + "\n"
