"""``python -m repro diff`` — the differential report, end to end.

Three modes, decided by how many record paths the user gave:

* **two paths** — diff artifact A against artifact B (any mix of
  ``BENCH_*.json``, ``scale.json``, ``fleet.json``);
* **one path** — diff the checked-in regression baseline
  (``benchmarks/results/baseline.json``) against the given artifact,
  the "did my branch move anything" question;
* **no paths** — run a live pair: two schemes under identical load
  (``--workload``/``--schemes``), captured with full span/request
  instrumentation, then diffed.

Whatever the mode, the output is the same: ``diff.md`` and ``diff.json``
in the results directory, byte-stable for identical inputs regardless
of ``--jobs``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.diff.engine import build_diff
from repro.obs.diff.render import diff_to_json, render_diff_markdown
from repro.obs.diff.sides import (
    LIVE_SIZINGS,
    DiffSide,
    load_side,
    run_live_pair,
)


def default_baseline_path() -> Path:
    """The checked-in regression baseline the one-path mode diffs
    against."""
    from repro.bench.runner import default_results_dir

    return Path(default_results_dir()) / "baseline.json"


def _live_sides(workload: Optional[str], schemes: Sequence[str],
                mode: str, overrides: Dict[str, Optional[int]],
                tail: float, jobs: int, quiet: bool
                ) -> tuple[DiffSide, DiffSide]:
    if workload is None:
        raise ConfigurationError(
            "diff needs either record paths or --workload (live pair); "
            "e.g. `repro diff --workload stream "
            "--schemes identity-strict,copy`")
    if len(schemes) != 2:
        raise ConfigurationError(
            f"a live diff compares exactly two schemes, got "
            f"{list(schemes)!r}")
    sizing = dict(LIVE_SIZINGS[mode])
    for knob, value in overrides.items():
        if value is not None:
            sizing[knob] = value
    return run_live_pair(
        workload, schemes[0], schemes[1],
        cores=sizing["cores"], size=sizing["size"],
        units=sizing["units"], warmup=sizing["warmup"],
        tail_percentile=tail, jobs=jobs, quiet=quiet)


def run_diff(paths: Sequence[str] = (),
             workload: Optional[str] = None,
             schemes: Sequence[str] = ("identity-strict", "copy"),
             mode: str = "quick",
             cores: Optional[int] = None,
             size: Optional[int] = None,
             units: Optional[int] = None,
             warmup: Optional[int] = None,
             tail: float = 99.0,
             jobs: int = 1,
             out_dir: Optional[str] = None,
             quiet: bool = False) -> int:
    """Build the A/B differential report; write diff.md + diff.json."""
    if paths and workload is not None:
        raise ConfigurationError(
            "diff takes record paths OR --workload (live pair), "
            "not both")
    if len(paths) > 2:
        raise ConfigurationError(
            f"diff compares at most two records, got {len(paths)}")

    if len(paths) == 2:
        a = load_side(paths[0])
        b = load_side(paths[1])
    elif len(paths) == 1:
        baseline = default_baseline_path()
        if not baseline.exists():
            raise ConfigurationError(
                f"no checked-in baseline at {baseline}; pass two "
                f"record paths instead")
        a = load_side(str(baseline), label=f"baseline:{baseline.name}")
        b = load_side(paths[0])
    else:
        a, b = _live_sides(workload, schemes, mode,
                           {"cores": cores, "size": size,
                            "units": units, "warmup": warmup},
                           tail, jobs, quiet)

    diff = build_diff(a, b)
    markdown = render_diff_markdown(diff)

    from repro.bench.runner import default_results_dir

    out = Path(out_dir) if out_dir is not None \
        else Path(default_results_dir())
    out.mkdir(parents=True, exist_ok=True)
    (out / "diff.json").write_text(diff_to_json(diff))
    (out / "diff.md").write_text(markdown)

    if not quiet:
        print(markdown, end="")
        print(f"\ndiff written to {out / 'diff.md'} and "
              f"{out / 'diff.json'}", file=sys.stderr)
    return 0
