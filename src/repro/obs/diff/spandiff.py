"""Span-trie diff: where did the cycles move between two runs?

A single run's attribution trie (:class:`~repro.obs.spans.SpanNode`)
says where cycles went; the diff of two tries says where they *moved*.
Raw cycle totals are incomparable across runs of different length, so
every delta here is normalized **per unit of work** (a segment, a
transaction, an op — whatever the workload counts): a subtree that
costs 1.2 cycles/unit more on side B is a real regression whether the
run did 60 units or 60 000.

Self cycles are the attribution currency.  A node's *self* delta is
cycles that moved into (or out of) that exact path — not its children —
and self deltas over all paths sum exactly to the root's total delta,
so ranking by self delta names the hot path itself rather than every
ancestor above it (``dma_unmap → iotlb_invalidate`` instead of
``step``).  The inclusive (total) delta is still reported per node for
subtree-level reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.spans import SpanNode


@dataclass(frozen=True)
class SpanDelta:
    """One span path's movement between side A and side B."""

    path: Tuple[str, ...]
    a_total: int
    b_total: int
    a_self: int
    b_self: int
    a_count: int
    b_count: int
    a_units: int
    b_units: int

    # ------------------------------------------------------------------
    @property
    def a_self_per_unit(self) -> float:
        return self.a_self / self.a_units if self.a_units else 0.0

    @property
    def b_self_per_unit(self) -> float:
        return self.b_self / self.b_units if self.b_units else 0.0

    @property
    def self_delta_per_unit(self) -> float:
        """Normalized self-cycle movement; positive means B pays more."""
        return self.b_self_per_unit - self.a_self_per_unit

    @property
    def a_total_per_unit(self) -> float:
        return self.a_total / self.a_units if self.a_units else 0.0

    @property
    def b_total_per_unit(self) -> float:
        return self.b_total / self.b_units if self.b_units else 0.0

    @property
    def total_delta_per_unit(self) -> float:
        return self.b_total_per_unit - self.a_total_per_unit

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": list(self.path),
            "a_self_per_unit": round(self.a_self_per_unit, 6),
            "b_self_per_unit": round(self.b_self_per_unit, 6),
            "self_delta_per_unit": round(self.self_delta_per_unit, 6),
            "a_total_per_unit": round(self.a_total_per_unit, 6),
            "b_total_per_unit": round(self.b_total_per_unit, 6),
            "total_delta_per_unit": round(self.total_delta_per_unit, 6),
            "a_count": self.a_count,
            "b_count": self.b_count,
        }


def _index(root: Optional[SpanNode]) -> Dict[Tuple[str, ...], SpanNode]:
    """Path (excluding the synthetic root name) -> node."""
    if root is None:
        return {}
    return {path[1:]: node for path, node in root.walk() if len(path) > 1}


class SpanDiff:
    """The full union-of-paths diff between two attribution tries."""

    def __init__(self, deltas: List[SpanDelta],
                 a_units: int, b_units: int):
        self.deltas = deltas
        self.a_units = a_units
        self.b_units = b_units

    # ------------------------------------------------------------------
    @property
    def total_delta_per_unit(self) -> float:
        """Root-level normalized cycle delta (sum of all self deltas)."""
        return sum(d.self_delta_per_unit for d in self.deltas)

    def grown(self, epsilon: float = 1e-9) -> List[SpanDelta]:
        """Paths B pays more for, ranked by normalized self delta."""
        rows = [d for d in self.deltas if d.self_delta_per_unit > epsilon]
        rows.sort(key=lambda d: (-d.self_delta_per_unit, d.path))
        return rows

    def shrunk(self, epsilon: float = 1e-9) -> List[SpanDelta]:
        """Paths A pays more for, ranked by normalized self delta."""
        rows = [d for d in self.deltas if d.self_delta_per_unit < -epsilon]
        rows.sort(key=lambda d: (d.self_delta_per_unit, d.path))
        return rows

    def contribution(self, delta: SpanDelta) -> float:
        """``delta``'s signed share of the total cycle delta (0 when the
        totals cancel out — shares of a near-zero net movement carry no
        information, only float residue)."""
        total = self.total_delta_per_unit
        if abs(total) < 1e-6:
            return 0.0
        return delta.self_delta_per_unit / total

    @property
    def is_zero(self) -> bool:
        return all(abs(d.self_delta_per_unit) < 1e-9
                   and d.a_count == d.b_count for d in self.deltas)

    # ------------------------------------------------------------------
    def to_dict(self, limit: int = 8) -> Dict[str, object]:
        """JSON-ready form: totals + top grown/shrunk paths."""
        grown = self.grown()
        shrunk = self.shrunk()
        return {
            "a_units": self.a_units,
            "b_units": self.b_units,
            "total_delta_per_unit": round(self.total_delta_per_unit, 6),
            "paths": len(self.deltas),
            "grown": [d.to_dict() for d in grown[:limit]],
            "shrunk": [d.to_dict() for d in shrunk[:limit]],
            "zero": self.is_zero,
        }


def diff_span_trees(a: Optional[SpanNode], b: Optional[SpanNode],
                    a_units: int, b_units: int) -> SpanDiff:
    """Diff two attribution tries over the union of their paths.

    ``a_units``/``b_units`` are each side's units of work (the
    normalization denominators); zero units degrade to raw cycles being
    reported as 0/unit, which only happens for empty runs.
    """
    a_nodes = _index(a)
    b_nodes = _index(b)
    deltas: List[SpanDelta] = []
    for path in sorted(set(a_nodes) | set(b_nodes)):
        na = a_nodes.get(path)
        nb = b_nodes.get(path)
        deltas.append(SpanDelta(
            path=path,
            a_total=na.total_cycles if na is not None else 0,
            b_total=nb.total_cycles if nb is not None else 0,
            a_self=na.self_cycles if na is not None else 0,
            b_self=nb.self_cycles if nb is not None else 0,
            a_count=na.count if na is not None else 0,
            b_count=nb.count if nb is not None else 0,
            a_units=a_units, b_units=b_units,
        ))
    return SpanDiff(deltas, a_units, b_units)


def share_blame(a: SpanNode, b: SpanNode
                ) -> Optional[Tuple[Tuple[str, ...], float, float]]:
    """The path whose *share* of its run grew the most from A to B.

    Share-based (fractions of each side's total cycles) so the verdict
    survives quick/full scale differences — the semantics the bench
    regression gate has always used for its one-line attribution.
    Returns ``(path, a_share, b_share)`` or ``None`` when nothing grew.
    """
    def shares(root: SpanNode) -> Dict[Tuple[str, ...], float]:
        total = root.total_cycles or root.child_cycles
        if not total:
            return {}
        return {path: node.total_cycles / total
                for path, node in _index(root).items()}

    a_shares = shares(a)
    b_shares = shares(b)
    best: Optional[Tuple[Tuple[str, ...], float, float]] = None
    best_delta = 0.0
    for path in sorted(b_shares):
        delta = b_shares[path] - a_shares.get(path, 0.0)
        if delta > best_delta:
            best_delta = delta
            best = (path, a_shares.get(path, 0.0), b_shares[path])
    return best
