"""Quantile-shift attribution: which stage explains the tail-gap change?

:func:`repro.obs.requests.tail_report` already answers, for one run,
"why is the p99 slower than the p50": it profiles the tail cohort and
the median cohort per stage.  This module answers the *differential*
question: between run A and run B, which stage explains the **change**
in the p50→p99 gap?

The per-side gap is attributed in cycles: a stage's contribution is its
share of the tail threshold latency minus its share of the p50 latency
(``tail_profile[s] * p99_cycles - median_profile[s] * p50_cycles``).
Stage contributions sum to approximately the gap itself, so the
stage-wise difference of the two sides' attributions decomposes the gap
change — "strict's gap grew 12 µs and 9 µs of that is ``lock_wait``"
is the actionable sentence.

``unattributed`` time is reported but never blamed, mirroring the
single-run tail analyzer's convention.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.requests import STAGE_UNATTRIBUTED, cycles_to_us


def gap_attribution(tail: Dict[str, object]) -> Dict[str, float]:
    """Per-stage contribution (cycles) to one run's p50→tail gap."""
    threshold = float(tail.get("threshold_cycles") or 0)
    p50 = float(tail.get("p50_cycles") or 0)
    tail_profile = tail.get("tail_profile") or {}
    median_profile = tail.get("median_profile") or {}
    gaps: Dict[str, float] = {}
    for stage in set(tail_profile) | set(median_profile):
        gaps[stage] = (tail_profile.get(stage, 0.0) * threshold
                       - median_profile.get(stage, 0.0) * p50)
    return gaps


def quantile_shift(tail_a: Optional[Dict[str, object]],
                   tail_b: Optional[Dict[str, object]],
                   ) -> Optional[Dict[str, object]]:
    """Stage-wise decomposition of the tail-gap change between A and B.

    Returns ``None`` when either side lacks tail data (a persisted
    artifact that carries no request stage profiles).  The ``verdict``
    is the instrumented stage with the largest absolute gap-change
    contribution; ``stages`` lists every stage's per-side gap and delta
    in µs, largest |delta| first.
    """
    if not tail_a or not tail_b:
        return None
    gaps_a = gap_attribution(tail_a)
    gaps_b = gap_attribution(tail_b)
    stages = sorted(set(gaps_a) | set(gaps_b))
    rows = []
    verdict: Optional[str] = None
    verdict_delta = 0.0
    for stage in stages:
        delta = gaps_b.get(stage, 0.0) - gaps_a.get(stage, 0.0)
        rows.append({
            "stage": stage,
            "gap_a_us": round(cycles_to_us(gaps_a.get(stage, 0.0)), 3),
            "gap_b_us": round(cycles_to_us(gaps_b.get(stage, 0.0)), 3),
            "delta_us": round(cycles_to_us(delta), 3),
        })
        if stage != STAGE_UNATTRIBUTED and abs(delta) > abs(verdict_delta):
            verdict = stage
            verdict_delta = delta
    rows.sort(key=lambda r: (-abs(r["delta_us"]), r["stage"]))
    gap_a = sum(gaps_a.values())
    gap_b = sum(gaps_b.values())
    return {
        "percentile": tail_a.get("percentile"),
        "gap_a_us": round(cycles_to_us(gap_a), 3),
        "gap_b_us": round(cycles_to_us(gap_b), 3),
        "gap_delta_us": round(cycles_to_us(gap_b - gap_a), 3),
        "verdict": verdict,
        "verdict_delta_us": round(cycles_to_us(verdict_delta), 3),
        "stages": rows,
    }
