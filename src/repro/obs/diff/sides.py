"""Diff sides: turning artifacts and live runs into comparable shapes.

A :class:`DiffSide` is the engine's input: an ordered set of *points*
keyed so the two sides align — ``(figure, scheme, workload, cores,
params…)`` for bench records, ``(workload, scheme, cores…)`` for scale
records, ``(fleet, scheme)`` for fleet records, and ``(workload,
cores…)`` (scheme deliberately excluded) for live pairs, so an
``identity-strict`` run lines up against a ``copy`` run of the same
load.  Each point carries its flattenable metric payload and its units
of work; span trees and request tail reports ride alongside when the
source has them (live captures always do; bench records carry spans
per figure × scheme; scale/fleet records carry neither).

Three constructors cover the CLI's modes:

* :func:`load_side` / :func:`side_from_record` — any persisted artifact
  (``BENCH_*.json``, ``scale.json``, ``fleet.json``), dispatched on
  shape;
* :func:`side_from_capture` — one completed instrumented run (how
  ``repro report`` reuses its tail-attribution captures);
* :func:`run_live_pair` — run two schemes under identical load, one
  process each when ``jobs > 1``; results merge in fixed order so the
  built sides are identical at any job count.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import SpanNode

#: Live-pair sizings (mirrors the bench/scale quick/full convention).
LIVE_SIZINGS: Dict[str, Dict[str, int]] = {
    "quick": {"cores": 8, "size": 16384, "units": 80, "warmup": 20},
    "full": {"cores": 16, "size": 16384, "units": 300, "warmup": 60},
}

#: Workloads a live diff can drive.
LIVE_WORKLOADS = ("stream", "stream-tx", "rr", "memcached", "storage")

Key = Tuple[str, ...]


@dataclass
class Point:
    """One comparable measurement point of a side."""

    metrics: Dict[str, object]
    units: int = 1
    spans: Optional[SpanNode] = None
    tail: Optional[Dict[str, object]] = None


@dataclass
class DiffSide:
    """One side of a comparison: labeled, keyed points."""

    label: str
    kind: str                                  # bench | scale | fleet | live
    points: Dict[Key, Point] = field(default_factory=dict)

    def keys(self) -> List[Key]:
        return sorted(self.points)


def key_label(key: Key) -> str:
    return " ".join(key)


# ----------------------------------------------------------------------
# Persisted artifacts.
# ----------------------------------------------------------------------
def _bench_row_key(figure: str, row: Dict) -> Key:
    # param_cores would duplicate the explicit cores element.
    params = [f"{k[len('param_'):]}={row[k]}"
              for k in sorted(row)
              if k.startswith("param_") and k != "param_cores"]
    return (figure, str(row.get("scheme")), str(row.get("workload")),
            f"cores={row.get('cores')}", *params)


def _side_from_bench(record: Dict, label: str) -> DiffSide:
    side = DiffSide(label=label, kind="bench")
    for figure, data in record.get("figures", {}).items():
        scheme_units: Dict[str, int] = {}
        for row in data.get("series", ()):
            key = _bench_row_key(figure, row)
            units = int(row.get("units") or 1)
            side.points[key] = Point(metrics=dict(row), units=units)
            scheme = str(row.get("scheme"))
            scheme_units[scheme] = scheme_units.get(scheme, 0) + units
        for scheme, tree in (data.get("spans") or {}).items():
            key = (figure, str(scheme), "spans")
            side.points[key] = Point(
                metrics={}, units=max(1, scheme_units.get(scheme, 1)),
                spans=SpanNode.from_dict(tree))
    return side


def _side_from_scale(record: Dict, label: str) -> DiffSide:
    side = DiffSide(label=label, kind="scale")
    workload = str(record.get("workload", "?"))
    for scheme, points in record.get("points", {}).items():
        for point in points:
            key = (workload, str(scheme), f"cores={point.get('cores')}")
            side.points[key] = Point(metrics=dict(point),
                                     units=int(point.get("units") or 1))
    for scheme, analysis in (record.get("analysis") or {}).items():
        side.points[("analysis", str(scheme))] = Point(
            metrics=dict(analysis))
    return side


def _side_from_fleet(record: Dict, label: str) -> DiffSide:
    side = DiffSide(label=label, kind="fleet")
    for scheme, entry in record.get("capacity", {}).items():
        side.points[("fleet", str(scheme))] = Point(metrics=dict(entry))
    return side


def side_from_record(record: Dict, label: str) -> DiffSide:
    """Build a side from any persisted record, dispatched on shape."""
    if "points" in record:
        return _side_from_scale(record, label)
    if "capacity" in record:
        return _side_from_fleet(record, label)
    return _side_from_bench(record, label)


def load_side(path: str, label: Optional[str] = None) -> DiffSide:
    """Load an artifact (validated like any bench record) as a side."""
    from repro.bench.record import load_record

    return side_from_record(load_record(path), label or path)


# ----------------------------------------------------------------------
# Live runs.
# ----------------------------------------------------------------------
def side_from_capture(result, obs, label: str,
                      key: Optional[Key] = None,
                      tail_percentile: float = 99.0) -> DiffSide:
    """One instrumented run as a side (scheme excluded from the key, so
    different schemes under the same load align point-to-point)."""
    from repro.obs.requests import tail_report
    from repro.stats.export import result_to_row

    metrics: Dict[str, object] = {"row": result_to_row(result)}
    for section in ("metrics", "locks", "exposure"):
        data = result.extras.get(section)
        if isinstance(data, dict):
            metrics[section] = data
    if key is None:
        key = (str(result.workload), f"cores={result.cores}")
    side = DiffSide(label=label, kind="live")
    side.points[key] = Point(
        metrics=metrics, units=int(result.units or 1),
        spans=obs.spans.tree(),
        tail=tail_report(obs.requests, percentile=tail_percentile))
    return side


def _run_live(workload: str, scheme: str, cores: int, size: int,
              units: int, warmup: int):
    """Run one instrumented workload; returns ``(result, obs)``."""
    from repro.bench.runner import _TRACE_CAPACITY
    from repro.obs.context import Observability
    from repro.workloads.memcached import MemcachedConfig, run_memcached
    from repro.workloads.netperf import (RRConfig, StreamConfig,
                                         run_tcp_rr, run_tcp_stream)
    from repro.workloads.storage import StorageConfig, run_storage

    obs = Observability.capture(trace_capacity=_TRACE_CAPACITY)
    if workload in ("stream", "stream-tx"):
        result = run_tcp_stream(StreamConfig(
            scheme=scheme,
            direction="rx" if workload == "stream" else "tx",
            message_size=size, cores=cores, units_per_core=units,
            warmup_units=warmup, obs=obs))
    elif workload == "rr":
        result = run_tcp_rr(RRConfig(
            scheme=scheme, message_size=size, transactions=units,
            warmup_transactions=warmup, obs=obs))
    elif workload == "memcached":
        result = run_memcached(MemcachedConfig(
            scheme=scheme, cores=cores, value_size=size,
            transactions_per_core=units, warmup_transactions=warmup,
            obs=obs))
    elif workload == "storage":
        result = run_storage(StorageConfig(
            scheme=scheme, block_size=size, cores=cores,
            ops_per_core=units, warmup_ops=warmup, obs=obs))
    else:
        raise SystemExit(f"error: unknown diff workload {workload!r}; "
                         f"choices: {', '.join(LIVE_WORKLOADS)}")
    return result, obs


def _live_worker(task: Tuple[str, str, int, int, int, int, float]
                 ) -> Tuple[str, Dict, float]:
    """Top-level (hence picklable) worker: one live side, serialized.

    Everything crossing the process boundary is plain JSON-able data;
    the parent rebuilds the :class:`SpanNode` tree, so the built side
    is identical whether the run happened in-process or in a worker.
    """
    workload, scheme, cores, size, units, warmup, tail_pct = task
    t0 = time.perf_counter()
    result, obs = _run_live(workload, scheme, cores, size, units, warmup)
    side = side_from_capture(result, obs, label=scheme,
                             tail_percentile=tail_pct)
    key, point = next(iter(side.points.items()))
    payload = {
        "key": list(key),
        "metrics": point.metrics,
        "units": point.units,
        "spans": point.spans.to_dict() if point.spans is not None else None,
        "tail": point.tail,
    }
    return scheme, payload, time.perf_counter() - t0


def _rebuild_side(scheme: str, payload: Dict) -> DiffSide:
    side = DiffSide(label=scheme, kind="live")
    spans = (SpanNode.from_dict(payload["spans"])
             if payload.get("spans") is not None else None)
    side.points[tuple(payload["key"])] = Point(
        metrics=payload["metrics"], units=int(payload["units"]),
        spans=spans, tail=payload.get("tail"))
    return side


def run_live_pair(workload: str, scheme_a: str, scheme_b: str,
                  cores: int, size: int, units: int, warmup: int,
                  tail_percentile: float = 99.0, jobs: int = 1,
                  quiet: bool = False) -> Tuple[DiffSide, DiffSide]:
    """Run both schemes under identical load; returns ``(A, B)``.

    ``jobs > 1`` runs the two sides in separate processes; results
    always round-trip through the same serialized form and merge in
    fixed (A, B) order, so the pair is byte-identical at any job count.
    """
    import sys

    tasks: Sequence[Tuple] = (
        (workload, scheme_a, cores, size, units, warmup, tail_percentile),
        (workload, scheme_b, cores, size, units, warmup, tail_percentile),
    )
    built: List[Tuple[str, Dict]] = []
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=2) as pool:
            for scheme, payload, elapsed in pool.map(_live_worker, tasks):
                built.append((scheme, payload))
                if not quiet:
                    print(f"[diff] {scheme:<18} {workload} cores={cores} "
                          f"{elapsed:5.1f}s", file=sys.stderr)
    else:
        for task in tasks:
            scheme, payload, elapsed = _live_worker(task)
            built.append((scheme, payload))
            if not quiet:
                print(f"[diff] {scheme:<18} {workload} cores={cores} "
                      f"{elapsed:5.1f}s", file=sys.stderr)
    return (_rebuild_side(*built[0]), _rebuild_side(*built[1]))
