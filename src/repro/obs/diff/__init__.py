"""Differential root-cause observatory: A/B attribution between runs.

The paper's whole argument is a *comparison* — copy vs. zero-copy under
identical load — and every scheme the ROADMAP adds (per-core
invalidation queues, IOTLB prefetch, the post-2016 contenders) will be
judged the same way.  This package is the comparison engine: given two
sides — live runs, persisted artifacts (``BENCH_*.json``,
``scale.json``, ``fleet.json``), or a run against the checked-in
baseline — it produces one deterministic differential report:

* a **span-trie diff** (:mod:`repro.obs.diff.spandiff`) with per-unit-
  of-work-normalized self-cycle deltas, naming grown and shrunk
  subtrees ranked by their contribution to the total cycle delta;
* **metric deltas** (:mod:`repro.obs.diff.metricdiff`) over every
  numeric signal both sides carry — series rows, counters, histogram
  summaries, per-lock wait, exposure byte·cycles, invalidation
  queue-depth;
* **quantile-shift attribution** (:mod:`repro.obs.diff.quantile`) built
  on the request recorder's stage profiles: which stage explains the
  p50→p99 gap *change* between A and B.

Everything is pure bookkeeping over already-recorded data: building a
diff never runs simulation cycles, and the rendered markdown/JSON is
byte-stable for deterministic inputs (the CLI's ``--jobs`` fan-out
cannot change a single byte — ``tests/obs/diff`` asserts it).
"""

from repro.obs.diff.metricdiff import (
    MetricDelta,
    changed,
    diff_metrics,
    flatten_numeric,
)
from repro.obs.diff.command import default_baseline_path, run_diff
from repro.obs.diff.quantile import gap_attribution, quantile_shift
from repro.obs.diff.render import diff_to_json, render_diff_markdown
from repro.obs.diff.sides import (
    DiffSide,
    Point,
    side_from_capture,
    side_from_record,
    load_side,
    run_live_pair,
)
from repro.obs.diff.spandiff import SpanDelta, SpanDiff, diff_span_trees
from repro.obs.diff.engine import build_diff, diff_is_zero

__all__ = [
    "MetricDelta", "SpanDelta", "SpanDiff", "DiffSide", "Point",
    "build_diff", "changed", "default_baseline_path", "diff_is_zero",
    "diff_metrics", "diff_span_trees", "diff_to_json",
    "flatten_numeric", "gap_attribution", "load_side",
    "quantile_shift", "render_diff_markdown", "run_diff",
    "run_live_pair", "side_from_capture", "side_from_record",
]
