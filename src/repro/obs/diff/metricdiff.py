"""Metric deltas: every numeric signal two sides share, diffed.

One generic mechanism covers series rows, metrics-registry snapshots
(counters, histogram summaries, time-series summaries), per-lock wait
profiles, exposure integrals, and the invalidation queue-depth series:
flatten the nested dicts into dotted paths (``locks.qi-lock.
total_wait_cycles``, ``histograms.invalidation.latency_cycles.p99``)
and compare leaf by leaf over the union of keys.

A key present on one side only is compared against 0.0 and flagged, so
"a metric appeared" (a scheme that starts spinning) is as visible as
"a metric moved".  Non-numeric leaves and lists are skipped — the diff
engine compares *signals*, not blobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Relative changes below this are formatting noise, not movement.
_EPSILON = 1e-9


@dataclass(frozen=True)
class MetricDelta:
    """One flattened metric's movement between side A and side B."""

    name: str
    a: Optional[float]            # None: absent on side A
    b: Optional[float]            # None: absent on side B

    @property
    def a_value(self) -> float:
        return self.a if self.a is not None else 0.0

    @property
    def b_value(self) -> float:
        return self.b if self.b is not None else 0.0

    @property
    def delta(self) -> float:
        return self.b_value - self.a_value

    @property
    def rel(self) -> Optional[float]:
        """Relative change vs A (None when A is 0 or absent)."""
        if not self.a_value:
            return None
        return self.delta / self.a_value

    @property
    def is_zero(self) -> bool:
        return abs(self.delta) < _EPSILON

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.name,
            "a": self.a,
            "b": self.b,
            "delta": round(self.delta, 6),
            "rel": (round(self.rel, 6) if self.rel is not None else None),
        }


def flatten_numeric(obj: object, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts to ``dotted.path -> float`` (numeric leaves
    only; bools, strings, Nones, and lists are skipped)."""
    flat: Dict[str, float] = {}
    if isinstance(obj, dict):
        for key in obj:
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_numeric(obj[key], path))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        flat[prefix] = float(obj)
    return flat


def diff_metrics(a: Dict[str, object],
                 b: Dict[str, object]) -> List[MetricDelta]:
    """Leaf-by-leaf deltas over the union of both sides' numeric keys,
    sorted by metric name (deterministic regardless of input order)."""
    fa = flatten_numeric(a)
    fb = flatten_numeric(b)
    return [MetricDelta(name=name, a=fa.get(name), b=fb.get(name))
            for name in sorted(set(fa) | set(fb))]


def changed(deltas: List[MetricDelta]) -> List[MetricDelta]:
    """Only the moved metrics, largest absolute relative change first
    (appearances/disappearances — no defined rel — lead, by |delta|)."""
    moved = [d for d in deltas if not d.is_zero]
    moved.sort(key=lambda d: (d.rel is not None,
                              -(abs(d.rel) if d.rel is not None
                                else abs(d.delta)),
                              d.name))
    return moved
