"""Streaming SLO telemetry: windowed latency objectives over a run.

The rest of :mod:`repro.obs` answers "where did the cycles go"; this
module answers the operator's question instead: *is the service meeting
its objective, and when it is not, why not?*  An
:class:`SloObjective` states the contract (``p99 <= N us`` within each
window, an availability floor); the :class:`SloRecorder` listens to
completed requests (via :class:`~repro.obs.requests.RequestRecorder`'s
listener hook), folds them into **tumbling windows of simulated
cycles**, and closes each window into a verdict: goodput, timeouts,
drops, interpolated p99 (reusing
:class:`~repro.obs.metrics.CycleHistogram`), availability, and the
error-budget **burn rate** (bad fraction over the budget the objective
leaves, so burn rate 1.0 consumes the budget exactly at the sustainable
pace and 10.0 exhausts it ten times too fast).

Windows are attributed by request **end** time: a request straddling a
window edge counts in the window it completed in, windows with no
traffic close empty (and never breach), and completions that arrive for
an already-closed window are counted as ``late_completions`` rather
than rewriting history — the series stays append-only and deterministic.

When a window breaches, the recorder snapshots **forensics**: it diffs
the span trie's per-path self-cycles and the lock recorder's per-lock
wait cycles against the previous window boundary, and names the
dominant span path and the top contended lock *of that window* — the
"why" next to the "what".  ``slo.p99_window`` and ``slo.burn_rate``
are also sampled into the metrics registry's time series, which the
Perfetto exporter turns into counter tracks automatically.

Design constraints, shared with the rest of the layer:

* **Zero simulated overhead.**  Recording reads request records and
  core clocks only; it never charges cycles (the zero-overhead test
  covers an SLO-enabled run).
* **Guarded write sites.**  The recorder only receives requests when
  the context is enabled (the listener is wired in
  :class:`~repro.obs.context.Observability`), and it stays inert until
  :meth:`SloRecorder.configure` states an objective.
* **Bounded memory.**  One open window at a time; closed windows are
  compact dicts, forensics are capped at :data:`_MAX_FORENSICS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import CycleHistogram
from repro.obs.requests import _CYCLES_PER_US, cycles_to_us

#: Breach forensics retained (append-only, earliest breaches win — the
#: first breach is the capacity verdict; later ones repeat the story).
_MAX_FORENSICS = 32


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective: a latency target within windows.

    ``p99_us`` is the per-window latency objective; ``availability`` the
    floor on good completions over offered requests (completions +
    drops); ``window_us`` the tumbling-window width in simulated
    microseconds; ``timeout_us`` (optional) the per-request deadline —
    requests slower than it count as timeouts (bad), like a client
    giving up.
    """

    p99_us: float
    availability: float = 0.999
    window_us: float = 200.0
    timeout_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.p99_us <= 0:
            raise ConfigurationError(
                f"SLO p99 objective must be positive: {self.p99_us}")
        if not 0.0 < self.availability < 1.0:
            raise ConfigurationError(
                f"availability floor must be in (0, 1): {self.availability}")
        if self.window_us <= 0:
            raise ConfigurationError(
                f"SLO window must be positive: {self.window_us}")
        if self.timeout_us is not None and self.timeout_us <= 0:
            raise ConfigurationError(
                f"timeout must be positive: {self.timeout_us}")

    @property
    def window_cycles(self) -> int:
        return max(1, int(round(self.window_us * _CYCLES_PER_US)))

    @property
    def timeout_cycles(self) -> Optional[int]:
        if self.timeout_us is None:
            return None
        return int(round(self.timeout_us * _CYCLES_PER_US))

    def to_dict(self) -> Dict[str, object]:
        return {
            "p99_us": self.p99_us,
            "availability": self.availability,
            "window_us": self.window_us,
            "timeout_us": self.timeout_us,
        }


class SloRecorder:
    """Tumbling-window SLO accounting hung off ``obs.slo``.

    Constructed unconditionally (like ``obs.exposure``) but inert until
    :meth:`configure` states an objective — typically right after the
    warmup phase, so only measured traffic is windowed.
    """

    def __init__(self, metrics=None, spans=None, locks=None) -> None:
        self.metrics = metrics
        self.spans = spans
        self.locks = locks
        self.objective: Optional[SloObjective] = None
        self.origin = 0
        self.windows: List[Dict[str, object]] = []
        self.breach_windows = 0
        self.forensics: List[Dict[str, object]] = []
        self.late_completions = 0
        self.total_completions = 0
        self.total_timeouts = 0
        self.total_drops = 0
        self._index = 0
        self._hist = CycleHistogram("slo.window_latency")
        self._completions = 0
        self._timeouts = 0
        self._drops = 0
        self._span_prev: Dict[str, int] = {}
        self._lock_prev: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def configure(self, objective: SloObjective, start: int = 0) -> None:
        """Arm the recorder: window traffic from ``start`` onward."""
        self.objective = objective
        self.origin = start
        self._index = 0
        self._span_prev = self._span_snapshot()
        self._lock_prev = self._lock_snapshot()

    @property
    def armed(self) -> bool:
        return self.objective is not None

    def _window_index(self, t: int) -> int:
        return (t - self.origin) // self.objective.window_cycles

    # ------------------------------------------------------------------
    # Recording (RequestRecorder listener hook + drop accounting).
    # ------------------------------------------------------------------
    def on_request(self, record) -> None:
        """Fold one completed request into its end-time window.

        The SLO latency is the request's service latency plus any
        ``queue_wait`` its opener noted in the request meta — open-loop
        workloads pass the cycles a request waited past its intended
        arrival, so queueing delay (the thing that explodes past the
        capacity knee) is part of what the objective judges.
        """
        if self.objective is None:
            return
        end = record.end
        if end < self.origin:
            return
        index = self._window_index(end)
        if index < self._index:
            self.late_completions += 1
            return
        while self._index < index:
            self._close_window()
        latency = record.latency + int(record.meta.get("queue_wait", 0))
        self._hist.observe(latency)
        self._completions += 1
        timeout = self.objective.timeout_cycles
        if timeout is not None and latency > timeout:
            self._timeouts += 1

    def note_drop(self, t: int, n: int = 1) -> None:
        """Count ``n`` shed/refused arrivals at time ``t`` (bad events)."""
        if self.objective is None or t < self.origin:
            return
        index = self._window_index(t)
        if index < self._index:
            return
        while self._index < index:
            self._close_window()
        self._drops += n

    def finalize(self, t: int) -> None:
        """Close every window through time ``t`` (the partial last one
        included), so the series covers the whole measured phase."""
        if self.objective is None or t < self.origin:
            return
        last = self._window_index(t)
        while self._index <= last:
            self._close_window()

    # ------------------------------------------------------------------
    # Window close: verdict + forensics.
    # ------------------------------------------------------------------
    def _span_snapshot(self) -> Dict[str, int]:
        if self.spans is None:
            return {}
        snap: Dict[str, int] = {}
        for path, node in self.spans.tree().walk():
            if len(path) <= 1:      # skip the synthetic "run" root
                continue
            snap[" > ".join(path[1:])] = node.self_cycles
        return snap

    def _lock_snapshot(self) -> Dict[str, int]:
        if self.locks is None:
            return {}
        return {name: stats.total_wait_cycles
                for name, stats in self.locks.locks.items()}

    @staticmethod
    def _top_delta(now: Dict[str, int],
                   prev: Dict[str, int]) -> Tuple[Optional[str], int]:
        best, best_delta = None, 0
        for name in sorted(now):
            delta = now[name] - prev.get(name, 0)
            if delta > best_delta:
                best, best_delta = name, delta
        return best, best_delta

    @classmethod
    def _top_span_delta(cls, now: Dict[str, int],
                        prev: Dict[str, int]) -> Tuple[Optional[str], int]:
        """Dominant span path over the window, preferring nested paths.

        A top-level span's self-cycles are mostly scheduler/pacing time
        (open-loop workloads idle inside ``step`` waiting for the next
        arrival), so forensics first look for the hottest *nested* path
        — the one that reads like an attribution ("step > rx_packet >
        dma_unmap > iotlb_invalidate") — and only fall back to
        top-level spans when nothing nested moved.
        """
        nested = {p: c for p, c in now.items() if " > " in p}
        best, best_delta = cls._top_delta(nested, prev)
        if best is not None:
            return best, best_delta
        return cls._top_delta(now, prev)

    def _close_window(self) -> None:
        objective = self.objective
        window_cycles = objective.window_cycles
        start = self.origin + self._index * window_cycles
        end = start + window_cycles
        offered = self._completions + self._drops
        good = self._completions - self._timeouts
        p99_cycles = self._hist.percentile(99) if self._completions else 0
        p99_us = cycles_to_us(p99_cycles)
        availability = good / offered if offered else 1.0
        bad_fraction = ((self._timeouts + self._drops) / offered
                        if offered else 0.0)
        budget = 1.0 - objective.availability
        burn_rate = bad_fraction / budget if budget > 0 else 0.0
        breach = ((self._completions > 0 and p99_us > objective.p99_us)
                  or availability < objective.availability)
        row = {
            "window": self._index,
            "start_cycles": start,
            "end_cycles": end,
            "completions": self._completions,
            "good": good,
            "timeouts": self._timeouts,
            "drops": self._drops,
            "p99_us": round(p99_us, 3),
            "availability": round(availability, 6),
            "burn_rate": round(burn_rate, 4),
            "breach": breach,
        }
        self.windows.append(row)
        self.total_completions += self._completions
        self.total_timeouts += self._timeouts
        self.total_drops += self._drops
        if self.metrics is not None:
            self.metrics.series("slo.p99_window").sample(end,
                                                         int(p99_cycles))
            self.metrics.series("slo.burn_rate").sample(
                end, round(burn_rate, 4))
        # Forensics: diff span/lock cumulatives over this window, so a
        # breach names where the cycles and the waiting went *now*, not
        # since the start of the run.
        span_now = self._span_snapshot()
        lock_now = self._lock_snapshot()
        if breach:
            self.breach_windows += 1
            if len(self.forensics) < _MAX_FORENSICS:
                span_path, span_cycles = self._top_span_delta(
                    span_now, self._span_prev)
                lock_name, lock_cycles = self._top_delta(lock_now,
                                                         self._lock_prev)
                self.forensics.append({
                    "window": self._index,
                    "start_us": round(cycles_to_us(start), 3),
                    "end_us": round(cycles_to_us(end), 3),
                    "p99_us": row["p99_us"],
                    "availability": row["availability"],
                    "completions": self._completions,
                    "timeouts": self._timeouts,
                    "drops": self._drops,
                    "burn_rate": row["burn_rate"],
                    "dominant_span_path": span_path,
                    "dominant_span_cycles": span_cycles,
                    "top_lock": lock_name,
                    "top_lock_wait_cycles": lock_cycles,
                })
        self._span_prev = span_now
        self._lock_prev = lock_now
        self._index += 1
        self._hist = CycleHistogram("slo.window_latency")
        self._completions = 0
        self._timeouts = 0
        self._drops = 0

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-friendly aggregate (rides in ``extras['slo']``)."""
        if self.objective is None:
            return {"armed": False}
        closed = self.windows
        worst_p99 = max((w["p99_us"] for w in closed), default=0.0)
        min_avail = min((w["availability"] for w in closed), default=1.0)
        max_burn = max((w["burn_rate"] for w in closed), default=0.0)
        return {
            "armed": True,
            "objective": self.objective.to_dict(),
            "windows": len(closed),
            "breach_windows": self.breach_windows,
            "late_completions": self.late_completions,
            "completions": self.total_completions,
            "timeouts": self.total_timeouts,
            "drops": self.total_drops,
            "worst_p99_us": round(worst_p99, 3),
            "min_availability": round(min_avail, 6),
            "max_burn_rate": round(max_burn, 4),
            "forensics": list(self.forensics),
        }
