"""repro.obs — tracing, metrics, and phase timelines for the simulation.

See docs/observability.md for the event schema and usage.
"""

from repro.obs.context import NULL_OBS, Observability, PhaseRecord
from repro.obs.metrics import (
    CycleHistogram,
    MetricCounter,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.trace import (
    ALL_EVENT_KINDS,
    EV_DMA_COPY,
    EV_DMA_MAP,
    EV_DMA_UNMAP,
    EV_INV_COMPLETE,
    EV_INV_DEFER,
    EV_INV_FLUSH,
    EV_INV_SUBMIT,
    EV_LOCK_ACQUIRE,
    EV_LOCK_CONTEND,
    EV_LOCK_RELEASE,
    EV_NET_RX,
    EV_NET_TX,
    EV_PHASE,
    EV_POOL_FALLBACK,
    EV_POOL_GROW,
    EV_POOL_SHRINK,
    EV_SCHED_STEP,
    NullTracer,
    RingTracer,
    TraceEvent,
)

__all__ = [
    "NULL_OBS",
    "Observability",
    "PhaseRecord",
    "MetricsRegistry",
    "MetricCounter",
    "CycleHistogram",
    "TimeSeries",
    "NullTracer",
    "RingTracer",
    "TraceEvent",
    "ALL_EVENT_KINDS",
    "EV_LOCK_ACQUIRE",
    "EV_LOCK_CONTEND",
    "EV_LOCK_RELEASE",
    "EV_INV_SUBMIT",
    "EV_INV_COMPLETE",
    "EV_INV_DEFER",
    "EV_INV_FLUSH",
    "EV_POOL_GROW",
    "EV_POOL_SHRINK",
    "EV_POOL_FALLBACK",
    "EV_DMA_MAP",
    "EV_DMA_UNMAP",
    "EV_DMA_COPY",
    "EV_NET_RX",
    "EV_NET_TX",
    "EV_SCHED_STEP",
    "EV_PHASE",
]
