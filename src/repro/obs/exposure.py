"""Cycle-accurate exposure accounting: how much memory a device can
reach, for how long, and why.

The paper's security argument is quantitative, not boolean.  Deferred
zero-copy protection leaves a *vulnerability window* — between the OS
unmapping a buffer and the batched IOTLB invalidation actually executing,
the device can still reach the pages through stale IOTLB entries — and
page-granular mapping exposes *co-located* data the OS never handed to
the device (the sub-page attack of §3).  DMA shadowing eliminates both
by construction.  The :class:`ExposureAccountant` turns those claims
into numbers:

* **Stale-window exposure** (byte·cycles): for every page the OS
  unmapped while the IOTLB still cached its translation, the span from
  the instant the driver regained buffer ownership (``dma_unmap``
  *returning*) to the invalidation that actually revoked the entry,
  weighted by the page size.  Strict schemes invalidate before
  ``dma_unmap`` returns, so their windows are exactly zero; deferred
  schemes accumulate windows until the batch flush (or until an
  identity remap of the same frame re-legitimises the entry).
* **Granularity excess** (byte·cycles): for every live DMA mapping, the
  device-accessible bytes *beyond* the OS-requested range — page
  rounding plus sub-page co-location — integrated over the mapping's
  lifetime.  Only OS memory counts: pages a scheme maps as its own
  *dedicated* state (the shadow pool, coherent descriptor rings) carry
  no foreign data and are tagged ``kind="dedicated"`` at ``map_range``.
* **Mapped surface** (time series + peak): total device-accessible
  bytes over time — installed pages plus stale-but-cached pages.
* **Fault forensics**: a bounded ring of :class:`ExposureFault` records
  correlating each blocked DMA with the page's lifecycle state
  (``mapped`` / ``stale`` / ``revoked`` / ``never-mapped``), the cycle
  timestamps of the map/unmap that produced that state, and the span
  paths open on each core at fault time.

Like the rest of :mod:`repro.obs`, the accountant is a pure observer:
every note site is guarded by ``obs.enabled`` and recording reads
clocks without ever charging cycles, so exposure-accounted runs are
cycle-identical to bare runs (``tests/obs/test_zero_overhead.py``).

Measurement conventions worth knowing when reading the numbers:

* A stale window opens at ``dma_unmap``'s *return* (the driver owns the
  buffer again) and closes at invalidation *completion* — the
  ``note_invalidate_*`` hooks fire after the hardware wait.  A strict
  scheme's synchronous invalidation therefore closes the window before
  it can open.
* When independent mappings share a page (slab co-location), the page
  is released at the *earliest* ``dma_unmap`` touching it; overlapping
  windows are thus measured conservatively (never under-reported).
* Only pages that were actually IOTLB-cached at unmap time go stale —
  an uncached translation dies with its PTE and the device cannot
  reload it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set, Tuple

# Mirrors repro.sim.units; importing it here would cycle back through
# repro.sim.__init__ -> engine -> obs.context -> this module.
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

#: ``map_range`` kind tags.  ``os`` memory (the default) is the data the
#: OS lends to the device and the only memory granularity excess is
#: defined over; ``dedicated`` marks scheme-owned state (shadow pool
#: buffers, coherent rings) that carries no co-located foreign data.
KIND_OS = "os"
KIND_DEDICATED = "dedicated"

#: How many per-page map/unmap history entries a domain retains for
#: fault forensics before the oldest are evicted.
_HISTORY_LIMIT = 1 << 16


@dataclass
class _PageState:
    """One installed (PTE-present) page of a domain."""

    kind: str
    refcount: int
    installed_at: int
    #: Set when a ``dma_unmap`` returned while the PTE stayed installed
    #: (self-invalidating disarm, shared-page co-location): the OS no
    #: longer considers the buffer device-owned from this instant.
    os_released_at: Optional[int] = None


@dataclass
class _StalePage:
    """A page whose PTE is gone but whose IOTLB entry may survive."""

    kind: str
    unmapped_at: int
    #: When the driver regained ownership (``dma_unmap`` return); the
    #: stale window is measured from here.  ``None`` until the enclosing
    #: ``dma_unmap`` completes.
    released_at: Optional[int] = None


@dataclass
class _LiveMap:
    """One live ``dma_map`` as the accountant sees it."""

    mapped_at: int
    size: int
    excess_bytes: int


@dataclass(frozen=True)
class ExposureFault:
    """One blocked DMA with the lifecycle context behind it."""

    t: int
    domain_id: int
    device_id: int
    iova: int
    is_write: bool
    reason: str
    #: ``mapped`` / ``stale`` / ``revoked`` / ``never-mapped``.
    page_state: str
    last_map_t: Optional[int] = None
    last_unmap_t: Optional[int] = None
    #: Span paths open per core at fault time: ``(core_id, path)``.
    open_spans: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()
    #: Request ids in flight per core at fault time: ``(core_id, rid)``.
    open_requests: Tuple[Tuple[int, int], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "t": self.t, "domain": self.domain_id,
            "device": self.device_id, "iova": self.iova,
            "write": self.is_write, "reason": self.reason,
            "page_state": self.page_state,
            "last_map_t": self.last_map_t,
            "last_unmap_t": self.last_unmap_t,
            "open_spans": [
                {"core": cid, "path": " -> ".join(path)}
                for cid, path in self.open_spans
            ],
            "open_requests": [
                {"core": cid, "rid": rid}
                for cid, rid in self.open_requests
            ],
        }


@dataclass
class _DomainExposure:
    """Per-domain accounting state and totals."""

    domain_id: int
    device_id: int = -1
    scheme: Optional[str] = None
    pages: Dict[int, _PageState] = field(default_factory=dict)
    stale: Dict[int, _StalePage] = field(default_factory=dict)
    live: Dict[int, _LiveMap] = field(default_factory=dict)
    #: Per-page ``(last_map_t, last_unmap_t)`` for fault forensics.
    history: Dict[int, Tuple[Optional[int], Optional[int]]] = \
        field(default_factory=dict)
    # Totals.
    stale_byte_cycles: int = 0
    stale_windows: int = 0
    stale_peak_window_cycles: int = 0
    stale_accesses: int = 0
    excess_byte_cycles: int = 0
    current_excess_bytes: int = 0
    peak_excess_bytes: int = 0
    peak_surface_bytes: int = 0
    dma_maps: int = 0
    dma_unmaps: int = 0

    @property
    def surface_bytes(self) -> int:
        """Device-accessible bytes right now: installed + stale pages."""
        return (len(self.pages) + len(self.stale)) * PAGE_SIZE

    def remember(self, page: int, *, map_t: Optional[int] = None,
                 unmap_t: Optional[int] = None) -> None:
        prev = self.history.pop(page, (None, None))
        self.history[page] = (map_t if map_t is not None else prev[0],
                              unmap_t if unmap_t is not None else prev[1])
        if len(self.history) > _HISTORY_LIMIT:
            self.history.pop(next(iter(self.history)))

    def summary(self) -> Dict[str, object]:
        return {
            "device": self.device_id,
            "scheme": self.scheme,
            "stale_byte_cycles": self.stale_byte_cycles,
            "stale_windows": self.stale_windows,
            "stale_peak_window_cycles": self.stale_peak_window_cycles,
            "stale_accesses": self.stale_accesses,
            "stale_open_pages": len(self.stale),
            "granularity_excess_byte_cycles": self.excess_byte_cycles,
            "peak_excess_bytes": self.peak_excess_bytes,
            "peak_surface_bytes": self.peak_surface_bytes,
            "surface_bytes": self.surface_bytes,
            "live_mappings": len(self.live),
            "dma_maps": self.dma_maps,
            "dma_unmaps": self.dma_unmaps,
        }


class ExposureAccountant:
    """Derives exposure metrics from IOMMU and DMA-API lifecycle events.

    One accountant hangs off each :class:`~repro.obs.context.Observability`
    (``obs.exposure``).  All ``note_*`` methods are called only from
    sites already guarded on ``obs.enabled``; none of them charges
    simulated cycles.
    """

    def __init__(self, metrics=None, spans=None,
                 fault_capacity: int = 1024):
        #: Optional MetricsRegistry — exposure feeds it the
        #: ``exposure.*`` instruments documented in docs/observability.md.
        self.metrics = metrics
        #: Optional SpanRecorder consulted for fault-span correlation.
        self.spans = spans
        #: Optional RequestRecorder consulted for fault-request
        #: correlation (wired by the Observability context).
        self.requests = None
        self._domains: Dict[int, _DomainExposure] = {}
        self.faults: Deque[ExposureFault] = deque(maxlen=fault_capacity)
        self.faults_recorded = 0

    # ------------------------------------------------------------------
    def _domain(self, domain_id: int,
                device_id: Optional[int] = None) -> _DomainExposure:
        dom = self._domains.get(domain_id)
        if dom is None:
            dom = self._domains[domain_id] = _DomainExposure(domain_id)
        if device_id is not None:
            dom.device_id = device_id
        return dom

    def _sample_surface(self, t: int) -> None:
        if self.metrics is None:
            return
        total = sum(d.surface_bytes for d in self._domains.values())
        self.metrics.series("exposure.surface_bytes").sample(t, total)

    # ------------------------------------------------------------------
    # IOMMU-side lifecycle (page granular).
    # ------------------------------------------------------------------
    def note_map_range(self, t: int, domain_id: int, device_id: int,
                       iova: int, size: int, kind: str = KIND_OS) -> None:
        """A ``map_range`` installed PTEs for ``[iova, iova+size)``."""
        dom = self._domain(domain_id, device_id)
        first = iova >> PAGE_SHIFT
        last = (iova + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            # An identity remap of a stale frame re-legitimises the
            # cached translation: the window closes here, not at the
            # (possibly much later) batch flush.
            sp = dom.stale.pop(page, None)
            if sp is not None:
                self._finalize_stale(dom, sp, t)
            state = dom.pages.get(page)
            if state is None:
                dom.pages[page] = _PageState(kind=kind, refcount=1,
                                             installed_at=t)
            else:
                state.refcount += 1
                state.os_released_at = None
            dom.remember(page, map_t=t)
        dom.peak_surface_bytes = max(dom.peak_surface_bytes,
                                     dom.surface_bytes)
        self._sample_surface(t)

    def note_unmap_range(self, t: int, domain_id: int, iova: int,
                         size: int, cached_pages: Set[int]) -> None:
        """An ``unmap_range`` cleared PTEs; ``cached_pages`` are the
        pages whose translations the IOTLB still holds (they go stale
        rather than vanishing)."""
        dom = self._domain(domain_id)
        first = iova >> PAGE_SHIFT
        last = (iova + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            state = dom.pages.get(page)
            if state is None:
                continue
            state.refcount -= 1
            if state.refcount > 0:
                continue
            del dom.pages[page]
            dom.remember(page, unmap_t=t)
            if page in cached_pages:
                dom.stale[page] = _StalePage(
                    kind=state.kind, unmapped_at=t,
                    released_at=state.os_released_at)
        self._sample_surface(t)

    def note_invalidate_pages(self, t: int, domain_id: int,
                              iova_page: int, npages: int) -> None:
        """A page-range invalidation *completed* at ``t``."""
        dom = self._domains.get(domain_id)
        if dom is None:
            return
        for page in range(iova_page, iova_page + npages):
            sp = dom.stale.pop(page, None)
            if sp is not None:
                self._finalize_stale(dom, sp, t)
        self._sample_surface(t)

    def note_invalidate_domain(self, t: int, domain_id: int) -> None:
        """A domain-wide invalidation completed at ``t``."""
        dom = self._domains.get(domain_id)
        if dom is None:
            return
        for sp in dom.stale.values():
            self._finalize_stale(dom, sp, t)
        dom.stale.clear()
        self._sample_surface(t)

    def note_invalidate_all(self, t: int) -> None:
        """A global invalidation (deferred batch flush) completed at
        ``t`` — every stale entry in every domain dies."""
        for dom in self._domains.values():
            for sp in dom.stale.values():
                self._finalize_stale(dom, sp, t)
            dom.stale.clear()
        self._sample_surface(t)

    def _finalize_stale(self, dom: _DomainExposure, sp: _StalePage,
                        t: int) -> None:
        if sp.kind != KIND_OS or sp.released_at is None:
            return
        window = t - sp.released_at
        if window <= 0:
            return
        dom.stale_byte_cycles += window * PAGE_SIZE
        dom.stale_windows += 1
        dom.stale_peak_window_cycles = max(dom.stale_peak_window_cycles,
                                           window)
        if self.metrics is not None:
            self.metrics.histogram(
                "exposure.stale_window_cycles").observe(window)

    # ------------------------------------------------------------------
    # Device-side accesses and faults.
    # ------------------------------------------------------------------
    def note_access(self, t: int, domain_id: int, iova: int,
                    is_write: bool) -> None:
        """A successful device translation — flag it if it rode a stale
        IOTLB entry (the deferred window being *used*)."""
        dom = self._domains.get(domain_id)
        if dom is None:
            return
        if (iova >> PAGE_SHIFT) in dom.stale:
            dom.stale_accesses += 1
            if self.metrics is not None:
                self.metrics.counter("exposure.stale_accesses").inc()

    def note_fault(self, t: int, domain_id: int, device_id: int,
                   iova: int, is_write: bool, reason: str) -> None:
        """A blocked DMA: record it with lifecycle forensics."""
        page = iova >> PAGE_SHIFT
        state = "never-mapped"
        last_map_t = last_unmap_t = None
        dom = self._domains.get(domain_id)
        if dom is not None:
            hist = dom.history.get(page)
            if hist is not None:
                last_map_t, last_unmap_t = hist
            if page in dom.pages:
                state = "mapped"
            elif page in dom.stale:
                state = "stale"
            elif hist is not None:
                state = "revoked"
        open_spans: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()
        if self.spans is not None:
            open_spans = tuple(sorted(self.spans.open_paths().items()))
        open_requests: Tuple[Tuple[int, int], ...] = ()
        if self.requests is not None:
            open_requests = tuple(sorted(
                self.requests.active_rids().items()))
        self.faults.append(ExposureFault(
            t=t, domain_id=domain_id, device_id=device_id, iova=iova,
            is_write=is_write, reason=reason, page_state=state,
            last_map_t=last_map_t, last_unmap_t=last_unmap_t,
            open_spans=open_spans, open_requests=open_requests))
        self.faults_recorded += 1

    @property
    def faults_dropped(self) -> int:
        return self.faults_recorded - len(self.faults)

    # ------------------------------------------------------------------
    # DMA-API-side lifecycle (byte granular — this is where the
    # OS-requested size is still known).
    # ------------------------------------------------------------------
    def note_dma_map(self, t: int, scheme: str,
                     domain_id: Optional[int], iova: int,
                     size: int) -> None:
        """A ``dma_map`` returned: compute the granularity excess of
        the mapping it produced (device-accessible OS bytes beyond the
        requested ``[iova, iova+size)``)."""
        if domain_id is None:
            return
        dom = self._domain(domain_id)
        dom.scheme = scheme
        dom.dma_maps += 1
        first = iova >> PAGE_SHIFT
        last = (iova + size - 1) >> PAGE_SHIFT
        excess = 0
        for page in range(first, last + 1):
            state = dom.pages.get(page)
            if state is None or state.kind != KIND_OS:
                continue
            page_lo = page << PAGE_SHIFT
            overlap = (min(iova + size, page_lo + PAGE_SIZE)
                       - max(iova, page_lo))
            excess += PAGE_SIZE - overlap
        dom.live[iova] = _LiveMap(mapped_at=t, size=size,
                                  excess_bytes=excess)
        dom.current_excess_bytes += excess
        dom.peak_excess_bytes = max(dom.peak_excess_bytes,
                                    dom.current_excess_bytes)
        if self.metrics is not None:
            self.metrics.histogram(
                "exposure.map_excess_bytes").observe(excess)

    def note_dma_unmap(self, t: int, scheme: str,
                       domain_id: Optional[int], iova: int,
                       size: int) -> None:
        """A ``dma_unmap`` returned: the driver owns the buffer again.

        Integrates the mapping's granularity excess over its lifetime
        and stamps ``released_at`` on the pages it covered — the stale
        window, if any, starts *now*.
        """
        if domain_id is None:
            return
        dom = self._domain(domain_id)
        dom.dma_unmaps += 1
        lm = dom.live.pop(iova, None)
        if lm is not None:
            dom.excess_byte_cycles += lm.excess_bytes * (t - lm.mapped_at)
            dom.current_excess_bytes -= lm.excess_bytes
        first = iova >> PAGE_SHIFT
        last = (iova + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            sp = dom.stale.get(page)
            if sp is not None:
                if sp.released_at is None:
                    sp.released_at = t
                continue
            state = dom.pages.get(page)
            if state is not None and state.kind == KIND_OS \
                    and state.os_released_at is None:
                state.os_released_at = t

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------
    def domain_summary(self, domain_id: int) -> Optional[Dict[str, object]]:
        dom = self._domains.get(domain_id)
        return dom.summary() if dom is not None else None

    def summary(self) -> Dict[str, object]:
        """JSON-friendly aggregate + per-domain exposure totals."""
        agg = {
            "stale_byte_cycles": 0, "stale_windows": 0,
            "stale_peak_window_cycles": 0, "stale_accesses": 0,
            "stale_open_pages": 0,
            "granularity_excess_byte_cycles": 0,
            "peak_excess_bytes": 0, "peak_surface_bytes": 0,
            "live_mappings": 0,
        }
        domains: Dict[str, Dict[str, object]] = {}
        for domain_id, dom in sorted(self._domains.items()):
            row = dom.summary()
            domains[str(domain_id)] = row
            agg["stale_byte_cycles"] += dom.stale_byte_cycles
            agg["stale_windows"] += dom.stale_windows
            agg["stale_peak_window_cycles"] = max(
                agg["stale_peak_window_cycles"],
                dom.stale_peak_window_cycles)
            agg["stale_accesses"] += dom.stale_accesses
            agg["stale_open_pages"] += len(dom.stale)
            agg["granularity_excess_byte_cycles"] += dom.excess_byte_cycles
            agg["peak_excess_bytes"] += dom.peak_excess_bytes
            agg["peak_surface_bytes"] += dom.peak_surface_bytes
            agg["live_mappings"] += len(dom.live)
        agg["faults"] = self.faults_recorded
        agg["faults_dropped"] = self.faults_dropped
        agg["domains"] = domains
        return agg

    def clear(self) -> None:
        self._domains.clear()
        self.faults.clear()
        self.faults_recorded = 0
