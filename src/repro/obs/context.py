"""The observability context threaded through the simulation.

One :class:`Observability` object bundles the run's tracer and metrics
registry.  It hangs off :class:`~repro.hw.machine.Machine` and every
instrumented component (locks, the invalidation queue, the shadow pool,
the DMA API, the NIC driver, the scheduler) reaches it from there.

The default is :data:`NULL_OBS` — a disabled context whose only hot-path
cost is the ``if obs.enabled`` guard — so the tier-1 benchmark numbers
are untouched unless a run opts in with ``Observability.capture()`` (the
CLI's ``--trace`` flag does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.exposure import ExposureAccountant
from repro.obs.locks import LockContentionRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.requests import RequestRecorder
from repro.obs.slo import SloRecorder
from repro.obs.spans import SpanRecorder
from repro.obs.trace import EV_PHASE, NullTracer, RingTracer


@dataclass
class PhaseRecord:
    """One workload phase (warmup, measure, drain, …) with its footprint."""

    name: str
    start: int
    end: Optional[int] = None
    busy_cycles: int = 0
    breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def wall_cycles(self) -> int:
        return (self.end - self.start) if self.end is not None else 0


class Observability:
    """Tracer + metrics + spans + phase timeline for one simulated run."""

    def __init__(self, tracer=None, metrics: MetricsRegistry | None = None,
                 enabled: bool = True,
                 spans: SpanRecorder | None = None,
                 exposure: ExposureAccountant | None = None,
                 requests: RequestRecorder | None = None):
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Hierarchical cycle-attribution recorder (see repro.obs.spans).
        self.spans = spans if spans is not None else SpanRecorder()
        #: Exposure accountant (see repro.obs.exposure): stale windows,
        #: granularity excess, mapped surface, fault forensics.
        self.exposure = exposure if exposure is not None \
            else ExposureAccountant(metrics=self.metrics, spans=self.spans)
        #: Request-scoped causal tracing (see repro.obs.requests):
        #: per-request ids, stage timelines, tail-latency attribution.
        self.requests = requests if requests is not None \
            else RequestRecorder()
        #: Per-lock contention matrix (see repro.obs.locks): waiter and
        #: holder cycles by core, waiter→holder hand-off edges.  Feeds
        #: the scalability observatory's contention attribution.
        self.locks = LockContentionRecorder()
        #: Streaming SLO telemetry (see repro.obs.slo): tumbling windows
        #: of request latency judged against an objective, with breach
        #: forensics drawn from the span and lock recorders.  Inert
        #: until a workload calls ``obs.slo.configure(objective)``.
        self.slo = SloRecorder(metrics=self.metrics, spans=self.spans,
                               locks=self.locks)
        #: Master switch instrumented hot paths guard on.  Disabled means
        #: neither events, metrics, spans, nor exposure are recorded.
        self.enabled = enabled and self.tracer.enabled
        self.phases: List[PhaseRecord] = []
        if self.enabled:
            # Wire the request recorder into the rest of the layer:
            # spans feed it stages, the tracer stamps events with the
            # active rid, fault forensics can name in-flight rids, and
            # completed requests stream into the SLO windows.
            self.spans.listener = self.requests
            self.requests.tracer = self.tracer
            if hasattr(self.tracer, "rid_of"):
                self.tracer.rid_of = self.requests.current_rid
            self.exposure.requests = self.requests
            self.requests.listener = self.slo

    # ------------------------------------------------------------------
    @classmethod
    def null(cls) -> "Observability":
        """A disabled context (what every run gets unless it opts in)."""
        return cls(tracer=NullTracer(), enabled=False)

    @classmethod
    def capture(cls, trace_capacity: int = 1 << 16) -> "Observability":
        """An enabled context with a ring tracer of ``trace_capacity``."""
        return cls(tracer=RingTracer(capacity=trace_capacity))

    # ------------------------------------------------------------------
    # Phase timeline (per-phase breakdowns for the timeline renderer).
    # ------------------------------------------------------------------
    def phase_begin(self, name: str, t: int) -> None:
        """Open a workload phase; closes any still-open previous phase."""
        if not self.enabled:
            return
        if self.phases and self.phases[-1].end is None:
            self.phase_end(t)
        self.phases.append(PhaseRecord(name=name, start=t))
        self.tracer.emit(EV_PHASE, t, -1, name=name, edge="begin")

    def phase_end(self, t: int, busy_cycles: int = 0,
                  breakdown: Dict[str, int] | None = None) -> None:
        """Close the open phase, attaching its cycle footprint."""
        if not self.enabled or not self.phases:
            return
        phase = self.phases[-1]
        if phase.end is not None:
            return
        phase.end = t
        phase.busy_cycles = busy_cycles
        if breakdown:
            phase.breakdown = dict(breakdown)
        self.tracer.emit(EV_PHASE, t, -1, name=phase.name, edge="end")


#: Shared disabled context.  Nothing may write through it (every write
#: site guards on ``enabled``), so sharing one instance is safe.
NULL_OBS = Observability.null()
