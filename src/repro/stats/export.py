"""Export run results to CSV / JSON for external analysis.

The benchmark harness prints paper-style text tables; this module gives
downstream users machine-readable forms of the same data — one row per
:class:`~repro.stats.results.RunResult`, with the breakdown flattened
into per-category columns.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List, Sequence

from repro.hw.cpu import ALL_CATEGORIES
from repro.obs.scaling import serialized_shares
from repro.stats.results import RunResult

#: Fixed column order for CSV output.
BASE_COLUMNS = (
    "scheme", "workload", "units", "payload_bytes", "wall_cycles",
    "busy_cycles", "cores", "throughput_gbps", "cpu_utilization",
    "us_per_unit", "latency_us", "transactions_per_sec",
    "lock_wait_share", "scaling_serial_fraction",
)


def result_to_row(result: RunResult) -> dict:
    """Flatten one result into a plain dict (JSON/CSV friendly)."""
    row: dict = {
        "scheme": result.scheme,
        "workload": result.workload,
        "units": result.units,
        "payload_bytes": result.payload_bytes,
        "wall_cycles": result.wall_cycles,
        "busy_cycles": result.busy_cycles,
        "cores": result.cores,
        "throughput_gbps": round(result.throughput_gbps, 4),
        "cpu_utilization": round(result.cpu_utilization, 4),
        "us_per_unit": round(result.us_per_unit, 4),
        "latency_us": (round(result.latency_us, 3)
                       if result.latency_us is not None else None),
        "transactions_per_sec": (round(result.transactions_per_sec, 1)
                                 if result.transactions_per_sec is not None
                                 else None),
    }
    # Serialized-share columns (see repro.obs.scaling): the within-run
    # serial-fraction estimators the regression gate guards, so a
    # scalability collapse trips CI like a throughput collapse does.
    lock_wait_share, serial_fraction = serialized_shares(
        result.breakdown_cycles, result.busy_cycles)
    row["lock_wait_share"] = round(lock_wait_share, 6)
    row["scaling_serial_fraction"] = round(serial_fraction, 6)
    for key, value in sorted(result.params.items()):
        row[f"param_{key}"] = value
    breakdown = result.breakdown_us_per_unit()
    for category in ALL_CATEGORIES:
        row[f"us_{category.replace(' ', '_')}"] = round(
            breakdown[category], 4)
    exposure = result.extras.get("exposure")
    if isinstance(exposure, dict):
        # Security columns the bench regression gate guards alongside
        # the performance ones (see repro.obs.exposure for definitions).
        row["exposure_stale_byte_cycles"] = \
            exposure.get("stale_byte_cycles", 0)
        row["exposure_excess_byte_cycles"] = \
            exposure.get("granularity_excess_byte_cycles", 0)
        row["exposure_peak_surface_bytes"] = \
            exposure.get("peak_surface_bytes", 0)
        row["exposure_stale_accesses"] = exposure.get("stale_accesses", 0)
        row["exposure_faults"] = exposure.get("faults", 0)
    requests = result.extras.get("requests")
    if isinstance(requests, dict):
        # Request-latency tail columns (see repro.obs.requests); the
        # regression gate guards them with wider tolerances than the
        # throughput means, since percentiles are noisier.
        overall = requests.get("overall", {})
        if overall.get("count"):
            row["latency_p50_us"] = overall.get("p50_us")
            row["latency_p99_us"] = overall.get("p99_us")
            row["latency_p999_us"] = overall.get("p999_us")
    iotlb = result.extras.get("iotlb")
    if isinstance(iotlb, dict) and iotlb:
        # IOTLB columns are report-only: cache behaviour is an
        # *explanation* (why strict unmapping costs what it costs), not
        # a gated contract, so none of these appear in
        # DEFAULT_TOLERANCES.
        hits = iotlb.get("hits", 0)
        misses = iotlb.get("misses", 0)
        lookups = hits + misses
        row["iotlb_hit_rate"] = (round(hits / lookups, 6)
                                 if lookups else 0.0)
        row["iotlb_evictions"] = iotlb.get("evictions", 0)
        row["iotlb_invalidations"] = iotlb.get("invalidations", 0)
        row["iotlb_invalidated_entries"] = \
            iotlb.get("invalidated_entries", 0)
        prefetches = iotlb.get("prefetches", 0)
        if prefetches:
            # Prefetch-hint columns (identity-strict-prefetch): how many
            # hints were posted and how many first lookups they served.
            row["iotlb_prefetches"] = prefetches
            row["iotlb_prefetch_hit_rate"] = round(
                iotlb.get("prefetch_hits", 0) / prefetches, 6)
    slo = result.extras.get("slo")
    if isinstance(slo, dict) and slo.get("armed"):
        # SLO-window columns (see repro.obs.slo): breach counts gate
        # with the zero-baseline rule — a run that was clean at the
        # baseline must stay clean.
        row["slo_breach_windows"] = slo.get("breach_windows", 0)
        row["slo_worst_p99_us"] = slo.get("worst_p99_us")
        row["slo_drops"] = slo.get("drops", 0)
    return row


def _columns(rows: Sequence[dict]) -> List[str]:
    columns = list(BASE_COLUMNS)
    seen = set(columns)
    for row in rows:
        for key in row:
            if key not in seen:
                columns.append(key)
                seen.add(key)
    return columns


def to_csv(results: Iterable[RunResult]) -> str:
    """Render results as a CSV document (header + one row each)."""
    rows = [result_to_row(r) for r in results]
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=_columns(rows),
                            restval="", extrasaction="ignore")
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def to_json(results: Iterable[RunResult], indent: int = 2) -> str:
    """Render results as a JSON array of flattened rows."""
    return json.dumps([result_to_row(r) for r in results], indent=indent)


def write_csv(results: Iterable[RunResult], path: str) -> None:
    with open(path, "w", newline="") as fh:
        fh.write(to_csv(results))


def write_json(results: Iterable[RunResult], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(to_json(results))
