"""Result containers and paper-style table renderers."""

from repro.stats.reporting import (
    render_breakdown_table,
    render_latency_table,
    render_memcached_table,
    render_property_matrix,
    render_throughput_table,
)
from repro.stats.analytical import (
    copy_invalidate_breakeven_bytes,
    predict_all_rx,
    predict_rx,
    strict_saturation_gbps,
)
from repro.stats.export import result_to_row, to_csv, to_json, write_csv, write_json
from repro.stats.results import RunResult, Series
from repro.stats.timeline import (
    render_histogram,
    render_metrics_summary,
    render_observability_report,
    render_phase_table,
    render_trace_summary,
)

__all__ = [
    "RunResult",
    "Series",
    "render_throughput_table",
    "render_breakdown_table",
    "render_latency_table",
    "render_property_matrix",
    "render_memcached_table",
    "predict_rx",
    "predict_all_rx",
    "copy_invalidate_breakeven_bytes",
    "strict_saturation_gbps",
    "to_csv",
    "to_json",
    "write_csv",
    "write_json",
    "result_to_row",
    "render_histogram",
    "render_metrics_summary",
    "render_observability_report",
    "render_phase_table",
    "render_trace_summary",
]
