"""Result containers for workload runs.

A :class:`RunResult` captures what one benchmark configuration produced:
throughput, CPU utilization, the per-packet time breakdown (same
categories as the paper's Figures 5/8/10), and auxiliary counters
(shadow-pool occupancy, lock contention, IOTLB statistics).  The
benchmark harness serializes these into the tables EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hw.cpu import ALL_CATEGORIES
from repro.sim.units import CYCLES_PER_US, throughput_gbps


@dataclass
class RunResult:
    """Outcome of one workload run under one protection scheme."""

    scheme: str
    workload: str
    params: Dict[str, object] = field(default_factory=dict)

    units: int = 0                 # packets / messages / transactions
    payload_bytes: int = 0
    wall_cycles: int = 0
    busy_cycles: int = 0
    cores: int = 1
    breakdown_cycles: Dict[str, int] = field(default_factory=dict)

    latency_us: Optional[float] = None
    transactions_per_sec: Optional[float] = None
    extras: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def throughput_gbps(self) -> float:
        return throughput_gbps(self.payload_bytes, self.wall_cycles)

    @property
    def cpu_utilization(self) -> float:
        """Fraction of total core-time spent busy (1.0 = all cores pegged)."""
        if self.wall_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (self.wall_cycles * self.cores))

    @property
    def us_per_unit(self) -> float:
        """Average *CPU* microseconds per packet/transaction."""
        if not self.units:
            return 0.0
        return self.busy_cycles / CYCLES_PER_US / self.units

    def breakdown_us_per_unit(self) -> Dict[str, float]:
        """Per-unit time breakdown in µs, in the paper's category order."""
        if not self.units:
            return {cat: 0.0 for cat in ALL_CATEGORIES}
        return {
            cat: self.breakdown_cycles.get(cat, 0) / CYCLES_PER_US / self.units
            for cat in ALL_CATEGORIES
        }

    def relative_to(self, baseline: "RunResult") -> Dict[str, float]:
        """Relative throughput and CPU versus ``baseline`` (the paper's
        'relative' panels, normalized to no-iommu)."""
        rel_tput = (self.throughput_gbps / baseline.throughput_gbps
                    if baseline.throughput_gbps else 0.0)
        rel_cpu = (self.cpu_utilization / baseline.cpu_utilization
                   if baseline.cpu_utilization else 0.0)
        return {"throughput": rel_tput, "cpu": rel_cpu}


@dataclass
class Series:
    """One figure line: results keyed by the swept parameter."""

    scheme: str
    points: List[RunResult] = field(default_factory=list)

    def by_param(self, key: str) -> Dict[object, RunResult]:
        return {r.params.get(key): r for r in self.points}
