"""Plain-text rendering of the paper's tables and figure data.

The benchmark harness prints the same rows/series the paper reports:
throughput and CPU per message size (Figures 3/4/6/7/9), per-packet time
breakdowns (Figures 5/8/10), the memcached bars (Figure 11), and the
Table 1 property matrix.  Everything renders as aligned monospace text —
the repository's "figures" are these series, per the reproduction brief.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.hw.cpu import ALL_CATEGORIES
from repro.stats.results import RunResult


def _fmt_size(size: int) -> str:
    if size >= 1024 and size % 1024 == 0:
        return f"{size // 1024}KB"
    return f"{size}B"


def render_throughput_table(results: Dict[str, List[RunResult]],
                            param: str = "message_size",
                            baseline: str = "no-iommu",
                            title: str = "") -> str:
    """Render throughput [Gb/s], relative throughput, CPU [%], relative CPU
    — the four panels of the paper's throughput figures — as one table."""
    schemes = list(results)
    sizes = [r.params[param] for r in results[schemes[0]]]
    base = {r.params[param]: r for r in results.get(baseline, results[schemes[0]])}
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'scheme':<18}" + "".join(
        f"{_fmt_size(s):>10}" for s in sizes)
    for panel, getter in (
        ("throughput [Gb/s]", lambda r, b: f"{r.throughput_gbps:10.2f}"),
        ("relative throughput", lambda r, b:
            f"{(r.throughput_gbps / b.throughput_gbps if b.throughput_gbps else 0):10.2f}"),
        ("cpu [%]", lambda r, b: f"{100 * r.cpu_utilization:10.1f}"),
        ("relative cpu", lambda r, b:
            f"{(r.cpu_utilization / b.cpu_utilization if b.cpu_utilization else 0):10.2f}"),
    ):
        lines.append(f"--- {panel} ---")
        lines.append(header)
        for scheme in schemes:
            row = f"{scheme:<18}"
            for r in results[scheme]:
                b = base[r.params[param]]
                row += getter(r, b)
            lines.append(row)
        lines.append("")
    return "\n".join(lines)


def render_breakdown_table(results: Dict[str, RunResult],
                           title: str = "") -> str:
    """Per-packet time breakdown in µs (the paper's Figures 5/8/10 bars)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    schemes = list(results)
    lines.append(f"{'category':<24}" + "".join(f"{s:>14}" for s in schemes))
    for cat in ALL_CATEGORIES:
        row = f"{cat:<24}"
        for scheme in schemes:
            row += f"{results[scheme].breakdown_us_per_unit()[cat]:14.3f}"
        lines.append(row)
    row = f"{'TOTAL (us/unit)':<24}"
    for scheme in schemes:
        row += f"{results[scheme].us_per_unit:14.3f}"
    lines.append(row)
    row = f"{'throughput (Gb/s)':<24}"
    for scheme in schemes:
        row += f"{results[scheme].throughput_gbps:14.2f}"
    lines.append(row)
    return "\n".join(lines)


def render_latency_table(results: Dict[str, List[RunResult]],
                         param: str = "message_size",
                         baseline: str = "no-iommu",
                         title: str = "") -> str:
    """Latency [µs], relative latency, CPU [%], relative CPU (Figure 9)."""
    schemes = list(results)
    sizes = [r.params[param] for r in results[schemes[0]]]
    base = {r.params[param]: r for r in results.get(baseline, results[schemes[0]])}
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'scheme':<18}" + "".join(f"{_fmt_size(s):>10}" for s in sizes)
    for panel, getter in (
        ("latency [us]", lambda r, b: f"{(r.latency_us or 0):10.1f}"),
        ("relative latency", lambda r, b:
            f"{((r.latency_us or 0) / b.latency_us if b.latency_us else 0):10.2f}"),
        ("cpu [%]", lambda r, b: f"{100 * r.cpu_utilization:10.1f}"),
        ("relative cpu", lambda r, b:
            f"{(r.cpu_utilization / b.cpu_utilization if b.cpu_utilization else 0):10.2f}"),
    ):
        lines.append(f"--- {panel} ---")
        lines.append(header)
        for scheme in schemes:
            row = f"{scheme:<18}"
            for r in results[scheme]:
                row += getter(r, base[r.params[param]])
            lines.append(row)
        lines.append("")
    return "\n".join(lines)


def render_property_matrix(rows: Sequence[tuple[str, Dict[str, bool]]],
                           columns: Iterable[str],
                           title: str = "Table 1") -> str:
    """The Table 1 ✓/✗ matrix (verified empirically by the audit)."""
    columns = list(columns)
    label_w = max([34] + [len(label) + 2 for label, _ in rows])
    lines = [title,
             f"{'scheme':<{label_w}}" + "".join(f"{c:>25}" for c in columns)]
    for label, props in rows:
        row = f"{label:<{label_w}}"
        for col in columns:
            mark = "yes" if props.get(col) else "-"
            row += f"{mark:>25}"
        lines.append(row)
    return "\n".join(lines)


def render_exposure_report(rows: Sequence[tuple[str, Dict[str, object] | None]],
                           title: str = "Exposure report") -> str:
    """Per-scheme exposure metrics (see :mod:`repro.obs.exposure`).

    ``rows`` pairs a scheme label with its exposure summary — ``None``
    marks a scheme with no IOMMU domain at all (no-iommu, SWIOTLB),
    where the device's reach is not bounded by translation in the
    first place.
    """
    label_w = max([34] + [len(label) + 2 for label, _ in rows])
    lines = [title,
             f"{'scheme':<{label_w}}{'stale B*cyc':>14}{'max win cyc':>12}"
             f"{'stale hits':>11}{'excess B*cyc':>14}{'peak excess B':>14}"
             f"{'surface B':>11}{'faults':>8}"]
    unprotected = "- unprotected: device reach not bounded by translation -"
    for label, summary in rows:
        if summary is None:
            lines.append(f"{label:<{label_w}}{unprotected:^84}")
            continue
        lines.append(
            f"{label:<{label_w}}"
            f"{summary.get('stale_byte_cycles', 0):>14}"
            f"{summary.get('stale_peak_window_cycles', 0):>12}"
            f"{summary.get('stale_accesses', 0):>11}"
            f"{summary.get('granularity_excess_byte_cycles', 0):>14}"
            f"{summary.get('peak_excess_bytes', 0):>14}"
            f"{summary.get('peak_surface_bytes', 0):>11}"
            f"{summary.get('faults', 0):>8}")
    lines.append("")
    lines.append("stale B*cyc: byte-cycles device-reachable after OS unmap "
                 "(deferred window); excess B*cyc: OS bytes beyond the "
                 "requested range (page granularity), integrated over the "
                 "mapping lifetime.")
    return "\n".join(lines)


def render_memcached_table(results: Dict[str, RunResult],
                           baseline: str = "no-iommu",
                           title: str = "") -> str:
    """memcached transactions/s + CPU (Figure 11 bars)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'scheme':<20}{'Mtps':>10}{'rel':>8}{'cpu %':>8}")
    base = results.get(baseline)
    for scheme, r in results.items():
        tps = (r.transactions_per_sec or 0.0) / 1e6
        rel = (tps * 1e6 / base.transactions_per_sec
               if base and base.transactions_per_sec else 0.0)
        lines.append(f"{scheme:<20}{tps:>10.3f}{rel:>8.2f}"
                     f"{100 * r.cpu_utilization:>8.1f}")
    return "\n".join(lines)
