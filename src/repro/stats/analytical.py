"""Closed-form cost predictions — the paper's arithmetic, as code.

Two purposes:

1. **Cross-validation**: the discrete-event simulation should agree with
   a straight per-packet cost summation whenever nothing contends; the
   test suite asserts simulation ≈ analysis within a few percent for the
   single-core receive path.
2. **Analysis tools** the paper's argument implies but does not plot:
   the break-even buffer size where copying stops being cheaper than an
   IOTLB invalidation (§5.5's "copying is not always preferable"), and
   the multicore saturation throughput of a lock-serialized strict
   scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.costmodel import CostModel
from repro.sim.units import CPU_FREQ_HZ, PAGE_SIZE, TCP_MSS


@dataclass(frozen=True)
class RxCostPrediction:
    """Predicted single-core RX cost per MTU segment, by component."""

    scheme: str
    base_cycles: int
    protection_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.base_cycles + self.protection_cycles

    def throughput_gbps(self, payload_bytes: int = TCP_MSS) -> float:
        packets_per_sec = CPU_FREQ_HZ / self.total_cycles
        return packets_per_sec * payload_bytes * 8 / 1e9


def rx_base_cycles(cost: CostModel, payload: int = TCP_MSS,
                   buf_size: int = 2048) -> int:
    """Protection-independent receive cost per segment (driver + stack)."""
    # The receiver's recv() syscall amortizes over a large message's
    # segments (≈13 cycles/segment at 64 KB) and is left out; the 40
    # cycles are the no-op dma_map/dma_unmap call pair itself.
    return (cost.rx_parse_cycles
            + cost.rx_other_cycles
            + cost.copy_to_user_cycles(payload)
            + cost.rx_refill_cycles
            + cost.page_alloc_cycles
            + cost.page_free_cycles
            + 40)


def rx_protection_cycles(cost: CostModel, scheme: str,
                         payload: int = TCP_MSS,
                         frame_len: int | None = None) -> int:
    """Per-segment protection cost of ``scheme`` on the RX path."""
    frame = frame_len if frame_len is not None else payload + 54
    if scheme == "no-iommu":
        return 0
    if scheme == "copy":
        return (cost.pool_acquire_cycles + cost.pool_release_cycles
                + cost.pool_find_cycles + cost.copy_hint_cycles
                + cost.memcpy_cycles(frame)
                + cost.pollution_cycles(frame)
                - 40)
    pt = cost.pt_map_cycles + cost.pt_unmap_cycles
    if scheme in ("identity-strict", "linux-strict", "eiovar-strict",
                  "magazine-strict"):
        return (pt + cost.iova_identity_cycles + cost.iova_identity_cycles // 2
                + cost.lock_uncontended_cycles
                + cost.invq_submit_cycles
                + cost.iotlb_invalidation_latency(1)
                + cost.invq_wait_poll_cycles
                - 40)
    if scheme in ("identity-deferred", "linux-deferred", "eiovar-deferred",
                  "magazine-deferred"):
        amortized_flush = (
            (cost.lock_uncontended_cycles + cost.invq_submit_cycles
             + cost.iotlb_invalidation_latency(1)
             + cost.invq_wait_poll_cycles) // cost.deferred_batch_size)
        return (pt + cost.iova_identity_cycles
                + cost.deferred_bookkeeping_cycles + amortized_flush
                + cost.iova_identity_cycles // 2 - 40)
    raise ValueError(f"no analytical model for scheme {scheme!r}")


def predict_rx(cost: CostModel, scheme: str,
               payload: int = TCP_MSS) -> RxCostPrediction:
    """Predicted single-core RX cost for one MTU segment."""
    return RxCostPrediction(
        scheme=scheme,
        base_cycles=rx_base_cycles(cost, payload),
        protection_cycles=rx_protection_cycles(cost, scheme, payload),
    )


def copy_invalidate_breakeven_bytes(cost: CostModel,
                                    concurrency: int = 1) -> int:
    """Buffer size at which a copy costs as much as an IOTLB invalidation.

    Below this size copying wins — the paper's central claim for MTU
    packets; above it, only the §5.5 hybrid (or zero-copy) makes sense.
    Contention raises the invalidation side, moving the break-even up
    (§1: "in multicore workloads ... even larger copies, such as 64 KB,
    [become] profitable").
    """
    invalidation = (cost.invq_submit_cycles
                    + cost.iotlb_invalidation_latency(concurrency)
                    + cost.invq_wait_poll_cycles
                    + (concurrency - 1) * cost.lock_handoff_cycles)
    lo, hi = 1, 1 << 30
    while lo < hi:
        mid = (lo + hi) // 2
        copy_cost = (cost.memcpy_cycles(mid) + cost.pollution_cycles(mid)
                     + cost.pool_acquire_cycles + cost.pool_release_cycles)
        if copy_cost < invalidation:
            lo = mid + 1
        else:
            hi = mid
    return lo


def strict_saturation_gbps(cost: CostModel, cores: int,
                           payload: int = TCP_MSS) -> float:
    """Lock-bound ceiling of a strict scheme at ``cores`` (Figs 1/6).

    Every unmap serializes on the invalidation-queue lock; system
    throughput cannot exceed one packet per lock hold time.
    """
    hold = (cost.invq_submit_cycles
            + cost.iotlb_invalidation_latency(cores)
            + cost.invq_wait_poll_cycles
            + (cost.lock_handoff_cycles if cores > 1
               else cost.lock_uncontended_cycles))
    packets_per_sec = CPU_FREQ_HZ / hold
    return packets_per_sec * payload * 8 / 1e9


def predict_all_rx(cost: CostModel) -> Dict[str, RxCostPrediction]:
    """Predictions for the four figure schemes."""
    return {scheme: predict_rx(cost, scheme)
            for scheme in ("no-iommu", "copy", "identity-deferred",
                           "identity-strict")}
