"""Render observability data: metrics summaries, phase timelines, traces.

These renderers turn the :mod:`repro.obs` data — the metrics registry's
counters/histograms/series, the phase timeline, and the trace ring —
into the same kind of aligned ASCII tables the rest of
:mod:`repro.stats` produces.  The CLI's ``--trace`` flag prints the
metrics summary after the run's result table.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.obs.context import Observability, PhaseRecord
from repro.obs.locks import LockContentionRecorder, top_edges
from repro.obs.metrics import CycleHistogram, MetricsRegistry
from repro.obs.requests import RequestRecord, RequestRecorder
from repro.obs.spans import SpanNode
from repro.sim.units import cycles_to_us

#: Width of histogram bars in :func:`render_histogram`.
_BAR_WIDTH = 40

#: Width of the flame bars in :func:`render_span_tree`.
_FLAME_WIDTH = 24


def render_histogram(hist: CycleHistogram, title: str | None = None) -> str:
    """One histogram as bucket rows with proportional hash bars."""
    lines: List[str] = [title if title is not None else hist.name]
    if not hist.count:
        lines.append("  (no observations)")
        return "\n".join(lines)
    populated = hist.nonzero_buckets()
    peak = max(n for _, n in populated)
    for upper, n in populated:
        bar = "#" * max(1, round(_BAR_WIDTH * n / peak))
        lines.append(f"  <= {upper:>12}  {n:>8}  {bar}")
    s = hist.summary()
    lines.append(f"  count={s['count']} mean={s['mean']} "
                 f"p50={s['p50']} p90={s['p90']} p99={s['p99']} "
                 f"max={s['max']}")
    return "\n".join(lines)


def render_metrics_summary(metrics: MetricsRegistry) -> str:
    """The registry's counters, histograms, and series as one report."""
    lines: List[str] = ["== metrics =="]
    if metrics.counters:
        lines.append("counters:")
        width = max(len(n) for n in metrics.counters)
        for name in sorted(metrics.counters):
            lines.append(f"  {name:<{width}}  "
                         f"{metrics.counters[name].value:>12}")
    if metrics.histograms:
        lines.append("histograms (cycles):")
        for name in sorted(metrics.histograms):
            lines.append(render_histogram(metrics.histograms[name],
                                          title=f"  {name}"))
    if metrics.time_series:
        lines.append("series:")
        width = max(len(n) for n in metrics.time_series)
        for name in sorted(metrics.time_series):
            s = metrics.time_series[name].summary()
            if not s.get("samples"):
                lines.append(f"  {name:<{width}}  (no samples)")
                continue
            lines.append(f"  {name:<{width}}  min={s['min']} "
                         f"mean={s['mean']} max={s['max']} last={s['last']}")
    if len(lines) == 1:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)


def render_phase_table(phases: Iterable[PhaseRecord]) -> str:
    """Workload phases with wall/busy time and top breakdown categories."""
    rows = list(phases)
    lines = ["== phases =="]
    if not rows:
        lines.append("  (no phases recorded)")
        return "\n".join(lines)
    for phase in rows:
        wall_us = cycles_to_us(phase.wall_cycles)
        busy_us = cycles_to_us(phase.busy_cycles)
        top = sorted(phase.breakdown.items(), key=lambda kv: -kv[1])[:3]
        detail = ", ".join(f"{k}={cycles_to_us(v):.1f}us" for k, v in top)
        line = (f"  {phase.name:<10} wall={wall_us:>10.1f}us "
                f"busy={busy_us:>10.1f}us")
        if detail:
            line += f"  [{detail}]"
        lines.append(line)
    return "\n".join(lines)


def render_trace_summary(tracer) -> str:
    """Event counts per kind plus ring-buffer occupancy."""
    lines = ["== trace =="]
    if not getattr(tracer, "enabled", False):
        lines.append("  (tracing disabled)")
        return "\n".join(lines)
    counts = tracer.counts_by_kind()
    if not counts:
        lines.append("  (no events)")
    else:
        width = max(len(k) for k in counts)
        for kind in sorted(counts):
            lines.append(f"  {kind:<{width}}  {counts[kind]:>8}")
    dropped = getattr(tracer, "dropped", 0)
    lines.append(f"  retained={len(tracer)} dropped={dropped}")
    return "\n".join(lines)


def render_span_tree(root: SpanNode, max_depth: int | None = None) -> str:
    """Flamegraph-style ASCII rendering of a span-attribution tree.

    One row per node, indented by depth, with a hash bar proportional to
    the node's share of the root's total cycles, the inclusive ``total``
    and exclusive ``self`` time, and the call count.  The root row (the
    synthetic ``run`` node) reports the sum of its children, since it is
    never opened or closed itself.
    """
    lines = ["== spans =="]
    total = root.total_cycles or root.child_cycles
    if not total and not root.children:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)

    def emit(node: SpanNode, depth: int, inclusive: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        share = inclusive / total if total else 0.0
        bar = "#" * max(1, round(_FLAME_WIDTH * share)) if inclusive else ""
        self_cycles = inclusive - node.child_cycles
        label = "  " * depth + node.name
        lines.append(
            f"  {label:<28} {share:>6.1%}  "
            f"total={cycles_to_us(inclusive):>10.1f}us  "
            f"self={cycles_to_us(self_cycles):>10.1f}us  "
            f"n={node.count:>7}  {bar}"
        )
        for child in sorted(node.children.values(),
                            key=lambda n: -n.total_cycles):
            emit(child, depth + 1, child.total_cycles)

    emit(root, 0, total)
    return "\n".join(lines)


def render_lock_table(recorder: LockContentionRecorder) -> str:
    """Per-lock contention table from the ``obs.locks`` recorder.

    One row per lock, ranked by total wait burden: acquisition and
    contention counts, wait/hold totals, the number of distinct waiting
    cores, and the busiest waiter→holder hand-off edges.  Single-core
    runs (every acquisition uncontended) and runs with no lock traffic
    at all both render without special-casing by the caller.
    """
    lines: List[str] = ["== locks =="]
    ranked = recorder.by_wait()
    if not ranked:
        lines.append("  (no lock activity recorded)")
        return "\n".join(lines)
    width = max(len(s.name) for s in ranked)
    for stats in ranked:
        line = (f"  {stats.name:<{width}}  "
                f"acq={stats.acquisitions:>7} "
                f"contended={stats.contended:>6} "
                f"wait={cycles_to_us(stats.total_wait_cycles):>10.1f}us "
                f"hold={cycles_to_us(stats.total_hold_cycles):>10.1f}us")
        if stats.contended:
            waiters = len(stats.wait_by_core)
            edges = ", ".join(f"c{w}<-c{h}x{n}" if h >= 0 else f"c{w}<-?x{n}"
                              for w, h, n in top_edges(stats))
            line += f"  waiters={waiters}"
            if edges:
                line += f"  [{edges}]"
        lines.append(line)
    if not any(s.contended for s in ranked):
        lines.append("  (no contention: every acquisition was uncontended)")
    return "\n".join(lines)


def render_exposure_summary(exposure) -> str:
    """The exposure accountant's totals + recent fault forensics."""
    summary = exposure.summary()
    lines: List[str] = ["== exposure =="]
    if not summary["domains"]:
        lines.append("  (no IOMMU domain observed)")
        return "\n".join(lines)
    for key in ("stale_byte_cycles", "stale_windows",
                "stale_peak_window_cycles", "stale_accesses",
                "stale_open_pages", "granularity_excess_byte_cycles",
                "peak_excess_bytes", "peak_surface_bytes",
                "live_mappings", "faults", "faults_dropped"):
        lines.append(f"  {key:<32}  {summary[key]:>14}")
    if exposure.faults:
        lines.append("recent faults:")
        for fault in list(exposure.faults)[-5:]:
            where = " ".join(f"core{cid}:{' -> '.join(path)}"
                             for cid, path in fault.open_spans) or "-"
            lines.append(
                f"  t={fault.t} dev={fault.device_id:#x} "
                f"iova={fault.iova:#x} "
                f"{'write' if fault.is_write else 'read'} "
                f"[{fault.reason}] page={fault.page_state} "
                f"map_t={fault.last_map_t} unmap_t={fault.last_unmap_t} "
                f"spans: {where}")
    return "\n".join(lines)


def render_request_summary(recorder: RequestRecorder) -> str:
    """Per-kind request counts and latency percentiles (with stages)."""
    lines: List[str] = ["== requests =="]
    summary = recorder.summary()
    if not summary["completed"]:
        lines.append("  (no completed requests)")
        if summary["open"]:
            lines.append(f"  open={summary['open']}")
        return "\n".join(lines)
    lines.append(f"  started={summary['started']} "
                 f"completed={summary['completed']} "
                 f"open={summary['open']}")
    for kind, data in summary["kinds"].items():
        us = data["latency_us"]
        lines.append(
            f"  {kind:<10} n={data['count']:>7}  "
            f"p50={us['p50']:>9.3f}us p90={us['p90']:>9.3f}us "
            f"p99={us['p99']:>9.3f}us p999={us['p999']:>9.3f}us "
            f"max={us['max']:>9.3f}us")
        total_stage = sum(data["stages"].values()) or 1
        top = list(data["stages"].items())[:4]
        if top:
            detail = ", ".join(f"{name}={cycles / total_stage:.0%}"
                               for name, cycles in top)
            lines.append(f"    stages: {detail}")
        if data["locks"]:
            locks = ", ".join(f"{name}={cycles_to_us(cycles):.1f}us"
                              for name, cycles
                              in list(data["locks"].items())[:3])
            lines.append(f"    lock waits: {locks}")
    return "\n".join(lines)


def render_tail_report(report) -> str:
    """The critical-path analyzer's verdict, human-readable."""
    lines: List[str] = ["== tail latency =="]
    if not report:
        lines.append("  n/a (no completed requests)")
        return "\n".join(lines)
    kind = report["kind"] or "all"
    lines.append(
        f"  p{report['percentile']:g} of {kind} requests: "
        f">= {report['threshold_us']:.3f}us "
        f"({report['tail_count']} tail / {report['completed']} completed)")
    dominant = report["dominant_stage"]
    if dominant is None:
        lines.append("  dominant stage: n/a (no instrumented stages)")
    else:
        share = report["tail_profile"].get(dominant, 0.0)
        lines.append(f"  dominant stage: {dominant} "
                     f"({share:.0%} of tail latency)")
    protection = report["dominant_protection_stage"]
    if protection is not None and protection != dominant:
        share = report["tail_profile"].get(protection, 0.0)
        lines.append(f"  dominant protection stage: {protection} "
                     f"({share:.0%})")
    diffs = [(stage, delta) for stage, delta
             in report["profile_diff"].items() if abs(delta) >= 0.005]
    if diffs:
        detail = ", ".join(f"{stage} {delta:+.1%}"
                           for stage, delta in diffs[:4])
        lines.append(f"  tail vs median: {detail}")
    for exemplar in report["exemplars"][:1]:
        lines.append(
            f"  slowest: {exemplar['kind']} #{exemplar['rid']} on "
            f"core {exemplar['core']} — {exemplar['latency_us']:.3f}us")
    return "\n".join(lines)


def render_request_timeline(record: RequestRecord) -> str:
    """One request's causal timeline: stages, marks, lock waits."""
    lines = [
        f"request #{record.rid} ({record.kind}) core={record.core} "
        f"latency={cycles_to_us(record.latency):.3f}us"
    ]
    for name, start, end, depth in record.segments:
        indent = "  " * depth
        lines.append(
            f"  +{start - record.start:>8}  {indent}{name:<20} "
            f"{cycles_to_us(end - start):>9.3f}us")
    for mark, t in record.marks:
        lines.append(f"  +{t - record.start:>8}  * {mark}")
    for lock, cycles in record.locks.items():
        lines.append(f"  lock {lock}: waited "
                     f"{cycles_to_us(cycles):.3f}us")
    return "\n".join(lines)


def render_observability_report(obs: Observability) -> str:
    """Trace summary + phases + spans + locks + metrics + exposure."""
    sections = [
        render_trace_summary(obs.tracer),
        render_phase_table(obs.phases),
    ]
    if obs.spans.closed:
        sections.append(render_span_tree(obs.spans.tree()))
    if obs.locks.locks:
        sections.append(render_lock_table(obs.locks))
    sections.append(render_metrics_summary(obs.metrics))
    sections.append(render_exposure_summary(obs.exposure))
    if obs.requests.completed:
        sections.append(render_request_summary(obs.requests))
    return "\n".join(sections)
