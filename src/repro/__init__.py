"""repro — reproduction of "True IOMMU Protection from DMA Attacks:
When Copy Is Faster Than Zero Copy" (Markuze, Morrison & Tsafrir,
ASPLOS 2016).

The package implements the paper's contribution — **DMA shadowing**, a
copy-based DMA API over a pool of permanently-mapped shadow buffers —
together with every substrate it needs (IOMMU with IOTLB + invalidation
queue, kernel allocators, IOVA allocators, a 40 Gb/s NIC model and
driver), the zero-copy baselines it is compared against, an attack
framework that verifies the security claims, and workload harnesses that
regenerate each of the paper's tables and figures.

Quickstart::

    from repro import System, SystemConfig, DmaDirection

    system = System.build(SystemConfig(scheme="copy", cores=4))
    core = system.machine.core(0)
    buf = system.allocators.kmalloc(1500, core=core)
    handle = system.dma_api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
    system.dma_api.port().dma_write(handle.iova, b"packet from the wire")
    system.dma_api.dma_unmap(core, handle)        # copies shadow -> buf

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.attacks import AttackerDevice, audit_all, audit_scheme, render_table1
from repro.core import ShadowBufferPool, ShadowDmaApi, ShadowIovaCodec
from repro.dma import (
    ALL_SCHEMES,
    FIGURE_SCHEMES,
    DmaApi,
    DmaDirection,
    DmaHandle,
    create_dma_api,
    scheme_properties,
)
from repro.errors import (
    DmaApiError,
    IommuFault,
    PoolExhaustedError,
    ReproError,
    SecurityViolation,
)
from repro.hw import Core, Machine
from repro.iommu import Iommu, Perm
from repro.kalloc import KBuffer, KernelAllocators
from repro.net import Nic, NicDriver
from repro.sim import DEFAULT_COST_MODEL, CostModel
from repro.stats import RunResult
from repro.system import System, SystemConfig
from repro.workloads import (
    MemcachedConfig,
    RRConfig,
    StreamConfig,
    run_memcached,
    run_tcp_rr,
    run_tcp_stream,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "System",
    "SystemConfig",
    "Machine",
    "Core",
    "DmaApi",
    "DmaDirection",
    "DmaHandle",
    "create_dma_api",
    "scheme_properties",
    "ALL_SCHEMES",
    "FIGURE_SCHEMES",
    "ShadowDmaApi",
    "ShadowBufferPool",
    "ShadowIovaCodec",
    "Iommu",
    "Perm",
    "KernelAllocators",
    "KBuffer",
    "Nic",
    "NicDriver",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "StreamConfig",
    "RRConfig",
    "MemcachedConfig",
    "run_tcp_stream",
    "run_tcp_rr",
    "run_memcached",
    "RunResult",
    "AttackerDevice",
    "audit_scheme",
    "audit_all",
    "render_table1",
    "ReproError",
    "IommuFault",
    "DmaApiError",
    "PoolExhaustedError",
    "SecurityViolation",
]
